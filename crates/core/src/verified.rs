//! Verified solves for the direct path: per-lane residual sampling,
//! quarantine, iterative refinement, and a factorization fallback ladder.
//!
//! The direct Schur path is backward stable in exact-structure cases, but
//! an exa-scale run feeds it meshes and right-hand sides it cannot veto:
//! near-duplicate knots degrade the interior conditioning, and upstream
//! physics can inject NaN/Inf into a handful of batch lanes. A
//! [`VerifiedBuilder`] wraps [`SplineBuilder::solve_in_place`] so that one
//! poisoned lane never poisons the batch:
//!
//! 1. **Sample** — after the ordinary batched solve, the relative residual
//!    `‖b − Ax‖₂ / ‖b‖₂` of each (sampled) lane is measured against the
//!    original assembled matrix.
//! 2. **Refine** — lanes above tolerance get `*rfs`-style iterative
//!    refinement ([`pp_linalg::refine_lane`]) with the primary factors.
//! 3. **Escalate** — lanes still failing walk the direct fallback ladder
//!    `pttrs → pbtrs → gbtrs → getrs → iterative backend`, re-solving the
//!    original right-hand side with progressively more general (and more
//!    expensive) factorizations.
//! 4. **Quarantine** — lanes with non-finite input, or that defeat the
//!    whole ladder, are zeroed and reported in the [`LaneReport`] instead
//!    of carrying NaN into downstream stages.
//!
//! Healthy lanes are **bit-identical** to the unverified path: the batched
//! kernel runs first and verification never rewrites a lane that passes.

use std::fmt;
use std::sync::OnceLock;

use crate::blocks::{QClass, SchurBlocks};
use crate::builder::{solve_one_lane, BuilderVersion, SplineBuilder};
use crate::error::{Error, Result};
use crate::iterative_backend::{IterativeConfig, IterativeSplineSolver};
use pp_bsplines::assemble_interpolation_matrix;
use pp_iterative::solver::{norm2, residual_into};
use pp_linalg::{flip_bit, getrf, refine_lane, LuFactors, RefineConfig, DEFAULT_ABFT_TOL};
use pp_portable::instrument::{
    counter, fault_dump, trace_instant, trace_instant_lane, Counter, InstantKind, PhaseId, Span,
};
use pp_portable::{
    Budget, ExecSpace, InterleavedMatrix, Layout, Matrix, ResidentBatch, StridedMut, LANE_WIDTH,
};
use pp_sparse::Csr;

/// Tuning knobs for [`VerifiedBuilder`].
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Accept a lane when its relative residual `‖b − Ax‖₂/‖b‖₂` is at or
    /// below this.
    pub residual_tol: f64,
    /// Check every `sample_stride`-th lane (1 = every lane). Skipped lanes
    /// are reported [`LaneVerdict::Unsampled`].
    pub sample_stride: usize,
    /// Refinement loop settings for lanes that fail the residual check.
    pub refine: RefineConfig,
    /// Escalate still-failing lanes down the factorization ladder. With
    /// `false`, failing lanes go straight to quarantine.
    pub use_ladder: bool,
    /// Allow the final (iterative Krylov) rung of the ladder.
    pub use_iterative_rung: bool,
    /// Fault-injection hook: these lanes skip the fast residual accept and
    /// the refinement stage, going straight to the ladder. The batched
    /// direct path is backward stable, so exercising the ladder in tests
    /// (and in production burn-in) needs a deterministic trigger.
    pub probe_lanes: Vec<usize>,
    /// ABFT checksum screen over **every** lane (including ones
    /// `sample_stride` skips): after the batched solve, each lane is
    /// checked against the factor-time column-sum identity
    /// `(Aᵀ𝟙)·x = Σb` in O(n). A tripped lane is retried once from its
    /// pristine right-hand side, then escalated through
    /// refinement/ladder/quarantine like any failing lane. Defaults to
    /// the `PP_ABFT` environment switch (off when unset).
    pub abft: bool,
    /// Fault-injection hook: flip a significant bit in these lanes'
    /// freshly solved coefficients before the ABFT screen runs — the
    /// deterministic silent-data-corruption trigger. Strikes once per
    /// lane per solve; with [`VerifyConfig::sdc_probe_persistent`] it
    /// also re-strikes the ABFT retry, modelling corruption the retry
    /// cannot shake off.
    pub sdc_probe_lanes: Vec<usize>,
    /// Make [`VerifyConfig::sdc_probe_lanes`] corrupt the ABFT retry
    /// too (persistent corruption instead of a transient upset).
    pub sdc_probe_persistent: bool,
}

/// The process-default of [`VerifyConfig::abft`]: the `PP_ABFT`
/// environment switch, read once, warn-once on malformed values.
fn abft_default() -> bool {
    static DEFAULT: OnceLock<bool> = OnceLock::new();
    *DEFAULT.get_or_init(|| pp_portable::instrument::env::env_bool("PP_ABFT").unwrap_or(false))
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            residual_tol: 1e-10,
            sample_stride: 1,
            refine: RefineConfig::default(),
            use_ladder: true,
            use_iterative_rung: true,
            probe_lanes: Vec::new(),
            abft: abft_default(),
            sdc_probe_lanes: Vec::new(),
            sdc_probe_persistent: false,
        }
    }
}

/// Why a lane was quarantined.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum QuarantineReason {
    /// The right-hand side held a NaN/Inf before any solve ran.
    NonFiniteInput {
        /// Position of the first offending value within the lane.
        index: usize,
    },
    /// Every ladder rung produced a non-finite solution.
    NonFiniteSolution,
    /// The best residual over all rungs still exceeded the tolerance.
    ResidualAboveTol {
        /// That best (smallest) relative residual.
        residual: f64,
    },
    /// The ABFT checksum screen caught silent data corruption in this
    /// lane, the single retry still tripped, and the budget left no room
    /// for the recovery ladder. The lane's (corrupted) solution must not
    /// survive unverified, so it is zeroed.
    SdcDetected {
        /// Relative checksum discrepancy of the retried solve.
        discrepancy: f64,
    },
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QuarantineReason::NonFiniteInput { index } => {
                write!(f, "non-finite input at index {index}")
            }
            QuarantineReason::NonFiniteSolution => write!(f, "non-finite solution on every rung"),
            QuarantineReason::ResidualAboveTol { residual } => {
                write!(f, "best residual {residual:.3e} above tolerance")
            }
            QuarantineReason::SdcDetected { discrepancy } => {
                write!(
                    f,
                    "silent data corruption (checksum discrepancy {discrepancy:.3e}), unrecovered"
                )
            }
        }
    }
}

/// A rung of the direct fallback ladder, ordered least to most general.
/// The ladder starts at the rung *above* the primary factorization's
/// class, so e.g. a `pbtrs` primary escalates straight to `gbtrs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FallbackRung {
    /// Re-factor the interior as positive-definite banded Cholesky.
    Pbtrs,
    /// Re-factor the interior as general banded LU.
    Gbtrs,
    /// Dense partial-pivoting LU of the *whole* matrix — no Schur split,
    /// no structure assumptions.
    Getrs,
    /// The preconditioned Krylov backend as the last resort.
    Iterative,
}

impl FallbackRung {
    /// The routine name, matching the paper's Table I vocabulary.
    pub fn routine(self) -> &'static str {
        match self {
            FallbackRung::Pbtrs => "pbtrs",
            FallbackRung::Gbtrs => "gbtrs",
            FallbackRung::Getrs => "getrs",
            FallbackRung::Iterative => "iterative",
        }
    }
}

impl fmt::Display for FallbackRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.routine())
    }
}

/// What verification concluded about one batch lane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneVerdict {
    /// The primary solve passed the residual check unchanged.
    Verified {
        /// Measured relative residual.
        residual: f64,
    },
    /// The lane was skipped by `sample_stride` (its solution is the
    /// ordinary unverified result).
    Unsampled,
    /// Iterative refinement with the primary factors fixed the lane.
    Refined {
        /// Correction steps applied.
        steps: usize,
        /// Relative residual after refinement.
        residual: f64,
    },
    /// A ladder rung recovered the lane from the original right-hand side.
    Recovered {
        /// The rung that succeeded.
        rung: FallbackRung,
        /// Relative residual of the recovered solution.
        residual: f64,
    },
    /// The ABFT checksum screen caught silent data corruption and one
    /// retry from the pristine right-hand side produced a clean,
    /// residual-verified solution.
    SdcCorrected {
        /// Relative checksum discrepancy of the corrupted first solve.
        discrepancy: f64,
        /// Relative residual of the retried (accepted) solution.
        residual: f64,
    },
    /// The lane was zeroed and flagged; see the reason.
    Quarantined {
        /// Why recovery was impossible.
        reason: QuarantineReason,
    },
}

impl LaneVerdict {
    /// `true` unless the lane was quarantined.
    pub fn is_healthy(&self) -> bool {
        !matches!(self, LaneVerdict::Quarantined { .. })
    }
}

impl fmt::Display for LaneVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LaneVerdict::Verified { residual } => write!(f, "verified (residual {residual:.3e})"),
            LaneVerdict::Unsampled => write!(f, "unsampled"),
            LaneVerdict::Refined { steps, residual } => {
                write!(f, "refined in {steps} step(s) (residual {residual:.3e})")
            }
            LaneVerdict::Recovered { rung, residual } => {
                write!(f, "recovered via {rung} (residual {residual:.3e})")
            }
            LaneVerdict::SdcCorrected {
                discrepancy,
                residual,
            } => write!(
                f,
                "sdc corrected on retry (discrepancy {discrepancy:.3e}, residual {residual:.3e})"
            ),
            LaneVerdict::Quarantined { reason } => write!(f, "quarantined: {reason}"),
        }
    }
}

/// Cached counter handles for the verification outcome tallies.
struct VerifyMetrics {
    sampled: Counter,
    verified: Counter,
    refined: Counter,
    recovered: Counter,
    quarantined: Counter,
}

fn verify_metrics() -> &'static VerifyMetrics {
    static METRICS: OnceLock<VerifyMetrics> = OnceLock::new();
    METRICS.get_or_init(|| VerifyMetrics {
        sampled: counter("verify.lanes_sampled"),
        verified: counter("verify.lanes_verified"),
        refined: counter("verify.lanes_refined"),
        recovered: counter("verify.lanes_recovered"),
        quarantined: counter("verify.lanes_quarantined"),
    })
}

/// Cached counter handles for the silent-data-corruption tallies. The
/// names match the ones `pp_linalg::abft` bumps, so process-wide totals
/// aggregate both detection layers.
struct SdcMetrics {
    detected: Counter,
    corrected: Counter,
    uncorrected: Counter,
}

fn sdc_metrics() -> &'static SdcMetrics {
    static METRICS: OnceLock<SdcMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SdcMetrics {
        detected: counter("sdc.detected"),
        corrected: counter("sdc.corrected"),
        uncorrected: counter("sdc.uncorrected"),
    })
}

/// Tally one batch's verdicts into the instrumentation counters.
fn publish_verify_metrics(report: &LaneReport) {
    if !pp_portable::instrument::enabled() {
        return;
    }
    let m = verify_metrics();
    for verdict in report.verdicts() {
        match verdict {
            LaneVerdict::Unsampled => continue,
            LaneVerdict::Verified { .. } => m.verified.inc(),
            LaneVerdict::Refined { .. } => m.refined.inc(),
            LaneVerdict::Recovered { .. } | LaneVerdict::SdcCorrected { .. } => m.recovered.inc(),
            LaneVerdict::Quarantined { .. } => m.quarantined.inc(),
        }
        m.sampled.inc();
    }
}

/// One corner the budgeted verified solve had to cut. Every degradation
/// is recorded — a deadline can reduce the work done, but never silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Degradation {
    /// Iterative refinement was skipped for these lanes (they fell
    /// through to the ladder / quarantine directly).
    RefinementSkipped {
        /// Lanes affected, ascending.
        lanes: Vec<usize>,
    },
    /// The fallback ladder was cut short for these lanes — rungs that
    /// might have recovered them were never attempted.
    LadderCapped {
        /// Lanes affected, ascending.
        lanes: Vec<usize>,
    },
    /// Residual verification stopped early: lanes from `from_lane` on
    /// keep their primary (unverified) solutions and are reported
    /// [`LaneVerdict::Unsampled`]. Non-finite *inputs* are still
    /// quarantined — that scan is cheap and always runs.
    SamplingReduced {
        /// First lane left unverified.
        from_lane: usize,
        /// How many stride-selected lanes went unchecked.
        lanes_skipped: usize,
    },
}

impl fmt::Display for Degradation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Degradation::RefinementSkipped { lanes } => {
                write!(f, "refinement skipped on {} lane(s)", lanes.len())
            }
            Degradation::LadderCapped { lanes } => {
                write!(f, "fallback ladder capped on {} lane(s)", lanes.len())
            }
            Degradation::SamplingReduced {
                from_lane,
                lanes_skipped,
            } => write!(
                f,
                "verification stopped at lane {from_lane} ({lanes_skipped} lane(s) unchecked)"
            ),
        }
    }
}

/// Result of a budgeted verified solve: the per-lane verdicts plus the
/// explicit list of corners the deadline forced.
#[derive(Debug, Clone, PartialEq)]
pub struct DegradedReport {
    /// Per-lane verdicts (same shape as the unbudgeted report).
    pub lanes: LaneReport,
    /// Every degradation taken, in the order it happened. Empty when the
    /// budget was ample — the solve is then identical to the unbudgeted
    /// path.
    pub degradations: Vec<Degradation>,
}

impl DegradedReport {
    /// `true` when the budget forced at least one corner to be cut.
    pub fn is_degraded(&self) -> bool {
        !self.degradations.is_empty()
    }
}

impl fmt::Display for DegradedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.lanes)?;
        if self.is_degraded() {
            write!(f, "; degraded:")?;
            for d in &self.degradations {
                write!(f, " [{d}]")?;
            }
        }
        Ok(())
    }
}

/// Per-lane skip lists accumulated while a budgeted solve runs.
#[derive(Default)]
struct DegradeLog {
    refine_skipped: Vec<usize>,
    ladder_capped: Vec<usize>,
    sampling_cut: Option<(usize, usize)>,
}

impl DegradeLog {
    fn into_degradations(self) -> Vec<Degradation> {
        let mut out = Vec::new();
        if !self.refine_skipped.is_empty() {
            out.push(Degradation::RefinementSkipped {
                lanes: self.refine_skipped,
            });
        }
        if !self.ladder_capped.is_empty() {
            out.push(Degradation::LadderCapped {
                lanes: self.ladder_capped,
            });
        }
        if let Some((from_lane, lanes_skipped)) = self.sampling_cut {
            out.push(Degradation::SamplingReduced {
                from_lane,
                lanes_skipped,
            });
        }
        out
    }
}

/// Per-lane verdicts for one verified batched solve.
#[derive(Debug, Clone, PartialEq)]
pub struct LaneReport {
    verdicts: Vec<LaneVerdict>,
}

impl LaneReport {
    /// Verdict for one lane.
    pub fn verdict(&self, lane: usize) -> &LaneVerdict {
        &self.verdicts[lane]
    }

    /// All verdicts, one per batch lane.
    pub fn verdicts(&self) -> &[LaneVerdict] {
        &self.verdicts
    }

    /// Number of lanes in the batch.
    pub fn len(&self) -> usize {
        self.verdicts.len()
    }

    /// `true` for an empty batch.
    pub fn is_empty(&self) -> bool {
        self.verdicts.is_empty()
    }

    /// Lanes that were quarantined (zeroed and flagged).
    pub fn quarantined_lanes(&self) -> Vec<usize> {
        self.lanes_where(|v| matches!(v, LaneVerdict::Quarantined { .. }))
    }

    /// Lanes rescued by a ladder rung.
    pub fn recovered_lanes(&self) -> Vec<usize> {
        self.lanes_where(|v| matches!(v, LaneVerdict::Recovered { .. }))
    }

    /// Lanes fixed by iterative refinement alone.
    pub fn refined_lanes(&self) -> Vec<usize> {
        self.lanes_where(|v| matches!(v, LaneVerdict::Refined { .. }))
    }

    /// Lanes where the ABFT screen caught corruption and the retry healed
    /// it.
    pub fn sdc_corrected_lanes(&self) -> Vec<usize> {
        self.lanes_where(|v| matches!(v, LaneVerdict::SdcCorrected { .. }))
    }

    /// `true` when every sampled lane passed on the first try.
    pub fn all_verified(&self) -> bool {
        self.verdicts
            .iter()
            .all(|v| matches!(v, LaneVerdict::Verified { .. } | LaneVerdict::Unsampled))
    }

    /// Worst relative residual over all non-quarantined, sampled lanes.
    pub fn worst_residual(&self) -> f64 {
        self.verdicts
            .iter()
            .filter_map(|v| match v {
                LaneVerdict::Verified { residual }
                | LaneVerdict::Refined { residual, .. }
                | LaneVerdict::Recovered { residual, .. }
                | LaneVerdict::SdcCorrected { residual, .. } => Some(*residual),
                _ => None,
            })
            .fold(0.0, f64::max)
    }

    /// Total refinement steps spent across the batch.
    pub fn total_refine_steps(&self) -> usize {
        self.verdicts
            .iter()
            .map(|v| match v {
                LaneVerdict::Refined { steps, .. } => *steps,
                _ => 0,
            })
            .sum()
    }

    fn lanes_where(&self, pred: impl Fn(&LaneVerdict) -> bool) -> Vec<usize> {
        self.verdicts
            .iter()
            .enumerate()
            .filter(|(_, v)| pred(v))
            .map(|(i, _)| i)
            .collect()
    }
}

impl fmt::Display for LaneReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} lane(s): {} refined, {} recovered, {} quarantined, worst residual {:.3e}",
            self.len(),
            self.refined_lanes().len(),
            self.recovered_lanes().len(),
            self.quarantined_lanes().len(),
            self.worst_residual()
        )
    }
}

/// A [`SplineBuilder`] wrapped with residual verification, refinement,
/// quarantine, and the factorization fallback ladder.
///
/// Built with [`SplineBuilder::verified`]. Fallback factorizations are
/// constructed lazily, the first time a lane actually needs that rung, and
/// cached for the lifetime of the builder.
pub struct VerifiedBuilder {
    builder: SplineBuilder,
    /// Dense copy of the assembled interpolation matrix (reference for
    /// residuals and the `getrs` rung).
    dense: Matrix,
    /// Sparse copy for fast per-lane residual evaluation.
    matrix: Csr,
    /// `‖A‖∞`, needed by the backward-error formula in refinement.
    anorm_inf: f64,
    /// ABFT checksum vector `Aᵀ𝟙` (column sums), pinned at build time so
    /// later factor corruption cannot retroactively blind the screen. The
    /// identity `colsum·x = 𝟙ᵀAx = Σb` holds for every correct lane.
    colsum: Vec<f64>,
    /// `‖colsum‖₂`, for the relative trip threshold.
    colsum_norm: f64,
    config: VerifyConfig,
    pb_rung: OnceLock<Option<SchurBlocks>>,
    gb_rung: OnceLock<Option<SchurBlocks>>,
    dense_rung: OnceLock<Option<LuFactors>>,
    iter_rung: OnceLock<Option<IterativeSplineSolver>>,
}

impl SplineBuilder {
    /// Wrap this builder in per-lane verification (residual sampling,
    /// refinement, quarantine, fallback ladder). See [`VerifiedBuilder`].
    pub fn verified(self, config: VerifyConfig) -> VerifiedBuilder {
        let dense = assemble_interpolation_matrix(self.space());
        let matrix = Csr::from_dense(&dense, 0.0);
        let mut anorm_inf = 0.0_f64;
        for i in 0..dense.nrows() {
            let mut s = 0.0;
            for j in 0..dense.ncols() {
                s += dense.get(i, j).abs();
            }
            anorm_inf = anorm_inf.max(s);
        }
        let colsum: Vec<f64> = (0..dense.ncols())
            .map(|j| (0..dense.nrows()).map(|i| dense.get(i, j)).sum())
            .collect();
        let colsum_norm = norm2(&colsum);
        VerifiedBuilder {
            builder: self,
            dense,
            matrix,
            anorm_inf,
            colsum,
            colsum_norm,
            config,
            pb_rung: OnceLock::new(),
            gb_rung: OnceLock::new(),
            dense_rung: OnceLock::new(),
            iter_rung: OnceLock::new(),
        }
    }
}

impl VerifiedBuilder {
    /// The wrapped builder.
    pub fn builder(&self) -> &SplineBuilder {
        &self.builder
    }

    /// The verification settings.
    pub fn config(&self) -> &VerifyConfig {
        &self.config
    }

    /// Health of the primary interior factorization.
    pub fn q_health(&self) -> &pp_linalg::FactorHealth {
        self.builder.blocks().q_health()
    }

    /// Solve `A X = B` in place like [`SplineBuilder::solve_in_place`],
    /// then verify, refine, recover, or quarantine each lane. Lanes that
    /// pass the residual check keep the batched kernel's bits untouched.
    ///
    /// Quarantined lanes are **zeroed** so NaN/Inf cannot propagate into
    /// downstream stages; consult the returned [`LaneReport`] to find and
    /// re-source them.
    pub fn solve_in_place<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) -> Result<LaneReport> {
        let (report, _) = self.solve_impl(exec, b, None)?;
        Ok(report)
    }

    /// Budgeted variant of [`VerifiedBuilder::solve_in_place`]: same
    /// pipeline, but `budget` is polled between stages and the solve
    /// degrades *gracefully* instead of overrunning the deadline:
    ///
    /// * once the budget is exhausted, iterative refinement is skipped for
    ///   lanes that fail the residual check;
    /// * the fallback ladder stops escalating (rungs not yet attempted are
    ///   abandoned);
    /// * residual verification of the remaining lanes is dropped — they
    ///   keep their primary (unverified) solutions and are reported
    ///   [`LaneVerdict::Unsampled`]. The non-finite *input* scan always
    ///   runs, so poisoned lanes are quarantined regardless of budget.
    ///
    /// Every corner cut is listed in [`DegradedReport::degradations`];
    /// with an ample budget the list is empty and the result (healthy
    /// lanes included) is bit-identical to the unbudgeted path. Any
    /// degradation also emits a [`InstantKind::DegradedVerify`] instant
    /// and a flight-recorder fault dump.
    pub fn solve_in_place_budgeted<E: ExecSpace>(
        &self,
        exec: &E,
        b: &mut Matrix,
        budget: &Budget,
    ) -> Result<DegradedReport> {
        let (lanes, degradations) = self.solve_impl(exec, b, Some(budget))?;
        Ok(DegradedReport {
            lanes,
            degradations,
        })
    }

    fn solve_impl<E: ExecSpace>(
        &self,
        exec: &E,
        b: &mut Matrix,
        budget: Option<&Budget>,
    ) -> Result<(LaneReport, Vec<Degradation>)> {
        let n = self.builder.space().num_basis();
        if b.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: b.nrows(),
            });
        }
        let rhs = b.clone();
        // The ordinary batched solve first: lanes that verify keep these
        // bits. Poisoned lanes produce garbage here and are repaired or
        // quarantined below.
        self.builder.solve_in_place(exec, b)?;

        let stride = self.config.sample_stride.max(1);
        let mut verdicts = Vec::with_capacity(b.ncols());
        let mut degrade = DegradeLog::default();
        let verify_span = Span::enter(PhaseId::Verify);
        // ABFT screen before per-lane verification: O(n) per lane over the
        // whole batch, so corruption is caught even in lanes the sampling
        // stride would skip.
        let sdc = if self.config.abft {
            self.abft_screen(b, &rhs)
        } else {
            Vec::new()
        };
        for lane in 0..b.ncols() {
            let sdc_state = sdc.get(lane).copied().unwrap_or(SdcState::Clean);
            let probed = self.config.probe_lanes.contains(&lane);
            // A lane the checksum flagged is always fully verified.
            let selected = probed || lane % stride == 0 || !matches!(sdc_state, SdcState::Clean);
            let out_of_time = budget.is_some_and(|bud| bud.exhausted());
            if selected && out_of_time && degrade.sampling_cut.is_none() {
                degrade.sampling_cut = Some((lane, 0));
            }
            if !selected || out_of_time {
                if selected {
                    if let Some((_, skipped)) = degrade.sampling_cut.as_mut() {
                        *skipped += 1;
                    }
                    // The input scan is O(n) and guards the no-NaN
                    // promise; it runs even when verification cannot.
                    let b_lane = rhs.col(lane).to_vec();
                    if let Some(index) = b_lane.iter().position(|v| !v.is_finite()) {
                        zero_lane(b, lane);
                        trace_instant_lane(InstantKind::NonFiniteInput, lane as u32);
                        trace_instant_lane(InstantKind::LaneQuarantined, lane as u32);
                        verdicts.push(LaneVerdict::Quarantined {
                            reason: QuarantineReason::NonFiniteInput { index },
                        });
                        continue;
                    }
                    match sdc_state {
                        SdcState::Tripped { discrepancy } => {
                            // Budget exhaustion must not let a lane with a
                            // tripped checksum through unverified.
                            zero_lane(b, lane);
                            sdc_metrics().uncorrected.inc();
                            trace_instant_lane(InstantKind::LaneQuarantined, lane as u32);
                            verdicts.push(LaneVerdict::Quarantined {
                                reason: QuarantineReason::SdcDetected { discrepancy },
                            });
                            continue;
                        }
                        SdcState::Corrected { discrepancy } => {
                            // The retry already happened in the screen; one
                            // residual evaluation seals the verdict.
                            sdc_metrics().corrected.inc();
                            let residual = self.relative_residual(&b.col(lane).to_vec(), &b_lane);
                            verdicts.push(LaneVerdict::SdcCorrected {
                                discrepancy,
                                residual,
                            });
                            continue;
                        }
                        SdcState::Clean => {}
                    }
                }
                verdicts.push(LaneVerdict::Unsampled);
                continue;
            }
            let b_lane = rhs.col(lane).to_vec();
            if let Some(index) = b_lane.iter().position(|v| !v.is_finite()) {
                zero_lane(b, lane);
                trace_instant_lane(InstantKind::NonFiniteInput, lane as u32);
                trace_instant_lane(InstantKind::LaneQuarantined, lane as u32);
                verdicts.push(LaneVerdict::Quarantined {
                    reason: QuarantineReason::NonFiniteInput { index },
                });
                continue;
            }
            let verdict = self.verify_lane(b, lane, &b_lane, probed, budget, &mut degrade);
            let verdict = fold_sdc_verdict(sdc_state, verdict);
            match &verdict {
                LaneVerdict::Refined { .. } => {
                    trace_instant_lane(InstantKind::LaneRefined, lane as u32);
                }
                LaneVerdict::Recovered { .. } | LaneVerdict::SdcCorrected { .. } => {
                    trace_instant_lane(InstantKind::LaneRecovered, lane as u32);
                }
                LaneVerdict::Quarantined { .. } => {
                    trace_instant_lane(InstantKind::LaneQuarantined, lane as u32);
                }
                LaneVerdict::Verified { .. } | LaneVerdict::Unsampled => {}
            }
            verdicts.push(verdict);
        }
        drop(verify_span);
        let report = LaneReport { verdicts };
        publish_verify_metrics(&report);
        emit_batch_faults(&sdc, &report);
        let degradations = degrade.into_degradations();
        if !degradations.is_empty() {
            counter("verify.degraded_batches").inc();
            trace_instant(InstantKind::DegradedVerify);
            fault_dump("degraded_verify", || {
                use std::fmt::Write as _;
                let mut d = format!("budgeted verify degraded ({} way(s))", degradations.len());
                for deg in &degradations {
                    let _ = write!(d, "; {deg}");
                }
                d
            });
        }
        Ok((report, degradations))
    }

    /// Resident variant of [`VerifiedBuilder::solve_in_place`]: the batch
    /// stays packed in its interleaved panels across the solve, the ABFT
    /// screen, and residual sampling — all three read the panels natively,
    /// with scalar lane extraction only for lanes that need repair
    /// (probed, tripped, or above tolerance) and for quarantine zeroing.
    /// Zero pack/unpack transposes on the healthy path.
    ///
    /// Every mutation (primary solve, ABFT retry write-back, refinement,
    /// quarantine zeroing) bumps the batch's generation tag, so a cached
    /// host mirror taken before the solve can never resurrect stale data.
    ///
    /// With the wrapped builder on [`BuilderVersion::Interleaved`],
    /// results — healthy lanes *and* verdict residuals — are
    /// bit-identical to [`VerifiedBuilder::solve_in_place`] on the
    /// equivalent host matrix: the per-lane arithmetic of the wide
    /// residual and checksum accumulators is the same expressions in the
    /// same order as the scalar ones.
    pub fn solve_resident<E: ExecSpace>(
        &self,
        exec: &E,
        b: &mut ResidentBatch,
    ) -> Result<LaneReport> {
        let n = self.builder.space().num_basis();
        if b.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: b.nrows(),
            });
        }
        // Pristine right-hand sides, kept in panel form: a straight copy
        // of the packed storage, not a transpose.
        let rhs = b.panels().clone();
        self.builder.solve_resident(exec, b)?;

        let stride = self.config.sample_stride.max(1);
        let mut verdicts = Vec::with_capacity(b.ncols());
        let mut degrade = DegradeLog::default();
        let verify_span = Span::enter(PhaseId::Verify);
        let sdc = if self.config.abft {
            self.abft_screen_resident(b, &rhs)
        } else {
            Vec::new()
        };
        // Residual sampling, panel-native: one pass per chunk evaluates
        // every live lane's relative residual (after the screen, so
        // corrected lanes are measured on their healed values).
        let residuals = self.panel_residuals(b.panels(), &rhs);
        for lane in 0..b.ncols() {
            let sdc_state = sdc.get(lane).copied().unwrap_or(SdcState::Clean);
            let probed = self.config.probe_lanes.contains(&lane);
            let selected = probed || lane % stride == 0 || !matches!(sdc_state, SdcState::Clean);
            if !selected {
                verdicts.push(LaneVerdict::Unsampled);
                continue;
            }
            if let Some(index) = (0..n).position(|i| !rhs.get(i, lane).is_finite()) {
                b.zero_lane(lane);
                trace_instant_lane(InstantKind::NonFiniteInput, lane as u32);
                trace_instant_lane(InstantKind::LaneQuarantined, lane as u32);
                verdicts.push(LaneVerdict::Quarantined {
                    reason: QuarantineReason::NonFiniteInput { index },
                });
                continue;
            }
            let rr = residuals[lane];
            let verdict = if !probed && rr.is_finite() && rr <= self.config.residual_tol {
                // Healthy fast path: the wide residual seals the verdict
                // without extracting the lane — its bits stay untouched.
                LaneVerdict::Verified { residual: rr }
            } else {
                // Repair path: scalar lane extraction, then the shared
                // refine/ladder/quarantine machinery on a one-lane view.
                let b_lane = lane_from_panels(&rhs, lane);
                let mut tmp = Matrix::from_vec(n, 1, Layout::Left, b.lane_to_vec(lane))
                    .expect("lane view shape");
                let verdict = self.verify_lane(&mut tmp, 0, &b_lane, probed, None, &mut degrade);
                if !matches!(
                    verdict,
                    LaneVerdict::Verified { .. } | LaneVerdict::Unsampled
                ) {
                    // The lane view was rewritten (refined, recovered, or
                    // zeroed): scatter it back, bumping the generation.
                    b.write_lane(lane, tmp.as_slice());
                }
                verdict
            };
            let verdict = fold_sdc_verdict(sdc_state, verdict);
            match &verdict {
                LaneVerdict::Refined { .. } => {
                    trace_instant_lane(InstantKind::LaneRefined, lane as u32);
                }
                LaneVerdict::Recovered { .. } | LaneVerdict::SdcCorrected { .. } => {
                    trace_instant_lane(InstantKind::LaneRecovered, lane as u32);
                }
                LaneVerdict::Quarantined { .. } => {
                    trace_instant_lane(InstantKind::LaneQuarantined, lane as u32);
                }
                LaneVerdict::Verified { .. } | LaneVerdict::Unsampled => {}
            }
            verdicts.push(verdict);
        }
        drop(verify_span);
        let report = LaneReport { verdicts };
        publish_verify_metrics(&report);
        emit_batch_faults(&sdc, &report);
        Ok(report)
    }

    /// Per-lane relative residuals `‖b − Ax‖₂/‖b‖₂` of the whole batch,
    /// read panel-natively: for each chunk, one pass over the CSR matrix
    /// accumulates all live lanes at once. Each lane's accumulation is
    /// the same expressions in the same order as
    /// [`VerifiedBuilder::relative_residual`], so the values are
    /// bit-identical to the scalar path.
    fn panel_residuals(&self, x: &InterleavedMatrix, rhs: &InterleavedMatrix) -> Vec<f64> {
        let n = x.nrows();
        let mut out = vec![0.0; x.ncols()];
        for c in 0..x.num_chunks() {
            let lanes = x.chunk_lanes(c);
            let xc = x.chunk(c);
            let bc = rhs.chunk(c);
            let mut acc_r = [0.0f64; LANE_WIDTH];
            let mut acc_b = [0.0f64; LANE_WIDTH];
            for i in 0..n {
                let mut s = [0.0f64; LANE_WIDTH];
                for (col, v) in self.matrix.row(i) {
                    let xr = &xc[col * LANE_WIDTH..col * LANE_WIDTH + LANE_WIDTH];
                    for l in 0..LANE_WIDTH {
                        s[l] += v * xr[l];
                    }
                }
                let br = &bc[i * LANE_WIDTH..i * LANE_WIDTH + LANE_WIDTH];
                for l in 0..LANE_WIDTH {
                    let r = br[l] - s[l];
                    acc_r[l] += r * r;
                    acc_b[l] += br[l] * br[l];
                }
            }
            for l in 0..lanes {
                let nr = acc_r[l].sqrt();
                let nb = acc_b[l].sqrt();
                out[c * LANE_WIDTH + l] = if nb > 0.0 { nr / nb } else { nr };
            }
        }
        out
    }

    /// Panel-native ABFT screen: evaluates the checksum identity for all
    /// live lanes of each chunk in one pass (per-lane arithmetic
    /// identical to [`VerifiedBuilder::abft_check`]), then handles probe
    /// strikes and tripped-lane retries through scalar lane extraction.
    fn abft_screen_resident(
        &self,
        b: &mut ResidentBatch,
        rhs: &InterleavedMatrix,
    ) -> Vec<SdcState> {
        let n = b.nrows();
        // Deterministic fault injection first, as the host screen does.
        for &lane in &self.config.sdc_probe_lanes {
            if lane < b.ncols() {
                let mut x = b.lane_to_vec(lane);
                strike(&mut x);
                b.write_lane(lane, &x);
            }
        }
        let panels = b.panels();
        let mut states = vec![SdcState::Clean; b.ncols()];
        let mut trips: Vec<(usize, f64)> = Vec::new();
        for c in 0..panels.num_chunks() {
            let lanes = panels.chunk_lanes(c);
            let xc = panels.chunk(c);
            let bc = rhs.chunk(c);
            let mut vx = [0.0f64; LANE_WIDTH];
            let mut sum_b = [0.0f64; LANE_WIDTH];
            let mut nx2 = [0.0f64; LANE_WIDTH];
            let mut finite = [true; LANE_WIDTH];
            for i in 0..n {
                let ci = self.colsum[i];
                let xr = &xc[i * LANE_WIDTH..i * LANE_WIDTH + LANE_WIDTH];
                let br = &bc[i * LANE_WIDTH..i * LANE_WIDTH + LANE_WIDTH];
                for l in 0..LANE_WIDTH {
                    vx[l] += ci * xr[l];
                    sum_b[l] += br[l];
                    nx2[l] += xr[l] * xr[l];
                    finite[l] &= br[l].is_finite();
                }
            }
            for l in 0..lanes {
                if !finite[l] {
                    // Poisoned input belongs to the quarantine scan.
                    continue;
                }
                let disc = (vx[l] - sum_b[l]).abs();
                let scale = self.colsum_norm * nx2[l].sqrt() + sum_b[l].abs();
                let rel = if scale > 0.0 { disc / scale } else { disc };
                if !rel.is_finite() || rel > DEFAULT_ABFT_TOL {
                    trips.push((c * LANE_WIDTH + l, rel));
                }
            }
        }
        for (lane, disc) in trips {
            sdc_metrics().detected.inc();
            trace_instant_lane(InstantKind::SdcDetected, lane as u32);
            let b_lane = lane_from_panels(rhs, lane);
            let mut y = b_lane.clone();
            self.primary_solve(&mut y);
            if self.config.sdc_probe_persistent && self.config.sdc_probe_lanes.contains(&lane) {
                strike(&mut y);
            }
            let (retripped, retry_disc) = self.abft_check(&y, &b_lane);
            states[lane] = if retripped {
                SdcState::Tripped {
                    discrepancy: retry_disc,
                }
            } else {
                b.write_lane(lane, &y);
                SdcState::Corrected { discrepancy: disc }
            };
        }
        states
    }

    /// Evaluate the ABFT identity `colsum·x = Σb` for one lane. Returns
    /// `(tripped, relative discrepancy)`; a non-finite discrepancy always
    /// trips (`NaN > tol` is false — the comparison must not be inverted).
    fn abft_check(&self, x: &[f64], b_lane: &[f64]) -> (bool, f64) {
        let vx: f64 = self.colsum.iter().zip(x).map(|(c, xi)| c * xi).sum();
        let sum_b: f64 = b_lane.iter().sum();
        let disc = (vx - sum_b).abs();
        let scale = self.colsum_norm * norm2(x) + sum_b.abs();
        let rel = if scale > 0.0 { disc / scale } else { disc };
        (!rel.is_finite() || rel > DEFAULT_ABFT_TOL, rel)
    }

    /// Screen every lane of the just-solved batch against the build-time
    /// checksum vector. A tripped lane is re-solved once from its pristine
    /// right-hand side: a transient upset does not recur, so a clean retry
    /// replaces the lane ([`SdcState::Corrected`]); a retry that trips
    /// again is persistent corruption ([`SdcState::Tripped`]) and is left
    /// for the verifier to heal or quarantine.
    fn abft_screen(&self, b: &mut Matrix, rhs: &Matrix) -> Vec<SdcState> {
        (0..b.ncols())
            .map(|lane| {
                let mut x = b.col(lane).to_vec();
                if self.config.sdc_probe_lanes.contains(&lane) {
                    strike(&mut x);
                    b.col_mut(lane).copy_from_slice(&x);
                }
                let b_lane = rhs.col(lane).to_vec();
                if b_lane.iter().any(|v| !v.is_finite()) {
                    // Poisoned input is the quarantine scan's concern,
                    // not a checksum trip.
                    return SdcState::Clean;
                }
                let (tripped, disc) = self.abft_check(&x, &b_lane);
                if !tripped {
                    return SdcState::Clean;
                }
                sdc_metrics().detected.inc();
                trace_instant_lane(InstantKind::SdcDetected, lane as u32);
                let mut y = b_lane.clone();
                self.primary_solve(&mut y);
                if self.config.sdc_probe_persistent && self.config.sdc_probe_lanes.contains(&lane) {
                    strike(&mut y);
                }
                let (retripped, retry_disc) = self.abft_check(&y, &b_lane);
                if retripped {
                    SdcState::Tripped {
                        discrepancy: retry_disc,
                    }
                } else {
                    b.col_mut(lane).copy_from_slice(&y);
                    SdcState::Corrected { discrepancy: disc }
                }
            })
            .collect()
    }

    /// Verify one lane whose input is already known finite.
    fn verify_lane(
        &self,
        b: &mut Matrix,
        lane: usize,
        b_lane: &[f64],
        probed: bool,
        budget: Option<&Budget>,
        degrade: &mut DegradeLog,
    ) -> LaneVerdict {
        let mut x = b.col(lane).to_vec();
        let rr = self.relative_residual(&x, b_lane);
        if !probed && rr.is_finite() && rr <= self.config.residual_tol {
            return LaneVerdict::Verified { residual: rr };
        }

        let out_of_time = || budget.is_some_and(|bud| bud.exhausted());

        // Stage 2: iterative refinement with the primary factors. Under
        // an exhausted budget the stage is skipped (and recorded): the
        // lane goes straight to the ladder / quarantine decision.
        let refine_allowed = if !probed && out_of_time() {
            degrade.refine_skipped.push(lane);
            false
        } else {
            true
        };
        if !probed && refine_allowed {
            let outcome = refine_lane(
                |x, y| self.matrix.spmv_into(x, y),
                |r| self.primary_solve(r),
                self.anorm_inf,
                b_lane,
                &mut x,
                &self.config.refine,
            );
            let rr = self.relative_residual(&x, b_lane);
            if rr.is_finite() && rr <= self.config.residual_tol {
                b.col_mut(lane).copy_from_slice(&x);
                return LaneVerdict::Refined {
                    steps: outcome.steps,
                    residual: rr,
                };
            }
        }

        // Stage 3: the factorization ladder. Attributed to the
        // quarantine phase: only lanes headed for quarantine reach it.
        let _span = Span::enter(PhaseId::Quarantine);
        let mut best = if rr.is_finite() { rr } else { f64::INFINITY };
        let mut saw_finite = rr.is_finite();
        if self.config.use_ladder {
            for rung in self.ladder() {
                // Each rung is strictly more expensive than the last;
                // once the budget is gone, stop escalating and record
                // the cap instead of overrunning the deadline.
                if out_of_time() {
                    if degrade.ladder_capped.last() != Some(&lane) {
                        degrade.ladder_capped.push(lane);
                    }
                    break;
                }
                match self.solve_on_rung(rung, b_lane) {
                    Some(mut y) => {
                        let rr = self.relative_residual(&y, b_lane);
                        if !rr.is_finite() {
                            continue;
                        }
                        saw_finite = true;
                        if rr <= self.config.residual_tol {
                            b.col_mut(lane).copy_from_slice(&y);
                            return LaneVerdict::Recovered { rung, residual: rr };
                        }
                        // Above tolerance: refine on this rung's factors
                        // before giving up on it.
                        refine_lane(
                            |x, z| self.matrix.spmv_into(x, z),
                            |r| {
                                self.rung_solve(rung, r);
                            },
                            self.anorm_inf,
                            b_lane,
                            &mut y,
                            &self.config.refine,
                        );
                        let rr = self.relative_residual(&y, b_lane);
                        if rr.is_finite() && rr <= self.config.residual_tol {
                            b.col_mut(lane).copy_from_slice(&y);
                            return LaneVerdict::Recovered { rung, residual: rr };
                        }
                        if rr.is_finite() {
                            best = best.min(rr);
                        }
                    }
                    None => continue,
                }
            }
        }

        zero_lane(b, lane);
        let reason = if saw_finite {
            QuarantineReason::ResidualAboveTol { residual: best }
        } else {
            QuarantineReason::NonFiniteSolution
        };
        LaneVerdict::Quarantined { reason }
    }

    fn relative_residual(&self, x: &[f64], b: &[f64]) -> f64 {
        let mut r = vec![0.0; b.len()];
        residual_into(&self.matrix, x, b, &mut r);
        let nb = norm2(b);
        if nb > 0.0 {
            norm2(&r) / nb
        } else {
            norm2(&r)
        }
    }

    /// Solve one contiguous lane with the primary Schur factors (the same
    /// arithmetic as the fused kernel). The tiled and interleaved
    /// versions both run the sparse-corner (spmv) arithmetic per lane, so
    /// their re-solves use the sparse path too.
    fn primary_solve(&self, lane: &mut [f64]) {
        schur_solve_slice(
            self.builder.blocks(),
            matches!(
                self.builder.version(),
                BuilderVersion::FusedSpmv | BuilderVersion::Tiled | BuilderVersion::Interleaved
            ),
            lane,
        );
    }

    /// The rungs above the primary factorization's class, in order.
    fn ladder(&self) -> Vec<FallbackRung> {
        let mut rungs = Vec::new();
        match self.builder.blocks().q_class() {
            QClass::PdsTridiagonal => {
                rungs.push(FallbackRung::Pbtrs);
                rungs.push(FallbackRung::Gbtrs);
            }
            QClass::PdsBanded => rungs.push(FallbackRung::Gbtrs),
            QClass::GeneralBanded => {}
        }
        rungs.push(FallbackRung::Getrs);
        if self.config.use_iterative_rung {
            rungs.push(FallbackRung::Iterative);
        }
        rungs
    }

    /// Solve `A y = b_lane` from scratch on one rung. `None` when the rung
    /// cannot be built (e.g. forcing `pbtrs` on a non-symmetric interior)
    /// or its solver does not converge.
    fn solve_on_rung(&self, rung: FallbackRung, b_lane: &[f64]) -> Option<Vec<f64>> {
        let mut y = b_lane.to_vec();
        match rung {
            FallbackRung::Pbtrs | FallbackRung::Gbtrs => {
                let blocks = self.schur_rung(rung)?;
                schur_solve_slice(blocks, false, &mut y);
                Some(y)
            }
            FallbackRung::Getrs => {
                let f = self
                    .dense_rung
                    .get_or_init(|| getrf(&self.dense).ok())
                    .as_ref()?;
                f.solve_slice(&mut y);
                Some(y)
            }
            FallbackRung::Iterative => {
                let solver = self
                    .iter_rung
                    .get_or_init(|| {
                        IterativeSplineSolver::new(
                            self.builder.space().clone(),
                            IterativeConfig::cpu(),
                        )
                        .ok()
                    })
                    .as_ref()?;
                solver.solve_single(b_lane).ok().flatten()
            }
        }
    }

    /// Re-solve in place with an already-built rung (refinement callback).
    fn rung_solve(&self, rung: FallbackRung, r: &mut [f64]) {
        match rung {
            FallbackRung::Pbtrs | FallbackRung::Gbtrs => {
                if let Some(blocks) = self.schur_rung(rung) {
                    schur_solve_slice(blocks, false, r);
                }
            }
            FallbackRung::Getrs => {
                if let Some(f) = self.dense_rung.get().and_then(Option::as_ref) {
                    f.solve_slice(r);
                }
            }
            FallbackRung::Iterative => {
                if let Some(solver) = self.iter_rung.get().and_then(Option::as_ref) {
                    if let Ok(Some(y)) = solver.solve_single(r) {
                        r.copy_from_slice(&y);
                    }
                }
            }
        }
    }

    fn schur_rung(&self, rung: FallbackRung) -> Option<&SchurBlocks> {
        let (cell, class) = match rung {
            FallbackRung::Pbtrs => (&self.pb_rung, QClass::PdsBanded),
            FallbackRung::Gbtrs => (&self.gb_rung, QClass::GeneralBanded),
            _ => return None,
        };
        cell.get_or_init(|| SchurBlocks::with_class(self.builder.space(), class).ok())
            .as_ref()
    }
}

/// Run the fused per-lane Schur solve on one contiguous slice.
fn schur_solve_slice(blocks: &SchurBlocks, sparse: bool, lane: &mut [f64]) {
    let q = blocks.q_size();
    let (s0, s1) = lane.split_at_mut(q);
    let mut b0 = StridedMut::from_slice(s0);
    let mut b1 = StridedMut::from_slice(s1);
    solve_one_lane(blocks, sparse, &mut b0, &mut b1);
}

fn zero_lane(b: &mut Matrix, lane: usize) {
    let n = b.nrows();
    b.col_mut(lane).copy_from_slice(&vec![0.0; n]);
}

/// Extract one lane of a packed panel set into a contiguous vector.
fn lane_from_panels(panels: &InterleavedMatrix, lane: usize) -> Vec<f64> {
    (0..panels.nrows()).map(|i| panels.get(i, lane)).collect()
}

/// Fold the ABFT screen outcome into a lane's verification verdict: a
/// tripped lane the verifier could not heal is silent data corruption
/// escaping containment — quarantine, never trust it.
fn fold_sdc_verdict(sdc_state: SdcState, verdict: LaneVerdict) -> LaneVerdict {
    match (sdc_state, verdict) {
        (SdcState::Clean, v) => v,
        (SdcState::Corrected { discrepancy }, LaneVerdict::Verified { residual }) => {
            sdc_metrics().corrected.inc();
            LaneVerdict::SdcCorrected {
                discrepancy,
                residual,
            }
        }
        (SdcState::Corrected { .. }, v) | (SdcState::Tripped { .. }, v) if v.is_healthy() => {
            sdc_metrics().corrected.inc();
            v
        }
        (SdcState::Tripped { discrepancy }, _) => {
            sdc_metrics().uncorrected.inc();
            LaneVerdict::Quarantined {
                reason: QuarantineReason::SdcDetected { discrepancy },
            }
        }
        (SdcState::Corrected { .. }, v) => {
            sdc_metrics().uncorrected.inc();
            v
        }
    }
}

/// Emit the flight-recorder fault dumps for one batch's screen states and
/// lane report (shared by the host and resident solve paths).
fn emit_batch_faults(sdc: &[SdcState], report: &LaneReport) {
    if sdc.iter().any(|s| !matches!(s, SdcState::Clean)) {
        fault_dump("sdc_detected", || {
            use std::fmt::Write as _;
            let mut d = String::from("abft checksum trips:");
            for (lane, state) in sdc.iter().enumerate() {
                match state {
                    SdcState::Clean => {}
                    SdcState::Corrected { discrepancy } => {
                        let _ = write!(d, " lane {lane} corrected ({discrepancy:.3e});");
                    }
                    SdcState::Tripped { discrepancy } => {
                        let _ = write!(d, " lane {lane} uncorrected ({discrepancy:.3e});");
                    }
                }
            }
            d
        });
    }
    if !report.quarantined_lanes().is_empty() {
        fault_dump("verified_quarantine", || {
            let mut d = report.to_string();
            for lane in report.quarantined_lanes() {
                use std::fmt::Write as _;
                let _ = write!(d, "; lane {lane}: {}", report.verdict(lane));
            }
            d
        });
    }
}

/// Outcome of the ABFT checksum screen for one lane.
#[derive(Debug, Clone, Copy)]
enum SdcState {
    /// Checksum held (or the lane's input is non-finite and belongs to
    /// the quarantine scan).
    Clean,
    /// The checksum tripped and one retry from the pristine right-hand
    /// side came back clean: a transient upset, healed.
    Corrected { discrepancy: f64 },
    /// The checksum tripped on the retry too: persistent corruption.
    Tripped { discrepancy: f64 },
}

/// Deterministic SDC probe: flip the top mantissa bit of the lane's
/// largest-magnitude coefficient — a 25–50% relative perturbation, so the
/// injected corruption is always numerically live.
fn strike(x: &mut [f64]) {
    if let Some(i) = (0..x.len()).max_by(|&a, &b| x[a].abs().total_cmp(&x[b].abs())) {
        x[i] = flip_bit(x[i], 51);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_bsplines::{Breaks, PeriodicSplineSpace};
    use pp_portable::{Layout, Parallel, TestRng};

    fn space(n: usize, degree: usize, uniform: bool) -> PeriodicSplineSpace {
        let breaks = if uniform {
            Breaks::uniform(n, 0.0, 1.0).unwrap()
        } else {
            Breaks::graded(n, 0.0, 1.0, 0.6).unwrap()
        };
        PeriodicSplineSpace::new(breaks, degree).unwrap()
    }

    fn random_rhs(n: usize, batch: usize, seed: u64) -> Matrix {
        let mut rng = TestRng::seed_from_u64(seed);
        Matrix::from_fn(n, batch, Layout::Left, |_, _| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn healthy_lanes_bit_identical_and_nan_lanes_quarantined() {
        let sp = space(32, 3, true);
        let plain = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig::default());

        let mut rhs = random_rhs(32, 9, 42);
        rhs.set(5, 2, f64::NAN);
        rhs.set(0, 7, f64::INFINITY);

        let mut reference = rhs.clone();
        plain.solve_in_place(&Parallel, &mut reference).unwrap();

        let mut x = rhs.clone();
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();

        assert_eq!(report.quarantined_lanes(), vec![2, 7]);
        assert_eq!(
            *report.verdict(2),
            LaneVerdict::Quarantined {
                reason: QuarantineReason::NonFiniteInput { index: 5 }
            }
        );
        assert_eq!(
            *report.verdict(7),
            LaneVerdict::Quarantined {
                reason: QuarantineReason::NonFiniteInput { index: 0 }
            }
        );
        for lane in [0, 1, 3, 4, 5, 6, 8] {
            assert!(report.verdict(lane).is_healthy());
            for i in 0..32 {
                // Bit-identical to the unverified batched kernel.
                assert_eq!(
                    x.get(i, lane),
                    reference.get(i, lane),
                    "lane {lane} row {i}"
                );
            }
        }
        // Quarantined lanes are zeroed, not NaN.
        for i in 0..32 {
            assert_eq!(x.get(i, 2), 0.0);
            assert_eq!(x.get(i, 7), 0.0);
        }
    }

    #[test]
    fn interleaved_version_is_residual_verified() {
        // The lane-interleaved kernels must slot under the verification
        // screen like every other version: healthy lanes match the plain
        // interleaved solve bitwise, and non-finite lanes are quarantined
        // before they can poison a packed chunk.
        for &batch in &[5, 8, 13] {
            let sp = space(32, 3, true);
            let plain = SplineBuilder::new(sp.clone(), BuilderVersion::Interleaved).unwrap();
            let verified = SplineBuilder::new(sp, BuilderVersion::Interleaved)
                .unwrap()
                .verified(VerifyConfig::default());

            let mut rhs = random_rhs(32, batch, 11);
            rhs.set(3, 1, f64::NAN);

            let mut reference = rhs.clone();
            plain.solve_in_place(&Parallel, &mut reference).unwrap();

            let mut x = rhs.clone();
            let report = verified.solve_in_place(&Parallel, &mut x).unwrap();

            assert_eq!(report.quarantined_lanes(), vec![1]);
            for lane in (0..batch).filter(|&l| l != 1) {
                assert!(report.verdict(lane).is_healthy(), "lane {lane}");
                for i in 0..32 {
                    // No cross-lane arithmetic in a packed chunk, so the
                    // screen must not perturb healthy lanes at all.
                    assert_eq!(
                        x.get(i, lane),
                        reference.get(i, lane),
                        "batch {batch} lane {lane} row {i}"
                    );
                }
            }
        }
    }

    #[test]
    fn probe_lanes_recover_via_first_rung_above_primary() {
        // Uniform cubic => primary pttrs; first ladder rung is pbtrs.
        let sp = space(32, 3, true);
        let config = VerifyConfig {
            probe_lanes: vec![3],
            ..VerifyConfig::default()
        };
        let verified = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(config);
        let plain = SplineBuilder::new(sp, BuilderVersion::FusedSpmv).unwrap();

        let rhs = random_rhs(32, 5, 7);
        let mut x = rhs.clone();
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();

        match report.verdict(3) {
            LaneVerdict::Recovered { rung, residual } => {
                assert_eq!(*rung, FallbackRung::Pbtrs);
                assert!(*residual <= 1e-10);
            }
            other => panic!("expected recovery via pbtrs, got {other}"),
        }
        // The recovered solution still matches the ordinary one closely.
        let mut reference = rhs.clone();
        plain.solve_in_place(&Parallel, &mut reference).unwrap();
        for i in 0..32 {
            assert!((x.get(i, 3) - reference.get(i, 3)).abs() < 1e-10);
        }
    }

    #[test]
    fn non_uniform_probe_escalates_to_dense_getrs() {
        // Graded mesh => primary gbtrs; only getrs and iterative remain.
        let sp = space(24, 4, false);
        let config = VerifyConfig {
            probe_lanes: vec![0],
            ..VerifyConfig::default()
        };
        let verified = SplineBuilder::new(sp, BuilderVersion::Fused)
            .unwrap()
            .verified(config);
        let rhs = random_rhs(24, 2, 11);
        let mut x = rhs.clone();
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        match report.verdict(0) {
            LaneVerdict::Recovered { rung, .. } => assert_eq!(*rung, FallbackRung::Getrs),
            other => panic!("expected recovery via getrs, got {other}"),
        }
        assert!(report.verdict(1).is_healthy());
    }

    #[test]
    fn ladder_disabled_quarantines_probed_lane() {
        let sp = space(24, 3, true);
        let config = VerifyConfig {
            probe_lanes: vec![1],
            use_ladder: false,
            ..VerifyConfig::default()
        };
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(config);
        let mut x = random_rhs(24, 3, 5);
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        assert_eq!(report.quarantined_lanes(), vec![1]);
        assert!(matches!(
            report.verdict(1),
            LaneVerdict::Quarantined {
                reason: QuarantineReason::ResidualAboveTol { .. }
            }
        ));
    }

    #[test]
    fn sample_stride_skips_lanes() {
        let sp = space(24, 3, true);
        let config = VerifyConfig {
            sample_stride: 3,
            ..VerifyConfig::default()
        };
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(config);
        let mut x = random_rhs(24, 7, 9);
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        for lane in 0..7 {
            if lane % 3 == 0 {
                assert!(matches!(report.verdict(lane), LaneVerdict::Verified { .. }));
            } else {
                assert_eq!(*report.verdict(lane), LaneVerdict::Unsampled);
            }
        }
        assert!(report.all_verified());
    }

    #[test]
    fn clean_batch_all_verified_with_tiny_residuals() {
        for degree in [3usize, 4, 5] {
            for uniform in [true, false] {
                let sp = space(28, degree, uniform);
                let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
                    .unwrap()
                    .verified(VerifyConfig::default());
                let mut x = random_rhs(28, 6, degree as u64);
                let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
                assert!(
                    report.all_verified(),
                    "deg {degree} uniform {uniform}: {report}"
                );
                assert!(report.worst_residual() < 1e-12);
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let sp = space(16, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig::default());
        let mut bad = Matrix::zeros(17, 2, Layout::Left);
        assert!(verified.solve_in_place(&Parallel, &mut bad).is_err());
    }

    #[test]
    fn ample_budget_is_bit_identical_and_undegraded() {
        use std::time::Duration;
        let sp = space(28, 3, true);
        let verified = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig::default());
        let rhs = random_rhs(28, 6, 13);

        let mut plain = rhs.clone();
        let plain_report = verified.solve_in_place(&Parallel, &mut plain).unwrap();

        let mut budgeted = rhs.clone();
        let report = verified
            .solve_in_place_budgeted(
                &Parallel,
                &mut budgeted,
                &Budget::with_deadline(Duration::from_secs(600)),
            )
            .unwrap();

        assert!(!report.is_degraded(), "{report}");
        assert_eq!(report.lanes, plain_report);
        for lane in 0..6 {
            for i in 0..28 {
                assert_eq!(budgeted.get(i, lane), plain.get(i, lane));
            }
        }
    }

    #[test]
    fn exhausted_budget_degrades_sampling_but_still_quarantines_nan() {
        let sp = space(24, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig::default());
        let mut rhs = random_rhs(24, 5, 17);
        rhs.set(3, 2, f64::NAN);

        let budget = Budget::unlimited();
        budget.cancel();
        let report = verified
            .solve_in_place_budgeted(&Parallel, &mut rhs, &budget)
            .unwrap();

        assert!(report.is_degraded());
        // Verification was dropped entirely...
        assert!(report.degradations.iter().any(|d| matches!(
            d,
            Degradation::SamplingReduced {
                from_lane: 0,
                lanes_skipped: 5
            }
        )));
        // ...but the poisoned lane is still quarantined, not propagated.
        assert_eq!(report.lanes.quarantined_lanes(), vec![2]);
        for i in 0..24 {
            assert_eq!(rhs.get(i, 2), 0.0);
        }
        for lane in [0usize, 1, 3, 4] {
            assert_eq!(*report.lanes.verdict(lane), LaneVerdict::Unsampled);
        }
    }

    #[test]
    fn probe_lane_under_exhausted_budget_caps_the_ladder() {
        // A probed lane normally escalates down the ladder; with the
        // budget gone before verification starts, every stage is cut and
        // the lane lands in quarantine with the cuts on record.
        let sp = space(24, 3, true);
        let config = VerifyConfig {
            probe_lanes: vec![1],
            ..VerifyConfig::default()
        };
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(config);
        let mut rhs = random_rhs(24, 3, 23);
        let budget = Budget::unlimited();
        budget.cancel();
        let report = verified
            .solve_in_place_budgeted(&Parallel, &mut rhs, &budget)
            .unwrap();
        assert!(report.is_degraded(), "{report}");
        // Probed lane 1 was selected but never verified; it stays
        // Unsampled with the sampling cut on record (the ladder never
        // even started, so no per-lane cap entry is required).
        assert!(report
            .degradations
            .iter()
            .any(|d| matches!(d, Degradation::SamplingReduced { .. })));
    }

    #[test]
    fn report_display_and_accessors() {
        let report = LaneReport {
            verdicts: vec![
                LaneVerdict::Verified { residual: 1e-14 },
                LaneVerdict::Refined {
                    steps: 2,
                    residual: 1e-13,
                },
                LaneVerdict::Recovered {
                    rung: FallbackRung::Gbtrs,
                    residual: 1e-12,
                },
                LaneVerdict::Quarantined {
                    reason: QuarantineReason::NonFiniteSolution,
                },
            ],
        };
        assert_eq!(report.len(), 4);
        assert_eq!(report.refined_lanes(), vec![1]);
        assert_eq!(report.recovered_lanes(), vec![2]);
        assert_eq!(report.quarantined_lanes(), vec![3]);
        assert_eq!(report.total_refine_steps(), 2);
        assert!(!report.all_verified());
        assert!((report.worst_residual() - 1e-12).abs() < 1e-25);
        let s = report.to_string();
        assert!(s.contains("1 quarantined"), "{s}");
        let v = report.verdict(3).to_string();
        assert!(v.contains("non-finite solution"), "{v}");
    }

    #[test]
    fn abft_clean_batch_stays_bit_identical_and_never_trips() {
        let sp = space(32, 3, true);
        let plain = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig {
                abft: true,
                ..VerifyConfig::default()
            });
        let rhs = random_rhs(32, 8, 31);
        let mut reference = rhs.clone();
        plain.solve_in_place(&Parallel, &mut reference).unwrap();
        let mut x = rhs.clone();
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        assert!(report.all_verified(), "{report}");
        assert!(report.sdc_corrected_lanes().is_empty());
        assert_eq!(x.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn abft_transient_corruption_is_corrected_back_to_reference_bits() {
        let sp = space(32, 3, true);
        let plain = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig {
                abft: true,
                sdc_probe_lanes: vec![2],
                ..VerifyConfig::default()
            });
        let rhs = random_rhs(32, 5, 37);
        let mut reference = rhs.clone();
        plain.solve_in_place(&Parallel, &mut reference).unwrap();
        let mut x = rhs.clone();
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        assert_eq!(report.sdc_corrected_lanes(), vec![2]);
        match report.verdict(2) {
            LaneVerdict::SdcCorrected {
                discrepancy,
                residual,
            } => {
                assert!(*discrepancy > DEFAULT_ABFT_TOL, "{discrepancy:.3e}");
                assert!(*residual <= 1e-10, "{residual:.3e}");
            }
            other => panic!("expected SdcCorrected, got {other}"),
        }
        // The retry re-runs the primary factors on the pristine RHS, so
        // the healed lane (and every clean lane) is bit-identical to the
        // ordinary solve.
        assert_eq!(x.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn abft_screens_lanes_the_sampling_stride_skips() {
        let sp = space(24, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig {
                abft: true,
                sample_stride: 1000,
                sdc_probe_lanes: vec![3],
                ..VerifyConfig::default()
            });
        let mut x = random_rhs(24, 6, 41);
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        // Lane 3 would be Unsampled under the stride alone; the checksum
        // screen still caught and healed the corruption.
        assert_eq!(report.sdc_corrected_lanes(), vec![3]);
        for lane in [1usize, 2, 4, 5] {
            assert_eq!(*report.verdict(lane), LaneVerdict::Unsampled);
        }
    }

    #[test]
    fn abft_persistent_corruption_is_healed_by_the_verifier() {
        let sp = space(28, 3, true);
        let plain = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig {
                abft: true,
                sdc_probe_lanes: vec![1],
                sdc_probe_persistent: true,
                ..VerifyConfig::default()
            });
        let rhs = random_rhs(28, 4, 43);
        let mut reference = rhs.clone();
        plain.solve_in_place(&Parallel, &mut reference).unwrap();
        let mut x = rhs.clone();
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        // The retry is struck too, so the screen alone cannot heal the
        // lane — refinement (pristine factors) must.
        assert!(
            matches!(
                report.verdict(1),
                LaneVerdict::Refined { .. } | LaneVerdict::Recovered { .. }
            ),
            "{}",
            report.verdict(1)
        );
        for i in 0..28 {
            assert!((x.get(i, 1) - reference.get(i, 1)).abs() < 1e-8);
        }
    }

    #[test]
    fn abft_unrecoverable_corruption_is_quarantined_never_trusted() {
        let sp = space(24, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig {
                abft: true,
                sdc_probe_lanes: vec![2],
                sdc_probe_persistent: true,
                use_ladder: false,
                refine: RefineConfig {
                    max_steps: 0,
                    ..RefineConfig::default()
                },
                ..VerifyConfig::default()
            });
        let mut x = random_rhs(24, 4, 47);
        let report = verified.solve_in_place(&Parallel, &mut x).unwrap();
        assert!(matches!(
            report.verdict(2),
            LaneVerdict::Quarantined {
                reason: QuarantineReason::SdcDetected { .. }
            }
        ));
        // Zeroed, not left holding the corrupted coefficients.
        for i in 0..24 {
            assert_eq!(x.get(i, 2), 0.0);
        }
    }

    #[test]
    fn resident_verified_matches_host_path_bitwise() {
        // Chained resident solves (pack once, N solves, unpack once) must
        // reproduce the host path (solve per call) bit-for-bit: verdicts,
        // residuals, quarantine zeroing, and ABFT probe healing included.
        let config = || VerifyConfig {
            abft: true,
            sdc_probe_lanes: vec![2],
            ..VerifyConfig::default()
        };
        for &batch in &[5usize, 8, 13] {
            let sp = space(32, 3, true);
            let host = SplineBuilder::new(sp.clone(), BuilderVersion::Interleaved)
                .unwrap()
                .verified(config());
            let resident = SplineBuilder::new(sp, BuilderVersion::Interleaved)
                .unwrap()
                .verified(config());

            let mut rhs = random_rhs(32, batch, 61);
            rhs.set(4, 1, f64::NAN);

            let mut x = rhs.clone();
            let mut rb = ResidentBatch::pack(&rhs);
            for iter in 0..3 {
                let host_report = host.solve_in_place(&Parallel, &mut x).unwrap();
                let res_report = resident.solve_resident(&Parallel, &mut rb).unwrap();
                assert_eq!(res_report, host_report, "batch {batch} iter {iter}");
            }
            let unpacked = rb.host();
            for i in 0..32 {
                for j in 0..batch {
                    assert_eq!(
                        x.get(i, j).to_bits(),
                        unpacked.get(i, j).to_bits(),
                        "batch {batch} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn resident_quarantine_invalidates_host_mirror() {
        // A host mirror cached before the solve must not resurrect stale
        // packed data after verification zeroes a quarantined lane.
        let sp = space(24, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::Interleaved)
            .unwrap()
            .verified(VerifyConfig::default());
        let mut rhs = random_rhs(24, 5, 67);
        rhs.set(2, 3, f64::NAN);
        let mut rb = ResidentBatch::pack(&rhs);
        // Populate the mirror cache before the solve runs.
        assert!(rb.host().get(2, 3).is_nan());
        let g0 = rb.generation();
        let report = verified.solve_resident(&Parallel, &mut rb).unwrap();
        assert_eq!(report.quarantined_lanes(), vec![3]);
        assert!(rb.generation() > g0, "mutating solve must bump generation");
        let after = rb.host();
        for i in 0..24 {
            assert_eq!(after.get(i, 3), 0.0, "row {i} must read the zeroed lane");
        }
    }

    #[test]
    fn resident_shape_mismatch_rejected() {
        let sp = space(16, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::Interleaved)
            .unwrap()
            .verified(VerifyConfig::default());
        let mut bad = ResidentBatch::zeros(17, 2);
        assert!(verified.solve_resident(&Parallel, &mut bad).is_err());
    }

    #[test]
    fn abft_tripped_lane_under_exhausted_budget_is_quarantined() {
        let sp = space(24, 3, true);
        let verified = SplineBuilder::new(sp, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig {
                abft: true,
                sdc_probe_lanes: vec![1],
                sdc_probe_persistent: true,
                ..VerifyConfig::default()
            });
        let mut x = random_rhs(24, 4, 53);
        let budget = Budget::unlimited();
        budget.cancel();
        let report = verified
            .solve_in_place_budgeted(&Parallel, &mut x, &budget)
            .unwrap();
        // No time to verify, but a tripped checksum still must not pass.
        assert!(matches!(
            report.lanes.verdict(1),
            LaneVerdict::Quarantined {
                reason: QuarantineReason::SdcDetected { .. }
            }
        ));
        for i in 0..24 {
            assert_eq!(x.get(i, 1), 0.0);
        }
    }
}
