//! `pttrf`: L·D·Lᵀ factorisation of a symmetric positive-definite
//! tridiagonal matrix.
//!
//! This is the `Q` solver for **uniform degree-3 splines** (Table I of the
//! paper) — the fastest row of every benchmark. The factorisation runs once
//! at setup; the per-lane solve ([`kernels::pttrs_lane`](crate::kernels::pttrs_lane))
//! is the paper's Listing 1.

use crate::error::{Error, Result};
use crate::kernels::pttrs_lane;
use pp_portable::StridedMut;

/// `L·D·Lᵀ` factors of an SPD tridiagonal matrix.
///
/// `d` holds the diagonal of `D`; `e` holds the sub-diagonal multipliers of
/// the unit bidiagonal `L` (LAPACK `dpttrf` packing).
#[derive(Debug, Clone)]
pub struct PtFactors {
    d: Vec<f64>,
    e: Vec<f64>,
}

impl PtFactors {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Diagonal of `D`.
    pub fn d(&self) -> &[f64] {
        &self.d
    }

    /// Sub-diagonal multipliers of `L`.
    pub fn e(&self) -> &[f64] {
        &self.e
    }

    /// Solve `A x = b` in place for one lane (`pttrs`).
    #[inline]
    pub fn solve_lane(&self, b: &mut StridedMut<'_>) {
        pttrs_lane(&self.d, &self.e, b);
    }

    /// Solve into a plain slice (setup-time convenience).
    pub fn solve_slice(&self, b: &mut [f64]) {
        self.solve_lane(&mut StridedMut::from_slice(b));
    }
}

/// Factor an SPD tridiagonal matrix given its diagonal `d` (length `n`) and
/// off-diagonal `e` (length `n-1`), following LAPACK `dpttrf`.
///
/// Returns [`Error::NotPositiveDefinite`] if a transformed diagonal entry
/// is not strictly positive.
pub fn pttrf(d: &[f64], e: &[f64]) -> Result<PtFactors> {
    let n = d.len();
    if n > 0 && e.len() != n - 1 {
        return Err(Error::ShapeMismatch {
            op: "pttrf",
            detail: format!("d has length {n}, e has length {} (need {})", e.len(), n - 1),
        });
    }
    let mut dd = d.to_vec();
    let mut ee = e.to_vec();
    for i in 0..n.saturating_sub(1) {
        if dd[i] <= 0.0 {
            return Err(Error::NotPositiveDefinite {
                routine: "pttrf",
                index: i,
                value: dd[i],
            });
        }
        let ei = ee[i];
        ee[i] = ei / dd[i];
        dd[i + 1] -= ee[i] * ei;
    }
    if n > 0 && dd[n - 1] <= 0.0 {
        return Err(Error::NotPositiveDefinite {
            routine: "pttrf",
            index: n - 1,
            value: dd[n - 1],
        });
    }
    Ok(PtFactors { d: dd, e: ee })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{relative_residual, solve_dense};
    use pp_portable::{Layout, Matrix};
    use pp_portable::TestRng;

    fn tridiag(d: &[f64], e: &[f64]) -> Matrix {
        let n = d.len();
        Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                d[i]
            } else if i.abs_diff(j) == 1 {
                e[i.min(j)]
            } else {
                0.0
            }
        })
    }

    #[test]
    fn factorisation_reconstructs_matrix() {
        // A = L D L^T must reproduce (d, e).
        let d = vec![4.0, 5.0, 6.0, 7.0];
        let e = vec![1.0, -1.5, 2.0];
        let f = pttrf(&d, &e).unwrap();
        // Rebuild: diag_i = D_i + l_{i-1}^2 D_{i-1}; off_i = l_i * D_i.
        let n = d.len();
        for i in 0..n {
            let rebuilt = f.d()[i]
                + if i > 0 {
                    f.e()[i - 1] * f.e()[i - 1] * f.d()[i - 1]
                } else {
                    0.0
                };
            assert!((rebuilt - d[i]).abs() < 1e-14);
        }
        for i in 0..n - 1 {
            assert!((f.e()[i] * f.d()[i] - e[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn solve_matches_dense_reference() {
        let mut rng = TestRng::seed_from_u64(17);
        for n in [1usize, 2, 3, 10, 50] {
            let d: Vec<f64> = (0..n).map(|_| rng.gen_range(3.0..5.0)).collect();
            let e: Vec<f64> = (0..n.saturating_sub(1))
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let a = tridiag(&d, &e);
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let expected = solve_dense(&a, &b).unwrap();
            let f = pttrf(&d, &e).unwrap();
            let mut x = b;
            f.solve_slice(&mut x);
            for (u, v) in x.iter().zip(&expected) {
                assert!((u - v).abs() < 1e-11, "n = {n}");
            }
        }
    }

    #[test]
    fn rejects_non_positive_definite() {
        // Diagonal entry that goes non-positive after elimination.
        assert!(matches!(
            pttrf(&[1.0, 0.5], &[1.0]),
            Err(Error::NotPositiveDefinite { .. })
        ));
        assert!(matches!(
            pttrf(&[-1.0, 2.0], &[0.1]),
            Err(Error::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_bad_shapes() {
        assert!(matches!(
            pttrf(&[1.0, 2.0], &[]),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn empty_system() {
        let f = pttrf(&[], &[]).unwrap();
        assert_eq!(f.n(), 0);
    }

    /// Property: for random diagonally-dominant SPD tridiagonal
    /// matrices, solve(A, A·x) recovers x.
    #[test]
    fn prop_solve_recovers_solution() {
        let mut g = TestRng::seed_from_u64(0x5EED_3F2D);
        for _ in 0..64 {
            let n = g.gen_range(1usize..40);
            let seed = g.gen_range(0u64..1000);
            let mut rng = TestRng::seed_from_u64(seed);
            let e: Vec<f64> = (0..n - 1).map(|_| rng.gen_range(-1.0..1.0)).collect();
            // Strict diagonal dominance guarantees SPD here.
            let d: Vec<f64> = (0..n)
                .map(|i| {
                    let left = if i > 0 { e[i - 1].abs() } else { 0.0 };
                    let right = if i < n - 1 { e[i].abs() } else { 0.0 };
                    left + right + rng.gen_range(0.5..2.0)
                })
                .collect();
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-3.0..3.0)).collect();
            let a = tridiag(&d, &e);
            let b = crate::naive::matvec(&a, &x_true);
            let f = pttrf(&d, &e).unwrap();
            let mut x = b.clone();
            f.solve_slice(&mut x);
            assert!(relative_residual(&a, &x, &b) < 1e-10);
            for (u, v) in x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
