//! Mutable 2-D sub-block views over a contiguous lane range.
//!
//! [`BlockMut`] is what a *lane-tiled* kernel works on: a rectangle of
//! `nrows × ncols` elements covering columns `[col0, col0 + ncols)` of a
//! parent [`Matrix`]. Tiled kernels loop row-outer /
//! lane-inner, which turns the batch-contiguous (`LayoutRight`) layout's
//! strided per-lane sweeps into contiguous row segments — the cache-usage
//! fix the paper's §V-A names as future work.

use crate::exec::ExecSpace;
use crate::matrix::Matrix;
use crate::ptr::SharedMutPtr;

/// A mutable rectangular window over consecutive columns of a matrix.
pub struct BlockMut<'a> {
    data: &'a mut [f64],
    nrows: usize,
    ncols: usize,
    row_stride: usize,
    col_stride: usize,
}

impl<'a> BlockMut<'a> {
    /// Build from a raw pointer to the block's `(0, 0)` element.
    ///
    /// # Safety
    /// `ptr` must be valid for reads/writes over the strided footprint
    /// `(nrows−1)·row_stride + (ncols−1)·col_stride + 1`, and no other
    /// live reference may overlap that footprint for `'a`.
    pub(crate) unsafe fn from_raw(
        ptr: *mut f64,
        nrows: usize,
        ncols: usize,
        row_stride: usize,
        col_stride: usize,
    ) -> Self {
        let footprint = if nrows == 0 || ncols == 0 {
            0
        } else {
            (nrows - 1) * row_stride + (ncols - 1) * col_stride + 1
        };
        Self {
            data: std::slice::from_raw_parts_mut(ptr, footprint),
            nrows,
            ncols,
            row_stride,
            col_stride,
        }
    }

    /// Rows in the block.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Columns (lanes) in the block.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Read element `(i, j)` of the block.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.row_stride + j * self.col_stride]
    }

    /// Write element `(i, j)` of the block.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        debug_assert!(i < self.nrows && j < self.ncols);
        self.data[i * self.row_stride + j * self.col_stride] = v;
    }

    /// Fused multiply-update `b[i][j] += a · b[k][j]` for every lane `j`
    /// of the block — the inner loop of a tiled sweep, contiguous when
    /// the columns are the fast dimension.
    #[inline]
    pub fn row_axpy(&mut self, i: usize, k: usize, a: f64) {
        debug_assert!(i < self.nrows && k < self.nrows && i != k);
        let rs = self.row_stride;
        let cs = self.col_stride;
        for j in 0..self.ncols {
            let src = self.data[k * rs + j * cs];
            self.data[i * rs + j * cs] += a * src;
        }
    }
}

/// Visit the columns of `m` in consecutive blocks of at most
/// `block_cols` lanes, possibly concurrently. `f(col0, block)` receives
/// the starting lane index and a mutable view of the block.
///
/// `block_cols` is clamped to `1..=ncols`: zero (which would otherwise
/// divide-by-zero the block count) behaves like "no tiling" — the whole
/// batch is one block — and oversized tiles likewise collapse to a single
/// block. Remainder columns (when the tile does not divide the batch
/// width) form one final narrower block, visited exactly once.
pub fn for_each_lane_block_mut<E, F>(exec: &E, m: &mut Matrix, block_cols: usize, f: F)
where
    E: ExecSpace,
    F: Fn(usize, BlockMut<'_>) + Sync + Send,
{
    let block_cols = if block_cols == 0 {
        m.ncols().max(1)
    } else {
        block_cols
    };
    let nrows = m.nrows();
    let ncols = m.ncols();
    let (rs, cs) = m.strides();
    let blocks = ncols.div_ceil(block_cols);
    let ptr = SharedMutPtr(m.as_mut_ptr());
    exec.for_each(blocks, |b| {
        let col0 = b * block_cols;
        let cols = block_cols.min(ncols - col0);
        // SAFETY: blocks cover disjoint column ranges, each visited once;
        // the footprint stays inside the parent allocation for both
        // layouts (same argument as lane dispatch, extended to ranges).
        let view = unsafe { BlockMut::from_raw(ptr.add(col0 * cs), nrows, cols, rs, cs) };
        f(col0, view);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Parallel, Serial};
    use crate::layout::Layout;

    #[test]
    fn blocks_tile_the_matrix_both_layouts() {
        for layout in [Layout::Left, Layout::Right] {
            let mut m = Matrix::zeros(4, 10, layout);
            for_each_lane_block_mut(&Parallel, &mut m, 3, |col0, mut blk| {
                for i in 0..blk.nrows() {
                    for j in 0..blk.ncols() {
                        blk.set(i, j, (i * 100 + col0 + j) as f64);
                    }
                }
            });
            for i in 0..4 {
                for j in 0..10 {
                    assert_eq!(m.get(i, j), (i * 100 + j) as f64, "{layout:?}");
                }
            }
        }
    }

    #[test]
    fn block_get_set_round_trip() {
        let mut m = Matrix::zeros(3, 5, Layout::Right);
        for_each_lane_block_mut(&Serial, &mut m, 5, |_, mut blk| {
            assert_eq!(blk.nrows(), 3);
            assert_eq!(blk.ncols(), 5);
            blk.set(2, 4, 7.5);
            assert_eq!(blk.get(2, 4), 7.5);
        });
        assert_eq!(m.get(2, 4), 7.5);
    }

    #[test]
    fn row_axpy_updates_whole_row() {
        let mut m = Matrix::from_fn(3, 4, Layout::Right, |i, _| i as f64);
        for_each_lane_block_mut(&Serial, &mut m, 4, |_, mut blk| {
            blk.row_axpy(2, 0, 10.0); // row2 += 10*row0 (row0 is zeros)
            blk.row_axpy(0, 1, 3.0); // row0 += 3*row1 = 3
        });
        for j in 0..4 {
            assert_eq!(m.get(0, j), 3.0);
            assert_eq!(m.get(2, j), 2.0);
        }
    }

    #[test]
    fn oversized_block_is_clamped() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut m = Matrix::zeros(2, 3, Layout::Left);
        let seen = AtomicUsize::new(0);
        for_each_lane_block_mut(&Serial, &mut m, 100, |col0, blk| {
            assert_eq!(col0, 0);
            assert_eq!(blk.ncols(), 3);
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn zero_block_clamped_to_single_block() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let mut m = Matrix::from_fn(2, 3, Layout::Left, |i, j| (i * 10 + j) as f64);
        let seen = AtomicUsize::new(0);
        for_each_lane_block_mut(&Serial, &mut m, 0, |col0, mut blk| {
            assert_eq!(col0, 0);
            assert_eq!(blk.ncols(), 3);
            for i in 0..blk.nrows() {
                for j in 0..blk.ncols() {
                    let v = blk.get(i, j);
                    blk.set(i, j, v + 1.0);
                }
            }
            seen.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        assert_eq!(m.get(1, 2), 13.0);
    }

    #[test]
    fn remainder_columns_visited_exactly_once() {
        // tile ∈ {0, 1, 7, batch, batch+1}: every column incremented once
        // regardless of how the tile divides the batch width.
        for tile in [0usize, 1, 7, 10, 11] {
            let mut m = Matrix::zeros(3, 10, Layout::Right);
            for_each_lane_block_mut(&Parallel, &mut m, tile, |_, mut blk| {
                for i in 0..blk.nrows() {
                    for j in 0..blk.ncols() {
                        let v = blk.get(i, j);
                        blk.set(i, j, v + 1.0);
                    }
                }
            });
            for i in 0..3 {
                for j in 0..10 {
                    assert_eq!(m.get(i, j), 1.0, "tile {tile} ({i},{j})");
                }
            }
        }
    }
}
