//! Per-lane serial kernels: the bodies that run inside a parallel region.
//!
//! These functions are the Rust counterparts of the paper's
//! `KokkosBatched::Serial{Pttrs,Getrs,Gemv}::invoke` internals (Listings 1,
//! 2 and 4). They take strided views, perform **in-place**, strictly
//! sequential work on one batch lane, and never allocate — so a fused
//! builder can call several of them back to back on the same lane while it
//! is hot in cache.

use pp_portable::instrument::{PhaseId, Span};
use pp_portable::{Matrix, Strided, StridedMut};

/// In-place solve of `L·D·Lᵀ x = b` for one lane, given the `pttrf`
/// factorisation `(d, e)` of an SPD tridiagonal matrix.
///
/// This is line-for-line the algorithm of the paper's Listing 1
/// (`SerialPttrsInternal::invoke`): a forward sweep applying `L⁻¹`, then a
/// combined `D⁻¹`/`L⁻ᵀ` backward sweep.
///
/// `d` has length `n`, `e` length `n-1`, and `b` length `n`.
#[inline]
pub fn pttrs_lane(d: &[f64], e: &[f64], b: &mut StridedMut<'_>) {
    let n = d.len();
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(e.len(), n.saturating_sub(1));
    if n == 0 {
        return;
    }
    // Solve L * x = b  (unit lower bidiagonal with multipliers e).
    for i in 1..n {
        let prev = b[i - 1];
        b[i] -= e[i - 1] * prev;
    }
    // Solve D * L**T * x = b.
    b[n - 1] /= d[n - 1];
    for i in (0..n - 1).rev() {
        let next = b[i + 1];
        b[i] = b[i] / d[i] - next * e[i];
    }
}

/// In-place solve of `P·L·U x = b` for one lane, given a dense LU
/// factorisation (`getrf` output: packed LU in `lu`, pivot rows in `ipiv`).
///
/// Mirrors `KokkosBatched::SerialGetrs` with `Trans::NoTranspose`.
#[inline]
pub fn getrs_lane(lu: &Matrix, ipiv: &[usize], b: &mut StridedMut<'_>) {
    let n = lu.nrows();
    debug_assert_eq!(b.len(), n);
    debug_assert_eq!(ipiv.len(), n);
    // Apply row interchanges: b ← P b.
    for i in 0..n {
        let p = ipiv[i];
        if p != i {
            let tmp = b[i];
            let other = b[p];
            b[i] = other;
            b[p] = tmp;
        }
    }
    // Forward solve with unit lower triangle.
    for i in 1..n {
        let mut s = b[i];
        for k in 0..i {
            s -= lu.get(i, k) * b[k];
        }
        b[i] = s;
    }
    // Backward solve with upper triangle.
    for i in (0..n).rev() {
        let mut s = b[i];
        for k in i + 1..n {
            s -= lu.get(i, k) * b[k];
        }
        b[i] = s / lu.get(i, i);
    }
}

/// Per-lane dense `y ← α A x + β y`.
///
/// Mirrors `KokkosBatched::SerialGemv` (`Trans::NoTranspose`,
/// `Algo::Gemv::Unblocked`) as used by the paper's fused kernel (Listing 4).
#[inline]
pub fn gemv_lane(alpha: f64, a: &Matrix, x: &Strided<'_>, beta: f64, y: &mut StridedMut<'_>) {
    let _span = Span::enter(PhaseId::CornerGemv);
    let (m, n) = a.shape();
    debug_assert_eq!(x.len(), n);
    debug_assert_eq!(y.len(), m);
    for i in 0..m {
        let mut s = 0.0;
        for j in 0..n {
            s += a.get(i, j) * x[j];
        }
        y[i] = alpha * s + beta * y[i];
    }
}

/// Per-lane `y ← y + α x` (axpy) on strided views.
#[inline]
pub fn axpy_lane(alpha: f64, x: &Strided<'_>, y: &mut StridedMut<'_>) {
    debug_assert_eq!(x.len(), y.len());
    for i in 0..x.len() {
        y[i] += alpha * x[i];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lu::getrf;
    use crate::naive::{matvec, solve_dense};
    use crate::pt::pttrf;
    use pp_portable::Layout;
    use pp_portable::TestRng;

    #[test]
    fn pttrs_lane_solves_spd_tridiagonal() {
        // A = tridiag(e, d, e), diagonally dominant => SPD.
        let n = 9;
        let d_orig = vec![4.0; n];
        let e_orig = vec![-1.0; n - 1];
        let f = pttrf(&d_orig, &e_orig).unwrap();

        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                4.0
            } else if i.abs_diff(j) == 1 {
                -1.0
            } else {
                0.0
            }
        });
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin() + 2.0).collect();
        let expected = solve_dense(&a, &b).unwrap();

        let mut x = b;
        pttrs_lane(f.d(), f.e(), &mut StridedMut::from_slice(&mut x));
        for (u, v) in x.iter().zip(&expected) {
            assert!((u - v).abs() < 1e-12, "{u} vs {v}");
        }
    }

    #[test]
    fn pttrs_lane_with_stride() {
        let d_orig = vec![3.0; 4];
        let e_orig = vec![1.0; 3];
        let f = pttrf(&d_orig, &e_orig).unwrap();

        let mut dense = vec![0.0; 8];
        for (i, v) in [1.0, 2.0, 3.0, 4.0].iter().enumerate() {
            dense[i * 2] = *v;
        }
        pttrs_lane(f.d(), f.e(), &mut StridedMut::new(&mut dense, 4, 2));

        let a = Matrix::from_fn(4, 4, Layout::Right, |i, j| {
            if i == j {
                3.0
            } else if i.abs_diff(j) == 1 {
                1.0
            } else {
                0.0
            }
        });
        let x: Vec<f64> = (0..4).map(|i| dense[i * 2]).collect();
        let r = matvec(&a, &x);
        for (ri, bi) in r.iter().zip([1.0, 2.0, 3.0, 4.0]) {
            assert!((ri - bi).abs() < 1e-12);
        }
    }

    #[test]
    fn getrs_lane_matches_naive_reference() {
        let mut rng = TestRng::seed_from_u64(11);
        for n in [1, 2, 3, 5, 8, 17] {
            // Diagonally dominated random matrix: always nonsingular.
            let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
                let v: f64 = rng.gen_range(-1.0..1.0);
                if i == j {
                    v + n as f64
                } else {
                    v
                }
            });
            let f = getrf(&a).unwrap();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let expected = solve_dense(&a, &b).unwrap();
            let mut x = b;
            getrs_lane(f.lu(), f.ipiv(), &mut StridedMut::from_slice(&mut x));
            for (u, v) in x.iter().zip(&expected) {
                assert!((u - v).abs() < 1e-10, "n={n}: {u} vs {v}");
            }
        }
    }

    #[test]
    fn getrs_lane_pivoting_matrix() {
        // Forces a row interchange.
        let a = Matrix::from_rows(&[&[0.0, 2.0], &[1.0, 0.0]]);
        let f = getrf(&a).unwrap();
        let mut b = vec![4.0, 3.0];
        getrs_lane(f.lu(), f.ipiv(), &mut StridedMut::from_slice(&mut b));
        assert!((b[0] - 3.0).abs() < 1e-14);
        assert!((b[1] - 2.0).abs() < 1e-14);
    }

    #[test]
    fn gemv_lane_beta_and_alpha() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let x = [1.0, 1.0];
        let mut y = [10.0, 20.0];
        gemv_lane(
            2.0,
            &a,
            &Strided::from_slice(&x),
            0.5,
            &mut StridedMut::from_slice(&mut y),
        );
        // y = 2*A*[1,1] + 0.5*[10,20] = [6+5, 14+10]
        assert_eq!(y, [11.0, 24.0]);
    }

    #[test]
    fn axpy_lane_accumulates() {
        let x = [1.0, 2.0, 3.0];
        let mut y = [1.0, 1.0, 1.0];
        axpy_lane(
            -1.0,
            &Strided::from_slice(&x),
            &mut StridedMut::from_slice(&mut y),
        );
        assert_eq!(y, [0.0, -1.0, -2.0]);
    }

    #[test]
    fn pttrs_lane_empty_and_single() {
        // n = 0 is a no-op.
        let mut empty: Vec<f64> = vec![];
        pttrs_lane(&[], &[], &mut StridedMut::from_slice(&mut empty));
        // n = 1: x = b / d.
        let f = pttrf(&[2.0], &[]).unwrap();
        let mut b = vec![6.0];
        pttrs_lane(f.d(), f.e(), &mut StridedMut::from_slice(&mut b));
        assert_eq!(b, vec![3.0]);
    }
}
