//! Feature-on implementation: thread-local phase accumulators, a
//! process-wide registry of named metrics, and RAII span timers.
//!
//! Recording is lock-free-ish: each thread owns an `Arc` block of
//! relaxed atomics (registered under a mutex once per thread) and every
//! record is a plain `fetch_add` on it. The global locks are touched only
//! on first use per thread and on snapshot/reset — never per record.

use crate::phase::PhaseId;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// `histogram` bucket count: bucket 0 holds zero, bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b)`, so 65 buckets cover all of `u64`.
pub(crate) const HIST_BUCKETS: usize = 65;

// ---------------------------------------------------------------------
// Per-thread phase accumulators
// ---------------------------------------------------------------------

/// One thread's phase totals. Shared as `Arc` so totals survive thread
/// exit (the registry keeps the other reference).
pub(crate) struct PhaseBlock {
    pub(crate) ns: [AtomicU64; PhaseId::COUNT],
    pub(crate) calls: [AtomicU64; PhaseId::COUNT],
}

impl PhaseBlock {
    fn new() -> Self {
        PhaseBlock {
            ns: [const { AtomicU64::new(0) }; PhaseId::COUNT],
            calls: [const { AtomicU64::new(0) }; PhaseId::COUNT],
        }
    }
}

/// All phase blocks ever created, one per recording thread.
static PHASE_BLOCKS: Mutex<Vec<Arc<PhaseBlock>>> = Mutex::new(Vec::new());

thread_local! {
    static TL_PHASES: Arc<PhaseBlock> = {
        let block = Arc::new(PhaseBlock::new());
        PHASE_BLOCKS.lock().unwrap().push(Arc::clone(&block));
        block
    };
}

/// Record `ns` nanoseconds (one call) against `phase` on this thread.
#[inline]
pub fn record_phase_ns(phase: PhaseId, ns: u64) {
    TL_PHASES.with(|b| {
        b.ns[phase.index()].fetch_add(ns, Relaxed);
        b.calls[phase.index()].fetch_add(1, Relaxed);
    });
}

/// Sum of all threads' totals for every phase: `(total_ns, calls)`.
pub(crate) fn phase_totals() -> [(u64, u64); PhaseId::COUNT] {
    let mut out = [(0u64, 0u64); PhaseId::COUNT];
    for block in PHASE_BLOCKS.lock().unwrap().iter() {
        for (i, slot) in out.iter_mut().enumerate() {
            slot.0 += block.ns[i].load(Relaxed);
            slot.1 += block.calls[i].load(Relaxed);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Span / Timer
// ---------------------------------------------------------------------

/// RAII phase timer: one `Instant::now()` pair plus a thread-local add.
///
/// ```
/// # use pp_instrument::{PhaseId, Span};
/// {
///     let _span = Span::enter(PhaseId::SolvePttrs);
///     // ... timed work ...
/// } // drop records the elapsed time
/// ```
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct Span {
    phase: PhaseId,
    start: Instant,
}

impl Span {
    /// Start timing `phase`; the elapsed time is recorded on drop.
    #[inline]
    pub fn enter(phase: PhaseId) -> Span {
        Span {
            phase,
            start: Instant::now(),
        }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        record_phase_ns(self.phase, self.start.elapsed().as_nanos() as u64);
    }
}

/// Manual timer for call sites that feed the elapsed value somewhere
/// else as well (e.g. a latency histogram *and* a phase).
#[must_use]
#[derive(Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start the clock.
    #[inline]
    pub fn start() -> Timer {
        Timer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Timer::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

// ---------------------------------------------------------------------
// Named metrics registry
// ---------------------------------------------------------------------

/// Backing cell of a [`Histogram`].
pub(crate) struct HistCell {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

/// Log2 bucket of `v`: 0 for 0, else `64 - leading_zeros` so bucket `b`
/// spans `[2^(b-1), 2^b)`.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    pub(crate) gauges: BTreeMap<&'static str, Arc<AtomicU64>>, // f64 bits
    pub(crate) histograms: BTreeMap<&'static str, Arc<HistCell>>,
}

pub(crate) static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap();
    f(guard.get_or_insert_with(Registry::default))
}

/// Monotonic named counter. Handles are cheap `Arc` clones; look one up
/// once (e.g. in a `OnceLock`) and `add` from any thread.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// Last-write-wins named gauge holding an `f64`.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Relaxed))
    }
}

/// Log2-bucketed named histogram of `u64` samples (latencies in ns,
/// iteration counts, …).
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cell.count.fetch_add(1, Relaxed);
        self.cell.sum.fetch_add(v, Relaxed);
        self.cell.min.fetch_min(v, Relaxed);
        self.cell.max.fetch_max(v, Relaxed);
        self.cell.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Relaxed)
    }
}

/// Look up (creating on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    with_registry(|r| Counter {
        cell: Arc::clone(r.counters.entry(name).or_default()),
    })
}

/// Look up (creating on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    with_registry(|r| Gauge {
        cell: Arc::clone(r.gauges.entry(name).or_default()),
    })
}

/// Look up (creating on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    with_registry(|r| Histogram {
        cell: Arc::clone(
            r.histograms
                .entry(name)
                .or_insert_with(|| Arc::new(HistCell::new())),
        ),
    })
}

/// Zero every phase total and named metric (handles stay valid).
///
/// Concurrent recording during a reset lands on whichever side of the
/// zeroing it races with; call between measurement windows, not inside
/// them.
pub fn reset() {
    for block in PHASE_BLOCKS.lock().unwrap().iter() {
        for i in 0..PhaseId::COUNT {
            block.ns[i].store(0, Relaxed);
            block.calls[i].store(0, Relaxed);
        }
    }
    let guard = REGISTRY.lock().unwrap();
    if let Some(r) = guard.as_ref() {
        for c in r.counters.values() {
            c.store(0, Relaxed);
        }
        for g in r.gauges.values() {
            g.store(0.0_f64.to_bits(), Relaxed);
        }
        for h in r.histograms.values() {
            h.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counter_roundtrip() {
        let c = counter("test.active.counter");
        let before = c.value();
        c.add(41);
        c.inc();
        assert_eq!(counter("test.active.counter").value(), before + 42);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.active.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(gauge("test.active.gauge").value(), -2.25);
    }
}
