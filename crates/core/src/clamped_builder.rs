//! Batched spline builder for clamped (non-periodic) spaces.
//!
//! Without periodic wrap-around there are no corner blocks and no Schur
//! complement: the interpolation matrix is purely banded, so the whole
//! build is **one batched `gbtrs`** per time step — a direct showcase of
//! the batched-serial solvers the paper contributes, in their simplest
//! full-matrix role.

use crate::error::{Error, Result};
use pp_bsplines::{ClampedSplineSpace, SplineMatrixStructure};
use pp_linalg::{gbtrf, BandedLu, BandedMatrix};
use pp_portable::{ExecSpace, Matrix};

/// A factored, ready-to-solve builder for a clamped spline space.
pub struct ClampedSplineBuilder {
    space: ClampedSplineSpace,
    factors: BandedLu,
    bandwidths: (usize, usize),
}

impl ClampedSplineBuilder {
    /// Assemble the banded interpolation matrix and LU-factor it once.
    pub fn new(space: ClampedSplineSpace) -> Result<Self> {
        let dense = space.assemble_matrix();
        // Detect the actual bandwidths (≤ degree each side), then pack.
        let structure =
            SplineMatrixStructure::analyze(&dense, space.degree()).ok_or_else(|| {
                Error::UnexpectedStructure {
                    detail: "clamped interpolation matrix is not banded".into(),
                }
            })?;
        // For a clamped space there is no corner block at all: analyze()
        // reports border 1 with empty-or-banded corners; we just need the
        // overall bandwidths, measured over the full matrix.
        let nb = space.num_basis();
        let mut kl = structure.q_kl;
        let mut ku = structure.q_ku;
        for i in 0..nb {
            for j in 0..nb {
                if dense.get(i, j).abs() > 1e-14 {
                    if i > j {
                        kl = kl.max(i - j);
                    } else {
                        ku = ku.max(j - i);
                    }
                }
            }
        }
        let banded = BandedMatrix::from_fn(nb, kl.max(1), ku.max(1), |i, j| dense.get(i, j))
            .map_err(Error::Factorisation)?;
        let factors = gbtrf(&banded).map_err(Error::Factorisation)?;
        Ok(Self {
            space,
            factors,
            bandwidths: (kl, ku),
        })
    }

    /// The spline space this builder serves.
    pub fn space(&self) -> &ClampedSplineSpace {
        &self.space
    }

    /// Detected matrix bandwidths `(kl, ku)`.
    pub fn bandwidths(&self) -> (usize, usize) {
        self.bandwidths
    }

    /// Numerical-health report of the banded factorisation (rcond estimate
    /// and pivot growth, captured once at setup).
    pub fn health(&self) -> &pp_linalg::FactorHealth {
        self.factors.health()
    }

    /// Solve `A X = B` in place: values at the interpolation points in,
    /// spline coefficients out. One batched `gbtrs` over the lanes.
    pub fn solve_in_place<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) -> Result<()> {
        if b.nrows() != self.space.num_basis() {
            return Err(Error::ShapeMismatch {
                expected_rows: self.space.num_basis(),
                actual_rows: b.nrows(),
            });
        }
        let factors = &self.factors;
        exec.for_each_lane_mut(b, |_, mut lane| factors.solve_lane(&mut lane));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_bsplines::Breaks;
    use pp_portable::{Layout, Parallel, Serial};

    fn space(n: usize, degree: usize, uniform: bool) -> ClampedSplineSpace {
        let breaks = if uniform {
            Breaks::uniform(n, 0.0, 1.0).unwrap()
        } else {
            Breaks::graded(n, 0.0, 1.0, 0.5).unwrap()
        };
        ClampedSplineSpace::new(breaks, degree).unwrap()
    }

    #[test]
    fn batched_solve_matches_naive_reference() {
        for degree in [3usize, 4, 5] {
            for uniform in [true, false] {
                let sp = space(16, degree, uniform);
                let builder = ClampedSplineBuilder::new(sp.clone()).unwrap();
                let nb = sp.num_basis();
                let pts = sp.interpolation_points();
                let f = |x: f64, lane: usize| (x * (2.0 + lane as f64)).sin();
                let mut b = Matrix::from_fn(nb, 4, Layout::Left, |i, j| f(pts[i], j));
                builder.solve_in_place(&Parallel, &mut b).unwrap();
                for j in 0..4 {
                    let values: Vec<f64> = pts.iter().map(|&x| f(x, j)).collect();
                    let expected = sp.interpolate_naive(&values).unwrap();
                    for (u, v) in b.col(j).to_vec().iter().zip(&expected) {
                        assert!(
                            (u - v).abs() < 1e-10,
                            "deg {degree} uniform {uniform} lane {j}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn bandwidths_bounded_by_degree() {
        for degree in [3usize, 4, 5] {
            let builder = ClampedSplineBuilder::new(space(20, degree, false)).unwrap();
            let (kl, ku) = builder.bandwidths();
            assert!(kl <= degree && ku <= degree, "deg {degree}: ({kl}, {ku})");
        }
    }

    #[test]
    fn round_trip_interpolation() {
        let sp = space(32, 3, true);
        let builder = ClampedSplineBuilder::new(sp.clone()).unwrap();
        let pts = sp.interpolation_points();
        let f = |x: f64| (3.0 * x).cos() + x * x;
        let mut b = Matrix::from_fn(sp.num_basis(), 1, Layout::Left, |i, _| f(pts[i]));
        builder.solve_in_place(&Serial, &mut b).unwrap();
        let coefs = b.col(0).to_vec();
        for i in 0..=60 {
            let x = i as f64 / 60.0;
            assert!((sp.eval(&coefs, x) - f(x)).abs() < 1e-6, "x = {x}");
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let builder = ClampedSplineBuilder::new(space(16, 3, true)).unwrap();
        let mut bad = Matrix::zeros(5, 4, Layout::Left);
        assert!(builder.solve_in_place(&Serial, &mut bad).is_err());
    }

    #[test]
    fn health_is_exposed_and_sane() {
        for degree in [3usize, 4, 5] {
            let builder = ClampedSplineBuilder::new(space(24, degree, false)).unwrap();
            let h = builder.health();
            assert_eq!(h.routine, "gbtrf");
            assert!(!h.is_suspect(), "deg {degree}: {h}");
        }
    }
}
