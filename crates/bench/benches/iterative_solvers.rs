//! Bench backing Table IV: Krylov solver cost per spline configuration
//! (iteration counts are asserted in tests; this measures the time those
//! iterations cost).

use pp_bench::{fmt_ms, time_mean, SplineConfig};
use pp_portable::{Layout, Matrix};
use pp_splinesolver::{IterativeConfig, IterativeSplineSolver, KrylovKind};

fn main() {
    let nx = 1000;
    let nv = 16;
    let iters = 5;
    println!("table4/iterative_solve ({nx} x {nv}, mean of {iters})");
    for cfg in [
        SplineConfig {
            degree: 3,
            uniform: true,
        },
        SplineConfig {
            degree: 5,
            uniform: false,
        },
    ] {
        for kind in [KrylovKind::Gmres, KrylovKind::BiCgStab] {
            let mut config = IterativeConfig::cpu();
            config.kind = kind;
            config.warm_start = false;
            let solver = IterativeSplineSolver::new(cfg.space(nx), config).expect("setup");
            let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| {
                ((i * 3 + j) % 19) as f64 / 19.0
            });
            let name = match kind {
                KrylovKind::Gmres => "GMRES",
                KrylovKind::BiCgStab => "BiCGStab",
                KrylovKind::Cg => "CG",
                KrylovKind::BiCg => "BiCG",
            };
            let d = time_mean(iters, || {
                let mut work = rhs.clone();
                solver.solve_in_place(&mut work, None).expect("convergence");
            });
            println!("  {:>24}/{:<9} {}", cfg.label(), name, fmt_ms(d));
        }
    }
}
