//! Lane-tiled batched solvers — the paper's §V-A future work, built.
//!
//! The paper observes its CPU performance suffers because "the
//! parallelization is made over the contiguous dimension"; the fix it
//! names ("the batch dimension should be the non-contiguous dimension …
//! requires a layout abstraction") is exactly what a *lane-tiled* sweep
//! provides: the solver recursion runs row-outer / lane-inner over a tile
//! of lanes, so on a batch-contiguous (`LayoutRight`) block every inner
//! loop walks a contiguous row segment — vectorisable, cache-line
//! friendly — instead of a long-strided lane.
//!
//! [`pttrs_tiled`] is the tridiagonal instance (the hot path of uniform
//! degree-3 splines); the ablation bench compares it against the
//! lane-at-a-time [`batched::pttrs`](crate::batched::pttrs) on both
//! layouts.

use crate::banded::BandedLu;
use crate::lu::LuFactors;
use crate::pb::CholeskyBanded;
use crate::pt::PtFactors;
use pp_portable::instrument::{PhaseId, Span};
use pp_portable::{block::for_each_lane_block_mut, BlockMut, ExecSpace, Matrix};

/// Default tile width: 64 lanes × 8 B = one 512-byte panel per row, a few
/// cache lines — small enough that `tile × n` stays in L2 for n ≈ 1000.
pub const DEFAULT_TILE: usize = 64;

/// Batched `pttrs` with lane tiling: solves the factored SPD tridiagonal
/// system against every column of `b` in place, processing `tile` lanes
/// per task with row-major inner loops.
///
/// Produces exactly the same results as [`crate::batched::pttrs`] (same
/// arithmetic per lane, different loop order).
///
/// `tile == 0` is clamped to "no tiling" (the whole batch as one block);
/// a tile that does not divide the batch width leaves one final narrower
/// block, solved exactly once (see
/// [`for_each_lane_block_mut`]).
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn pttrs_tiled<E: ExecSpace>(exec: &E, factors: &PtFactors, b: &mut Matrix, tile: usize) {
    assert_eq!(b.nrows(), factors.n(), "pttrs_tiled: rhs rows != order");
    let n = factors.n();
    if n == 0 {
        return;
    }
    for_each_lane_block_mut(exec, b, tile, |_, mut blk| {
        pttrs_block(factors, &mut blk, 0);
    });
}

/// The per-block body of the tiled `pttrs`: solve on rows
/// `row0..row0 + factors.n()` of `blk`, all lanes.
pub fn pttrs_block(factors: &PtFactors, blk: &mut BlockMut<'_>, row0: usize) {
    let _span = Span::enter(PhaseId::SolvePttrs);
    let n = factors.n();
    if n == 0 {
        return;
    }
    let d = factors.d();
    let e = factors.e();
    let lanes = blk.ncols();
    // Forward: L x = b.
    for i in 1..n {
        blk.row_axpy(row0 + i, row0 + i - 1, -e[i - 1]);
    }
    // Backward: D L**T x = b.
    let inv_last = 1.0 / d[n - 1];
    for j in 0..lanes {
        let v = blk.get(row0 + n - 1, j) * inv_last;
        blk.set(row0 + n - 1, j, v);
    }
    for i in (0..n - 1).rev() {
        let inv = 1.0 / d[i];
        let ei = e[i];
        for j in 0..lanes {
            let v = blk.get(row0 + i, j) * inv - blk.get(row0 + i + 1, j) * ei;
            blk.set(row0 + i, j, v);
        }
    }
}

/// Batched `pbtrs` with lane tiling: the SPD-banded solve (uniform
/// degree 4/5 splines) with row-major inner loops over a tile of lanes.
///
/// `tile == 0` is clamped to "no tiling"; remainder lanes are solved
/// exactly once (see [`pttrs_tiled`]).
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn pbtrs_tiled<E: ExecSpace>(exec: &E, factors: &CholeskyBanded, b: &mut Matrix, tile: usize) {
    assert_eq!(b.nrows(), factors.n(), "pbtrs_tiled: rhs rows != order");
    let n = factors.n();
    if n == 0 {
        return;
    }
    for_each_lane_block_mut(exec, b, tile, |_, mut blk| {
        pbtrs_block(factors, &mut blk, 0);
    });
}

/// The per-block body of the tiled `pbtrs`: solve on rows
/// `row0..row0 + factors.n()` of `blk`, all lanes.
pub fn pbtrs_block(factors: &CholeskyBanded, blk: &mut BlockMut<'_>, row0: usize) {
    let _span = Span::enter(PhaseId::SolvePbtrs);
    let n = factors.n();
    if n == 0 {
        return;
    }
    let kd = factors.kd();
    let lanes = blk.ncols();
    // Forward: L y = b.
    for j in 0..n {
        let inv = 1.0 / factors.l(j, j);
        for l in 0..lanes {
            let v = blk.get(row0 + j, l) * inv;
            blk.set(row0 + j, l, v);
        }
        let hi = (j + kd).min(n - 1);
        for i in j + 1..=hi {
            blk.row_axpy(row0 + i, row0 + j, -factors.l(i, j));
        }
    }
    // Backward: Lᵀ x = y.
    for j in (0..n).rev() {
        let hi = (j + kd).min(n - 1);
        for i in j + 1..=hi {
            blk.row_axpy(row0 + j, row0 + i, -factors.l(i, j));
        }
        let inv = 1.0 / factors.l(j, j);
        for l in 0..lanes {
            let v = blk.get(row0 + j, l) * inv;
            blk.set(row0 + j, l, v);
        }
    }
}

/// Batched `gbtrs` with lane tiling: the general-banded solve
/// (non-uniform splines) with row-major inner loops — the configuration
/// where lane-at-a-time sweeps on batch-contiguous data hurt most.
///
/// `tile == 0` is clamped to "no tiling"; remainder lanes are solved
/// exactly once (see [`pttrs_tiled`]).
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn gbtrs_tiled<E: ExecSpace>(exec: &E, factors: &BandedLu, b: &mut Matrix, tile: usize) {
    assert_eq!(b.nrows(), factors.n(), "gbtrs_tiled: rhs rows != order");
    let n = factors.n();
    if n == 0 {
        return;
    }
    for_each_lane_block_mut(exec, b, tile, |_, mut blk| {
        gbtrs_block(factors, &mut blk, 0);
    });
}

/// The per-block body of the tiled `gbtrs`: solve on rows
/// `row0..row0 + factors.n()` of `blk`, all lanes.
pub fn gbtrs_block(factors: &BandedLu, blk: &mut BlockMut<'_>, row0: usize) {
    let _span = Span::enter(PhaseId::SolveGbtrs);
    let n = factors.n();
    if n == 0 {
        return;
    }
    let kl = factors.kl_internal();
    let kv = factors.upper_bandwidth();
    let ipiv = factors.pivots();
    let lanes = blk.ncols();
    // Forward: apply P and the unit-lower factor.
    for j in 0..n.saturating_sub(1) {
        let p = ipiv[j];
        if p != j {
            for l in 0..lanes {
                let t = blk.get(row0 + j, l);
                let u = blk.get(row0 + p, l);
                blk.set(row0 + j, l, u);
                blk.set(row0 + p, l, t);
            }
        }
        let km = kl.min(n - 1 - j);
        for i in 1..=km {
            blk.row_axpy(row0 + j + i, row0 + j, -factors.factor(j + i, j));
        }
    }
    // Backward: U x = b.
    for j in (0..n).rev() {
        let inv = 1.0 / factors.factor(j, j);
        for l in 0..lanes {
            let v = blk.get(row0 + j, l) * inv;
            blk.set(row0 + j, l, v);
        }
        let lm = kv.min(j);
        for i in 1..=lm {
            blk.row_axpy(row0 + j - i, row0 + j, -factors.factor(j - i, j));
        }
    }
}

/// The per-block body of a tiled dense `getrs` (for the tiny Schur
/// border): solve on rows `row0..row0 + lu.n()` of `blk`, all lanes,
/// row-major inner loops.
pub fn getrs_block(factors: &LuFactors, blk: &mut BlockMut<'_>, row0: usize) {
    let _span = Span::enter(PhaseId::SchurGetrs);
    let n = factors.n();
    if n == 0 {
        return;
    }
    let lu = factors.lu();
    let ipiv = factors.ipiv();
    let lanes = blk.ncols();
    // b <- P b.
    for i in 0..n {
        let p = ipiv[i];
        if p != i {
            for l in 0..lanes {
                let t = blk.get(row0 + i, l);
                let u = blk.get(row0 + p, l);
                blk.set(row0 + i, l, u);
                blk.set(row0 + p, l, t);
            }
        }
    }
    // Forward with unit lower triangle.
    for i in 1..n {
        for k in 0..i {
            blk.row_axpy(row0 + i, row0 + k, -lu.get(i, k));
        }
    }
    // Backward with upper triangle.
    for i in (0..n).rev() {
        for k in i + 1..n {
            blk.row_axpy(row0 + i, row0 + k, -lu.get(i, k));
        }
        let inv = 1.0 / lu.get(i, i);
        for l in 0..lanes {
            let v = blk.get(row0 + i, l) * inv;
            blk.set(row0 + i, l, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batched;
    use crate::pt::pttrf;
    use pp_portable::TestRng;
    use pp_portable::{Layout, Parallel, Serial};

    fn factors(n: usize) -> PtFactors {
        pttrf(&vec![4.0; n], &vec![-1.0; n - 1]).unwrap()
    }

    #[test]
    fn tiled_matches_lane_at_a_time_both_layouts() {
        let n = 37;
        let f = factors(n);
        let mut rng = TestRng::seed_from_u64(3);
        for layout in [Layout::Left, Layout::Right] {
            for batch in [1usize, 7, 64, 130] {
                let b0 = Matrix::from_fn(n, batch, layout, |_, _| rng.gen_range(-2.0..2.0));
                let mut lane_wise = b0.clone();
                batched::pttrs(&Parallel, &f, &mut lane_wise);
                for tile in [1usize, 8, 64, 1000] {
                    let mut tiled = b0.clone();
                    pttrs_tiled(&Parallel, &f, &mut tiled, tile);
                    assert!(
                        tiled.max_abs_diff(&lane_wise) < 1e-13,
                        "{layout:?} batch {batch} tile {tile}"
                    );
                }
            }
        }
    }

    #[test]
    fn serial_and_parallel_agree() {
        let n = 20;
        let f = factors(n);
        let b0 = Matrix::from_fn(n, 50, Layout::Right, |i, j| ((i * j) % 9) as f64);
        let mut a = b0.clone();
        let mut b = b0.clone();
        pttrs_tiled(&Serial, &f, &mut a, DEFAULT_TILE);
        pttrs_tiled(&Parallel, &f, &mut b, DEFAULT_TILE);
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn solves_correctly() {
        let n = 15;
        let f = factors(n);
        let mut b = Matrix::zeros(n, 3, Layout::Right);
        b.fill(2.0);
        pttrs_tiled(&Serial, &f, &mut b, 2);
        // Residual check: A x = 2 with A = tridiag(-1, 4, -1).
        for j in 0..3 {
            let x: Vec<f64> = b.col(j).to_vec();
            for i in 0..n {
                let mut r = 4.0 * x[i];
                if i > 0 {
                    r -= x[i - 1];
                }
                if i < n - 1 {
                    r -= x[i + 1];
                }
                assert!((r - 2.0).abs() < 1e-12, "lane {j} row {i}");
            }
        }
    }

    #[test]
    fn pbtrs_tiled_matches_lane_wise() {
        use crate::pb::{pbtrf, SymBandedMatrix};
        let n = 29;
        let f =
            pbtrf(&SymBandedMatrix::from_fn(n, 2, |i, j| if i == j { 6.0 } else { -1.0 }).unwrap())
                .unwrap();
        let mut rng = TestRng::seed_from_u64(5);
        for layout in [Layout::Left, Layout::Right] {
            let b0 = Matrix::from_fn(n, 45, layout, |_, _| rng.gen_range(-2.0..2.0));
            let mut lane_wise = b0.clone();
            batched::pbtrs(&Parallel, &f, &mut lane_wise);
            for tile in [1usize, 16, 100] {
                let mut tiled = b0.clone();
                pbtrs_tiled(&Parallel, &f, &mut tiled, tile);
                assert!(
                    tiled.max_abs_diff(&lane_wise) < 1e-12,
                    "{layout:?} tile {tile}"
                );
            }
        }
    }

    #[test]
    fn gbtrs_tiled_matches_lane_wise_with_pivoting() {
        use crate::banded::{gbtrf, BandedMatrix};
        let n = 31;
        // Small diagonal entries force genuine row interchanges.
        let a = BandedMatrix::from_fn(n, 2, 2, |i, j| {
            if i == j {
                if i % 5 == 0 {
                    1e-8
                } else {
                    4.0
                }
            } else {
                1.0 + (i + j) as f64 * 0.01
            }
        })
        .unwrap();
        let f = gbtrf(&a).unwrap();
        let mut rng = TestRng::seed_from_u64(6);
        for layout in [Layout::Left, Layout::Right] {
            let b0 = Matrix::from_fn(n, 23, layout, |_, _| rng.gen_range(-2.0..2.0));
            let mut lane_wise = b0.clone();
            batched::gbtrs(&Parallel, &f, &mut lane_wise);
            for tile in [1usize, 7, 64] {
                let mut tiled = b0.clone();
                gbtrs_tiled(&Parallel, &f, &mut tiled, tile);
                assert!(
                    tiled.max_abs_diff(&lane_wise) < 1e-10,
                    "{layout:?} tile {tile}: {}",
                    tiled.max_abs_diff(&lane_wise)
                );
            }
        }
    }

    #[test]
    fn tile_edge_cases_sweep() {
        // tile ∈ {0, 1, 7, batch, batch+1}: zero is clamped (no division
        // by zero, no infinite loop), non-dividing tiles leave a
        // remainder block that is solved exactly once — results must
        // match the lane-at-a-time reference in every case.
        use crate::banded::{gbtrf, BandedMatrix};
        use crate::pb::{pbtrf, SymBandedMatrix};
        let n = 13;
        let batch = 10;
        let pt = factors(n);
        let pb =
            pbtrf(&SymBandedMatrix::from_fn(n, 2, |i, j| if i == j { 6.0 } else { -1.0 }).unwrap())
                .unwrap();
        let gb =
            gbtrf(&BandedMatrix::from_fn(n, 2, 1, |i, j| if i == j { 5.0 } else { 1.0 }).unwrap())
                .unwrap();
        let mut rng = TestRng::seed_from_u64(29);
        for layout in [Layout::Left, Layout::Right] {
            let b0 = Matrix::from_fn(n, batch, layout, |_, _| rng.gen_range(-2.0..2.0));
            let mut pt_ref = b0.clone();
            batched::pttrs(&Serial, &pt, &mut pt_ref);
            let mut pb_ref = b0.clone();
            batched::pbtrs(&Serial, &pb, &mut pb_ref);
            let mut gb_ref = b0.clone();
            batched::gbtrs(&Serial, &gb, &mut gb_ref);
            for tile in [0usize, 1, 7, batch, batch + 1] {
                let mut x = b0.clone();
                pttrs_tiled(&Parallel, &pt, &mut x, tile);
                assert!(
                    x.max_abs_diff(&pt_ref) < 1e-13,
                    "pttrs {layout:?} tile {tile}"
                );
                let mut x = b0.clone();
                pbtrs_tiled(&Parallel, &pb, &mut x, tile);
                assert!(
                    x.max_abs_diff(&pb_ref) < 1e-12,
                    "pbtrs {layout:?} tile {tile}"
                );
                let mut x = b0.clone();
                gbtrs_tiled(&Parallel, &gb, &mut x, tile);
                assert!(
                    x.max_abs_diff(&gb_ref) < 1e-11,
                    "gbtrs {layout:?} tile {tile}"
                );
            }
        }
    }

    #[test]
    fn degenerate_single_row_systems() {
        // n == 1: no off-diagonal exists; nothing may touch e[0] (there is
        // no e[0]) and every routine must still scale by the diagonal.
        use crate::banded::{gbtrf, BandedMatrix};
        use crate::lu::getrf;
        use crate::pb::{pbtrf, SymBandedMatrix};
        let pt = pttrf(&[4.0], &[]).unwrap();
        let pb = pbtrf(&SymBandedMatrix::from_fn(1, 0, |_, _| 9.0).unwrap()).unwrap();
        let gb = gbtrf(&BandedMatrix::from_fn(1, 0, 0, |_, _| 2.0).unwrap()).unwrap();
        let lu = getrf(&Matrix::from_rows(&[&[8.0]])).unwrap();
        for tile in [0usize, 1, 3] {
            let mut b = Matrix::from_fn(1, 5, Layout::Right, |_, j| (j + 1) as f64);
            pttrs_tiled(&Serial, &pt, &mut b, tile);
            for j in 0..5 {
                assert_eq!(b.get(0, j), (j + 1) as f64 / 4.0, "pttrs tile {tile}");
            }
            let mut b = Matrix::from_fn(1, 5, Layout::Left, |_, j| (j + 1) as f64);
            pbtrs_tiled(&Serial, &pb, &mut b, tile);
            for j in 0..5 {
                // Cholesky divides by sqrt(9) twice, not by 9 once, so
                // compare to machine precision, not bit-for-bit.
                let want = (j + 1) as f64 / 9.0;
                assert!(
                    (b.get(0, j) - want).abs() < 1e-14,
                    "pbtrs tile {tile} lane {j}"
                );
            }
            let mut b = Matrix::from_fn(1, 5, Layout::Right, |_, j| (j + 1) as f64);
            gbtrs_tiled(&Serial, &gb, &mut b, tile);
            for j in 0..5 {
                assert_eq!(b.get(0, j), (j + 1) as f64 / 2.0, "gbtrs tile {tile}");
            }
        }
        let mut b = Matrix::from_fn(1, 3, Layout::Right, |_, j| (j + 1) as f64);
        for_each_lane_block_mut(&Serial, &mut b, 2, |_, mut blk| {
            getrs_block(&lu, &mut blk, 0);
        });
        for j in 0..3 {
            assert_eq!(b.get(0, j), (j + 1) as f64 / 8.0, "getrs n==1");
        }
    }

    #[test]
    fn empty_batch_ok() {
        let f = factors(4);
        let mut b = Matrix::zeros(4, 0, Layout::Left);
        pttrs_tiled(&Parallel, &f, &mut b, 8);
    }
}
