//! Algorithm-based fault tolerance (ABFT) for the batched lane solves.
//!
//! At exa-scale, the dominant *undetected* failure mode is not a crash but
//! a bit flip that turns one lane's answer into a plausible-but-wrong
//! vector. The classical ABFT defence (Huang & Abraham) is a checksum
//! relation that the correct answer must satisfy and a corrupted one
//! almost surely cannot.
//!
//! ## The checksum scheme
//!
//! At factor time we capture one extra vector per factored system,
//!
//! ```text
//!     v = A⁻ᵀ 𝟙        (one transpose solve of the all-ones vector)
//! ```
//!
//! via [`LaneSolver::solve_transposed_slice`]. For every lane solve
//! `x = A⁻¹ b` the identity `vᵀb = 𝟙ᵀx = Σᵢ xᵢ` then holds exactly in
//! real arithmetic, so after each solve we check, in O(n),
//!
//! ```text
//!     |v·b − Σx|  ≤  tol · (‖v‖₂‖b‖₂ + |Σx|)
//! ```
//!
//! where the right-hand side is the natural rounding-error scale of the
//! two dot products. A non-finite discrepancy *trips* the check (NaN
//! comparisons are false, so this is spelled explicitly). The factor-time
//! vector is pinned **before** any corruption window opens: a bit flipped
//! in factor memory between factorisation and solve changes `x` but not
//! `v`, which is exactly what makes the relation a tripwire.
//!
//! ## Escalation
//!
//! On a tripped check the lane is retried **once** from its pristine
//! right-hand side (detection costs O(n), a retry costs one O(n) solve —
//! cheap insurance against transient flips). A retry that passes is
//! *corrected*; one that trips again is *uncorrected* and must be
//! escalated by the caller (the `VerifiedBuilder` quarantine/ladder path
//! in `pp-splinesolver` does this). Counters `sdc.detected` /
//! `sdc.corrected` / `sdc.uncorrected` and the `SdcDetected` trace
//! instant record every event.
//!
//! ## Fault injection
//!
//! [`Sabotage`] is the deterministic in-band fault hook: it flips a
//! chosen bit of a chosen solution element on a chosen lane, either once
//! (a transient upset — the retry heals it) or on every solve (persistent
//! corruption — the retry trips again). Factor-memory corruption is
//! injected out of band through the `fault_data_mut` hooks on the four
//! factor types.

use crate::error::{Error, Result};
use crate::solver::LaneSolver;
use pp_portable::instrument::{counter, trace_instant_lane, Counter, InstantKind};
use pp_portable::{ExecSpace, Matrix, StridedMut};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Default relative tolerance of the checksum test. The discrepancy of a
/// correct solve is rounding error on two length-`n` dot products, i.e.
/// O(n·ε) relative to the scale term; `1e-8` leaves ~7 decimal orders of
/// headroom below the smallest single-bit mantissa upset that matters
/// (bit ~25 of the significand) while never tripping on honest
/// arithmetic at the matrix orders this workspace batches (n ≲ 10⁴).
pub const DEFAULT_ABFT_TOL: f64 = 1e-8;

/// Flip one bit of an `f64`'s IEEE-754 representation.
///
/// Bit 0 is the least-significant mantissa bit, bits 52–62 are the
/// exponent, bit 63 the sign. Shared by [`Sabotage`] and the chaos
/// harness's memory-corruption faults so every injector flips bits the
/// same way.
#[inline]
pub fn flip_bit(x: f64, bit: u32) -> f64 {
    f64::from_bits(x.to_bits() ^ (1u64 << (bit & 63)))
}

struct SdcMetrics {
    detected: Counter,
    corrected: Counter,
    uncorrected: Counter,
}

fn sdc_metrics() -> &'static SdcMetrics {
    static METRICS: OnceLock<SdcMetrics> = OnceLock::new();
    METRICS.get_or_init(|| SdcMetrics {
        detected: counter("sdc.detected"),
        corrected: counter("sdc.corrected"),
        uncorrected: counter("sdc.uncorrected"),
    })
}

/// Outcome of one checksummed lane solve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneCheck {
    /// Checksum held on the first solve.
    Clean,
    /// First solve tripped the checksum; the retry from pristine inputs
    /// passed. `discrepancy` is the tripped (first) residual of the
    /// checksum relation.
    Corrected { discrepancy: f64 },
    /// Both the solve and its retry tripped the checksum: the corruption
    /// is persistent (factor memory, not a transient upset). The lane's
    /// contents are **not trustworthy** and the caller must escalate
    /// (quarantine or recovery ladder). `discrepancy` is the retry's
    /// residual.
    Uncorrected { discrepancy: f64 },
}

impl LaneCheck {
    /// True when the lane's final contents are trustworthy.
    pub fn is_trusted(&self) -> bool {
        !matches!(self, LaneCheck::Uncorrected { .. })
    }
}

/// Deterministic in-band fault: flips `bit` of solution element `index`
/// on lane `lane`, immediately after the solve writes it.
///
/// A *transient* sabotage fires exactly once (the ABFT retry then sees a
/// clean solve and corrects); a *persistent* one fires on every solve of
/// that lane (the retry trips again and the lane is reported
/// uncorrected). Purely a test/chaos hook — production code never
/// constructs one.
#[derive(Debug)]
pub struct Sabotage {
    lane: usize,
    index: usize,
    bit: u32,
    persistent: bool,
    fired: AtomicBool,
}

impl Sabotage {
    /// One-shot upset on `lane`, flipping `bit` of element `index`.
    pub fn transient(lane: usize, index: usize, bit: u32) -> Self {
        Sabotage {
            lane,
            index,
            bit,
            persistent: false,
            fired: AtomicBool::new(false),
        }
    }

    /// Upset that recurs on every solve of `lane` (models corrupted
    /// factor or input memory).
    pub fn persistent(lane: usize, index: usize, bit: u32) -> Self {
        Sabotage {
            lane,
            index,
            bit,
            persistent: true,
            fired: AtomicBool::new(false),
        }
    }

    /// Apply the fault to a freshly solved lane. Returns whether it fired.
    fn strike(&self, lane: usize, x: &mut StridedMut<'_>) -> bool {
        if lane != self.lane || x.is_empty() {
            return false;
        }
        if !self.persistent && self.fired.swap(true, Ordering::Relaxed) {
            return false;
        }
        let i = self.index.min(x.len() - 1);
        x[i] = flip_bit(x[i], self.bit);
        true
    }
}

/// Factor-time checksum metadata for one factored system.
///
/// Deliberately decoupled from the solver it was captured from: the
/// vector is pinned at capture time, so corrupting factor memory
/// afterwards (via the `fault_data_mut` hooks) and re-solving exercises
/// the genuine detection path. For the common case where the solver
/// outlives the checksum, [`Checksummed`] bundles the two.
#[derive(Debug, Clone)]
pub struct LaneChecksum {
    v: Vec<f64>,
    vnorm: f64,
    tol: f64,
}

impl LaneChecksum {
    /// Capture the checksum vector `v = A⁻ᵀ𝟙` from freshly factored
    /// (assumed pristine) factors, with the default tolerance.
    pub fn capture(solver: &dyn LaneSolver) -> Result<Self> {
        Self::capture_with_tol(solver, DEFAULT_ABFT_TOL)
    }

    /// [`LaneChecksum::capture`] with an explicit relative tolerance.
    pub fn capture_with_tol(solver: &dyn LaneSolver, tol: f64) -> Result<Self> {
        let n = solver.n();
        let mut v = vec![1.0; n];
        solver.solve_transposed_slice(&mut v);
        if let Some(index) = v.iter().position(|x| !x.is_finite()) {
            return Err(Error::NonFinite {
                routine: "abft",
                lane: 0,
                index,
            });
        }
        let vnorm = v.iter().map(|x| x * x).sum::<f64>().sqrt();
        Ok(LaneChecksum {
            v,
            vnorm,
            tol: tol.abs(),
        })
    }

    /// The checksum vector `v = A⁻ᵀ𝟙`.
    pub fn vector(&self) -> &[f64] {
        &self.v
    }

    /// Relative tolerance of the checksum test.
    pub fn tol(&self) -> f64 {
        self.tol
    }

    /// Evaluate the checksum relation for a solved lane: `vb` is `v·b`
    /// of the pristine right-hand side, `bnorm` its 2-norm, `x` the
    /// computed solution. Returns `(tripped, discrepancy)`.
    fn evaluate(&self, vb: f64, bnorm: f64, x: &StridedMut<'_>) -> (bool, f64) {
        let sx: f64 = x.as_ref().iter().sum();
        let disc = (vb - sx).abs();
        let scale = self.vnorm * bnorm + sx.abs();
        // NaN/Inf anywhere in the pipeline must trip: `NaN > t` is false,
        // so the non-finite case is spelled out.
        let tripped = !disc.is_finite() || disc > self.tol * scale;
        (tripped, disc)
    }

    /// Checksummed lane solve with retry-once-from-pristine escalation.
    ///
    /// Solves in place like [`LaneSolver::solve_lane`]. On a tripped
    /// checksum the lane is restored from its saved right-hand side and
    /// solved again; the verdict distinguishes clean, corrected and
    /// uncorrected outcomes. Counters and the `SdcDetected` trace
    /// instant fire on every detection.
    pub fn solve_lane_checked(
        &self,
        solver: &dyn LaneSolver,
        lane_idx: usize,
        lane: &mut StridedMut<'_>,
        sabotage: Option<&Sabotage>,
    ) -> LaneCheck {
        let pristine = lane.to_vec();
        let vb: f64 = self
            .v
            .iter()
            .zip(pristine.iter())
            .map(|(vi, bi)| vi * bi)
            .sum();
        let bnorm = pristine.iter().map(|x| x * x).sum::<f64>().sqrt();

        solver.solve_lane(lane);
        if let Some(s) = sabotage {
            s.strike(lane_idx, lane);
        }
        let (tripped, disc) = self.evaluate(vb, bnorm, &lane.reborrow());
        if !tripped {
            return LaneCheck::Clean;
        }

        let m = sdc_metrics();
        m.detected.inc();
        trace_instant_lane(InstantKind::SdcDetected, lane_idx as u32);

        // Retry once from pristine inputs: a transient upset is gone, a
        // persistent one (corrupted factor memory) trips again.
        lane.copy_from_slice(&pristine);
        solver.solve_lane(lane);
        if let Some(s) = sabotage {
            s.strike(lane_idx, lane);
        }
        let (tripped2, disc2) = self.evaluate(vb, bnorm, &lane.reborrow());
        if tripped2 {
            m.uncorrected.inc();
            LaneCheck::Uncorrected { discrepancy: disc2 }
        } else {
            m.corrected.inc();
            LaneCheck::Corrected { discrepancy: disc }
        }
    }
}

/// Batch-level summary of a checksummed solve ([`solve_all_checked`]).
#[derive(Debug, Clone)]
pub struct AbftReport {
    /// Per-lane verdicts, indexed by batch lane.
    pub verdicts: Vec<LaneCheck>,
    /// Lanes whose first solve passed the checksum.
    pub clean: usize,
    /// Lanes corrected by the pristine retry.
    pub corrected: usize,
    /// Lanes still tripping after retry — caller must escalate these.
    pub uncorrected: usize,
    /// Largest checksum discrepancy observed across all trips.
    pub max_discrepancy: f64,
}

impl AbftReport {
    /// True when every lane's final contents are trustworthy (no lane
    /// ended uncorrected) — the "no silent wrong answer" invariant.
    pub fn all_trusted(&self) -> bool {
        self.uncorrected == 0
    }

    /// Lanes that tripped the checksum at least once.
    pub fn detected(&self) -> usize {
        self.corrected + self.uncorrected
    }
}

const VERDICT_CLEAN: u8 = 0;
const VERDICT_CORRECTED: u8 = 1;
const VERDICT_UNCORRECTED: u8 = 2;

/// Checksummed batched solve: every column of `b` through
/// [`LaneChecksum::solve_lane_checked`] on the given execution space.
///
/// The verdict bookkeeping is lock-free (one atomic slot per lane), so
/// this parallelises exactly like the unchecked `batched::*` routines.
pub fn solve_all_checked<E: ExecSpace>(
    exec: &E,
    solver: &dyn LaneSolver,
    checksum: &LaneChecksum,
    b: &mut Matrix,
    sabotage: Option<&Sabotage>,
) -> AbftReport {
    let lanes = b.ncols();
    let verdicts: Vec<AtomicU8> = (0..lanes).map(|_| AtomicU8::new(VERDICT_CLEAN)).collect();
    let discs: Vec<AtomicU64> = (0..lanes).map(|_| AtomicU64::new(0)).collect();

    exec.for_each_lane_mut(b, |lane_idx, mut lane| {
        let verdict = checksum.solve_lane_checked(solver, lane_idx, &mut lane, sabotage);
        let (code, disc) = match verdict {
            LaneCheck::Clean => (VERDICT_CLEAN, 0.0),
            LaneCheck::Corrected { discrepancy } => (VERDICT_CORRECTED, discrepancy),
            LaneCheck::Uncorrected { discrepancy } => (VERDICT_UNCORRECTED, discrepancy),
        };
        verdicts[lane_idx].store(code, Ordering::Relaxed);
        discs[lane_idx].store(disc.to_bits(), Ordering::Relaxed);
    });

    let mut report = AbftReport {
        verdicts: Vec::with_capacity(lanes),
        clean: 0,
        corrected: 0,
        uncorrected: 0,
        max_discrepancy: 0.0,
    };
    for (slot, disc) in verdicts.iter().zip(&discs) {
        let d = f64::from_bits(disc.load(Ordering::Relaxed));
        if !d.is_finite() || d > report.max_discrepancy {
            report.max_discrepancy = d;
        }
        let verdict = match slot.load(Ordering::Relaxed) {
            VERDICT_CORRECTED => {
                report.corrected += 1;
                LaneCheck::Corrected { discrepancy: d }
            }
            VERDICT_UNCORRECTED => {
                report.uncorrected += 1;
                LaneCheck::Uncorrected { discrepancy: d }
            }
            _ => {
                report.clean += 1;
                LaneCheck::Clean
            }
        };
        report.verdicts.push(verdict);
    }
    report
}

/// Convenience bundle of a lane solver and its factor-time checksum, for
/// the common case where the factors stay pristine in the caller's hands
/// and corruption is only ever *simulated* via [`Sabotage`].
pub struct Checksummed<'a> {
    solver: &'a dyn LaneSolver,
    checksum: LaneChecksum,
    sabotage: Option<Sabotage>,
}

impl<'a> Checksummed<'a> {
    /// Wrap a freshly factored solver with a captured checksum and the
    /// default tolerance.
    pub fn new(solver: &'a dyn LaneSolver) -> Result<Self> {
        Ok(Checksummed {
            checksum: LaneChecksum::capture(solver)?,
            solver,
            sabotage: None,
        })
    }

    /// Override the relative tolerance of the checksum test.
    pub fn with_tol(solver: &'a dyn LaneSolver, tol: f64) -> Result<Self> {
        Ok(Checksummed {
            checksum: LaneChecksum::capture_with_tol(solver, tol)?,
            solver,
            sabotage: None,
        })
    }

    /// Arm a deterministic fault (test/chaos hook).
    pub fn with_sabotage(mut self, sabotage: Sabotage) -> Self {
        self.sabotage = Some(sabotage);
        self
    }

    /// The captured factor-time checksum.
    pub fn checksum(&self) -> &LaneChecksum {
        &self.checksum
    }

    /// Checksummed solve of one lane (see
    /// [`LaneChecksum::solve_lane_checked`]).
    pub fn solve_lane_checked(&self, lane_idx: usize, lane: &mut StridedMut<'_>) -> LaneCheck {
        self.checksum
            .solve_lane_checked(self.solver, lane_idx, lane, self.sabotage.as_ref())
    }

    /// Checksummed batched solve (see [`solve_all_checked`]).
    pub fn solve_all<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) -> AbftReport {
        solve_all_checked(exec, self.solver, &self.checksum, b, self.sabotage.as_ref())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::{gbtrf, BandedMatrix};
    use crate::batched;
    use crate::lu::getrf;
    use crate::pb::{pbtrf, SymBandedMatrix};
    use crate::pt::pttrf;
    use pp_portable::{Layout, Serial, TestRng};

    fn random_rhs(n: usize, lanes: usize, seed: u64) -> Matrix {
        let mut rng = TestRng::seed_from_u64(seed);
        Matrix::from_fn(n, lanes, Layout::Left, |_, _| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn clean_batch_is_bit_identical_to_unchecked_solve() {
        let n = 12;
        let f = pttrf(&vec![4.0; n], &vec![-1.0; n - 1]).unwrap();
        let cs = Checksummed::new(&f).unwrap();

        let mut checked = random_rhs(n, 9, 42);
        let mut plain = checked.clone();
        let report = cs.solve_all(&Serial, &mut checked);
        batched::pttrs(&Serial, &f, &mut plain);

        assert_eq!(report.clean, 9);
        assert_eq!(report.corrected, 0);
        assert_eq!(report.uncorrected, 0);
        assert!(report.all_trusted());
        assert_eq!(
            checked.as_slice(),
            plain.as_slice(),
            "the checksum path must not perturb a clean solve"
        );
    }

    #[test]
    fn all_four_solvers_capture_and_pass_clean() {
        let n = 10;
        let diag = 4.0;
        let off = -1.0;
        let dense = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                diag
            } else if i.abs_diff(j) == 1 {
                off
            } else {
                0.0
            }
        });
        let solvers: Vec<Box<dyn LaneSolver>> = vec![
            Box::new(pttrf(&vec![diag; n], &vec![off; n - 1]).unwrap()),
            Box::new(
                pbtrf(
                    &SymBandedMatrix::from_fn(n, 1, |i, j| if i == j { diag } else { off })
                        .unwrap(),
                )
                .unwrap(),
            ),
            Box::new(
                gbtrf(
                    &BandedMatrix::from_fn(n, 1, 1, |i, j| if i == j { diag } else { off })
                        .unwrap(),
                )
                .unwrap(),
            ),
            Box::new(getrf(&dense).unwrap()),
        ];
        for s in &solvers {
            let cs = Checksummed::new(s.as_ref()).unwrap();
            let mut b = random_rhs(n, 5, 7);
            let report = cs.solve_all(&Serial, &mut b);
            assert_eq!(report.clean, 5, "routine {}", s.routine());
            assert!(report.all_trusted());
        }
    }

    #[test]
    fn transient_upset_is_detected_and_corrected() {
        let n = 16;
        let f = pttrf(&vec![5.0; n], &vec![1.0; n - 1]).unwrap();
        // Flip a high mantissa bit of element 2 on lane 3, once.
        let cs = Checksummed::new(&f)
            .unwrap()
            .with_sabotage(Sabotage::transient(3, 2, 51));

        let mut b = random_rhs(n, 6, 11);
        let mut reference = b.clone();
        let report = cs.solve_all(&Serial, &mut b);
        batched::pttrs(&Serial, &f, &mut reference);

        assert_eq!(report.corrected, 1);
        assert_eq!(report.uncorrected, 0);
        assert_eq!(report.clean, 5);
        assert!(matches!(report.verdicts[3], LaneCheck::Corrected { .. }));
        assert!(report.all_trusted());
        assert!(report.max_discrepancy > 0.0);
        assert_eq!(
            b.as_slice(),
            reference.as_slice(),
            "a corrected lane must match the pristine solve bit for bit"
        );
    }

    #[test]
    fn persistent_sabotage_is_reported_uncorrected() {
        let n = 8;
        let f = pttrf(&vec![4.0; n], &vec![-1.0; n - 1]).unwrap();
        let cs = Checksummed::new(&f)
            .unwrap()
            .with_sabotage(Sabotage::persistent(1, 0, 52));
        let mut b = random_rhs(n, 4, 3);
        let report = cs.solve_all(&Serial, &mut b);
        assert_eq!(report.uncorrected, 1);
        assert!(!report.all_trusted());
        assert!(matches!(report.verdicts[1], LaneCheck::Uncorrected { .. }));
        assert!(!report.verdicts[1].is_trusted());
    }

    /// The genuine ABFT scenario: the checksum is captured from pristine
    /// factors, then factor memory is corrupted out of band. Every lane
    /// must trip — and keep tripping on retry (the corruption is in the
    /// factors, not the lane).
    #[test]
    fn factor_memory_corruption_trips_every_lane() {
        let n = 12;
        let mut f = pttrf(&vec![4.0; n], &vec![-1.0; n - 1]).unwrap();
        let checksum = LaneChecksum::capture(&f).unwrap();

        // Exponent-bit flip in the D diagonal: a large, plausible-looking
        // perturbation (no NaN, no Inf).
        {
            let (d, _e) = f.fault_data_mut();
            d[n / 2] = flip_bit(d[n / 2], 54);
        }

        let mut b = random_rhs(n, 5, 23);
        let report = solve_all_checked(&Serial, &f, &checksum, &mut b, None);
        assert_eq!(report.clean, 0);
        assert_eq!(report.corrected, 0);
        assert_eq!(
            report.uncorrected, 5,
            "persistent corruption cannot be retried away"
        );
        assert!(!report.all_trusted());
    }

    /// Same scenario for the other three factor types' fault hooks.
    #[test]
    fn factor_corruption_detected_for_all_hooked_types() {
        let n = 10;
        let diag = 4.0;
        let off = -1.0;
        let dense = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                diag
            } else if i.abs_diff(j) == 1 {
                off
            } else {
                0.0
            }
        });

        let mut pb =
            pbtrf(&SymBandedMatrix::from_fn(n, 1, |i, j| if i == j { diag } else { off }).unwrap())
                .unwrap();
        let mut gb =
            gbtrf(&BandedMatrix::from_fn(n, 1, 1, |i, j| if i == j { diag } else { off }).unwrap())
                .unwrap();
        let mut lu = getrf(&dense).unwrap();

        let cks_pb = LaneChecksum::capture(&pb).unwrap();
        let cks_gb = LaneChecksum::capture(&gb).unwrap();
        let cks_lu = LaneChecksum::capture(&lu).unwrap();

        pb.fault_data_mut()[0] = flip_bit(pb.fault_data_mut()[0], 54);
        {
            let ab = gb.fault_data_mut();
            // The expanded band is mostly zero fill-in; corrupt the
            // largest-magnitude factor entry so the flip actually lands
            // on live data.
            let (imax, _) = ab
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.abs().total_cmp(&b.1.abs()))
                .unwrap();
            ab[imax] = flip_bit(ab[imax], 54);
        }
        lu.fault_data_mut()[0] = flip_bit(lu.fault_data_mut()[0], 54);

        for (name, solver, cks) in [
            ("pbtrs", &pb as &dyn LaneSolver, &cks_pb),
            ("gbtrs", &gb as &dyn LaneSolver, &cks_gb),
            ("getrs", &lu as &dyn LaneSolver, &cks_lu),
        ] {
            let mut b = random_rhs(n, 3, 5);
            let report = solve_all_checked(&Serial, solver, cks, &mut b, None);
            assert!(
                report.uncorrected > 0,
                "{name}: corrupted factors must not produce a trusted answer"
            );
        }
    }

    #[test]
    fn nan_discrepancy_trips_instead_of_passing() {
        let n = 6;
        let f = pttrf(&vec![4.0; n], &vec![-1.0; n - 1]).unwrap();
        let cs = Checksummed::new(&f).unwrap();
        // NaN in the RHS: v·b is NaN, Σx is NaN — the comparison must
        // trip, not silently pass because `NaN > tol` is false.
        let mut b = Matrix::zeros(n, 1, Layout::Left);
        b.as_mut_slice()[2] = f64::NAN;
        let report = cs.solve_all(&Serial, &mut b);
        assert_eq!(report.uncorrected, 1);
        assert!(!report.all_trusted());
    }

    #[test]
    fn capture_rejects_garbage_factors() {
        let n = 4;
        let mut f = pttrf(&vec![4.0; n], &vec![-1.0; n - 1]).unwrap();
        {
            let (d, _) = f.fault_data_mut();
            d[0] = f64::NAN;
        }
        assert!(matches!(
            LaneChecksum::capture(&f),
            Err(Error::NonFinite {
                routine: "abft",
                ..
            })
        ));
    }

    #[test]
    fn flip_bit_is_an_involution() {
        for bit in [0u32, 12, 33, 51, 52, 62, 63] {
            let x = 3.25_f64;
            assert_eq!(flip_bit(flip_bit(x, bit), bit), x);
            assert_ne!(flip_bit(x, bit).to_bits(), x.to_bits());
        }
    }

    /// Checksum math sanity: v·b equals Σx to rounding error for random
    /// SPD systems across all lane counts, so the default tolerance has
    /// huge margin on honest solves.
    #[test]
    fn prop_clean_solves_never_trip() {
        let mut g = TestRng::seed_from_u64(0xABF7);
        for _ in 0..32 {
            let n = g.gen_range(1usize..40);
            let mut rng = TestRng::seed_from_u64(g.gen_range(0u64..10_000));
            let e: Vec<f64> = (0..n.saturating_sub(1))
                .map(|_| rng.gen_range(-1.0..1.0))
                .collect();
            let d: Vec<f64> = (0..n)
                .map(|i| {
                    let left = if i > 0 { e[i - 1].abs() } else { 0.0 };
                    let right = if i < n.saturating_sub(1) {
                        e[i].abs()
                    } else {
                        0.0
                    };
                    left + right + rng.gen_range(0.5..2.0)
                })
                .collect();
            let f = pttrf(&d, &e).unwrap();
            let cs = Checksummed::new(&f).unwrap();
            let mut b = random_rhs(n, 7, rng.gen_range(0u64..1000));
            let report = cs.solve_all(&Serial, &mut b);
            assert_eq!(report.clean, 7, "n = {n}");
        }
    }
}
