//! # pp-bench — the experiment harness
//!
//! One binary per table/figure of the paper (see DESIGN.md §4 for the
//! index), plus timing micro-benchmarks. This library holds the shared
//! plumbing: the six spline configurations the paper sweeps, simple CLI
//! parsing, CSV/ASCII output helpers, and the measured-vs-modelled
//! plumbing that keeps host measurements and GPU cache-model predictions
//! clearly separated.
//!
//! Run a harness binary with `--help`-less simplicity:
//!
//! ```text
//! cargo run --release -p pp-bench --bin table3_optimization -- [nx] [nv] [iters]
//! ```

// Numerical kernels here deliberately use index loops (matching the
// LAPACK-style algorithms they implement) and NaN-rejecting negated
// comparisons; silence the corresponding style lints crate-wide.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::int_plus_one)]

pub mod ascii_plot;
pub mod configs;
pub mod gpu_model;
pub mod json;

pub use ascii_plot::AsciiPlot;
pub use configs::{parse_args, BenchArgs, SplineConfig};

use std::time::{Duration, Instant};

/// Time `iters` runs of `f`, returning the mean duration (after one
/// untimed warm-up run).
pub fn time_mean(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0, "need at least one iteration");
    f(); // warm-up
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// Format a duration in the paper's style (ms with two decimals).
pub fn fmt_ms(d: Duration) -> String {
    format!("{:.2} ms", d.as_secs_f64() * 1e3)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_mean_is_positive() {
        let d = time_mean(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        let _ = d; // duration may round to zero on coarse clocks; just type-check
    }

    #[test]
    fn fmt_ms_format() {
        assert_eq!(fmt_ms(Duration::from_micros(11390)), "11.39 ms");
    }
}
