//! # pp-advection — the batched semi-Lagrangian benchmark application
//!
//! The paper's performance evaluation (§III-C, §V, Fig. 2) runs a **1D
//! batched advection** solver: the advection term of the Vlasov equation
//! (1) is integrated along `x` with the backward semi-Lagrangian method,
//! batched over the `v` dimension. One step is Algorithm 2:
//!
//! 1. transpose the distribution so the interpolation dimension is
//!    contiguous per batch lane,
//! 2. build splines — the operation the whole paper optimises,
//! 3. transpose back,
//! 4. follow each characteristic one `Δt` backwards and interpolate.
//!
//! [`Advection1D`] implements exactly that, on either the direct
//! (Kokkos-kernels-style) or iterative (Ginkgo-style) spline backend, and
//! reports per-phase timings so the harness can reproduce both the
//! end-to-end GLUPS of Fig. 2 and the `ddc_splines_solve`-region timings
//! of Tables III and V.
//!
//! [`vlasov::VlasovPoisson1D1V`] composes two such advections with a 1-D
//! Poisson solve into the plasma two-stream-instability demo that GYSELA's
//! physics motivates.

// Numerical kernels here deliberately use index loops (matching the
// LAPACK-style algorithms they implement) and NaN-rejecting negated
// comparisons; silence the corresponding style lints crate-wide.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::int_plus_one)]

pub mod error;
pub mod rotation2d;
pub mod semilagrangian;
pub mod vlasov;

pub use error::{Error, Result};
pub use rotation2d::Rotation2D;
pub use semilagrangian::{Advection1D, AdvectionDiagnostics, SplineBackend, StepTimings};
pub use vlasov::VlasovPoisson1D1V;
