//! Chaos-soak campaign: seeded randomized fault scenarios driven through
//! the budgeted batched Krylov stack, with hard invariants checked on
//! every round. Writes machine-readable `BENCH_chaos.json` and exits
//! non-zero if any invariant is violated — this is a robustness gate, not
//! a performance benchmark.
//!
//! Each seed deterministically generates one scenario (system size, batch
//! width, NaN-poisoned lanes, near-singular perturbation, per-lane spin
//! delay, budget class, memory-corruption mode) via
//! [`FaultInjector::chaos_round`]. Invariants:
//!
//! * **no hang** — a budgeted round returns within its deadline plus the
//!   pool watchdog slack plus a scheduling margin;
//! * **no silent cuts** — every lane the budget cut short is surfaced as
//!   `LaneOutcome::Partial` and logged as `BudgetExhausted`;
//! * **determinism** — rounds without clock pressure replay bit-for-bit
//!   from their seed (solution checksum included);
//! * **no poisoned pool** — after the whole campaign the worker pool
//!   still runs a clean dispatch and a clean solve converges;
//! * **SDC containment** — the ABFT leg never lets injected bit-flips
//!   produce a silent wrong answer: transient flips are corrected,
//!   persistent factor corruption is detected, clean rounds never trip
//!   (`ChaosReport::sdc_contained`).
//!
//! Usage: `chaos_soak [--seeds N] [--smoke] [--out PATH]`
//!   --seeds  number of seeds to soak (default 64; minimum 32 enforced
//!            unless --smoke)
//!   --smoke  8 seeds, for scripts/verify.sh and CI PR runs
//!   --out    output JSON path (default BENCH_chaos.json)

use pp_iterative::{ChaosBudgetKind, FaultInjector};
use pp_portable::parallel_for;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

fn main() {
    let mut smoke = false;
    let mut seeds: Option<u64> = None;
    let mut out = String::from("BENCH_chaos.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--seeds" => {
                seeds = Some(
                    args.next()
                        .expect("--seeds needs a count")
                        .parse()
                        .expect("--seeds needs an integer"),
                )
            }
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (expected --seeds N / --smoke / --out)"),
        }
    }
    let count = match (smoke, seeds) {
        (true, n) => n.unwrap_or(8),
        (false, Some(n)) => n.max(32),
        (false, None) => 64,
    };

    println!("=== chaos_soak: {count} seeded fault campaign(s) ===");
    println!(
        "seed,lanes,poisoned,near_singular,budget,elapsed_us,converged,partial,broke,stalled,\
         sdc_mode,sdc_detected,sdc_corrected,sdc_uncorrected,sdc_silent_wrong"
    );

    let started = Instant::now();
    let mut rows = Vec::new();
    let mut violations = Vec::new();
    let (mut unlimited, mut ample, mut tight) = (0usize, 0usize, 0usize);
    let mut total_partial = 0usize;
    let (mut sdc_detected, mut sdc_corrected, mut sdc_uncorrected, mut sdc_silent_wrong) =
        (0usize, 0usize, 0usize, 0usize);
    for seed in 0..count {
        let r = FaultInjector::chaos_round(seed);
        match r.budget_kind {
            ChaosBudgetKind::Unlimited => unlimited += 1,
            ChaosBudgetKind::Ample => ample += 1,
            ChaosBudgetKind::Tight => tight += 1,
        }
        total_partial += r.partial;
        sdc_detected += r.sdc_detected;
        sdc_corrected += r.sdc_corrected;
        sdc_uncorrected += r.sdc_uncorrected;
        sdc_silent_wrong += r.sdc_silent_wrong;
        if !r.sdc_contained() {
            violations.push(format!(
                "seed {seed}: sdc containment — mode {:?}: {} detected, {} corrected, \
                 {} uncorrected, {} SILENT WRONG ANSWER(S)",
                r.sdc_mode, r.sdc_detected, r.sdc_corrected, r.sdc_uncorrected, r.sdc_silent_wrong
            ));
        }
        if !r.no_hang() {
            violations.push(format!(
                "seed {seed}: hang — elapsed {:?} exceeds bound {:?}",
                r.elapsed,
                r.hang_bound()
            ));
        }
        if !r.tallies_consistent() {
            violations.push(format!(
                "seed {seed}: tally mismatch — {}+{}+{}+{} != {} lanes",
                r.converged, r.partial, r.broke, r.stalled, r.lanes
            ));
        }
        let logged_cuts = r
            .lane_results
            .iter()
            .filter(|res| res.breakdown == Some(pp_iterative::BreakdownKind::BudgetExhausted))
            .count();
        if logged_cuts != r.partial {
            violations.push(format!(
                "seed {seed}: silent cut — {} partial lanes but {} BudgetExhausted records",
                r.partial, logged_cuts
            ));
        }
        if r.budget_kind != ChaosBudgetKind::Tight {
            let replay = FaultInjector::chaos_round(seed);
            if replay.checksum != r.checksum {
                violations.push(format!(
                    "seed {seed}: nondeterministic replay — checksum {:#x} vs {:#x}",
                    r.checksum, replay.checksum
                ));
            }
        }
        println!(
            "{seed},{},{},{},{:?},{},{},{},{},{},{:?},{},{},{},{}",
            r.lanes,
            r.poisoned.len(),
            r.near_singular,
            r.budget_kind,
            r.elapsed.as_micros(),
            r.converged,
            r.partial,
            r.broke,
            r.stalled,
            r.sdc_mode,
            r.sdc_detected,
            r.sdc_corrected,
            r.sdc_uncorrected,
            r.sdc_silent_wrong
        );
        rows.push(r);
    }
    let campaign_elapsed = started.elapsed();

    // Pool-health probe: the campaign must leave the worker pool usable.
    let hits = AtomicUsize::new(0);
    parallel_for(1024, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    if hits.load(Ordering::Relaxed) != 1024 {
        violations.push(format!(
            "poisoned pool — post-campaign dispatch visited {}/1024 lanes",
            hits.load(Ordering::Relaxed)
        ));
    }

    let stats = pp_portable::pool_stats();
    println!(
        "\ncampaign: {count} seed(s) in {:?}; budgets {unlimited} unlimited / {ample} ample / \
         {tight} tight; {total_partial} partial lane(s); pool: {} deadline miss(es), \
         {} cancelled dispatch(es), {} watchdog trip(s); sdc: {sdc_detected} detected / \
         {sdc_corrected} corrected / {sdc_uncorrected} uncorrected / \
         {sdc_silent_wrong} silent-wrong",
        campaign_elapsed, stats.deadline_misses, stats.cancelled_dispatches, stats.watchdog_trips
    );

    // Hand-rolled JSON (the workspace is hermetic: no serde).
    let mut j = String::new();
    j.push_str("{\n  \"bench\": \"chaos_soak\",\n");
    let _ = writeln!(
        j,
        "  \"schema_version\": {},",
        pp_portable::instrument::SCHEMA_VERSION
    );
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    let _ = writeln!(j, "  \"seeds\": {count},");
    let _ = writeln!(j, "  \"elapsed_ms\": {},", campaign_elapsed.as_millis());
    let _ = writeln!(
        j,
        "  \"budget_mix\": {{\"unlimited\": {unlimited}, \"ample\": {ample}, \"tight\": {tight}}},"
    );
    let _ = writeln!(j, "  \"partial_lanes\": {total_partial},");
    let _ = writeln!(j, "  \"deadline_misses\": {},", stats.deadline_misses);
    let _ = writeln!(j, "  \"watchdog_trips\": {},", stats.watchdog_trips);
    let _ = writeln!(
        j,
        "  \"sdc\": {{\"detected\": {sdc_detected}, \"corrected\": {sdc_corrected}, \
         \"uncorrected\": {sdc_uncorrected}, \"silent_wrong\": {sdc_silent_wrong}}},"
    );
    let _ = writeln!(j, "  \"violations\": {},", violations.len());
    j.push_str("  \"rounds\": [\n");
    for (k, r) in rows.iter().enumerate() {
        let _ = write!(
            j,
            "    {{\"seed\": {}, \"lanes\": {}, \"poisoned\": {}, \"near_singular\": {}, \
             \"budget\": \"{:?}\", \"elapsed_us\": {}, \"converged\": {}, \"partial\": {}, \
             \"broke\": {}, \"stalled\": {}, \"sdc_mode\": \"{:?}\", \"sdc_detected\": {}, \
             \"sdc_corrected\": {}, \"sdc_uncorrected\": {}, \"sdc_silent_wrong\": {}, \
             \"checksum\": \"{:#x}\"}}",
            r.seed,
            r.lanes,
            r.poisoned.len(),
            r.near_singular,
            r.budget_kind,
            r.elapsed.as_micros(),
            r.converged,
            r.partial,
            r.broke,
            r.stalled,
            r.sdc_mode,
            r.sdc_detected,
            r.sdc_corrected,
            r.sdc_uncorrected,
            r.sdc_silent_wrong,
            r.checksum
        );
        j.push_str(if k + 1 < rows.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]\n}\n");
    std::fs::write(&out, &j).expect("write JSON");
    println!("wrote {out}");

    if !violations.is_empty() {
        eprintln!("\nchaos_soak: {} invariant violation(s):", violations.len());
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
    println!("all invariants held across {count} seed(s)");
}
