//! Convergence logging — the analogue of the Ginkgo `convergence_logger`
//! the paper attaches around each chunked solve (Listing 3, lines 27/31).

use crate::solver::SolveResult;

/// Aggregates per-right-hand-side solve outcomes across a multi-RHS run.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceLogger {
    results: Vec<SolveResult>,
}

impl ConvergenceLogger {
    /// Fresh logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one solve.
    pub fn record(&mut self, result: SolveResult) {
        self.results.push(result);
    }

    /// Record a batch of solves.
    pub fn record_all(&mut self, results: impl IntoIterator<Item = SolveResult>) {
        self.results.extend(results);
    }

    /// Number of recorded solves.
    pub fn count(&self) -> usize {
        self.results.len()
    }

    /// Whether every recorded solve converged.
    pub fn all_converged(&self) -> bool {
        self.results.iter().all(|r| r.converged)
    }

    /// Largest iteration count over all solves — the figure the paper's
    /// Table IV reports ("the number of iterations for each chunk remains
    /// constant", i.e. max == typical).
    pub fn max_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).max().unwrap_or(0)
    }

    /// Smallest iteration count.
    pub fn min_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).min().unwrap_or(0)
    }

    /// Mean iteration count.
    pub fn mean_iterations(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results.iter().map(|r| r.iterations).sum::<usize>() as f64
                / self.results.len() as f64
        }
    }

    /// Total iterations across all solves (proportional to total work).
    pub fn total_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).sum()
    }

    /// Worst final relative residual.
    pub fn worst_residual(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.relative_residual)
            .fold(0.0, f64::max)
    }

    /// Clear all records.
    pub fn reset(&mut self) {
        self.results.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(iterations: usize, converged: bool, rr: f64) -> SolveResult {
        SolveResult {
            iterations,
            converged,
            relative_residual: rr,
        }
    }

    #[test]
    fn aggregation() {
        let mut log = ConvergenceLogger::new();
        log.record(res(10, true, 1e-16));
        log.record(res(14, true, 5e-16));
        log.record(res(12, true, 2e-16));
        assert_eq!(log.count(), 3);
        assert_eq!(log.max_iterations(), 14);
        assert_eq!(log.min_iterations(), 10);
        assert_eq!(log.total_iterations(), 36);
        assert!((log.mean_iterations() - 12.0).abs() < 1e-12);
        assert!(log.all_converged());
        assert_eq!(log.worst_residual(), 5e-16);
    }

    #[test]
    fn divergence_detected() {
        let mut log = ConvergenceLogger::new();
        log.record_all([res(10, true, 1e-16), res(10_000, false, 1e-3)]);
        assert!(!log.all_converged());
    }

    #[test]
    fn empty_logger() {
        let log = ConvergenceLogger::new();
        assert_eq!(log.max_iterations(), 0);
        assert_eq!(log.mean_iterations(), 0.0);
        assert!(log.all_converged());
    }

    #[test]
    fn reset_clears() {
        let mut log = ConvergenceLogger::new();
        log.record(res(5, true, 0.0));
        log.reset();
        assert_eq!(log.count(), 0);
    }
}
