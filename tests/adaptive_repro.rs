//! Reproducibility regression for trace-driven adaptive dispatch.
//!
//! The adaptation contract (`pp_portable::adaptive`) is that live
//! telemetry may change *scheduling* — spin budgets, chunk boundaries,
//! tile widths — but never *results*:
//!
//! * with `PP_ADAPTIVE` off, behavior is exactly the pre-adaptive static
//!   policy, and
//! * with adaptation on, results are bitwise-identical to static — at
//!   every point of the learning curve, since the estimators reshape the
//!   schedule between calls.
//!
//! These tests pin both halves via [`set_adaptive_override`], the
//! within-process policy switch (the env knob is read once per process).
//! They mutate process-global policy, so each one restores the override
//! before returning and takes the shared guard first.

use batched_splines::bsplines::{Breaks, PeriodicSplineSpace};
use batched_splines::portable::{
    parallel_for_each_mut, parallel_sum, set_adaptive_override, Layout, Matrix, Parallel, TestRng,
};
use batched_splines::splinesolver::{BuilderVersion, SplineBuilder};
use std::sync::Mutex;

/// Serialises the tests in this file: the adaptive override is process
/// state, and cargo runs test functions on parallel threads.
static POLICY: Mutex<()> = Mutex::new(());

fn with_policy<R>(forced: bool, f: impl FnOnce() -> R) -> R {
    set_adaptive_override(Some(forced));
    let out = f();
    set_adaptive_override(None);
    out
}

fn solve_once(builder: &SplineBuilder, rhs: &Matrix) -> Vec<u64> {
    let mut x = rhs.clone();
    builder.solve_in_place(&Parallel, &mut x).unwrap();
    (0..x.ncols())
        .flat_map(|j| x.col(j).to_vec())
        .map(f64::to_bits)
        .collect()
}

#[test]
fn adaptive_solves_are_bitwise_identical_to_static() {
    let _g = POLICY.lock().unwrap_or_else(|e| e.into_inner());
    let space = PeriodicSplineSpace::new(Breaks::uniform(48, 0.0, 1.0).unwrap(), 3).unwrap();
    let mut rng = TestRng::seed_from_u64(0xada9);
    let rhs = Matrix::from_fn(48, 257, Layout::Left, |_, _| rng.gen_range(-2.0..2.0));

    for version in BuilderVersion::ALL {
        let builder = SplineBuilder::new(space.clone(), version).unwrap();
        // Static = the pre-adaptive behavior (PP_ADAPTIVE=0).
        let baseline = with_policy(false, || solve_once(&builder, &rhs));
        // Adaptive, repeatedly: the first calls run with unseeded
        // estimators, later ones with learned spin/chunk/tile choices
        // (the tile tuner is still exploring its ladder here) — every
        // point of the learning curve must match the static bits.
        with_policy(true, || {
            for round in 0..8 {
                assert_eq!(
                    solve_once(&builder, &rhs),
                    baseline,
                    "{version:?} round {round}: adaptive result diverged"
                );
            }
        });
        // And switching back off returns the exact static behavior.
        assert_eq!(with_policy(false, || solve_once(&builder, &rhs)), baseline);
    }
}

#[test]
fn adaptive_chunking_visits_each_element_exactly_once() {
    let _g = POLICY.lock().unwrap_or_else(|e| e.into_inner());
    // Drive the per-lane estimator with cheap lanes (which is where
    // adaptive claims coarsen), then check the per-element contract.
    with_policy(true, || {
        for _ in 0..16 {
            let mut items = vec![0u64; 4093];
            parallel_for_each_mut(&mut items, |i, slot| *slot += i as u64 + 1);
            for (i, v) in items.iter().enumerate() {
                assert_eq!(*v, i as u64 + 1, "slot {i} visited exactly once");
            }
        }
    });
}

#[test]
fn parallel_sum_bracketing_is_policy_independent() {
    let _g = POLICY.lock().unwrap_or_else(|e| e.into_inner());
    // parallel_sum is deliberately excluded from adaptive chunking: its
    // chunk size *is* the partial-sum bracketing. The bits must not
    // depend on the policy or on anything the estimators have learned.
    let f = |i: usize| ((i as f64) * 0.7).sin() * 10f64.powi((i % 13) as i32 - 6);
    let on = with_policy(true, || {
        // Seed the estimators with real dispatches first, so a
        // hypothetical adaptive bracketing would have data to act on.
        for _ in 0..8 {
            let mut items = vec![0u64; 2048];
            parallel_for_each_mut(&mut items, |i, slot| *slot = i as u64);
        }
        parallel_sum(10_000, f)
    });
    let off = with_policy(false, || parallel_sum(10_000, f));
    assert_eq!(on.to_bits(), off.to_bits());
}
