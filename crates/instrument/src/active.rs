//! Feature-on implementation: thread-local phase accumulators, a
//! process-wide registry of named metrics, and RAII span timers.
//!
//! Recording is lock-free-ish: each thread owns an `Arc` block of
//! relaxed atomics (registered under a mutex once per thread) and every
//! record is a plain `fetch_add` on it. The global locks are touched only
//! on first use per thread and on snapshot/reset — never per record.

use crate::phase::PhaseId;
use crate::trace::{FaultDump, InstantKind, ThreadTrace, Trace, TraceEvent, TraceEventKind};
use std::collections::{BTreeMap, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::atomic::{
    AtomicU64,
    Ordering::{Acquire, Relaxed, Release},
};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// `histogram` bucket count: bucket 0 holds zero, bucket `b ≥ 1` holds
/// values in `[2^(b-1), 2^b)`, so 65 buckets cover all of `u64`.
pub(crate) const HIST_BUCKETS: usize = 65;

// ---------------------------------------------------------------------
// Per-thread phase accumulators
// ---------------------------------------------------------------------

/// One thread's phase totals. Shared as `Arc` so totals survive thread
/// exit (the registry keeps the other reference).
pub(crate) struct PhaseBlock {
    pub(crate) ns: [AtomicU64; PhaseId::COUNT],
    pub(crate) calls: [AtomicU64; PhaseId::COUNT],
}

impl PhaseBlock {
    fn new() -> Self {
        PhaseBlock {
            ns: [const { AtomicU64::new(0) }; PhaseId::COUNT],
            calls: [const { AtomicU64::new(0) }; PhaseId::COUNT],
        }
    }
}

/// All phase blocks ever created, one per recording thread.
static PHASE_BLOCKS: Mutex<Vec<Arc<PhaseBlock>>> = Mutex::new(Vec::new());

thread_local! {
    static TL_PHASES: Arc<PhaseBlock> = {
        let block = Arc::new(PhaseBlock::new());
        PHASE_BLOCKS.lock().unwrap().push(Arc::clone(&block));
        block
    };
}

/// Record `ns` nanoseconds (one call) against `phase` on this thread.
#[inline]
pub fn record_phase_ns(phase: PhaseId, ns: u64) {
    TL_PHASES.with(|b| {
        b.ns[phase.index()].fetch_add(ns, Relaxed);
        b.calls[phase.index()].fetch_add(1, Relaxed);
    });
}

/// Sum of all threads' totals for every phase: `(total_ns, calls)`.
pub(crate) fn phase_totals() -> [(u64, u64); PhaseId::COUNT] {
    let mut out = [(0u64, 0u64); PhaseId::COUNT];
    for block in PHASE_BLOCKS.lock().unwrap().iter() {
        for (i, slot) in out.iter_mut().enumerate() {
            slot.0 += block.ns[i].load(Relaxed);
            slot.1 += block.calls[i].load(Relaxed);
        }
    }
    out
}

// ---------------------------------------------------------------------
// Event-timeline flight recorder
// ---------------------------------------------------------------------
//
// Each thread owns a fixed-capacity ring of (timestamp, packed-code)
// slot pairs: recording is two relaxed stores plus a release store of
// the head — no locks, no allocation, bounded memory, overwrite-oldest.
// A snapshot reads every ring under the registry mutex; because the
// owning thread keeps writing, a slot being overwritten *during* the
// read can tear (new timestamp, old code). Torn slots decode to
// mismatched span pairs, which the exporters drop — acceptable for a
// flight recorder whose job is the milliseconds around a fault.

/// Event-code packing: `tag(2) | id(30) | lane(32)`.
const TAG_EMPTY: u64 = 0;
const TAG_BEGIN: u64 = 1;
const TAG_END: u64 = 2;
const TAG_INSTANT: u64 = 3;

/// Sentinel lane meaning "not lane-scoped".
const LANE_NONE: u32 = u32::MAX;

struct Slot {
    t_ns: AtomicU64,
    code: AtomicU64,
}

pub(crate) struct Ring {
    tid: u64,
    name: String,
    /// Total events ever written; `head % slots.len()` is the next slot.
    head: AtomicU64,
    slots: Box<[Slot]>,
}

impl Ring {
    /// Single-writer append (only the owning thread calls this).
    #[inline]
    fn push(&self, t_ns: u64, code: u64) {
        let i = self.head.load(Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        slot.t_ns.store(t_ns, Relaxed);
        slot.code.store(code, Relaxed);
        self.head.store(i + 1, Release);
    }
}

/// Ring capacity in events per thread, from `PP_TRACE_CAPACITY` (read
/// once), default 8192, clamped to `[16, 2^22]`. Malformed or clamped
/// values warn once to stderr (see [`crate::env`]).
fn trace_capacity() -> usize {
    static CAP: OnceLock<usize> = OnceLock::new();
    *CAP.get_or_init(|| {
        crate::env::env_usize_clamped("PP_TRACE_CAPACITY", 16, 1 << 22).unwrap_or(8192)
    })
}

/// Process-wide trace epoch: all event timestamps are ns since this.
fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// `at` as ns since the trace epoch (saturating: the very first caller
/// may have read its clock just before initialising the epoch).
#[inline]
fn ns_since_epoch(at: Instant) -> u64 {
    at.duration_since(epoch()).as_nanos() as u64
}

/// All rings ever created, one per recording thread (kept alive past
/// thread exit, like `PHASE_BLOCKS`).
static RINGS: Mutex<Vec<Arc<Ring>>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static TL_RING: Arc<Ring> = {
        let cap = trace_capacity();
        let tid = NEXT_TID.fetch_add(1, Relaxed);
        let name = std::thread::current()
            .name()
            .map_or_else(|| format!("thread-{tid}"), str::to_string);
        let slots = (0..cap)
            .map(|_| Slot {
                t_ns: AtomicU64::new(0),
                code: AtomicU64::new(TAG_EMPTY),
            })
            .collect();
        let ring = Arc::new(Ring {
            tid,
            name,
            head: AtomicU64::new(0),
            slots,
        });
        RINGS.lock().unwrap().push(Arc::clone(&ring));
        ring
    };
}

#[inline]
fn pack(tag: u64, id: usize, lane: u32) -> u64 {
    (tag << 62) | ((id as u64) << 32) | lane as u64
}

#[inline]
fn trace_event(t_ns: u64, tag: u64, id: usize, lane: u32) {
    TL_RING.with(|r| r.push(t_ns, pack(tag, id, lane)));
}

/// Record a one-off timeline marker on this thread.
#[inline]
pub fn trace_instant(kind: InstantKind) {
    trace_event(
        ns_since_epoch(Instant::now()),
        TAG_INSTANT,
        kind.index(),
        LANE_NONE,
    );
}

/// Record a lane-scoped timeline marker on this thread.
#[inline]
pub fn trace_instant_lane(kind: InstantKind, lane: u32) {
    trace_event(
        ns_since_epoch(Instant::now()),
        TAG_INSTANT,
        kind.index(),
        lane,
    );
}

/// Copy every thread's surviving event window into plain data.
pub fn trace_snapshot() -> Trace {
    let rings: Vec<Arc<Ring>> = RINGS.lock().unwrap().iter().map(Arc::clone).collect();
    let mut threads = Vec::with_capacity(rings.len());
    for ring in rings {
        let cap = ring.slots.len() as u64;
        let head = ring.head.load(Acquire);
        let n = head.min(cap);
        let mut events = Vec::with_capacity(n as usize);
        for i in (head - n)..head {
            let slot = &ring.slots[(i % cap) as usize];
            let t_ns = slot.t_ns.load(Relaxed);
            let code = slot.code.load(Relaxed);
            let tag = code >> 62;
            let id = ((code >> 32) & 0x3FFF_FFFF) as usize;
            let lane_raw = code as u32;
            let kind = match tag {
                TAG_BEGIN if id < PhaseId::COUNT => TraceEventKind::Begin(PhaseId::ALL[id]),
                TAG_END if id < PhaseId::COUNT => TraceEventKind::End(PhaseId::ALL[id]),
                TAG_INSTANT if id < InstantKind::COUNT => {
                    TraceEventKind::Instant(InstantKind::ALL[id])
                }
                // Empty, torn, or corrupt slot — skip it.
                _ => continue,
            };
            events.push(TraceEvent {
                t_ns,
                kind,
                lane: (lane_raw != LANE_NONE).then_some(lane_raw),
            });
        }
        threads.push(ThreadTrace {
            tid: ring.tid,
            name: ring.name.clone(),
            events,
            dropped: head.saturating_sub(cap),
        });
    }
    Trace {
        threads,
        capacity: trace_capacity(),
    }
}

/// Clear every thread's ring (ring registrations stay).
///
/// Like [`reset`], concurrent recording during the clear lands on
/// whichever side it races with; call between measurement windows.
pub fn trace_reset() {
    for ring in RINGS.lock().unwrap().iter() {
        for slot in ring.slots.iter() {
            slot.code.store(TAG_EMPTY, Relaxed);
            slot.t_ns.store(0, Relaxed);
        }
        ring.head.store(0, Release);
    }
}

// ---------------------------------------------------------------------
// Dump-on-fault
// ---------------------------------------------------------------------

/// In-memory dumps kept for test/driver inspection (oldest evicted),
/// from `PP_FAULT_DUMP_CAP` (read once), default 8, clamped to
/// `[1, 1024]`. Evictions are counted on the `fault_dumps.dropped`
/// counter so silent loss is observable.
fn fault_dumps_keep() -> usize {
    static KEEP: OnceLock<usize> = OnceLock::new();
    *KEEP.get_or_init(|| crate::env::env_usize_clamped("PP_FAULT_DUMP_CAP", 1, 1024).unwrap_or(8))
}

static FAULT_DUMPS: Mutex<VecDeque<FaultDump>> = Mutex::new(VecDeque::new());
static DUMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// Dump directory from `PP_TRACE_DUMP_DIR` (read once); `None` keeps
/// dumps in memory only. An *empty* value is almost certainly a broken
/// shell expansion — it warns once and is treated as unset rather than
/// silently writing dumps into the current directory.
fn dump_dir() -> Option<&'static Path> {
    static DIR: OnceLock<Option<PathBuf>> = OnceLock::new();
    DIR.get_or_init(|| {
        let dir = std::env::var_os("PP_TRACE_DUMP_DIR")?;
        if dir.is_empty() {
            crate::env::warn_once(
                "PP_TRACE_DUMP_DIR",
                "PP_TRACE_DUMP_DIR is set but empty; fault dumps stay in memory only",
            );
            return None;
        }
        Some(PathBuf::from(dir))
    })
    .as_deref()
}

/// Snapshot the flight recorder into a [`FaultDump`]: marks the
/// timeline, copies every ring and the aggregate metrics, renders
/// `detail` (lazily — feature-off builds never evaluate it), stores the
/// dump in memory for [`take_fault_dumps`], and best-effort writes it
/// to `PP_TRACE_DUMP_DIR` when set (a dump must never fail the solve,
/// so write errors are swallowed).
pub fn fault_dump(reason: &'static str, detail: impl FnOnce() -> String) {
    let t_ns = ns_since_epoch(Instant::now());
    trace_instant(InstantKind::FaultDumped);
    let dump = FaultDump {
        reason,
        detail: detail(),
        t_ns,
        trace: trace_snapshot(),
        metrics: crate::Snapshot::capture(),
    };
    let seq = DUMP_SEQ.fetch_add(1, Relaxed);
    if let Some(dir) = dump_dir() {
        let _ = dump.write_to(dir, seq);
    }
    let mut q = FAULT_DUMPS.lock().unwrap();
    while q.len() >= fault_dumps_keep() {
        q.pop_front();
        counter("fault_dumps.dropped").inc();
    }
    q.push_back(dump);
}

/// Drain the in-memory fault dumps captured so far (oldest first).
pub fn take_fault_dumps() -> Vec<FaultDump> {
    FAULT_DUMPS.lock().unwrap().drain(..).collect()
}

// ---------------------------------------------------------------------
// Span / Timer
// ---------------------------------------------------------------------

/// RAII phase timer: one `Instant::now()` pair plus a thread-local add.
///
/// ```
/// # use pp_instrument::{PhaseId, Span};
/// {
///     let _span = Span::enter(PhaseId::SolvePttrs);
///     // ... timed work ...
/// } // drop records the elapsed time
/// ```
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct Span {
    phase: PhaseId,
    lane: u32,
    start: Instant,
}

impl Span {
    /// Start timing `phase`; the elapsed time is recorded on drop.
    #[inline]
    pub fn enter(phase: PhaseId) -> Span {
        Span::enter_impl(phase, LANE_NONE)
    }

    /// Like [`Span::enter`], additionally stamping the batch lane the
    /// span concerns onto its timeline events.
    #[inline]
    pub fn enter_lane(phase: PhaseId, lane: u32) -> Span {
        Span::enter_impl(phase, lane)
    }

    #[inline]
    fn enter_impl(phase: PhaseId, lane: u32) -> Span {
        // One clock read serves both the phase timer and the timeline
        // Begin event.
        let start = Instant::now();
        trace_event(ns_since_epoch(start), TAG_BEGIN, phase.index(), lane);
        Span { phase, lane, start }
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let end = Instant::now();
        record_phase_ns(self.phase, end.duration_since(self.start).as_nanos() as u64);
        trace_event(ns_since_epoch(end), TAG_END, self.phase.index(), self.lane);
    }
}

/// Manual timer for call sites that feed the elapsed value somewhere
/// else as well (e.g. a latency histogram *and* a phase).
#[must_use]
#[derive(Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Start the clock.
    #[inline]
    pub fn start() -> Timer {
        Timer {
            start: Instant::now(),
        }
    }

    /// Nanoseconds since [`Timer::start`].
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos() as u64
    }
}

// ---------------------------------------------------------------------
// Named metrics registry
// ---------------------------------------------------------------------

/// Backing cell of a [`Histogram`].
pub(crate) struct HistCell {
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) min: AtomicU64,
    pub(crate) max: AtomicU64,
    pub(crate) buckets: [AtomicU64; HIST_BUCKETS],
}

impl HistCell {
    fn new() -> Self {
        HistCell {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: [const { AtomicU64::new(0) }; HIST_BUCKETS],
        }
    }

    fn reset(&self) {
        self.count.store(0, Relaxed);
        self.sum.store(0, Relaxed);
        self.min.store(u64::MAX, Relaxed);
        self.max.store(0, Relaxed);
        for b in &self.buckets {
            b.store(0, Relaxed);
        }
    }
}

/// Log2 bucket of `v`: 0 for 0, else `64 - leading_zeros` so bucket `b`
/// spans `[2^(b-1), 2^b)`.
#[inline]
pub(crate) fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

#[derive(Default)]
pub(crate) struct Registry {
    pub(crate) counters: BTreeMap<&'static str, Arc<AtomicU64>>,
    pub(crate) gauges: BTreeMap<&'static str, Arc<AtomicU64>>, // f64 bits
    pub(crate) histograms: BTreeMap<&'static str, Arc<HistCell>>,
}

pub(crate) static REGISTRY: Mutex<Option<Registry>> = Mutex::new(None);

fn with_registry<T>(f: impl FnOnce(&mut Registry) -> T) -> T {
    let mut guard = REGISTRY.lock().unwrap();
    f(guard.get_or_insert_with(Registry::default))
}

/// Monotonic named counter. Handles are cheap `Arc` clones; look one up
/// once (e.g. in a `OnceLock`) and `add` from any thread.
#[derive(Clone)]
pub struct Counter {
    cell: Arc<AtomicU64>,
}

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.cell.fetch_add(n, Relaxed);
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> u64 {
        self.cell.load(Relaxed)
    }
}

/// Last-write-wins named gauge holding an `f64`.
#[derive(Clone)]
pub struct Gauge {
    cell: Arc<AtomicU64>,
}

impl Gauge {
    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.cell.store(v.to_bits(), Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn value(&self) -> f64 {
        f64::from_bits(self.cell.load(Relaxed))
    }
}

/// Log2-bucketed named histogram of `u64` samples (latencies in ns,
/// iteration counts, …).
#[derive(Clone)]
pub struct Histogram {
    cell: Arc<HistCell>,
}

impl Histogram {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.cell.count.fetch_add(1, Relaxed);
        self.cell.sum.fetch_add(v, Relaxed);
        self.cell.min.fetch_min(v, Relaxed);
        self.cell.max.fetch_max(v, Relaxed);
        self.cell.buckets[bucket_of(v)].fetch_add(1, Relaxed);
    }

    /// Number of recorded samples.
    #[inline]
    pub fn count(&self) -> u64 {
        self.cell.count.load(Relaxed)
    }
}

/// Look up (creating on first use) the counter named `name`.
pub fn counter(name: &'static str) -> Counter {
    with_registry(|r| Counter {
        cell: Arc::clone(r.counters.entry(name).or_default()),
    })
}

/// Look up (creating on first use) the gauge named `name`.
pub fn gauge(name: &'static str) -> Gauge {
    with_registry(|r| Gauge {
        cell: Arc::clone(r.gauges.entry(name).or_default()),
    })
}

/// Look up (creating on first use) the histogram named `name`.
pub fn histogram(name: &'static str) -> Histogram {
    with_registry(|r| Histogram {
        cell: Arc::clone(
            r.histograms
                .entry(name)
                .or_insert_with(|| Arc::new(HistCell::new())),
        ),
    })
}

/// Zero every phase total and named metric (handles stay valid).
///
/// Concurrent recording during a reset lands on whichever side of the
/// zeroing it races with; call between measurement windows, not inside
/// them.
pub fn reset() {
    for block in PHASE_BLOCKS.lock().unwrap().iter() {
        for i in 0..PhaseId::COUNT {
            block.ns[i].store(0, Relaxed);
            block.calls[i].store(0, Relaxed);
        }
    }
    let guard = REGISTRY.lock().unwrap();
    if let Some(r) = guard.as_ref() {
        for c in r.counters.values() {
            c.store(0, Relaxed);
        }
        for g in r.gauges.values() {
            g.store(0.0_f64.to_bits(), Relaxed);
        }
        for h in r.histograms.values() {
            h.reset();
        }
    }
    drop(guard);
    // Windowed views diff cumulative captures; stale pre-reset epochs
    // would otherwise make the next window saturate to zero.
    crate::window::window_reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(1023), 10);
        assert_eq!(bucket_of(1024), 11);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn counter_roundtrip() {
        let c = counter("test.active.counter");
        let before = c.value();
        c.add(41);
        c.inc();
        assert_eq!(counter("test.active.counter").value(), before + 42);
    }

    #[test]
    fn gauge_last_write_wins() {
        let g = gauge("test.active.gauge");
        g.set(1.5);
        g.set(-2.25);
        assert_eq!(gauge("test.active.gauge").value(), -2.25);
    }
}
