//! Errors for sparse construction and kernels.

use std::fmt;

/// Errors produced by `pp-sparse`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Entry coordinates fall outside the declared shape.
    EntryOutOfBounds {
        /// Row of the offending entry.
        row: usize,
        /// Column of the offending entry.
        col: usize,
        /// Declared shape.
        shape: (usize, usize),
    },
    /// Parallel arrays (rows/cols/values) have inconsistent lengths.
    LengthMismatch {
        /// Lengths found, in (rows, cols, values) order.
        lengths: (usize, usize, usize),
    },
    /// Operand shapes are inconsistent for the requested operation.
    ShapeMismatch {
        /// Operation attempted.
        op: &'static str,
        /// Description.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::EntryOutOfBounds { row, col, shape } => write!(
                f,
                "entry ({row}, {col}) out of bounds for shape ({}, {})",
                shape.0, shape.1
            ),
            Error::LengthMismatch { lengths } => write!(
                f,
                "COO arrays have mismatched lengths: rows {}, cols {}, values {}",
                lengths.0, lengths.1, lengths.2
            ),
            Error::ShapeMismatch { op, detail } => write!(f, "{op}: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = Error::EntryOutOfBounds {
            row: 5,
            col: 2,
            shape: (3, 3),
        };
        assert!(e.to_string().contains("(5, 2)"));
        let e = Error::LengthMismatch { lengths: (1, 2, 3) };
        assert!(e.to_string().contains("mismatched"));
    }
}
