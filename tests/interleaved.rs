//! Interleaved-SoA lane kernels against the scalar per-lane reference.
//!
//! The contract under test is the tentpole acceptance criterion: for
//! every routine class (`pttrs`, `pbtrs`, `gbtrs`, `getrs`) and for the
//! full builder pipeline, `pack → interleaved solve → unpack` must equal
//! the scalar per-lane solve to within 2 ulp, for randomized batch
//! widths including batches narrower than one lane chunk. The same test
//! source runs in both instrumentation modes: plain `cargo test`
//! (feature off, spans compiled out) and
//! `cargo test --features instrument` via `scripts/verify.sh` (feature
//! on, spans live) — the numerics must not care.

use batched_splines::prelude::*;
use pp_linalg::{
    batched, gbtrf, gbtrs_interleaved, getrf, getrs_interleaved, pbtrf, pbtrs_interleaved, pttrf,
    pttrs_interleaved, BandedMatrix, SymBandedMatrix,
};
use pp_portable::{InterleavedMatrix, TestRng, LANE_WIDTH};

/// Distance in units-in-the-last-place between two finite doubles,
/// via the standard monotone mapping of IEEE-754 bit patterns onto the
/// integer line.
fn ulp_diff(a: f64, b: f64) -> u64 {
    fn ordered(x: f64) -> i64 {
        let bits = x.to_bits() as i64;
        if bits < 0 {
            i64::MIN.wrapping_sub(bits)
        } else {
            bits
        }
    }
    ordered(a).wrapping_sub(ordered(b)).unsigned_abs()
}

fn assert_within_2_ulp(iv: &InterleavedMatrix, reference: &Matrix, what: &str) {
    assert_eq!(iv.nrows(), reference.nrows());
    assert_eq!(iv.ncols(), reference.ncols());
    for i in 0..reference.nrows() {
        for j in 0..reference.ncols() {
            let d = ulp_diff(iv.get(i, j), reference.get(i, j));
            assert!(
                d <= 2,
                "{what}: ({i},{j}) interleaved {} vs scalar {} differs by {d} ulp",
                iv.get(i, j),
                reference.get(i, j)
            );
        }
    }
}

fn random_rhs(n: usize, batch: usize, layout: Layout, rng: &mut TestRng) -> Matrix {
    Matrix::from_fn(n, batch, layout, |_, _| rng.gen_range(-2.0..2.0))
}

/// Batch widths to sweep for each size: fixed widths straddling the
/// lane chunk boundary plus a couple of randomized draws, so partial
/// trailing chunks (batch % 8 != 0) and sub-chunk batches (batch < 8)
/// are always exercised.
fn batch_widths(rng: &mut TestRng) -> Vec<usize> {
    let mut widths = vec![
        1,
        LANE_WIDTH - 1,
        LANE_WIDTH,
        LANE_WIDTH + 1,
        3 * LANE_WIDTH,
    ];
    widths.push(rng.gen_range(1..LANE_WIDTH)); // strictly sub-chunk
    widths.push(rng.gen_range(LANE_WIDTH + 1..6 * LANE_WIDTH));
    widths
}

#[test]
fn pttrs_pack_solve_unpack_matches_scalar_within_2_ulp() {
    let mut rng = TestRng::seed_from_u64(0x9a11);
    for n in [1usize, 5, 16, 33] {
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(3.0..5.0)).collect();
        let e: Vec<f64> = (0..n.saturating_sub(1))
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let f = pttrf(&d, &e).unwrap();
        for batch in batch_widths(&mut rng) {
            for layout in [Layout::Left, Layout::Right] {
                let rhs = random_rhs(n, batch, layout, &mut rng);
                let mut reference = rhs.clone();
                batched::pttrs(&Serial, &f, &mut reference);
                let mut iv = InterleavedMatrix::pack(&rhs);
                pttrs_interleaved(&Parallel, &f, &mut iv);
                assert_within_2_ulp(&iv, &reference, &format!("pttrs n={n} batch={batch}"));
            }
        }
    }
}

#[test]
fn pbtrs_pack_solve_unpack_matches_scalar_within_2_ulp() {
    let mut rng = TestRng::seed_from_u64(0x9a22);
    for n in [1usize, 6, 17, 32] {
        let kd = 2.min(n - 1);
        let a = SymBandedMatrix::from_fn(n, kd, |i, j| {
            if i == j {
                6.0
            } else {
                0.3 + 0.1 * ((i + j) % 3) as f64
            }
        })
        .unwrap();
        let f = pbtrf(&a).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(n, batch, Layout::Left, &mut rng);
            let mut reference = rhs.clone();
            batched::pbtrs(&Serial, &f, &mut reference);
            let mut iv = InterleavedMatrix::pack(&rhs);
            pbtrs_interleaved(&Parallel, &f, &mut iv);
            assert_within_2_ulp(&iv, &reference, &format!("pbtrs n={n} batch={batch}"));
        }
    }
}

#[test]
fn gbtrs_pack_solve_unpack_matches_scalar_within_2_ulp() {
    let mut rng = TestRng::seed_from_u64(0x9a33);
    for n in [1usize, 7, 19, 30] {
        let kl = 2.min(n - 1);
        let ku = 1.min(n - 1);
        // Tiny diagonals on every fifth row force partial pivoting, so
        // the row-swap path of the wide kernel is covered too.
        let a = BandedMatrix::from_fn(n, kl, ku, |i, j| {
            if i == j {
                if i % 5 == 4 {
                    1e-8
                } else {
                    4.0
                }
            } else {
                1.0 + 0.2 * ((i * 7 + j) % 5) as f64
            }
        })
        .unwrap();
        let f = gbtrf(&a).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(n, batch, Layout::Left, &mut rng);
            let mut reference = rhs.clone();
            batched::gbtrs(&Serial, &f, &mut reference);
            let mut iv = InterleavedMatrix::pack(&rhs);
            gbtrs_interleaved(&Parallel, &f, &mut iv);
            assert_within_2_ulp(&iv, &reference, &format!("gbtrs n={n} batch={batch}"));
        }
    }
}

#[test]
fn getrs_pack_solve_unpack_matches_scalar_within_2_ulp() {
    let mut rng = TestRng::seed_from_u64(0x9a44);
    for n in [1usize, 4, 9, 13] {
        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                (n as f64) + 2.0
            } else {
                ((i * 13 + j * 5) % 7) as f64 * 0.25 - 0.75
            }
        });
        let f = getrf(&a).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(n, batch, Layout::Left, &mut rng);
            let mut reference = rhs.clone();
            batched::getrs(&Serial, &f, &mut reference);
            let mut iv = InterleavedMatrix::pack(&rhs);
            getrs_interleaved(&Parallel, &f, &mut iv);
            assert_within_2_ulp(&iv, &reference, &format!("getrs n={n} batch={batch}"));
        }
    }
}

/// Full pipeline: `BuilderVersion::Interleaved` must match the scalar
/// per-lane production version (`FusedSpmv`) to within 2 ulp on every
/// coefficient — full chunks through the wide kernels and remainder
/// lanes through the scalar fallback alike.
#[test]
fn builder_interleaved_matches_scalar_per_lane_within_2_ulp() {
    let mut rng = TestRng::seed_from_u64(0x9a55);
    for degree in [3usize, 4, 5] {
        for uniform in [true, false] {
            let breaks = if uniform {
                Breaks::uniform(32, 0.0, 1.0).unwrap()
            } else {
                Breaks::graded(32, 0.0, 1.0, 0.6).unwrap()
            };
            let space = PeriodicSplineSpace::new(breaks, degree).unwrap();
            let scalar = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
            let wide = SplineBuilder::new(space, BuilderVersion::Interleaved).unwrap();
            for batch in batch_widths(&mut rng) {
                let rhs = random_rhs(32, batch, Layout::Left, &mut rng);
                let mut reference = rhs.clone();
                scalar.solve_in_place(&Serial, &mut reference).unwrap();
                let mut x = rhs.clone();
                wide.solve_in_place(&Parallel, &mut x).unwrap();
                for i in 0..32 {
                    for j in 0..batch {
                        let d = ulp_diff(x.get(i, j), reference.get(i, j));
                        assert!(
                            d <= 2,
                            "deg {degree} uniform {uniform} batch {batch} ({i},{j}): {d} ulp"
                        );
                    }
                }
            }
        }
    }
}
