//! Point-in-time aggregation of everything recorded so far, plus the
//! derived roofline numbers, serialised to the same hand-rolled JSON
//! style as `BENCH_dispatch.json`.

use crate::phase::PhaseId;
use pp_perfmodel::device::Device;
use pp_perfmodel::metrics::{achieved_bandwidth_gbs, bandwidth_fraction, glups};
use pp_perfmodel::roofline::memory_bound_time_s;
use std::fmt::Write as _;
use std::time::Duration;

/// Aggregated totals of one phase across every recording thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: PhaseId,
    /// Spans recorded.
    pub calls: u64,
    /// Total nanoseconds across all threads (wall time only when the
    /// phase ran serially; CPU time when it ran on several workers).
    pub total_ns: u64,
}

/// Aggregated state of one named histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramStat {
    /// Registry name.
    pub name: String,
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u64,
    /// Smallest sample.
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Non-empty log2 buckets as `(upper_bound_exclusive, count)`;
    /// bucket `[2^(b-1), 2^b)` reports upper bound `2^b`.
    pub buckets: Vec<(u64, u64)>,
}

impl HistogramStat {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket containing quantile `q ∈ [0, 1]`
    /// (0 when empty). Log2 buckets make this exact to a factor of 2.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for &(upper, n) in &self.buckets {
            seen += n;
            if seen >= target {
                return upper;
            }
        }
        self.max
    }
}

/// Measured throughput placed on a device roofline, via
/// `pp-perfmodel::{metrics, roofline, device}`.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflineAnnotation {
    /// Device the numbers are normalised against.
    pub device: &'static str,
    /// Lattice updates per second ×10⁻⁹ (paper eq. 7).
    pub glups: f64,
    /// Achieved effective bandwidth in GB/s (§V-B assumption).
    pub achieved_bw_gbs: f64,
    /// Device peak bandwidth in GB/s.
    pub peak_bw_gbs: f64,
    /// `achieved / peak` (Table V's parenthesised %).
    pub bandwidth_fraction: f64,
    /// Achieved fraction of the *attainable* memory-bound roofline
    /// (peak bandwidth × the device's streaming efficiency) — 1.0 means
    /// the solve runs exactly at the practical streaming limit.
    pub roofline_fraction: f64,
}

impl RooflineAnnotation {
    /// Annotate a measured solve of an `nx × nv` batch taking `elapsed`.
    ///
    /// # Panics
    /// Panics if `elapsed` is zero (no throughput is defined).
    pub fn measured(device: &Device, nx: usize, nv: usize, elapsed: Duration) -> Self {
        let achieved = achieved_bandwidth_gbs(nx, nv, elapsed);
        let total_bytes = (nx * nv * 8) as f64;
        RooflineAnnotation {
            device: device.name,
            glups: glups(nx, nv, elapsed),
            achieved_bw_gbs: achieved,
            peak_bw_gbs: device.peak_bw_gbs,
            bandwidth_fraction: bandwidth_fraction(achieved, device.peak_bw_gbs),
            roofline_fraction: memory_bound_time_s(device, total_bytes) / elapsed.as_secs_f64(),
        }
    }

    /// JSON object fragment (no trailing newline), e.g.
    /// `{"device": "...", "glups": 0.017, ...}`.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"device\": \"{}\", \"glups\": {}, \"achieved_bw_gbs\": {}, \
             \"peak_bw_gbs\": {}, \"bandwidth_fraction\": {}, \"roofline_fraction\": {}}}",
            json_escape(self.device),
            json_f64(self.glups),
            json_f64(self.achieved_bw_gbs),
            json_f64(self.peak_bw_gbs),
            json_f64(self.bandwidth_fraction),
            json_f64(self.roofline_fraction),
        )
    }
}

/// Everything recorded so far: phase totals plus the named metrics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Per-phase totals, in [`PhaseId::ALL`] order, zero-call phases
    /// omitted.
    pub phases: Vec<PhaseStat>,
    /// Named counters, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// Named gauges, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// Named histograms, name-sorted.
    pub histograms: Vec<HistogramStat>,
}

impl Snapshot {
    /// Capture the current totals. With the `instrument` feature off
    /// this is always empty.
    #[cfg(feature = "instrument")]
    pub fn capture() -> Snapshot {
        use std::sync::atomic::Ordering::Relaxed;

        let totals = crate::active::phase_totals();
        let phases = PhaseId::ALL
            .iter()
            .filter_map(|&p| {
                let (total_ns, calls) = totals[p.index()];
                (calls > 0).then_some(PhaseStat {
                    phase: p,
                    calls,
                    total_ns,
                })
            })
            .collect();

        let guard = crate::active::REGISTRY.lock().unwrap();
        let (counters, gauges, histograms) = match guard.as_ref() {
            None => (Vec::new(), Vec::new(), Vec::new()),
            Some(r) => (
                r.counters
                    .iter()
                    .map(|(name, c)| (name.to_string(), c.load(Relaxed)))
                    .collect(),
                r.gauges
                    .iter()
                    .map(|(name, g)| (name.to_string(), f64::from_bits(g.load(Relaxed))))
                    .collect(),
                r.histograms
                    .iter()
                    .map(|(name, h)| {
                        let count = h.count.load(Relaxed);
                        let buckets = h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter_map(|(b, n)| {
                                let n = n.load(Relaxed);
                                (n > 0).then(|| {
                                    let upper = if b >= 64 { u64::MAX } else { 1u64 << b };
                                    (upper, n)
                                })
                            })
                            .collect();
                        HistogramStat {
                            name: name.to_string(),
                            count,
                            sum: h.sum.load(Relaxed),
                            min: if count == 0 { 0 } else { h.min.load(Relaxed) },
                            max: h.max.load(Relaxed),
                            buckets,
                        }
                    })
                    .collect(),
            ),
        };
        Snapshot {
            phases,
            counters,
            gauges,
            histograms,
        }
    }

    /// Capture the current totals. With the `instrument` feature off
    /// this is always empty.
    #[cfg(not(feature = "instrument"))]
    pub fn capture() -> Snapshot {
        Snapshot::default()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
            && self.counters.is_empty()
            && self.gauges.is_empty()
            && self.histograms.is_empty()
    }

    /// Total nanoseconds recorded against `phase` (0 if absent).
    pub fn phase_total_ns(&self, phase: PhaseId) -> u64 {
        self.phases
            .iter()
            .find(|s| s.phase == phase)
            .map_or(0, |s| s.total_ns)
    }

    /// Calls recorded against `phase` (0 if absent).
    pub fn phase_calls(&self, phase: PhaseId) -> u64 {
        self.phases
            .iter()
            .find(|s| s.phase == phase)
            .map_or(0, |s| s.calls)
    }

    /// Value of the counter named `name` (0 if absent).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// The histogram named `name`, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Sum of `total_ns` over every phase in `phases`.
    pub fn phase_sum_ns(&self, phases: &[PhaseId]) -> u64 {
        phases.iter().map(|&p| self.phase_total_ns(p)).sum()
    }

    /// Hand-rolled JSON object, 2-space indent, newline-terminated —
    /// the `BENCH_dispatch.json` house style.
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        let _ = writeln!(
            j,
            "  \"schema_version\": {},",
            crate::window::SCHEMA_VERSION
        );
        j.push_str("  \"phases\": [\n");
        for (k, s) in self.phases.iter().enumerate() {
            let mean_ns = s.total_ns as f64 / s.calls as f64;
            let _ = write!(
                j,
                "    {{\"phase\": \"{}\", \"calls\": {}, \"total_ms\": {}, \"mean_ns\": {}}}",
                s.phase.name(),
                s.calls,
                json_f64(s.total_ns as f64 / 1e6),
                json_f64(mean_ns),
            );
            j.push_str(if k + 1 < self.phases.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ],\n  \"counters\": {");
        for (k, (name, v)) in self.counters.iter().enumerate() {
            let _ = write!(
                j,
                "{}\"{}\": {v}",
                if k == 0 { "" } else { ", " },
                json_escape(name)
            );
        }
        j.push_str("},\n  \"gauges\": {");
        for (k, (name, v)) in self.gauges.iter().enumerate() {
            let _ = write!(
                j,
                "{}\"{}\": {}",
                if k == 0 { "" } else { ", " },
                json_escape(name),
                json_f64(*v)
            );
        }
        j.push_str("},\n  \"histograms\": [\n");
        for (k, h) in self.histograms.iter().enumerate() {
            let _ = write!(
                j,
                "    {{\"name\": \"{}\", \"count\": {}, \"mean\": {}, \"min\": {}, \
                 \"max\": {}, \"p50_le\": {}, \"p99_le\": {}, \"buckets\": [",
                json_escape(&h.name),
                h.count,
                json_f64(h.mean()),
                h.min,
                h.max,
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.99),
            );
            for (i, (upper, n)) in h.buckets.iter().enumerate() {
                let _ = write!(
                    j,
                    "{}{{\"le\": {upper}, \"count\": {n}}}",
                    if i == 0 { "" } else { ", " }
                );
            }
            j.push_str("]}");
            j.push_str(if k + 1 < self.histograms.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        j.push_str("  ]\n}\n");
        j
    }
}

/// Finite floats as `%.3f`, non-finite as JSON `null` (house style).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

/// Escape `s` for inclusion inside a JSON string literal, per RFC 8259:
/// backslash, quote, and all control characters below 0x20.
pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roofline_annotation_uses_device_peaks() {
        let d = Device::icelake();
        // nx·nv·8 bytes in `t`: achieved bw is exact, fractions follow.
        let ann = RooflineAnnotation::measured(&d, 1000, 1000, Duration::from_millis(10));
        let expect_bw = 1000.0 * 1000.0 * 8.0 / 0.010 / 1e9;
        assert!((ann.achieved_bw_gbs - expect_bw).abs() < 1e-9);
        assert!((ann.bandwidth_fraction - expect_bw / d.peak_bw_gbs).abs() < 1e-12);
        assert!(
            (ann.roofline_fraction - expect_bw / (d.peak_bw_gbs * d.stream_efficiency)).abs()
                < 1e-9
        );
        let json = ann.to_json();
        assert!(json.contains("\"glups\""));
        assert!(json.contains("\"roofline_fraction\""));
    }

    #[test]
    fn quantiles_from_buckets() {
        let h = HistogramStat {
            name: "q".into(),
            count: 10,
            sum: 0,
            min: 1,
            max: 900,
            // 5 samples ≤ 8, 4 ≤ 512, 1 ≤ 1024.
            buckets: vec![(8, 5), (512, 4), (1024, 1)],
        };
        assert_eq!(h.quantile_upper_bound(0.5), 8);
        assert_eq!(h.quantile_upper_bound(0.9), 512);
        assert_eq!(h.quantile_upper_bound(1.0), 1024);
    }

    #[test]
    fn empty_snapshot_serialises() {
        let s = Snapshot::default();
        assert!(s.is_empty());
        let j = s.to_json();
        assert!(j.contains("\"phases\": ["));
        assert!(j.ends_with("}\n"));
    }
}
