//! Persistent worker pool behind the [`Parallel`](crate::Parallel)
//! execution space.
//!
//! The paper's performance story depends on `parallel_for(batch, serial
//! lane work)` being essentially free to launch: Kokkos dispatches onto
//! an existing OpenMP team or a CUDA/HIP stream, so a solve that issues
//! four parallel regions (the Baseline builder) pays four *launches*, not
//! four *thread creations*. The original `pp-portable` dispatcher instead
//! spawned fresh OS threads through `std::thread::scope` on every call,
//! which puts tens of microseconds of `clone(2)` + join on every kernel
//! in the hot path of Fig. 2 / Table III.
//!
//! This module is the fix: a process-wide pool of parked worker threads,
//! created lazily on the first parallel dispatch and kept alive for the
//! life of the process. A dispatch publishes one type-erased job, bumps a
//! generation counter, wakes the workers, joins in the work itself, then
//! revokes the job and waits only for the workers that actually committed
//! to it (see below). The measured per-dispatch
//! latency is in the microsecond range versus hundreds of microseconds for
//! the scoped baseline (see `BENCH_dispatch.json` and the
//! `dispatch_overhead` bench bin).
//!
//! # Scheduling
//!
//! The schedule is the same dynamic chunk-claiming the scoped dispatcher
//! used: workers (and the dispatching thread, which participates as an
//! extra worker) grab fixed-size index chunks off a shared atomic counter
//! until the range is exhausted. Uneven lane costs — exactly what fault
//! recovery produces — therefore still load-balance, and lane outputs are
//! independent of which thread ran them, so `Serial` and pooled `Parallel`
//! results are bit-identical for every `for_each`-shaped kernel.
//!
//! # The commit/revoke handoff, and why it is safe
//!
//! A dispatch hands workers a `JobDesc`: a type-erased pointer to the
//! caller's closure plus raw pointers to three atomics (`next`, `joined`,
//! `done`) that live on the **dispatching thread's stack**. Workers do
//! not implicitly own a share of every job; they **commit** to one:
//!
//! * The job is published under the `sleep` mutex (generation bump +
//!   descriptor store). A worker that wakes while the job is live copies
//!   the descriptor and increments `joined` — both under the same mutex.
//! * The dispatcher participates in the work itself. When its own chunk
//!   loop finishes, it **revokes** the job (clears the descriptor, again
//!   under the mutex) and reads the final `joined` count: from that point
//!   no further worker can commit — a late waker finds the mailbox empty,
//!   records the generation as seen, and goes back to sleep without ever
//!   touching job memory.
//! * The dispatcher then blocks until `done == joined`. Each committed
//!   worker's **final** access to job memory is `done.fetch_add(1,
//!   Release)`; the dispatcher observes the count with `Acquire`. This
//!   (a) proves every committed worker has released its borrow of the
//!   closure and the stack atomics before the dispatch frame can be
//!   invalidated, and (b) makes every lane's writes visible to the
//!   caller before `dispatch` returns.
//! * The dispatcher performs revocation and the wait even when its own
//!   inline share of the work panics: the panic is caught, the handshake
//!   runs, and only then is the payload resumed — the borrow can never be
//!   invalidated by an unwinding dispatcher while workers still hold it.
//!
//! Because only *committed* workers gate completion, parked workers that
//! the OS has not scheduled (an oversubscribed CI box, a single-core
//! host) cost a dispatch nothing: the dispatcher drains the range alone
//! and returns after two mutex sections. This is what keeps per-dispatch
//! latency flat from 1 hardware thread up.
//!
//! # Panic propagation
//!
//! A panicking lane does not take down a pool thread (which would lose a
//! worker for the rest of the process) and does not hang the dispatch.
//! Workers run their chunk loop under `catch_unwind`; the first payload
//! is stashed in the shared panic slot, remaining chunks are still
//! drained by the other participants (the same "finish the batch, then
//! report" semantics `std::thread::scope` gave us), and the dispatcher
//! re-raises the payload with `resume_unwind` after the completion
//! handshake. The slot is taken (cleared) on every dispatch, so one
//! poisoned batch cannot fail later ones — `tests/pool_stress.rs` pins
//! this down.
//!
//! # Reentrancy
//!
//! A lane that itself calls `parallel_for` (nested parallelism) must not
//! wait on the pool it is running on. Dispatch entry points check a
//! thread-local "inside a pool dispatch" flag and degrade to the plain
//! serial loop when set, so nesting is always deadlock-free.

use crate::budget::{Budget, DispatchOutcome};
use pp_instrument as instrument;
use std::any::Any;
use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Spin iterations before a waiter falls back to its condvar. Dispatch
/// latency is dominated by wake-up cost; a short spin lets back-to-back
/// dispatches (the four parallel regions of one Baseline solve) hand off
/// without any futex round-trip. Spinning is disabled on single-core
/// hosts, where it can only steal cycles from the thread being waited on.
const SPIN: usize = 1 << 12;

/// Extra wall-clock grace past a budgeted dispatch's deadline before the
/// in-dispatcher watchdog declares the dispatch late: `PP_WATCHDOG_SLACK_MS`
/// (read once, warn-once on malformed values), default 100 ms, clamped to
/// `[1, 60000]`. Cooperative checkpoints sit at chunk boundaries, so a
/// healthy dispatch overshoots its deadline by at most one chunk of lane
/// work; anything past the slack means a non-cooperative (hung or very
/// long) lane and trips the watchdog.
pub fn watchdog_slack() -> Duration {
    static SLACK: OnceLock<Duration> = OnceLock::new();
    *SLACK.get_or_init(|| {
        let ms = instrument::env::env_u64_clamped("PP_WATCHDOG_SLACK_MS", 1, 60_000).unwrap_or(100);
        Duration::from_millis(ms)
    })
}

/// Spin budget for this host: [`SPIN`] when truly parallel hardware is
/// available, zero on a single hardware thread.
fn spin_budget() -> usize {
    static BUDGET: OnceLock<usize> = OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            SPIN
        } else {
            0
        }
    })
}

/// Lock a pool mutex, recovering from poisoning. A dispatch that
/// re-raises a lane panic unwinds through its guard and poisons the
/// lock, but every pool invariant lives in the dispatch protocol's
/// atomics, not in the mutex-guarded data — recovery is always safe.
fn lock_pool<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

thread_local! {
    /// True while this thread is executing inside a pool dispatch —
    /// either as a pool worker or as the dispatching (participating)
    /// caller. Used to run nested parallel calls inline.
    static IN_DISPATCH: Cell<bool> = const { Cell::new(false) };
}

/// RAII guard for [`IN_DISPATCH`].
struct DispatchGuard;

impl DispatchGuard {
    fn enter() -> Self {
        IN_DISPATCH.with(|f| f.set(true));
        DispatchGuard
    }
}

impl Drop for DispatchGuard {
    fn drop(&mut self) {
        IN_DISPATCH.with(|f| f.set(false));
    }
}

/// `true` when called from inside a pool dispatch (worker or caller);
/// parallel entry points use this to run nested dispatches serially
/// instead of deadlocking on the non-reentrant dispatch lock.
pub(crate) fn in_dispatch() -> bool {
    IN_DISPATCH.with(|f| f.get())
}

/// One type-erased batched job: call `call(data, i)` for every claimed
/// index `i`. `next`, `joined`, and `done` point into the dispatcher's
/// stack frame; see the module-level safety argument for why that is
/// sound.
#[derive(Clone, Copy)]
struct JobDesc {
    /// Monomorphised shim that invokes the real closure.
    call: unsafe fn(*const (), usize),
    /// Erased `&F` of the dispatcher's closure.
    data: *const (),
    /// Exclusive upper bound of the index range.
    n: usize,
    /// Claim granularity.
    chunk: usize,
    /// Shared claim counter (lives on the dispatcher's stack).
    next: *const AtomicUsize,
    /// Workers that committed to this job (incremented under the `sleep`
    /// mutex; lives on the dispatcher's stack).
    joined: *const AtomicUsize,
    /// Committed workers that have checked out (lives on the
    /// dispatcher's stack).
    done: *const AtomicUsize,
    /// Absolute deadline of the dispatch budget, if any; participants
    /// stop claiming chunks once past it.
    deadline: Option<Instant>,
    /// Shared cancel flag of the dispatch budget (null when the dispatch
    /// is unbudgeted). Points into the budget's `Arc` allocation, which
    /// the dispatching caller keeps borrowed for the whole dispatch.
    cancel: *const AtomicBool,
}

// SAFETY: the raw pointers are only dereferenced between a worker's
// commit (under the `sleep` mutex, while the job is live) and its
// `done.fetch_add` check-out, during which the dispatch protocol keeps
// the pointees alive (module-level argument).
unsafe impl Send for JobDesc {}

/// Wake-side state guarded by `Shared::sleep`.
struct JobCell {
    /// Generation counter; bumped once per published job.
    generation: u64,
    /// The live job, if any. `None` either between dispatches or after
    /// the current dispatch revoked it (no further commits allowed).
    job: Option<JobDesc>,
}

/// Per-worker cumulative clocks (nanoseconds, relaxed atomics).
#[derive(Default)]
struct WorkerClock {
    busy_ns: AtomicU64,
    idle_ns: AtomicU64,
}

/// State shared between the dispatcher and the worker threads.
struct Shared {
    /// Job mailbox + generation counter.
    sleep: Mutex<JobCell>,
    /// Wakes workers when a job is published.
    wake: Condvar,
    /// Fast-path copy of the generation counter so idle workers can spin
    /// a little before touching the mutex. Written under `sleep`.
    generation: AtomicU64,
    /// Completion barrier lock (pairs with `done_cv`).
    done_lock: Mutex<()>,
    /// Signalled by the last worker to check in.
    done_cv: Condvar,
    /// First panic payload of the current dispatch, if any.
    panic: Mutex<Option<Box<dyn Any + Send>>>,
    /// Number of pooled dispatches served.
    dispatches: AtomicU64,
    /// Total lanes (indices) across all pooled dispatches.
    lanes: AtomicU64,
    /// One clock per worker thread.
    clocks: Vec<WorkerClock>,
}

/// The process-wide pool: `num_threads() - 1` parked workers plus the
/// dispatching thread itself.
pub(crate) struct Pool {
    shared: &'static Shared,
    /// Worker-thread count (excludes the dispatching caller).
    workers: usize,
    /// Serialises dispatches from concurrent user threads.
    dispatch_lock: Mutex<()>,
}

/// Dispatches that ran inline (serial fallback: tiny batch, single
/// hardware thread, or nested inside another dispatch).
static INLINE_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Budgeted dispatches (pooled *or* inline) whose budget ran out before
/// the index range was drained.
static DEADLINE_MISSES: AtomicU64 = AtomicU64::new(0);

/// Deadline misses whose budget had its cancel flag raised (explicit
/// [`Budget::cancel`] or a watchdog trip) rather than a plain deadline
/// expiry.
static CANCELLED_DISPATCHES: AtomicU64 = AtomicU64::new(0);

/// Times the in-dispatcher watchdog fired: a dispatch still had
/// committed workers running past its deadline plus [`watchdog_slack`].
static WATCHDOG_TRIPS: AtomicU64 = AtomicU64::new(0);

/// Worker threads respawned after a propagated panic killed them
/// ([`RespawnGuard`]); without self-healing a long soak's pool capacity
/// would only ever decay.
static WORKERS_RESPAWNED: AtomicU64 = AtomicU64::new(0);

/// Outstanding injected-death tokens ([`inject_worker_death`]).
static WORKER_DEATH_TOKENS: AtomicUsize = AtomicUsize::new(0);

/// Fault-injection hook: arm `n` worker-death tokens. The next `n` pool
/// workers to finish serving a dispatch panic *outside* the lane
/// `catch_unwind` — after their completion check-out, so no dispatch can
/// hang — killing the worker thread the way a real propagated panic
/// (e.g. a panicking panic payload `Drop`) would. The internal
/// respawn guard then heals the pool; `workers_respawned` in
/// [`PoolStats`] counts the round trip. Test/chaos use only.
pub fn inject_worker_death(n: usize) {
    WORKER_DEATH_TOKENS.fetch_add(n, Ordering::Relaxed);
}

/// Consume one injected-death token, if armed.
fn take_death_token() -> bool {
    WORKER_DEATH_TOKENS
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
        .is_ok()
}

/// Self-healing: respawns this worker's slot if its thread dies by
/// unwinding out of [`worker_loop`]. Lane panics are caught and
/// propagated to the dispatcher, so in normal operation workers never
/// die — but a panic from pool bookkeeping itself (or an injected death)
/// would otherwise silently shrink the pool for the rest of the
/// process. The guard only acts when the thread is actually panicking.
struct RespawnGuard {
    shared: &'static Shared,
    id: usize,
}

impl Drop for RespawnGuard {
    fn drop(&mut self) {
        if !std::thread::panicking() {
            return;
        }
        WORKERS_RESPAWNED.fetch_add(1, Ordering::Relaxed);
        let shared = self.shared;
        let id = self.id;
        // Same worker id: the replacement inherits the dead worker's
        // clock slot, so per-worker accounting stays contiguous. A spawn
        // failure (resource exhaustion) leaves the pool one worker short
        // rather than aborting the process; dispatches still complete
        // because only *committed* workers gate them.
        let _ = std::thread::Builder::new()
            .name(format!("pp-pool-{id}"))
            .spawn(move || worker_loop(shared, id));
    }
}

static POOL: OnceLock<Pool> = OnceLock::new();

/// The global pool, spawning its workers on first use.
pub(crate) fn global() -> &'static Pool {
    POOL.get_or_init(|| {
        let workers = crate::par::num_threads().saturating_sub(1);
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            sleep: Mutex::new(JobCell {
                generation: 0,
                job: None,
            }),
            wake: Condvar::new(),
            generation: AtomicU64::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            dispatches: AtomicU64::new(0),
            lanes: AtomicU64::new(0),
            clocks: (0..workers).map(|_| WorkerClock::default()).collect(),
        }));
        for id in 0..workers {
            std::thread::Builder::new()
                .name(format!("pp-pool-{id}"))
                .spawn(move || worker_loop(shared, id))
                .expect("spawning pool worker");
        }
        Pool {
            shared,
            workers,
            dispatch_lock: Mutex::new(()),
        }
    })
}

/// Record a dispatch that was served inline rather than by the pool.
pub(crate) fn note_inline_dispatch() {
    INLINE_DISPATCHES.fetch_add(1, Ordering::Relaxed);
}

/// Record a budgeted dispatch (pooled or inline) that timed out before
/// draining its range; called by the pool itself and by the inline
/// serial fallbacks in [`crate::par`], so the counters agree regardless
/// of which path served the work.
pub(crate) fn note_timed_out(budget: &Budget) {
    DEADLINE_MISSES.fetch_add(1, Ordering::Relaxed);
    if budget.is_cancelled() {
        CANCELLED_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    }
    instrument::trace_instant(instrument::InstantKind::BudgetExhausted);
}

/// Cooperative budget poll for one participant: `true` once the dispatch
/// budget is cancelled or past its deadline. Unbudgeted dispatches cost
/// two predictable branches here.
#[inline]
fn job_budget_exhausted(desc: &JobDesc) -> bool {
    // SAFETY: a non-null `cancel` points into the dispatch budget's Arc
    // allocation, which the dispatching caller borrows for the whole
    // dispatch; the protocol keeps the dispatch alive until this
    // participant checks in.
    if !desc.cancel.is_null() && unsafe { &*desc.cancel }.load(Ordering::Relaxed) {
        return true;
    }
    desc.deadline.is_some_and(|d| Instant::now() >= d)
}

/// Claim chunks until the range is exhausted or the dispatch budget runs
/// out, catching a lane panic. Returns the panic payload, if any.
///
/// The budget poll sits *before* each claim: a participant that observes
/// exhaustion stops claiming but always finishes the chunk it already
/// owns, so budget overshoot is bounded by one chunk of lane work.
fn run_chunks(desc: &JobDesc) -> Option<Box<dyn Any + Send>> {
    catch_unwind(AssertUnwindSafe(|| {
        // SAFETY: the dispatch protocol keeps `next` alive until this
        // participant checks in (module-level argument, point 3).
        let next = unsafe { &*desc.next };
        loop {
            if job_budget_exhausted(desc) {
                break;
            }
            let start = next.fetch_add(desc.chunk, Ordering::Relaxed);
            if start >= desc.n {
                break;
            }
            for i in start..(start + desc.chunk).min(desc.n) {
                // SAFETY: `data` outlives the dispatch; `i < n` and each
                // index is produced exactly once by the shared counter.
                unsafe { (desc.call)(desc.data, i) };
            }
        }
    }))
    .err()
}

fn worker_loop(shared: &'static Shared, id: usize) {
    // Armed for the life of the thread: if anything unwinds out of this
    // frame the guard respawns the slot. A fresh (or respawned) worker
    // starts at `seen == 0` and resynchronises off the live generation
    // counter on its first wake, which is always safe: committing to a
    // still-live job is the normal path, and a revoked mailbox is just
    // skipped.
    let _respawn = RespawnGuard { shared, id };
    let mut seen = 0u64;
    loop {
        // Wait for the next generation: spin briefly on the fast-path
        // counter, then park on the condvar. The spin budget adapts to
        // the live dispatch-latency EWMA (static `SPIN` until seeded or
        // when `PP_ADAPTIVE=0`).
        let idle_from = Instant::now();
        let mut spins = 0usize;
        let budget = crate::adaptive::adaptive_spin(spin_budget());
        while shared.generation.load(Ordering::Acquire) == seen && spins < budget {
            std::hint::spin_loop();
            spins += 1;
        }
        let desc = {
            let mut cell = lock_pool(&shared.sleep);
            loop {
                if cell.generation != seen {
                    seen = cell.generation;
                    if let Some(desc) = cell.job {
                        // Decline when every chunk is already claimed:
                        // committing then would contribute nothing and
                        // make the dispatcher wait out this worker's
                        // check-out round-trip (costly when the OS is
                        // slow to schedule us, e.g. few cores).
                        // SAFETY: the job is live, so its pointers are.
                        if unsafe { &*desc.next }.load(Ordering::Relaxed) < desc.n {
                            // Commit, under the mutex: the dispatcher's
                            // revocation (same mutex) reads a final count.
                            unsafe { &*desc.joined }.fetch_add(1, Ordering::Relaxed);
                            break desc;
                        }
                        // Nothing left to claim: treat like a revoked job.
                    }
                    // Revoked before this worker woke: never touch it.
                }
                cell = shared.wake.wait(cell).unwrap_or_else(|e| e.into_inner());
            }
        };
        shared.clocks[id]
            .idle_ns
            .fetch_add(idle_from.elapsed().as_nanos() as u64, Ordering::Relaxed);
        // Timeline marker: this worker committed to the live job (the
        // commit itself happened under the sleep mutex above).
        instrument::trace_instant(instrument::InstantKind::DispatchCommit);

        let busy_from = Instant::now();
        let _guard = DispatchGuard::enter();
        if let Some(payload) = run_chunks(&desc) {
            let mut slot = lock_pool(&shared.panic);
            slot.get_or_insert(payload);
        }
        drop(_guard);
        shared.clocks[id]
            .busy_ns
            .fetch_add(busy_from.elapsed().as_nanos() as u64, Ordering::Relaxed);

        // Check out. This fetch_add is the worker's LAST access to the
        // dispatcher's stack frame; everything after touches only the
        // long-lived shared state.
        // SAFETY: `done` is alive until the dispatcher observes
        // `done == joined`, which cannot happen before this increment.
        unsafe { &*desc.done }.fetch_add(1, Ordering::Release);
        // Taking the lock ensures the notify cannot race ahead of the
        // dispatcher's wait.
        drop(lock_pool(&shared.done_lock));
        shared.done_cv.notify_all();

        // Injected worker death, strictly *after* check-out so the
        // dispatch this worker served can never hang on it. The panic
        // unwinds out of the loop and the respawn guard heals the pool.
        if take_death_token() {
            panic!("pp-pool-{id}: injected worker death");
        }
    }
}

impl Pool {
    /// Dispatch `f(i)` for `i in 0..n` with the given claim granularity,
    /// participating in the work and blocking until every worker has
    /// checked in. Propagates the first lane panic.
    pub(crate) fn dispatch<F: Fn(usize) + Sync>(&self, n: usize, chunk: usize, f: &F) {
        self.dispatch_budgeted(n, chunk, None, f);
    }

    /// [`Pool::dispatch`] under an optional [`Budget`]: participants
    /// stop claiming chunks once the budget is exhausted, and the
    /// completion wait runs a watchdog against `deadline +`
    /// [`watchdog_slack`].
    ///
    /// Returns [`DispatchOutcome::TimedOut`] when the budget ran out
    /// before every index was visited — indices past the last claimed
    /// chunk were then **not** called. The dispatch still never returns
    /// (normally or by unwinding) before every committed worker has
    /// checked out: the job descriptor points into this stack frame, so
    /// abandoning workers is unsound. What the watchdog guarantees
    /// instead is that a trip is *observable* (flight-recorder instant,
    /// `pool_watchdog` fault dump, counter) and that the budget's cancel
    /// flag is raised so every cooperative checkpoint downstream unwinds
    /// the work promptly.
    pub(crate) fn dispatch_budgeted<F: Fn(usize) + Sync>(
        &self,
        n: usize,
        chunk: usize,
        budget: Option<&Budget>,
        f: &F,
    ) -> DispatchOutcome {
        /// Reifies the erased closure pointer back to `&F`.
        unsafe fn shim<F: Fn(usize) + Sync>(data: *const (), i: usize) {
            // SAFETY: `data` was created from `&F` in `dispatch` below and
            // is live for the whole dispatch.
            unsafe { (*(data as *const F))(i) }
        }

        let timer = instrument::Timer::start();
        // Adaptation feed: timed with a real clock in both feature modes
        // (the inert Timer reports zero), so the feature-off build — the
        // one `dispatch_overhead` gates — adapts too. Skipped entirely
        // when `PP_ADAPTIVE=0`, keeping the static policy's cost profile.
        let adaptive_t0 = crate::adaptive::adaptive_enabled().then(Instant::now);
        let span = instrument::Span::enter(instrument::PhaseId::Dispatch);
        let serialised = lock_pool(&self.dispatch_lock);
        let next = AtomicUsize::new(0);
        let joined = AtomicUsize::new(0);
        let done = AtomicUsize::new(0);
        let desc = JobDesc {
            call: shim::<F>,
            data: f as *const F as *const (),
            n,
            chunk: chunk.max(1),
            next: &next,
            joined: &joined,
            done: &done,
            deadline: budget.and_then(|b| b.deadline()),
            cancel: budget.map_or(std::ptr::null(), |b| b.cancel_flag_ptr()),
        };
        self.shared.dispatches.fetch_add(1, Ordering::Relaxed);
        self.shared.lanes.fetch_add(n as u64, Ordering::Relaxed);
        {
            let mut cell = lock_pool(&self.shared.sleep);
            cell.generation += 1;
            cell.job = Some(desc);
            self.shared
                .generation
                .store(cell.generation, Ordering::Release);
        }
        self.shared.wake.notify_all();

        // Participate: the dispatching thread is worker number `workers`.
        let guard = DispatchGuard::enter();
        let caller_panic = run_chunks(&desc);
        drop(guard);

        // Revoke: once the mailbox is cleared no further worker can
        // commit, so the count read here is final.
        let joined_count = {
            let mut cell = lock_pool(&self.shared.sleep);
            cell.job = None;
            joined.load(Ordering::Relaxed)
        };
        // Timeline marker: from here no further worker can commit.
        instrument::trace_instant(instrument::InstantKind::DispatchRevoke);

        // Completion handshake: no return (normal or unwinding) until
        // every committed worker has released its borrow of
        // `next`/`done`/`f`. Under a deadline the wait doubles as the
        // watchdog: it times out at `deadline + watchdog_slack()`, and a
        // trip cancels the budget (so cooperative checkpoints drain) and
        // is recorded before the wait — soundly — resumes.
        let mut spins = 0usize;
        let spin_limit = crate::adaptive::adaptive_spin(spin_budget());
        while done.load(Ordering::Acquire) < joined_count && spins < spin_limit {
            std::hint::spin_loop();
            spins += 1;
        }
        if done.load(Ordering::Acquire) < joined_count {
            let mut watchdog_armed = desc.deadline.map(|d| d + watchdog_slack());
            let mut g = lock_pool(&self.shared.done_lock);
            while done.load(Ordering::Acquire) < joined_count {
                match watchdog_armed {
                    Some(limit) => {
                        let now = Instant::now();
                        if now >= limit {
                            watchdog_armed = None;
                            self.trip_watchdog(budget, n, joined_count, &done);
                            continue;
                        }
                        g = self
                            .shared
                            .done_cv
                            .wait_timeout(g, limit - now)
                            .unwrap_or_else(|e| e.into_inner())
                            .0;
                    }
                    None => {
                        g = self
                            .shared
                            .done_cv
                            .wait(g)
                            .unwrap_or_else(|e| e.into_inner());
                    }
                }
            }
        }

        // The range is complete iff the claim counter drained it; under
        // an exhausted budget participants stop claiming and the counter
        // stalls short of `n`.
        let outcome = if next.load(Ordering::Relaxed) >= n {
            DispatchOutcome::Completed
        } else {
            DispatchOutcome::TimedOut
        };
        if outcome == DispatchOutcome::TimedOut {
            if let Some(b) = budget {
                note_timed_out(b);
            }
        }

        let worker_panic = lock_pool(&self.shared.panic).take();
        drop(serialised);
        // The span records the Dispatch phase total and the timeline
        // Begin/End pair; the timer feeds the latency histogram.
        drop(span);
        dispatch_latency_histogram().record(timer.elapsed_ns());
        if let Some(t0) = adaptive_t0 {
            // `joined_count + 1`: committed workers plus the dispatching
            // caller all ran lane work.
            crate::adaptive::note_dispatch(t0.elapsed().as_nanos() as u64, n, joined_count + 1);
        }
        if let Some(payload) = caller_panic.or(worker_panic) {
            resume_unwind(payload);
        }
        outcome
    }

    /// The in-dispatcher watchdog fired: a committed worker is still
    /// running past `deadline + watchdog_slack()`. Make the overrun
    /// observable and raise the cancel flag so every cooperative
    /// checkpoint (pool chunk claims, Krylov iteration tops, verify
    /// steps) stops promptly; the caller then resumes the completion
    /// wait, which is the only sound option while the job descriptor
    /// points into its stack frame.
    #[cold]
    fn trip_watchdog(
        &self,
        budget: Option<&Budget>,
        n: usize,
        joined_count: usize,
        done: &AtomicUsize,
    ) {
        WATCHDOG_TRIPS.fetch_add(1, Ordering::Relaxed);
        instrument::trace_instant(instrument::InstantKind::WatchdogTrip);
        if let Some(b) = budget {
            b.cancel();
        }
        let outstanding = joined_count.saturating_sub(done.load(Ordering::Acquire));
        instrument::fault_dump("pool_watchdog", || {
            format!(
                "dispatch of {n} lanes overran its deadline by more than the \
                 watchdog slack ({:?}); {outstanding} committed worker(s) of \
                 {joined_count} still running; budget cancelled",
                watchdog_slack()
            )
        });
    }
}

/// Cached handle for the `pool.dispatch_ns` latency histogram, so the
/// per-dispatch cost is one relaxed add (no registry lookup).
fn dispatch_latency_histogram() -> &'static instrument::Histogram {
    static HIST: OnceLock<instrument::Histogram> = OnceLock::new();
    HIST.get_or_init(|| instrument::histogram("pool.dispatch_ns"))
}

/// Cumulative busy/idle time of one pool worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerTimes {
    /// Time spent running lane work.
    pub busy: Duration,
    /// Time spent waiting for the next dispatch.
    pub idle: Duration,
}

/// Snapshot of the pool's observability counters.
///
/// All counters are cheap relaxed atomics: reading them perturbs the pool
/// by a handful of cache-line loads, so snapshots are safe to take inside
/// benchmark loops. Before the first parallel dispatch the pool does not
/// exist and every field is zero except possibly
/// [`PoolStats::inline_dispatches`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Worker threads owned by the pool (excludes dispatching callers).
    pub workers: usize,
    /// Batched dispatches served by the pool.
    pub dispatches: u64,
    /// Total indices (batch lanes) across all pooled dispatches.
    pub lanes_dispatched: u64,
    /// Dispatches that ran inline instead (tiny batch, one hardware
    /// thread, or nested inside another dispatch).
    pub inline_dispatches: u64,
    /// Budgeted dispatches (pooled or inline) whose budget ran out
    /// before the index range was drained.
    pub deadline_misses: u64,
    /// Deadline misses whose budget was *cancelled* (explicitly or by a
    /// watchdog trip) rather than merely expiring.
    pub cancelled_dispatches: u64,
    /// Watchdog trips: dispatches that still had committed workers
    /// running past their deadline plus [`watchdog_slack`].
    pub watchdog_trips: u64,
    /// Worker threads respawned after dying to a propagated panic (pool
    /// self-healing; see [`inject_worker_death`] for the test hook).
    pub workers_respawned: u64,
    /// Cumulative busy/idle time per worker, indexed by worker id.
    pub per_worker: Vec<WorkerTimes>,
}

impl PoolStats {
    /// Total busy time across workers.
    pub fn total_busy(&self) -> Duration {
        self.per_worker.iter().map(|w| w.busy).sum()
    }

    /// Total idle time across workers.
    pub fn total_idle(&self) -> Duration {
        self.per_worker.iter().map(|w| w.idle).sum()
    }
}

/// Take a [`PoolStats`] snapshot. Does **not** force pool creation: until
/// the first pooled dispatch this returns an all-zero snapshot (modulo
/// inline-dispatch counts).
pub fn pool_stats() -> PoolStats {
    let inline = INLINE_DISPATCHES.load(Ordering::Relaxed);
    let deadline_misses = DEADLINE_MISSES.load(Ordering::Relaxed);
    let cancelled = CANCELLED_DISPATCHES.load(Ordering::Relaxed);
    let watchdog_trips = WATCHDOG_TRIPS.load(Ordering::Relaxed);
    let workers_respawned = WORKERS_RESPAWNED.load(Ordering::Relaxed);
    match POOL.get() {
        None => PoolStats {
            inline_dispatches: inline,
            deadline_misses,
            cancelled_dispatches: cancelled,
            watchdog_trips,
            workers_respawned,
            ..PoolStats::default()
        },
        Some(pool) => PoolStats {
            workers: pool.workers,
            dispatches: pool.shared.dispatches.load(Ordering::Relaxed),
            lanes_dispatched: pool.shared.lanes.load(Ordering::Relaxed),
            inline_dispatches: inline,
            deadline_misses,
            cancelled_dispatches: cancelled,
            watchdog_trips,
            workers_respawned,
            per_worker: pool
                .shared
                .clocks
                .iter()
                .map(|c| WorkerTimes {
                    busy: Duration::from_nanos(c.busy_ns.load(Ordering::Relaxed)),
                    idle: Duration::from_nanos(c.idle_ns.load(Ordering::Relaxed)),
                })
                .collect(),
        },
    }
}

/// Publish the pool counters as instrumentation gauges
/// (`pool.workers`, `pool.dispatches`, `pool.lanes_dispatched`,
/// `pool.inline_dispatches`, `pool.deadline_misses`,
/// `pool.cancelled_dispatches`, `pool.watchdog_trips`,
/// `pool.workers_respawned`, `pool.busy_ms`, `pool.idle_ms`), so a
/// [`pp_instrument::Snapshot`] carries the busy/idle picture alongside
/// the dispatch latency histogram. No-op when instrumentation is off.
pub fn publish_pool_metrics() {
    if !instrument::enabled() {
        return;
    }
    let stats = pool_stats();
    instrument::gauge("pool.workers").set(stats.workers as f64);
    instrument::gauge("pool.dispatches").set(stats.dispatches as f64);
    instrument::gauge("pool.lanes_dispatched").set(stats.lanes_dispatched as f64);
    instrument::gauge("pool.inline_dispatches").set(stats.inline_dispatches as f64);
    instrument::gauge("pool.deadline_misses").set(stats.deadline_misses as f64);
    instrument::gauge("pool.cancelled_dispatches").set(stats.cancelled_dispatches as f64);
    instrument::gauge("pool.watchdog_trips").set(stats.watchdog_trips as f64);
    instrument::gauge("pool.workers_respawned").set(stats.workers_respawned as f64);
    instrument::gauge("pool.busy_ms").set(stats.total_busy().as_secs_f64() * 1e3);
    instrument::gauge("pool.idle_ms").set(stats.total_idle().as_secs_f64() * 1e3);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn dispatch_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..4096).map(|_| AtomicUsize::new(0)).collect();
        global().dispatch(4096, 7, &|i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn stats_count_dispatches_and_lanes() {
        let before = pool_stats();
        global().dispatch(100, 4, &|_i: usize| {});
        global().dispatch(50, 4, &|_i: usize| {});
        let after = pool_stats();
        assert!(after.dispatches >= before.dispatches + 2);
        assert!(after.lanes_dispatched >= before.lanes_dispatched + 150);
        assert_eq!(after.workers, crate::par::num_threads().saturating_sub(1));
        assert_eq!(after.per_worker.len(), after.workers);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        for round in 0..3 {
            let err = catch_unwind(AssertUnwindSafe(|| {
                global().dispatch(512, 8, &|i: usize| {
                    if i == 137 {
                        panic!("lane 137 failed (round {round})");
                    }
                });
            }));
            assert!(err.is_err(), "panic must propagate to the dispatcher");
            // The pool must keep serving clean dispatches afterwards.
            let count = AtomicUsize::new(0);
            global().dispatch(512, 8, &|_i: usize| {
                count.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(count.load(Ordering::Relaxed), 512);
        }
    }

    #[test]
    fn unbudgeted_dispatch_reports_completed() {
        let outcome = global().dispatch_budgeted(256, 4, None, &|_i: usize| {});
        assert_eq!(outcome, DispatchOutcome::Completed);
    }

    #[test]
    fn ample_budget_visits_every_index() {
        let budget = Budget::with_deadline(Duration::from_secs(3600));
        let hits: Vec<AtomicUsize> = (0..1024).map(|_| AtomicUsize::new(0)).collect();
        let outcome = global().dispatch_budgeted(1024, 4, Some(&budget), &|i: usize| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcome, DispatchOutcome::Completed);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn pre_exhausted_budget_times_out_without_running_lanes() {
        let budget = Budget::unlimited();
        budget.cancel();
        let before = pool_stats();
        let ran = AtomicUsize::new(0);
        let outcome = global().dispatch_budgeted(512, 4, Some(&budget), &|_i: usize| {
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcome, DispatchOutcome::TimedOut);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        let after = pool_stats();
        assert!(after.deadline_misses > before.deadline_misses);
        assert!(after.cancelled_dispatches > before.cancelled_dispatches);
    }

    #[test]
    fn expired_deadline_times_out_and_pool_survives() {
        let budget = Budget::with_deadline(Duration::ZERO);
        let outcome = global().dispatch_budgeted(512, 4, Some(&budget), &|_i: usize| {});
        assert_eq!(outcome, DispatchOutcome::TimedOut);
        // The pool must keep serving clean dispatches afterwards.
        let count = AtomicUsize::new(0);
        global().dispatch(256, 4, &|_i: usize| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 256);
    }

    #[test]
    fn mid_flight_cancel_stops_claiming() {
        // Cancel from inside lane 0: later chunk claims must observe the
        // flag. With chunk = 1 and many lanes, at least the lanes beyond
        // the already-claimed chunks are skipped.
        let budget = Budget::unlimited();
        let token = budget.cancel_token();
        let ran = AtomicUsize::new(0);
        let outcome = global().dispatch_budgeted(100_000, 1, Some(&budget), &|_i: usize| {
            token.cancel();
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcome, DispatchOutcome::TimedOut);
        let ran = ran.load(Ordering::Relaxed);
        assert!(ran >= 1, "the cancelling lane itself ran");
        assert!(ran < 100_000, "cancellation must stop the remaining lanes");
    }

    /// The guard itself, isolated from scheduling: a thread that unwinds
    /// while holding a [`RespawnGuard`] must bump the respawn counter
    /// and leave a replacement worker parked on the shared state. Runs
    /// on single-core hosts too, where the pool proper has no workers.
    #[test]
    fn respawn_guard_fires_on_unwind() {
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            sleep: Mutex::new(JobCell {
                generation: 0,
                job: None,
            }),
            wake: Condvar::new(),
            generation: AtomicU64::new(0),
            done_lock: Mutex::new(()),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
            dispatches: AtomicU64::new(0),
            lanes: AtomicU64::new(0),
            clocks: (0..1).map(|_| WorkerClock::default()).collect(),
        }));
        let before = WORKERS_RESPAWNED.load(Ordering::Relaxed);
        let t = std::thread::Builder::new()
            .name("pp-pool-doomed".into())
            .spawn(move || {
                let _guard = RespawnGuard { shared, id: 0 };
                panic!("simulated propagated panic");
            })
            .unwrap();
        assert!(t.join().is_err());
        assert!(
            WORKERS_RESPAWNED.load(Ordering::Relaxed) > before,
            "unwinding out of a worker must count a respawn"
        );
        // The replacement thread parks on `shared` harmlessly (same
        // lifecycle as real pool workers); nothing to join.
    }

    #[test]
    fn injected_worker_death_respawns_and_pool_recovers() {
        let pool = global();
        if pool.workers == 0 {
            // Single hardware thread: no workers to kill.
            return;
        }
        let before = pool_stats().workers_respawned;
        inject_worker_death(1);
        // Drive dispatches until some worker consumes the token, dies,
        // and is respawned. The token fires after check-out, so none of
        // these dispatches can hang on the dying worker.
        let deadline = Instant::now() + Duration::from_secs(30);
        while pool_stats().workers_respawned == before {
            global().dispatch(4096, 1, &|_i: usize| {
                std::hint::spin_loop();
            });
            assert!(
                Instant::now() < deadline,
                "no worker consumed the injected-death token"
            );
            std::thread::sleep(Duration::from_millis(2));
        }
        // The healed pool still serves complete dispatches.
        let count = AtomicUsize::new(0);
        global().dispatch(1024, 4, &|_i: usize| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1024);
        assert_eq!(
            pool_stats().workers,
            pool.workers,
            "capacity must not decay"
        );
    }

    #[test]
    fn nested_dispatch_runs_inline_without_deadlock() {
        let outer = AtomicUsize::new(0);
        global().dispatch(64, 2, &|_i: usize| {
            assert!(in_dispatch());
            // A nested parallel_for must degrade to the serial loop.
            crate::par::parallel_for(16, |_| {
                outer.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(outer.load(Ordering::Relaxed), 64 * 16);
    }
}
