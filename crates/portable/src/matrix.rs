//! Owned dense 2-D views with explicit layout.
//!
//! [`Matrix`] is the workspace's equivalent of a rank-2 `Kokkos::View`.
//! A batched right-hand-side block `B` of shape `(n, batch)` is a `Matrix`
//! whose *columns are the batch lanes*; with [`Layout::Left`] each lane is
//! contiguous (the paper's GPU layout), with [`Layout::Right`] the batch
//! dimension is contiguous (the layout the paper identifies as
//! cache-friendlier for CPUs and leaves as future work).

use crate::error::{Error, Result};
use crate::layout::Layout;
use crate::strided::{Strided, StridedMut};

/// A dense, owned `f64` matrix with a runtime-selected [`Layout`].
#[derive(Clone, Debug, PartialEq)]
pub struct Matrix {
    data: Vec<f64>,
    nrows: usize,
    ncols: usize,
    layout: Layout,
}

impl Matrix {
    /// An `nrows x ncols` matrix of zeros.
    pub fn zeros(nrows: usize, ncols: usize, layout: Layout) -> Self {
        Self {
            data: vec![0.0; nrows * ncols],
            nrows,
            ncols,
            layout,
        }
    }

    /// Build from a generator called as `f(i, j)` for every element.
    pub fn from_fn(
        nrows: usize,
        ncols: usize,
        layout: Layout,
        mut f: impl FnMut(usize, usize) -> f64,
    ) -> Self {
        let mut m = Self::zeros(nrows, ncols, layout);
        for j in 0..ncols {
            for i in 0..nrows {
                m.set(i, j, f(i, j));
            }
        }
        m
    }

    /// Wrap an existing buffer. `data.len()` must equal `nrows * ncols`.
    pub fn from_vec(nrows: usize, ncols: usize, layout: Layout, data: Vec<f64>) -> Result<Self> {
        if data.len() != nrows * ncols {
            return Err(Error::ShapeMismatch {
                op: "Matrix::from_vec",
                left: (nrows, ncols),
                right: (data.len(), 1),
            });
        }
        Ok(Self {
            data,
            nrows,
            ncols,
            layout,
        })
    }

    /// Build a row-major matrix from nested row literals (test helper).
    ///
    /// # Panics
    /// Panics if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for r in rows {
            assert_eq!(r.len(), ncols, "from_rows: ragged rows");
            data.extend_from_slice(r);
        }
        Self {
            data,
            nrows,
            ncols,
            layout: Layout::Right,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// `(nrows, ncols)`.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.nrows, self.ncols)
    }

    /// The matrix's memory layout.
    #[inline]
    pub fn layout(&self) -> Layout {
        self.layout
    }

    /// `(row_stride, col_stride)` in elements.
    #[inline]
    pub fn strides(&self) -> (usize, usize) {
        self.layout.strides(self.nrows, self.ncols)
    }

    /// Read element `(i, j)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.nrows && j < self.ncols,
            "Matrix::get out of bounds"
        );
        self.data[self.layout.offset(i, j, self.nrows, self.ncols)]
    }

    /// Write element `(i, j)`.
    ///
    /// # Panics
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        assert!(
            i < self.nrows && j < self.ncols,
            "Matrix::set out of bounds"
        );
        let off = self.layout.offset(i, j, self.nrows, self.ncols);
        self.data[off] = v;
    }

    /// Add `v` to element `(i, j)`.
    #[inline]
    pub fn add_assign(&mut self, i: usize, j: usize, v: f64) {
        let off = self.layout.offset(i, j, self.nrows, self.ncols);
        self.data[off] += v;
    }

    /// Underlying storage in layout order.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable underlying storage in layout order.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Raw mutable pointer to the start of storage (for lane dispatch).
    #[inline]
    pub(crate) fn as_mut_ptr(&mut self) -> *mut f64 {
        self.data.as_mut_ptr()
    }

    /// Strided view of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> Strided<'_> {
        assert!(j < self.ncols, "Matrix::col out of bounds");
        let (rs, cs) = self.strides();
        Strided::new(&self.data[j * cs..], self.nrows, rs.max(1))
    }

    /// Mutable strided view of column `j`.
    #[inline]
    pub fn col_mut(&mut self, j: usize) -> StridedMut<'_> {
        assert!(j < self.ncols, "Matrix::col_mut out of bounds");
        let (rs, cs) = self.strides();
        StridedMut::new(&mut self.data[j * cs..], self.nrows, rs.max(1))
    }

    /// Strided view of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> Strided<'_> {
        assert!(i < self.nrows, "Matrix::row out of bounds");
        let (rs, cs) = self.strides();
        Strided::new(&self.data[i * rs..], self.ncols, cs.max(1))
    }

    /// Mutable strided view of row `i`.
    #[inline]
    pub fn row_mut(&mut self, i: usize) -> StridedMut<'_> {
        assert!(i < self.nrows, "Matrix::row_mut out of bounds");
        let (rs, cs) = self.strides();
        StridedMut::new(&mut self.data[i * rs..], self.ncols, cs.max(1))
    }

    /// Fill every element with `value`.
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// Element-wise copy from `src`, which must have the same shape but may
    /// have a different layout (the analogue of `Kokkos::deep_copy`).
    pub fn deep_copy_from(&mut self, src: &Matrix) -> Result<()> {
        if self.shape() != src.shape() {
            return Err(Error::ShapeMismatch {
                op: "deep_copy",
                left: self.shape(),
                right: src.shape(),
            });
        }
        if self.layout == src.layout {
            self.data.copy_from_slice(&src.data);
        } else {
            for j in 0..self.ncols {
                for i in 0..self.nrows {
                    let v = src.get(i, j);
                    self.set(i, j, v);
                }
            }
        }
        Ok(())
    }

    /// Return the same matrix re-stored in `layout`.
    pub fn to_layout(&self, layout: Layout) -> Matrix {
        if layout == self.layout {
            return self.clone();
        }
        let mut out = Matrix::zeros(self.nrows, self.ncols, layout);
        out.deep_copy_from(self)
            .expect("same shape by construction");
        out
    }

    /// Frobenius norm.
    pub fn norm_fro(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element-wise difference against `other`.
    ///
    /// # Panics
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape(), "max_abs_diff: shape mismatch");
        let mut worst: f64 = 0.0;
        for j in 0..self.ncols {
            for i in 0..self.nrows {
                worst = worst.max((self.get(i, j) - other.get(i, j)).abs());
            }
        }
        worst
    }

    /// Iterate `(i, j, value)` over all elements (row-major order).
    pub fn iter_entries(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.nrows).flat_map(move |i| (0..self.ncols).map(move |j| (i, j, self.get(i, j))))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_round_trip_both_layouts() {
        for layout in [Layout::Left, Layout::Right] {
            let mut m = Matrix::zeros(3, 4, layout);
            for i in 0..3 {
                for j in 0..4 {
                    m.set(i, j, (10 * i + j) as f64);
                }
            }
            for i in 0..3 {
                for j in 0..4 {
                    assert_eq!(m.get(i, j), (10 * i + j) as f64);
                }
            }
        }
    }

    #[test]
    fn from_vec_checks_length() {
        assert!(Matrix::from_vec(2, 2, Layout::Left, vec![0.0; 3]).is_err());
        assert!(Matrix::from_vec(2, 2, Layout::Left, vec![0.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_matches_get() {
        let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
        assert_eq!(m.layout(), Layout::Right);
    }

    #[test]
    fn col_is_contiguous_in_layout_left() {
        let m = Matrix::from_fn(4, 3, Layout::Left, |i, j| (i + 10 * j) as f64);
        let c = m.col(2);
        assert_eq!(c.stride(), 1);
        assert_eq!(c.to_vec(), vec![20.0, 21.0, 22.0, 23.0]);
    }

    #[test]
    fn col_is_strided_in_layout_right() {
        let m = Matrix::from_fn(4, 3, Layout::Right, |i, j| (i + 10 * j) as f64);
        let c = m.col(1);
        assert_eq!(c.stride(), 3);
        assert_eq!(c.to_vec(), vec![10.0, 11.0, 12.0, 13.0]);
    }

    #[test]
    fn row_views_match_both_layouts() {
        for layout in [Layout::Left, Layout::Right] {
            let m = Matrix::from_fn(3, 5, layout, |i, j| (i * 100 + j) as f64);
            assert_eq!(m.row(2).to_vec(), vec![200.0, 201.0, 202.0, 203.0, 204.0]);
        }
    }

    #[test]
    fn col_mut_writes_through() {
        let mut m = Matrix::zeros(3, 3, Layout::Right);
        m.col_mut(1).copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(m.get(0, 1), 1.0);
        assert_eq!(m.get(2, 1), 3.0);
        assert_eq!(m.get(2, 0), 0.0);
    }

    #[test]
    fn deep_copy_across_layouts() {
        let src = Matrix::from_fn(3, 4, Layout::Right, |i, j| (i * 7 + j) as f64);
        let mut dst = Matrix::zeros(3, 4, Layout::Left);
        dst.deep_copy_from(&src).unwrap();
        assert_eq!(dst.max_abs_diff(&src), 0.0);
    }

    #[test]
    fn deep_copy_shape_mismatch_errors() {
        let src = Matrix::zeros(3, 4, Layout::Right);
        let mut dst = Matrix::zeros(4, 3, Layout::Right);
        assert!(dst.deep_copy_from(&src).is_err());
    }

    #[test]
    fn to_layout_preserves_values() {
        let m = Matrix::from_fn(5, 2, Layout::Left, |i, j| (i * j + 3) as f64);
        let r = m.to_layout(Layout::Right);
        assert_eq!(r.layout(), Layout::Right);
        assert_eq!(m.max_abs_diff(&r), 0.0);
    }

    #[test]
    fn norms() {
        let m = Matrix::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]);
        assert_eq!(m.norm_fro(), 5.0);
    }

    #[test]
    fn iter_entries_covers_everything() {
        let m = Matrix::from_fn(2, 2, Layout::Left, |i, j| (i * 2 + j) as f64);
        let entries: Vec<_> = m.iter_entries().collect();
        assert_eq!(entries.len(), 4);
        assert!(entries.contains(&(1, 0, 2.0)));
    }
}
