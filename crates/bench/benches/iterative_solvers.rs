//! Criterion bench backing Table IV: Krylov solver cost per spline
//! configuration (iteration counts are asserted in tests; this measures
//! the time those iterations cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pp_bench::SplineConfig;
use pp_portable::{Layout, Matrix};
use pp_splinesolver::{IterativeConfig, IterativeSplineSolver, KrylovKind};

fn bench_solvers(c: &mut Criterion) {
    let nx = 1000;
    let nv = 16;
    let mut group = c.benchmark_group("table4/iterative_solve");
    for cfg in [
        SplineConfig { degree: 3, uniform: true },
        SplineConfig { degree: 5, uniform: false },
    ] {
        for kind in [KrylovKind::Gmres, KrylovKind::BiCgStab] {
            let mut config = IterativeConfig::cpu();
            config.kind = kind;
            config.warm_start = false;
            let solver = IterativeSplineSolver::new(cfg.space(nx), config).expect("setup");
            let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| {
                ((i * 3 + j) % 19) as f64 / 19.0
            });
            let name = format!(
                "{}/{}",
                cfg.label(),
                match kind {
                    KrylovKind::Gmres => "GMRES",
                    KrylovKind::BiCgStab => "BiCGStab",
                    KrylovKind::Cg => "CG",
                    KrylovKind::BiCg => "BiCG",
                }
            );
            group.bench_with_input(BenchmarkId::from_parameter(name), &solver, |b, solver| {
                b.iter(|| {
                    let mut work = rhs.clone();
                    solver.solve_in_place(&mut work, None).expect("convergence");
                });
            });
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_solvers
}
criterion_main!(benches);
