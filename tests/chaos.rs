//! Full-stack chaos tests: seeded fault campaigns under wall-clock
//! budgets, worker panics colliding with quarantine, and the no-hang /
//! no-poisoned-pool / no-silent-degradation invariants of ISSUE 6.
//!
//! The heavier soak (≥ 32 seeds) lives in the `chaos_soak` bench binary;
//! here a smoke subset runs on every test invocation, plus the scenarios
//! that need the full spline stack (VerifiedBuilder, ExecSpace).

use pp_bsplines::{Breaks, PeriodicSplineSpace};
use pp_iterative::{ChaosBudgetKind, FaultInjector};
use pp_portable::{parallel_for, Budget, ExecSpace, Layout, Matrix, Parallel, TestRng};
use pp_splinesolver::{
    BuilderVersion, Degradation, LaneVerdict, QuarantineReason, SplineBuilder, VerifyConfig,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

fn space(nx: usize) -> PeriodicSplineSpace {
    PeriodicSplineSpace::new(Breaks::uniform(nx, 0.0, 1.0).expect("mesh"), 3).expect("space")
}

fn rhs(nx: usize, nv: usize, seed: u64) -> Matrix {
    let mut rng = TestRng::seed_from_u64(seed);
    Matrix::from_fn(nx, nv, Layout::Left, |_, _| rng.gen_range(-2.0..2.0))
}

/// Smoke subset of the chaos-soak campaign: every invariant the soak
/// binary checks, over a handful of seeds.
#[test]
fn chaos_smoke_campaign_holds_all_invariants() {
    for seed in 0..12u64 {
        let r = FaultInjector::chaos_round(seed);
        assert!(
            r.no_hang(),
            "seed {seed}: elapsed {:?} exceeds bound {:?}",
            r.elapsed,
            r.hang_bound()
        );
        assert!(r.tallies_consistent(), "seed {seed}: {r:?}");
        // Every budget cut is surfaced: the Partial tally matches the
        // BudgetExhausted records one-to-one.
        let logged = r
            .lane_results
            .iter()
            .filter(|res| res.breakdown == Some(pp_iterative::BreakdownKind::BudgetExhausted))
            .count();
        assert_eq!(logged, r.partial, "seed {seed}: silent budget cut");
        // SDC containment: injected bit-flips never become silent wrong
        // answers — transients are corrected, persistent corruption is
        // detected, clean rounds never trip the checksum.
        assert!(
            r.sdc_contained(),
            "seed {seed}: sdc escape — mode {:?}, {} detected / {} corrected / \
             {} uncorrected / {} silent wrong",
            r.sdc_mode,
            r.sdc_detected,
            r.sdc_corrected,
            r.sdc_uncorrected,
            r.sdc_silent_wrong
        );
        if r.budget_kind != ChaosBudgetKind::Tight {
            let replay = FaultInjector::chaos_round(seed);
            assert_eq!(r.checksum, replay.checksum, "seed {seed}: not replayable");
        }
    }
    // The campaign must leave the shared pool healthy.
    let hits = AtomicUsize::new(0);
    parallel_for(512, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 512, "pool poisoned by chaos");
}

/// A dispatch under a pre-expired deadline returns promptly (bounded by
/// watchdog slack, not by the amount of work queued).
#[test]
fn expired_budget_dispatch_returns_within_slack() {
    let budget = Budget::with_deadline(Duration::from_nanos(1));
    std::thread::sleep(Duration::from_millis(2));
    let started = Instant::now();
    let visited = AtomicUsize::new(0);
    let outcome = pp_portable::parallel_for_budgeted(1_000_000, &budget, |_| {
        visited.fetch_add(1, Ordering::Relaxed);
        // Each lane is non-trivial; 10^6 of them would take far longer
        // than the bound if the budget were ignored.
        std::hint::black_box((0..50).sum::<u64>());
    });
    let elapsed = started.elapsed();
    assert!(!outcome.is_complete());
    let bound = pp_portable::watchdog_slack() + Duration::from_millis(500);
    assert!(
        elapsed < bound,
        "expired-budget dispatch took {elapsed:?} (bound {bound:?})"
    );
    assert!(visited.load(Ordering::Relaxed) < 1_000_000);
}

/// An `ExecSpace` that panics on one chosen lane mid-dispatch — the
/// "worker dies while the batch is in flight" chaos fault.
struct PanickingExec {
    panic_lane: usize,
}

impl ExecSpace for PanickingExec {
    fn name(&self) -> &'static str {
        "panicking"
    }

    fn for_each<F: Fn(usize) + Sync + Send>(&self, n: usize, f: F) {
        let victim = self.panic_lane;
        Parallel.for_each(n, move |i| {
            if i == victim {
                panic!("chaos: injected worker panic on lane {victim}");
            }
            f(i);
        });
    }
}

/// Satellite (c): a worker panic mid-dispatch while the same batch holds
/// NaN lanes headed for quarantine. The panic must propagate exactly once
/// (no deadlock, no hang), the pool must survive, and a follow-up
/// verified solve must still quarantine the poisoned lanes and emit its
/// reports.
#[test]
fn worker_panic_and_quarantine_in_same_batch_coexist() {
    let verified = SplineBuilder::new(space(24), BuilderVersion::FusedSpmv)
        .expect("builder")
        .verified(VerifyConfig::default());
    let mut b = rhs(24, 8, 77);
    b.set(5, 3, f64::NAN); // quarantine candidate
    let rhs_copy = b.clone();

    // The injected panic fires during the primary batched solve and must
    // reach this frame exactly once.
    let result = catch_unwind(AssertUnwindSafe(|| {
        verified.solve_in_place(&PanickingExec { panic_lane: 6 }, &mut b)
    }));
    let payload = result.expect_err("worker panic must propagate");
    let msg = payload
        .downcast_ref::<String>()
        .expect("panic payload is a string");
    assert!(msg.contains("injected worker panic"), "{msg}");

    // The pool is not poisoned: a clean dispatch still visits every lane.
    let hits = AtomicUsize::new(0);
    parallel_for(256, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 256);

    // And the verified pipeline still works end to end: the NaN lane is
    // quarantined (zeroed), healthy lanes solve, the report is complete.
    let _ = pp_portable::instrument::take_fault_dumps();
    let mut b2 = rhs_copy;
    let report = verified
        .solve_in_place(&Parallel, &mut b2)
        .expect("clean solve after panic");
    assert_eq!(report.quarantined_lanes(), vec![3]);
    assert!(matches!(
        report.verdict(3),
        LaneVerdict::Quarantined {
            reason: QuarantineReason::NonFiniteInput { index: 5 }
        }
    ));
    for i in 0..24 {
        assert_eq!(b2.get(i, 3), 0.0, "quarantined lane must be zeroed");
    }
    #[cfg(feature = "instrument")]
    {
        let dumps = pp_portable::instrument::take_fault_dumps();
        assert!(
            dumps.iter().any(|d| d.reason == "verified_quarantine"),
            "quarantine must still produce its fault dump"
        );
    }
}

/// Budgeted verified solve: a cancelled budget degrades gracefully, every
/// cut is reported, and the NaN scan still quarantines poisoned inputs.
#[test]
fn budgeted_verified_solve_reports_degradations() {
    let verified = SplineBuilder::new(space(20), BuilderVersion::FusedSpmv)
        .expect("builder")
        .verified(VerifyConfig::default());
    let mut b = rhs(20, 6, 101);
    b.set(2, 4, f64::INFINITY);

    let budget = Budget::unlimited();
    budget.cancel();
    let started = Instant::now();
    let report = verified
        .solve_in_place_budgeted(&Parallel, &mut b, &budget)
        .expect("budgeted solve");
    assert!(started.elapsed() < Duration::from_secs(5), "no hang");

    assert!(report.is_degraded());
    assert!(report
        .degradations
        .iter()
        .any(|d| matches!(d, Degradation::SamplingReduced { .. })));
    assert_eq!(report.lanes.quarantined_lanes(), vec![4]);
    // With an ample budget the same input is bit-identical to the
    // unbudgeted path and reports no degradation at all.
    let mut plain = rhs(20, 6, 101);
    plain.set(2, 4, f64::INFINITY);
    let mut budgeted = plain.clone();
    let plain_report = verified
        .solve_in_place(&Parallel, &mut plain)
        .expect("plain");
    let ample = verified
        .solve_in_place_budgeted(
            &Parallel,
            &mut budgeted,
            &Budget::with_deadline(Duration::from_secs(600)),
        )
        .expect("ample");
    assert!(!ample.is_degraded());
    assert_eq!(ample.lanes, plain_report);
    for j in 0..6 {
        for i in 0..20 {
            assert_eq!(budgeted.get(i, j), plain.get(i, j));
        }
    }
}

/// Mid-flight cooperative cancellation: a token cancelled from inside the
/// work stops the dispatch early and the pool stays healthy.
#[test]
fn mid_flight_cancel_is_prompt_and_pool_survives() {
    let budget = Budget::unlimited();
    let token = budget.cancel_token();
    let ran = AtomicUsize::new(0);
    let outcome = pp_portable::parallel_for_budgeted(2_000_000, &budget, |i| {
        if i == 0 {
            token.cancel();
        }
        ran.fetch_add(1, Ordering::Relaxed);
    });
    assert!(!outcome.is_complete());
    let done = ran.load(Ordering::Relaxed);
    assert!((1..2_000_000).contains(&done), "ran {done} lanes");
    let hits = AtomicUsize::new(0);
    parallel_for(128, |_| {
        hits.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 128);
}
