//! Concurrency stress tests for the persistent worker-pool executor.
//!
//! The pool is a single process-wide resource shared by every solver, so
//! the properties that matter are cross-cutting: concurrent solves from
//! many user threads must serialise onto the pool without deadlock and
//! stay bit-identical to the `Serial` reference, a panicking lane must
//! propagate to its dispatcher without hanging the dispatch or poisoning
//! later ones, and reductions must be bitwise reproducible run-to-run.

use pp_bsplines::{Breaks, PeriodicSplineSpace};
use pp_portable::{inject_worker_death, pool_stats, ExecSpace, Layout, Matrix, Parallel, Serial};
use pp_splinesolver::{BuilderVersion, SplineBuilder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

fn rhs(nx: usize, nv: usize, seed: usize) -> Matrix {
    Matrix::from_fn(nx, nv, Layout::Left, |i, j| {
        ((i * 31 + j * 7 + seed) as f64 * 0.13).sin() + 1.5
    })
}

#[test]
fn concurrent_solves_match_serial_and_dont_deadlock() {
    const USER_THREADS: usize = 4;
    const ROUNDS: usize = 8;
    let space = PeriodicSplineSpace::new(Breaks::uniform(64, 0.0, 1.0).unwrap(), 3).unwrap();
    let nx = space.num_basis();
    let nv = 96;

    // Serial references, one per user thread (distinct right-hand sides).
    let references: Vec<Matrix> = (0..USER_THREADS)
        .map(|t| {
            let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
            let mut b = rhs(nx, nv, t);
            builder.solve_in_place(&Serial, &mut b).unwrap();
            b
        })
        .collect();

    // Many user threads hammer the shared pool concurrently. Every solve
    // must complete (no deadlock) and match its Serial reference bitwise.
    std::thread::scope(|s| {
        for (t, reference) in references.iter().enumerate() {
            let space = space.clone();
            s.spawn(move || {
                let builder = SplineBuilder::new(space, BuilderVersion::FusedSpmv).unwrap();
                for _ in 0..ROUNDS {
                    let mut b = rhs(nx, nv, t);
                    builder.solve_in_place(&Parallel, &mut b).unwrap();
                    assert_eq!(
                        b.max_abs_diff(reference),
                        0.0,
                        "pooled solve diverged from Serial on user thread {t}"
                    );
                }
            });
        }
    });
}

#[test]
fn panicking_lane_propagates_and_does_not_poison_later_dispatches() {
    for round in 0..3 {
        let result = catch_unwind(AssertUnwindSafe(|| {
            Parallel.for_each(2048, |i| {
                if i == 1291 {
                    panic!("injected lane failure (round {round})");
                }
            });
        }));
        let payload = result.expect_err("lane panic must reach the dispatcher");
        let msg = payload
            .downcast_ref::<String>()
            .expect("panic payload is a string");
        assert!(msg.contains("injected lane failure"), "{msg}");

        // The very next dispatch on the same pool must behave normally.
        let count = AtomicUsize::new(0);
        Parallel.for_each(2048, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 2048);
    }
}

#[test]
fn reductions_are_bitwise_reproducible() {
    // Mixed magnitudes make the bracketing observable; the deterministic
    // per-chunk schedule must give the same bits on every run.
    let f = |i: usize| ((i as f64) * 0.31).cos() * 10f64.powi((i % 11) as i32 - 5);
    let first = Parallel.reduce_sum(50_000, f);
    for _ in 0..8 {
        assert_eq!(Parallel.reduce_sum(50_000, f).to_bits(), first.to_bits());
    }
}

/// Pool self-healing: a worker killed by a propagated panic must be
/// respawned (visible as `workers_respawned` in [`pool_stats`]) and the
/// pool must keep serving complete, correct dispatches afterwards — over
/// a long soak, capacity must not decay.
#[test]
fn killed_worker_is_respawned_and_solves_stay_correct() {
    if pp_portable::num_threads() <= 1 {
        // Single-threaded hosts have no pool workers to kill.
        return;
    }
    // Force pool creation and grab the baseline.
    Parallel.for_each(1024, |i| {
        std::hint::black_box(i);
    });
    let before = pool_stats();
    if before.workers == 0 {
        return;
    }

    inject_worker_death(1);
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
    while pool_stats().workers_respawned == before.workers_respawned {
        Parallel.for_each(4096, |i| {
            std::hint::black_box(i);
        });
        assert!(
            std::time::Instant::now() < deadline,
            "no pool worker consumed the injected-death token within 30s"
        );
        std::thread::sleep(std::time::Duration::from_millis(2));
    }

    let after = pool_stats();
    assert!(
        after.workers_respawned > before.workers_respawned,
        "worker death must be healed by a respawn"
    );
    assert_eq!(
        after.workers, before.workers,
        "pool capacity must not decay"
    );

    // The healed pool still solves bit-identically to Serial.
    let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space, BuilderVersion::FusedSpmv).unwrap();
    let mut parallel = rhs(builder.space().num_basis(), 48, 9);
    let mut serial = parallel.clone();
    builder.solve_in_place(&Parallel, &mut parallel).unwrap();
    builder.solve_in_place(&Serial, &mut serial).unwrap();
    assert_eq!(parallel.max_abs_diff(&serial), 0.0);
}

#[test]
fn pool_observability_counters_advance() {
    if pp_portable::num_threads() <= 1 {
        // Single-threaded hosts serve every dispatch inline; there is no
        // pool to observe.
        return;
    }
    let before = pool_stats();
    Parallel.for_each(4096, |i| {
        std::hint::black_box(i);
    });
    let after = pool_stats();
    assert!(
        after.dispatches > before.dispatches,
        "dispatch counter must advance"
    );
    assert!(
        after.lanes_dispatched >= before.lanes_dispatched + 4096,
        "lane counter must advance by at least the batch size"
    );
    assert_eq!(after.per_worker.len(), after.workers);
}
