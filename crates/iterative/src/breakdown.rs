//! The breakdown taxonomy: why a Krylov solve stopped short.
//!
//! At the paper's scale (10⁵–10¹² batch lanes per advection step) a
//! handful of lanes *will* break down — a NaN-contaminated right-hand
//! side, a shadow residual going orthogonal (`ρ → 0` in BiCGStab/BiCG),
//! a stalled residual. Batched-iterative practice (Ginkgo's per-system
//! stopping status, the batched Landau-collision solvers) treats that
//! per-system state as first-class rather than aborting the batch; this
//! module is the vocabulary for it. Every solver in this crate reports a
//! [`BreakdownKind`] on its [`SolveResult`](crate::SolveResult) when it
//! terminates without converging.

use std::fmt;

/// Why a Krylov iteration terminated without reaching the tolerance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakdownKind {
    /// The Krylov recurrence collapsed: `ρ = ⟨r̂, r⟩ → 0` (BiCGStab,
    /// BiCG), a search direction went `A`-null (CG's `⟨p, Ap⟩ = 0`), or
    /// the Arnoldi basis degenerated (GMRES). No further progress is
    /// possible from this iterate.
    RhoZero,
    /// BiCGStab's stabilisation parameter `ω` vanished: the GMRES(1)
    /// minimisation step cannot improve the iterate.
    OmegaZero,
    /// The residual (or an inner product feeding the recurrence) became
    /// NaN or ±Inf — typically a contaminated right-hand side or a
    /// wildly scaled matrix. Detected immediately, not after `max_iters`.
    NonFiniteResidual,
    /// The residual stopped improving over the configured stagnation
    /// window while still above tolerance.
    Stagnation,
    /// The iteration budget ran out with the residual still above
    /// tolerance (and still shrinking — otherwise a more specific kind
    /// fires first).
    MaxIters,
    /// The wall-clock budget attached to the stopping criteria ran out
    /// (deadline passed or cancellation requested) with the residual
    /// still above tolerance. The iterate left behind is the partial
    /// solution reached at the deadline; like
    /// [`MaxIters`](Self::MaxIters), a larger budget may finish it.
    BudgetExhausted,
}

impl BreakdownKind {
    /// Hard breakdowns invalidate the current Krylov process entirely;
    /// retrying with the same solver and iterate cannot help. Soft
    /// outcomes ([`Stagnation`](Self::Stagnation) /
    /// [`MaxIters`](Self::MaxIters)) left a partial solution that a
    /// stronger preconditioner or larger budget may finish.
    pub fn is_hard(&self) -> bool {
        matches!(
            self,
            BreakdownKind::RhoZero | BreakdownKind::OmegaZero | BreakdownKind::NonFiniteResidual
        )
    }
}

impl fmt::Display for BreakdownKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BreakdownKind::RhoZero => write!(f, "rho-zero breakdown (Krylov recurrence collapsed)"),
            BreakdownKind::OmegaZero => write!(f, "omega-zero breakdown (stabilisation stalled)"),
            BreakdownKind::NonFiniteResidual => write!(f, "non-finite residual (NaN/Inf)"),
            BreakdownKind::Stagnation => write!(f, "stagnation (no residual progress)"),
            BreakdownKind::MaxIters => write!(f, "iteration budget exhausted"),
            BreakdownKind::BudgetExhausted => {
                write!(f, "time budget exhausted (deadline or cancellation)")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hardness_partition() {
        use BreakdownKind::*;
        assert!(RhoZero.is_hard());
        assert!(OmegaZero.is_hard());
        assert!(NonFiniteResidual.is_hard());
        assert!(!Stagnation.is_hard());
        assert!(!MaxIters.is_hard());
        assert!(!BudgetExhausted.is_hard());
    }

    #[test]
    fn display_is_informative() {
        assert!(BreakdownKind::NonFiniteResidual.to_string().contains("NaN"));
        assert!(BreakdownKind::MaxIters.to_string().contains("budget"));
    }
}
