//! A 1D1V Vlasov–Poisson mini-solver — the physics GYSELA's advection
//! kernels exist to serve, reduced to the smallest self-consistent system.
//!
//! Strang splitting of the Vlasov equation (1):
//! half-step `x`-advection (velocity `v`), Poisson solve for `E`, full
//! `v`-advection (acceleration `−E`), half-step `x`-advection. Both
//! advections are the batched semi-Lagrangian kernel of
//! [`Advection1D`] — so the spline
//! builder runs in *both* batch orientations every step, exactly the
//! workload shape the paper describes for the full 5D code.
//!
//! The `v` domain is truncated at `±v_max` and treated periodically; with
//! `f ≈ 0` near the cut this is the standard benign approximation for
//! two-stream-instability demos.

use std::path::PathBuf;

use crate::error::{Error, Result};
use crate::semilagrangian::{Advection1D, AdvectionDiagnostics, SplineBackend};
use pp_bsplines::{Breaks, PeriodicSplineSpace};
use pp_portable::{transpose_into_with, ExecSpace, Layout, Matrix, ResidentBatch};
use pp_splinesolver::{BuilderVersion, CheckpointStore, Snapshot, VerifyConfig};

/// The distribution function held resident in interleaved panels, in
/// both batch orientations the Strang step needs. The slabs stay packed
/// across steps; only checkpoint/diagnostic boundaries unpack.
struct ResidentSlabs {
    /// `(Nx, Nv)` — rows x, lanes v: the x-advection orientation.
    f_xv: ResidentBatch,
    /// `(Nv, Nx)` — rows v, lanes x: the v-advection orientation.
    f_vx: ResidentBatch,
}

/// Self-consistent 1D1V Vlasov–Poisson solver on a doubly periodic
/// `(x, v)` grid.
pub struct VlasovPoisson1D1V {
    adv_x: Advection1D,
    adv_v: Advection1D,
    /// Distribution `f(v_j, x_i)`, shape `(Nv, Nx)`, row-major.
    f: Matrix,
    /// Transposed scratch `(Nx, Nv)`.
    f_t: Matrix,
    x_grid: Vec<f64>,
    v_grid: Vec<f64>,
    dx: f64,
    dv: f64,
    dt: f64,
    /// Latest electric field `E(x_i)`.
    e_field: Vec<f64>,
    /// Completed Strang steps since construction or restore.
    step_index: u64,
    /// Run seed recorded in checkpoints (RNG / chaos-harness seed), so a
    /// resumed run replays the same injected-fault schedule.
    seed: u64,
    /// Periodic checkpointing: `(store, every-n-steps)`.
    checkpoint: Option<(CheckpointStore, u64)>,
    /// Interleaved-resident distribution slabs; allocated on the first
    /// [`VlasovPoisson1D1V::step_resident`] call and dropped on restore.
    resident: Option<ResidentSlabs>,
}

impl VlasovPoisson1D1V {
    /// Build the solver: `nx × nv` grid over `[0, lx) × [−v_max, v_max)`,
    /// spline degree `degree`, time step `dt`.
    pub fn new(
        nx: usize,
        nv: usize,
        lx: f64,
        v_max: f64,
        degree: usize,
        dt: f64,
        f0: impl Fn(f64, f64) -> f64,
    ) -> Result<Self> {
        Self::build(
            nx,
            nv,
            lx,
            v_max,
            degree,
            dt,
            BuilderVersion::FusedSpmv,
            None,
            f0,
        )
    }

    /// Like [`VlasovPoisson1D1V::new`], but selecting the direct
    /// builder's kernel version (e.g. [`BuilderVersion::Interleaved`] for
    /// the lane-interleaved kernel, which the resident stepping path is
    /// bit-identical to).
    #[allow(clippy::too_many_arguments)]
    pub fn new_with_version(
        nx: usize,
        nv: usize,
        lx: f64,
        v_max: f64,
        degree: usize,
        dt: f64,
        version: BuilderVersion,
        f0: impl Fn(f64, f64) -> f64,
    ) -> Result<Self> {
        Self::build(nx, nv, lx, v_max, degree, dt, version, None, f0)
    }

    /// Like [`VlasovPoisson1D1V::new`], but both advections run the
    /// verified direct backend: per-lane residual checks, quarantine of
    /// poisoned lanes, and the factorization fallback ladder. Diagnostics
    /// of the latest step are available via
    /// [`VlasovPoisson1D1V::advection_diagnostics`].
    #[allow(clippy::too_many_arguments)]
    pub fn new_verified(
        nx: usize,
        nv: usize,
        lx: f64,
        v_max: f64,
        degree: usize,
        dt: f64,
        config: VerifyConfig,
        f0: impl Fn(f64, f64) -> f64,
    ) -> Result<Self> {
        Self::build(
            nx,
            nv,
            lx,
            v_max,
            degree,
            dt,
            BuilderVersion::FusedSpmv,
            Some(config),
            f0,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn build(
        nx: usize,
        nv: usize,
        lx: f64,
        v_max: f64,
        degree: usize,
        dt: f64,
        version: BuilderVersion,
        verify: Option<VerifyConfig>,
        f0: impl Fn(f64, f64) -> f64,
    ) -> Result<Self> {
        let space_x =
            PeriodicSplineSpace::new(Breaks::uniform(nx, 0.0, lx).map_err(spline_err)?, degree)
                .map_err(spline_err)?;
        let space_v = PeriodicSplineSpace::new(
            Breaks::uniform(nv, -v_max, v_max).map_err(spline_err)?,
            degree,
        )
        .map_err(spline_err)?;

        let x_grid = space_x.interpolation_points();
        let v_grid = space_v.interpolation_points();

        let backend = |space: PeriodicSplineSpace| -> Result<SplineBackend> {
            match &verify {
                Some(config) => SplineBackend::direct_verified(space, version, config.clone()),
                None => SplineBackend::direct(space, version),
            }
        };
        let adv_x = Advection1D::new(
            backend(space_x)?,
            v_grid.clone(),
            dt / 2.0, // Strang half step
        )?;
        let adv_v = Advection1D::new(
            backend(space_v)?,
            vec![0.0; nx], // displacements supplied per step
            dt,
        )?;

        let f = Matrix::from_fn(nv, nx, Layout::Right, |j, i| f0(x_grid[i], v_grid[j]));
        Ok(Self {
            f_t: Matrix::zeros(nx, nv, Layout::Right),
            adv_x,
            adv_v,
            f,
            dx: lx / nx as f64,
            dv: 2.0 * v_max / nv as f64,
            x_grid,
            v_grid,
            dt,
            e_field: vec![0.0; nx],
            step_index: 0,
            seed: 0,
            checkpoint: None,
            resident: None,
        })
    }

    /// Current distribution `f(v_j, x_i)`.
    pub fn distribution(&self) -> &Matrix {
        &self.f
    }

    /// x grid.
    pub fn x_grid(&self) -> &[f64] {
        &self.x_grid
    }

    /// v grid.
    pub fn v_grid(&self) -> &[f64] {
        &self.v_grid
    }

    /// Latest electric field.
    pub fn e_field(&self) -> &[f64] {
        &self.e_field
    }

    /// Verification diagnostics of the latest `(x, v)` advection steps.
    /// Both are `None` unless the solver was built with
    /// [`VlasovPoisson1D1V::new_verified`] and a step has run.
    pub fn advection_diagnostics(
        &self,
    ) -> (Option<&AdvectionDiagnostics>, Option<&AdvectionDiagnostics>) {
        (self.adv_x.last_diagnostics(), self.adv_v.last_diagnostics())
    }

    /// Charge density `ρ(x_i) = ∫ f dv` (uniform quadrature).
    pub fn density(&self) -> Vec<f64> {
        let (nv, nx) = self.f.shape();
        (0..nx)
            .map(|i| (0..nv).map(|j| self.f.get(j, i)).sum::<f64>() * self.dv)
            .collect()
    }

    /// [`VlasovPoisson1D1V::density`] read panel-natively off the
    /// resident `(Nx, Nv)` slab. Per-`x` summation runs over lanes in
    /// ascending order — the same order as the host accumulation, so the
    /// densities (and hence the field) are bit-identical.
    fn density_resident(&self, slab: &ResidentBatch) -> Vec<f64> {
        let (nx, nv) = (slab.nrows(), slab.ncols());
        (0..nx)
            .map(|i| (0..nv).map(|j| slab.get(i, j)).sum::<f64>() * self.dv)
            .collect()
    }

    /// Solve the 1D periodic Poisson problem `∂E/∂x = ⟨ρ⟩ − ρ` (electron
    /// density `ρ` against a neutralising ion background) for the
    /// zero-mean electric field, by cumulative integration.
    pub fn solve_poisson(&mut self) {
        let rho = self.density();
        self.poisson_from_density(&rho);
    }

    /// The field integration shared by the host and resident paths.
    fn poisson_from_density(&mut self, rho: &[f64]) {
        let nx = rho.len();
        let mean: f64 = rho.iter().sum::<f64>() / nx as f64;
        // Cumulative trapezoid of (⟨ρ⟩ − ρ).
        let mut e = vec![0.0; nx];
        for i in 1..nx {
            e[i] = e[i - 1] + 0.5 * ((mean - rho[i - 1]) + (mean - rho[i])) * self.dx;
        }
        // Fix the gauge: zero-mean field.
        let e_mean: f64 = e.iter().sum::<f64>() / nx as f64;
        for v in &mut e {
            *v -= e_mean;
        }
        self.e_field = e;
    }

    /// Electric-field energy `½ ∫ E² dx`.
    pub fn field_energy(&self) -> f64 {
        0.5 * self.e_field.iter().map(|e| e * e).sum::<f64>() * self.dx
    }

    /// Total mass `∫∫ f dx dv`.
    pub fn mass(&self) -> f64 {
        self.f.as_slice().iter().sum::<f64>() * self.dx * self.dv
    }

    /// Completed Strang steps since construction, or since the restored
    /// checkpoint after [`VlasovPoisson1D1V::resume_from`].
    pub fn step_index(&self) -> u64 {
        self.step_index
    }

    /// Record `seed` (the run's RNG / chaos-harness seed) in every
    /// checkpoint, so a resumed run can replay the same schedule.
    pub fn set_seed(&mut self, seed: u64) {
        self.seed = seed;
    }

    /// The recorded run seed (restored along with the state).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Checkpoint into `store` every `n` completed steps (`n` is clamped
    /// to at least 1). Combine with [`CheckpointStore::from_env`] to honor
    /// `PP_CHECKPOINT_DIR`/`PP_CHECKPOINT_KEEP`. Each write is atomic and
    /// `fsync`ed; see [`CheckpointStore::write`].
    pub fn checkpoint_every(&mut self, n: u64, store: CheckpointStore) {
        self.checkpoint = Some((store, n.max(1)));
    }

    /// Serialise the full simulation state (distribution, field, step
    /// index, time step, run seed) into a [`Snapshot`].
    pub fn snapshot(&self) -> Snapshot {
        let mut s = Snapshot::new();
        s.push_matrix("f", &self.f);
        s.push_f64s("e_field", &self.e_field);
        s.push_u64("step", self.step_index);
        s.push_f64("dt", self.dt);
        s.push_u64("seed", self.seed);
        s
    }

    /// Load state from a snapshot written by a solver with the same grid
    /// and time step. The restored distribution is bit-exact, so stepping
    /// on from here reproduces the uninterrupted run bit for bit.
    pub fn restore(&mut self, snapshot: &Snapshot) -> Result<()> {
        let f = snapshot.get_matrix("f").map_err(Error::from)?;
        if f.shape() != self.f.shape() {
            return Err(Error::Checkpoint {
                detail: format!(
                    "snapshot grid {:?} does not match solver grid {:?}",
                    f.shape(),
                    self.f.shape()
                ),
            });
        }
        let dt = snapshot.get_f64("dt").map_err(Error::from)?;
        if dt.to_bits() != self.dt.to_bits() {
            return Err(Error::Checkpoint {
                detail: format!("snapshot dt {dt:e} does not match solver dt {:e}", self.dt),
            });
        }
        let e_field = snapshot.get_f64s("e_field").map_err(Error::from)?;
        if e_field.len() != self.e_field.len() {
            return Err(Error::Checkpoint {
                detail: format!(
                    "snapshot field has {} points, solver has {}",
                    e_field.len(),
                    self.e_field.len()
                ),
            });
        }
        self.step_index = snapshot.get_u64("step").map_err(Error::from)?;
        self.seed = snapshot.get_u64("seed").map_err(Error::from)?;
        self.f = f;
        self.e_field = e_field;
        // The host matrix is authoritative again; stale resident slabs
        // must not survive a restore.
        self.resident = None;
        Ok(())
    }

    /// Resume from the newest valid checkpoint generation under `dir`.
    /// Corrupt generations are skipped in favour of older intact ones
    /// (see [`CheckpointStore::restore_latest`]). Returns the restored
    /// step index, or `None` when no restorable checkpoint exists — the
    /// run then simply starts fresh.
    pub fn resume_from(&mut self, dir: impl Into<PathBuf>) -> Result<Option<u64>> {
        match CheckpointStore::new(dir).restore_latest() {
            Some((_, snapshot)) => {
                self.restore(&snapshot)?;
                Ok(Some(self.step_index))
            }
            None => Ok(None),
        }
    }

    /// One Strang-split time step.
    pub fn step<E: ExecSpace>(&mut self, exec: &E) -> Result<()> {
        // Half x-advection.
        self.adv_x.step(exec, &mut self.f)?;
        // Field solve from the updated density.
        self.solve_poisson();
        // Full v-advection: per-x-lane displacement a·Δt = −E(x)·Δt.
        let disp: Vec<f64> = self.e_field.iter().map(|&e| -e * self.dt).collect();
        transpose_into_with(exec, &self.f, &mut self.f_t).map_err(|e| Error::ShapeMismatch {
            detail: e.to_string(),
        })?;
        self.adv_v
            .step_with_displacements(exec, &mut self.f_t, &disp)?;
        let mut back = std::mem::replace(
            &mut self.f,
            Matrix::zeros(self.v_grid.len(), self.x_grid.len(), Layout::Right),
        );
        transpose_into_with(exec, &self.f_t, &mut back).map_err(|e| Error::ShapeMismatch {
            detail: e.to_string(),
        })?;
        self.f = back;
        // Half x-advection.
        self.adv_x.step(exec, &mut self.f)?;
        self.step_index += 1;
        if let Some((store, every)) = &self.checkpoint {
            if self.step_index % *every == 0 {
                store.write(self.step_index, &self.snapshot())?;
            }
        }
        Ok(())
    }

    /// One Strang-split time step with the distribution **resident in
    /// interleaved panels**: both advections solve and interpolate
    /// panel-native, the density reads the slab directly, and the only
    /// layout motion per step is the pair of panel-to-panel orientation
    /// flips between the `x` and `v` advections (which the host path pays
    /// as full transposes too). The slab is unpacked to the host matrix
    /// only at checkpoint boundaries and on
    /// [`VlasovPoisson1D1V::sync_host`].
    ///
    /// Bit-identical to [`VlasovPoisson1D1V::step`] when the backends run
    /// the interleaved kernel. After resident steps,
    /// [`VlasovPoisson1D1V::distribution`] / [`VlasovPoisson1D1V::mass`]
    /// read a stale host matrix until [`VlasovPoisson1D1V::sync_host`]
    /// runs; field quantities (`e_field`, `field_energy`) are always
    /// current.
    pub fn step_resident<E: ExecSpace>(&mut self, exec: &E) -> Result<()> {
        if self.resident.is_none() {
            self.resident = Some(ResidentSlabs {
                // f is (Nv, Nx); the x-advection slab is its transpose.
                f_xv: ResidentBatch::pack_transposed(&self.f),
                f_vx: ResidentBatch::zeros(self.v_grid.len(), self.x_grid.len()),
            });
        }
        let mut rs = self.resident.take().expect("just ensured");
        let stepped = self.step_resident_inner(exec, &mut rs);
        self.resident = Some(rs);
        stepped?;
        self.step_index += 1;
        let due = self
            .checkpoint
            .as_ref()
            .is_some_and(|(_, every)| self.step_index % *every == 0);
        if due {
            // Checkpoint boundary: the one place the slab leaves panel
            // form, so snapshots stay byte-compatible with host-path runs.
            self.sync_host();
            let snapshot = self.snapshot();
            if let Some((store, _)) = &self.checkpoint {
                store.write(self.step_index, &snapshot)?;
            }
        }
        Ok(())
    }

    fn step_resident_inner<E: ExecSpace>(
        &mut self,
        exec: &E,
        rs: &mut ResidentSlabs,
    ) -> Result<()> {
        // Half x-advection, panel-native.
        self.adv_x.step_resident(exec, &mut rs.f_xv)?;
        // Field solve straight off the slab.
        let rho = self.density_resident(&rs.f_xv);
        self.poisson_from_density(&rho);
        // Full v-advection in the flipped orientation.
        let disp: Vec<f64> = self.e_field.iter().map(|&e| -e * self.dt).collect();
        rs.f_xv.transpose_into(&mut rs.f_vx).map_err(flip_err)?;
        self.adv_v
            .step_resident_with_displacements(exec, &mut rs.f_vx, &disp)?;
        rs.f_vx.transpose_into(&mut rs.f_xv).map_err(flip_err)?;
        // Half x-advection.
        self.adv_x.step_resident(exec, &mut rs.f_xv)?;
        Ok(())
    }

    /// Unpack the resident slab back into the host distribution matrix
    /// (generation-keyed: free when the slab has not moved since the last
    /// sync). No-op when no resident step has run.
    pub fn sync_host(&mut self) {
        if let Some(rs) = &mut self.resident {
            // The (Nv, Nx) row-major mirror matches `f`'s shape exactly.
            let mirror = rs.f_xv.host_transposed();
            self.f.deep_copy_from(mirror).expect("grid fixed at build");
        }
    }
}

fn flip_err(e: pp_portable::Error) -> Error {
    Error::ShapeMismatch {
        detail: e.to_string(),
    }
}

fn spline_err(e: pp_bsplines::Error) -> Error {
    Error::Spline(pp_splinesolver::Error::Space(e))
}

/// Classic two-stream instability initial condition: two counter-streaming
/// Maxwellian beams with a small sinusoidal seed.
pub fn two_stream(v0: f64, amplitude: f64, k: f64) -> impl Fn(f64, f64) -> f64 {
    move |x: f64, v: f64| {
        let beams = 0.5 * ((-(v - v0) * (v - v0) / 0.5).exp() + (-(v + v0) * (v + v0) / 0.5).exp())
            / (0.5 * std::f64::consts::PI).sqrt();
        beams * (1.0 + amplitude * (k * x).cos())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::Parallel;

    fn small_solver() -> VlasovPoisson1D1V {
        // k·v0 = 0.7 ω_p: near the cold-beam maximum growth rate.
        VlasovPoisson1D1V::new(
            32,
            64,
            2.0 * std::f64::consts::PI / 0.5, // k = 0.5 fits one mode
            5.0,
            3,
            0.05,
            two_stream(1.4, 0.01, 0.5),
        )
        .unwrap()
    }

    #[test]
    fn poisson_solver_zero_for_uniform_density() {
        let mut s =
            VlasovPoisson1D1V::new(16, 16, 1.0, 4.0, 3, 0.1, |_, v| (-v * v).exp()).unwrap();
        s.solve_poisson();
        for &e in s.e_field() {
            assert!(e.abs() < 1e-12, "uniform density must give E = 0");
        }
    }

    #[test]
    fn poisson_derivative_matches_density_fluctuation() {
        let mut s = VlasovPoisson1D1V::new(64, 16, 1.0, 4.0, 3, 0.1, |x, v| {
            (-v * v).exp() * (1.0 + 0.2 * (std::f64::consts::TAU * x).sin())
        })
        .unwrap();
        s.solve_poisson();
        let rho = s.density();
        let mean: f64 = rho.iter().sum::<f64>() / rho.len() as f64;
        let e = s.e_field().to_vec();
        let dx = 1.0 / 64.0;
        // Central-difference dE/dx ≈ ⟨ρ⟩ − ρ away from the seam.
        for i in 1..63 {
            let de = (e[i + 1] - e[i - 1]) / (2.0 * dx);
            assert!(
                (de - (mean - rho[i])).abs() < 0.05 * (mean - rho[i]).abs().max(0.1),
                "i = {i}: dE/dx {de} vs {}",
                mean - rho[i]
            );
        }
    }

    #[test]
    fn mass_conserved_over_steps() {
        let mut s = small_solver();
        let m0 = s.mass();
        for _ in 0..5 {
            s.step(&Parallel).unwrap();
        }
        let m1 = s.mass();
        // Strang splitting + spline remap: mass is conserved to scheme
        // accuracy, not machine precision.
        assert!(((m1 - m0) / m0).abs() < 1e-4, "{m0} -> {m1}");
    }

    #[test]
    fn two_stream_instability_grows() {
        let mut s = small_solver();
        s.solve_poisson();
        let e0 = s.field_energy();
        // The ballistic part of the seed phase-mixes away first; the
        // unstable eigenmode then grows exponentially. Track the maximum.
        // Growth emerges around t ≈ 15 ω_p⁻¹ (measured: E reaches ~0.4 by
        // t = 20, ~350× the seed).
        let mut e_max: f64 = 0.0;
        for _ in 0..400 {
            s.step(&Parallel).unwrap();
            e_max = e_max.max(s.field_energy());
        }
        assert!(
            e_max > 10.0 * e0,
            "two-stream field energy should grow: {e0:.3e} -> max {e_max:.3e}"
        );
    }

    #[test]
    fn verified_solver_matches_plain_and_reports_clean() {
        let init = two_stream(1.4, 0.01, 0.5);
        let mut plain = VlasovPoisson1D1V::new(32, 32, 4.0, 5.0, 3, 0.05, &init).unwrap();
        let mut verified = VlasovPoisson1D1V::new_verified(
            32,
            32,
            4.0,
            5.0,
            3,
            0.05,
            VerifyConfig::default(),
            &init,
        )
        .unwrap();
        assert_eq!(verified.advection_diagnostics(), (None, None));
        for _ in 0..3 {
            plain.step(&Parallel).unwrap();
            verified.step(&Parallel).unwrap();
        }
        // Healthy batches are bit-identical, so the whole simulation is.
        assert_eq!(
            plain.distribution().max_abs_diff(verified.distribution()),
            0.0
        );
        let (dx, dv) = verified.advection_diagnostics();
        assert!(dx.unwrap().all_clean());
        assert!(dv.unwrap().all_clean());
    }

    #[test]
    fn resident_steps_match_interleaved_host_steps_bitwise() {
        // Resident stepping runs the interleaved kernel, so the host
        // reference must too for a bitwise comparison.
        let init = two_stream(1.4, 0.01, 0.5);
        let lx = 2.0 * std::f64::consts::PI / 0.5;
        let mut host = VlasovPoisson1D1V::new_with_version(
            32,
            24,
            lx,
            5.0,
            3,
            0.05,
            BuilderVersion::Interleaved,
            &init,
        )
        .unwrap();
        let mut res = VlasovPoisson1D1V::new_with_version(
            32,
            24,
            lx,
            5.0,
            3,
            0.05,
            BuilderVersion::Interleaved,
            &init,
        )
        .unwrap();
        for _ in 0..4 {
            host.step(&Parallel).unwrap();
            res.step_resident(&Parallel).unwrap();
        }
        // Field quantities are always current on the resident path.
        for (a, b) in host.e_field().iter().zip(res.e_field()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        res.sync_host();
        assert_eq!(host.distribution().max_abs_diff(res.distribution()), 0.0);
        assert_eq!(host.step_index(), res.step_index());
    }

    #[test]
    fn resident_steps_track_default_backend_host_steps() {
        // The default host backend is FusedSpmv, which agrees with the
        // interleaved resident kernel to ~2 ulp per solve; over a few
        // Strang steps the paths stay far inside 1e-11.
        let init = two_stream(1.4, 0.01, 0.5);
        let mut host = VlasovPoisson1D1V::new(32, 32, 4.0, 5.0, 3, 0.05, &init).unwrap();
        let mut res = VlasovPoisson1D1V::new(32, 32, 4.0, 5.0, 3, 0.05, &init).unwrap();
        for _ in 0..3 {
            host.step(&Parallel).unwrap();
            res.step_resident(&Parallel).unwrap();
        }
        res.sync_host();
        let diff = host.distribution().max_abs_diff(res.distribution());
        assert!(diff < 1e-11, "{diff}");
    }

    #[test]
    fn sync_host_refreshes_distribution_and_restore_drops_slab() {
        let mut s = small_solver();
        let before = s.distribution().clone();
        s.step_resident(&Parallel).unwrap();
        // The host matrix is stale until an explicit sync.
        assert_eq!(before.max_abs_diff(s.distribution()), 0.0);
        s.sync_host();
        assert!(before.max_abs_diff(s.distribution()) > 0.0);
        let snap = s.snapshot();

        // A restore makes the host matrix authoritative again: resident
        // stepping afterwards must start from the restored state, not
        // from a stale slab left behind by earlier resident steps.
        let mut t = small_solver();
        t.step_resident(&Parallel).unwrap();
        t.step_resident(&Parallel).unwrap();
        t.restore(&snap).unwrap();
        t.step_resident(&Parallel).unwrap();
        t.sync_host();

        let mut u = small_solver();
        u.restore(&snap).unwrap();
        u.step_resident(&Parallel).unwrap();
        u.sync_host();
        assert_eq!(t.distribution().max_abs_diff(u.distribution()), 0.0);
        assert_eq!(t.step_index(), u.step_index());
    }

    #[test]
    fn distribution_stays_finite_and_mostly_positive() {
        let mut s = small_solver();
        for _ in 0..10 {
            s.step(&Parallel).unwrap();
        }
        let f = s.distribution();
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        // Semi-Lagrangian splines can undershoot slightly; bound it.
        let min = f.as_slice().iter().cloned().fold(f64::INFINITY, f64::min);
        assert!(min > -0.05, "excessive undershoot: {min}");
    }
}
