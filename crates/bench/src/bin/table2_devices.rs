//! Table II — hardware description of the paper's three platforms, as
//! encoded in the performance model.

use pp_perfmodel::Device;

fn main() {
    println!("=== Table II: hardware description (one processor) ===\n");
    let devices = Device::table2();
    let row = |name: &str, f: &dyn Fn(&Device) -> String| {
        print!("{name:<28}");
        for d in &devices {
            print!("{:<26}", f(d));
        }
        println!();
    };
    row("Processor", &|d| d.name.to_string());
    row("Cores (FP64)", &|d| {
        d.fp64_cores.map_or("-".into(), |c| c.to_string())
    });
    row("Shared cache [MB]", &|d| format!("{}", d.shared_cache_mib));
    row("Peak perf [GFlops]", &|d| format!("{}", d.peak_gflops));
    row("Peak B/W [GB/s]", &|d| format!("{}", d.peak_bw_gbs));
    row("B/F ratio", &|d| format!("{:.3}", d.bf_ratio()));
    row("SIMD width", &|d| {
        d.simd_bits.map_or("-".into(), |b| format!("{b} bit"))
    });
    row("Warp/wavefront", &|d| {
        d.warp_size.map_or("-".into(), |w| w.to_string())
    });
    row("TDP [W]", &|d| format!("{}", d.tdp_w));
    row("Process [nm]", &|d| d.process_nm.to_string());
    row("Year", &|d| d.year.to_string());
    row("Compilers", &|d| d.compiler.to_string());
    println!("\nmodel: simulation parameters (not in the paper's table):");
    row("  line [B] / assoc", &|d| {
        format!("{} / {}", d.line_bytes, d.cache_assoc)
    });
    row("  resident lanes", &|d| d.resident_lanes.to_string());
    row("  stream efficiency", &|d| {
        format!("{}", d.stream_efficiency)
    });
}
