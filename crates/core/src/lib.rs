//! # pp-splinesolver — the batched single-matrix / multi-RHS spline builder
//!
//! This crate is the Rust realisation of the paper's primary contribution:
//! a performance-portable kernel that builds spline coefficients by solving
//! **one fixed interpolation matrix against an enormous batch of
//! right-hand sides**, using the Schur-complement block decomposition of
//! Algorithm 1 and the batched-serial solvers of `pp-linalg`.
//!
//! ## The three builder versions
//!
//! The paper's artifact exposes `DDC_SPLINES_VERSION = 0, 1, 2`; so does
//! [`BuilderVersion`]:
//!
//! | version | paper section | structure |
//! |---|---|---|
//! | [`BuilderVersion::Baseline`] | Listing 2 | four separate batched kernels: `Q`-solve, `gemm` (λ correction), `getrs` (δ′), `gemm` (β correction) — four passes over the right-hand sides |
//! | [`BuilderVersion::Fused`] | Listing 4, §IV-C | one fused per-lane kernel (`Q`-solve + dense `gemv` + `getrs` + dense `gemv`) — one pass, better temporal locality |
//! | [`BuilderVersion::FusedSpmv`] | Listing 6, §IV-D | fused kernel with the corner blocks `λ` and `β = Q⁻¹γ` stored sparse (COO) — O(nnz) corner work instead of O(n) |
//!
//! All three produce bit-comparable coefficients; they differ only in data
//! movement — which is exactly what the paper's Table III measures.
//!
//! ## Setup vs. solve
//!
//! [`SplineBuilder::new`] does everything that happens *once* (the paper
//! factorises on the host at initialisation): assemble `A`, detect the
//! border structure, factor `Q` with the Table I solver
//! ([`QClass`]), form `β = Q⁻¹ γ` and the Schur complement
//! `δ′ = δ − λ β`, and factor `δ′` densely. `solve_in_place` then runs
//! every time step over a `(n, batch)` block.
//!
//! ```
//! use pp_bsplines::{Breaks, PeriodicSplineSpace};
//! use pp_splinesolver::{BuilderVersion, SplineBuilder};
//! use pp_portable::{Layout, Matrix, Parallel};
//!
//! let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
//! let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
//!
//! // 100 lanes, each interpolating the same sine.
//! let pts = space.interpolation_points();
//! let mut rhs = Matrix::from_fn(32, 100, Layout::Left, |i, _| (std::f64::consts::TAU * pts[i]).sin());
//! builder.solve_in_place(&Parallel, &mut rhs).unwrap();
//!
//! // rhs now holds spline coefficients; evaluate lane 7 at x = 0.4.
//! let coefs: Vec<f64> = rhs.col(7).to_vec();
//! let y = space.eval(&coefs, 0.4);
//! assert!((y - (std::f64::consts::TAU * 0.4_f64).sin()).abs() < 1e-3);
//! ```

// Non-test code in this crate is free of `unwrap()`; keep it that way
// (failures must surface as typed errors or documented invariants).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Numerical kernels here deliberately use index loops (matching the
// LAPACK-style algorithms they implement) and NaN-rejecting negated
// comparisons; silence the corresponding style lints crate-wide.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::int_plus_one)]

pub mod blocks;
pub mod builder;
pub mod checkpoint;
pub mod clamped_builder;
pub mod error;
pub mod evaluator;
pub mod iterative_backend;
pub mod tensor2d;
pub mod verified;

pub use blocks::{QClass, QFactors, SchurBlocks};
pub use builder::{BuilderVersion, SplineBuilder};
pub use checkpoint::{CheckpointStore, Snapshot, DEFAULT_KEEP};
pub use clamped_builder::ClampedSplineBuilder;
pub use error::{Error, Result};
pub use evaluator::SplineEvaluator;
pub use iterative_backend::{IterativeConfig, IterativeSplineSolver, KrylovKind, RecoveryPolicy};
pub use tensor2d::TensorSpline2D;
pub use verified::{
    Degradation, DegradedReport, FallbackRung, LaneReport, LaneVerdict, QuarantineReason,
    VerifiedBuilder, VerifyConfig,
};
