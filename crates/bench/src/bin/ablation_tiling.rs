//! Ablation — the paper's §V-A future work, implemented and measured:
//! lane-tiled sweeps (`pttrs_tiled`) turn the batch-contiguous layout's
//! strided lane accesses into contiguous row panels. Compares
//! lane-at-a-time vs. tiled batched `pttrs` on both layouts and several
//! tile widths.

use pp_bench::{fmt_ms, parse_args, time_mean, SplineConfig};
use pp_linalg::{batched, pttrf, tiled::pttrs_tiled};
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SplineBuilder};

fn main() {
    let args = parse_args(1000, 20_000, 5);
    println!(
        "=== Ablation: lane tiling for batched pttrs, (n, batch) = ({}, {}), {} iters ===\n",
        args.nx, args.nv, args.iters
    );
    let factors = pttrf(&vec![4.0; args.nx], &vec![-1.0; args.nx - 1]).expect("pttrf");

    for layout in [Layout::Left, Layout::Right] {
        println!("--- {} ---", layout.name());
        let rhs = Matrix::from_fn(args.nx, args.nv, layout, |i, j| ((i + j) % 7) as f64 + 1.0);

        let mut work = rhs.clone();
        let t_lane = time_mean(args.iters, || {
            work.deep_copy_from(&rhs).expect("shape");
            batched::pttrs(&Parallel, &factors, &mut work);
        });
        println!("{:>24} {:>12}", "lane-at-a-time", fmt_ms(t_lane));

        for tile in [8usize, 32, 64, 256] {
            let mut work = rhs.clone();
            let t = time_mean(args.iters, || {
                work.deep_copy_from(&rhs).expect("shape");
                pttrs_tiled(&Parallel, &factors, &mut work, tile);
            });
            println!(
                "{:>24} {:>12}   ({:.2}x vs lane-wise)",
                format!("tiled (tile = {tile})"),
                fmt_ms(t),
                t_lane.as_secs_f64() / t.as_secs_f64()
            );
        }
        println!();
    }
    println!("expected: on the batch-contiguous (LayoutRight) block, tiling turns");
    println!("strided lane sweeps into contiguous row panels and wins decisively;");
    println!("on the lane-contiguous (LayoutLeft) block both orders stream well.");

    println!("\n=== full spline builder: per-lane fused+spmv vs lane-tiled ===\n");
    for cfg in [
        SplineConfig {
            degree: 3,
            uniform: true,
        },
        SplineConfig {
            degree: 5,
            uniform: false,
        },
    ] {
        let builder =
            SplineBuilder::new(cfg.space(args.nx), BuilderVersion::FusedSpmv).expect("setup");
        for layout in [Layout::Left, Layout::Right] {
            let rhs = Matrix::from_fn(args.nx, args.nv, layout, |i, j| ((i * 3 + j) % 11) as f64);
            let mut work = rhs.clone();
            let t_lane = time_mean(args.iters, || {
                work.deep_copy_from(&rhs).expect("shape");
                builder.solve_in_place(&Parallel, &mut work).expect("solve");
            });
            let mut work = rhs.clone();
            let t_tiled = time_mean(args.iters, || {
                work.deep_copy_from(&rhs).expect("shape");
                builder
                    .solve_in_place_tiled(&Parallel, &mut work, 64)
                    .expect("solve");
            });
            println!(
                "{:<24} {:<12} per-lane {:>10}  tiled {:>10}  ({:.2}x)",
                cfg.label(),
                layout.name(),
                fmt_ms(t_lane),
                fmt_ms(t_tiled),
                t_lane.as_secs_f64() / t_tiled.as_secs_f64()
            );
        }
    }
}
