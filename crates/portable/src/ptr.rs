//! Shared-pointer utility for lane-parallel kernels.
//!
//! Batched kernels mutate *disjoint* lanes of one allocation from many
//! threads. Rust's borrow checker cannot see the disjointness through a
//! runtime stride, so the lane dispatchers in [`crate::exec`] funnel their
//! single `unsafe` through this wrapper, which documents and centralises the
//! invariant (the pattern recommended by *Rust Atomics and Locks* for
//! hand-built synchronisation: keep the unsafety in one small, auditable
//! type).

/// A raw pointer that may be shared across threads.
///
/// # Safety contract (for users inside this crate)
///
/// Constructing a `SharedMutPtr` is safe; *dereferencing* it is not. Every
/// use must guarantee that concurrent accesses through clones of the same
/// `SharedMutPtr` touch **disjoint** element index sets. The lane
/// dispatchers guarantee this by construction: lane `j` only touches
/// elements whose linear offset is `j * col_stride + i * row_stride` for
/// `i < len`, and each `j` is visited exactly once.
#[derive(Clone, Copy)]
pub(crate) struct SharedMutPtr(pub *mut f64);

// SAFETY: the pointer itself is plain data; all dereferences are guarded by
// the disjointness contract above.
unsafe impl Send for SharedMutPtr {}
unsafe impl Sync for SharedMutPtr {}

impl SharedMutPtr {
    /// Offset the pointer. Caller must keep the result in bounds of the
    /// original allocation.
    #[inline]
    pub(crate) unsafe fn add(self, offset: usize) -> *mut f64 {
        self.0.add(offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_ptr_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SharedMutPtr>();
    }

    #[test]
    fn add_offsets_correctly() {
        let mut data = [1.0_f64, 2.0, 3.0];
        let p = SharedMutPtr(data.as_mut_ptr());
        // SAFETY: single-threaded, in bounds.
        unsafe {
            assert_eq!(*p.add(2), 3.0);
        }
    }
}
