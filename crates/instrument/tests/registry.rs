//! Registry correctness under concurrency, and inertness with the
//! feature off. Everything that touches the *global* reset lives in one
//! `#[test]` so parallel test threads cannot race it.

use pp_instrument::{counter, enabled, histogram, PhaseId, Snapshot, Span};

#[cfg(feature = "instrument")]
#[test]
fn concurrent_recording_is_exact_and_reset_clears() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;

    pp_instrument::reset();

    // N threads hammer the same histogram, counter, and phase; snapshot
    // totals must be exact (no samples lost to races).
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            scope.spawn(move || {
                let h = histogram("test.registry.latency");
                let c = counter("test.registry.ops");
                for i in 0..PER_THREAD {
                    h.record((t * PER_THREAD + i) as u64);
                    c.inc();
                    let _span = Span::enter(PhaseId::KrylovIter);
                }
            });
        }
    });

    let snap = Snapshot::capture();
    let n = (THREADS * PER_THREAD) as u64;
    let h = snap
        .histogram("test.registry.latency")
        .expect("histogram exists");
    assert_eq!(h.count, n);
    // Sum of 0..N-1 recorded exactly once each.
    assert_eq!(h.sum, n * (n - 1) / 2);
    assert_eq!(h.min, 0);
    assert_eq!(h.max, n - 1);
    assert_eq!(h.buckets.iter().map(|&(_, c)| c).sum::<u64>(), n);
    assert_eq!(snap.counter_value("test.registry.ops"), n);
    assert_eq!(snap.phase_calls(PhaseId::KrylovIter), n);

    // Spans on different threads attribute to their own phase only.
    std::thread::scope(|scope| {
        scope.spawn(|| {
            let _outer = Span::enter(PhaseId::AdvectionStep);
            let _inner = Span::enter(PhaseId::SolvePttrs);
        });
        scope.spawn(|| {
            let _span = Span::enter(PhaseId::CornerSpmv);
        });
    });
    let snap = Snapshot::capture();
    assert_eq!(snap.phase_calls(PhaseId::AdvectionStep), 1);
    assert_eq!(snap.phase_calls(PhaseId::SolvePttrs), 1);
    assert_eq!(snap.phase_calls(PhaseId::CornerSpmv), 1);

    // Reset zeroes everything but keeps handles usable.
    pp_instrument::reset();
    let snap = Snapshot::capture();
    assert_eq!(snap.counter_value("test.registry.ops"), 0);
    assert_eq!(snap.phase_calls(PhaseId::KrylovIter), 0);
    assert_eq!(
        snap.histogram("test.registry.latency")
            .map_or(0, |h| h.count),
        0
    );
    let c = counter("test.registry.ops");
    c.inc();
    assert_eq!(Snapshot::capture().counter_value("test.registry.ops"), 1);
}

#[cfg(not(feature = "instrument"))]
#[test]
fn feature_off_build_has_no_registry_state() {
    assert!(!enabled());

    // Record plenty through every entry point; nothing may stick.
    let h = histogram("test.registry.latency");
    let c = counter("test.registry.ops");
    for i in 0..100 {
        h.record(i);
        c.inc();
        let _span = Span::enter(PhaseId::KrylovIter);
        pp_instrument::record_phase_ns(PhaseId::Dispatch, 1000);
    }
    let snap = Snapshot::capture();
    assert!(
        snap.is_empty(),
        "feature-off snapshot must be empty: {snap:?}"
    );
    assert_eq!(c.value(), 0);
    assert_eq!(h.count(), 0);

    // Handles are inert zero-sized tokens.
    assert_eq!(std::mem::size_of_val(&h), 0);
    assert_eq!(std::mem::size_of_val(&c), 0);
    assert_eq!(std::mem::size_of::<Span>(), 0);
}

#[test]
fn enabled_matches_compile_feature() {
    assert_eq!(enabled(), cfg!(feature = "instrument"));
}
