//! Hardware descriptors — the paper's Table II, plus the parameters the
//! cache simulator needs.

/// Which of the paper's three evaluation platforms a descriptor models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeviceKind {
    /// Intel Xeon Gold 6346 ("Icelake") — the *measured* platform here.
    Icelake,
    /// NVIDIA A100 (PCIe 40 GB) — modelled.
    A100,
    /// AMD MI250X, one GCD — modelled.
    Mi250x,
}

/// One processor of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Device {
    /// Which platform this is.
    pub kind: DeviceKind,
    /// Marketing name, as the paper spells it.
    pub name: &'static str,
    /// FP64 core count (GPUs) or cores (CPUs); `None` where the paper
    /// writes "-".
    pub fp64_cores: Option<u32>,
    /// Shared last-level cache in MiB.
    pub shared_cache_mib: f64,
    /// Peak FP64 performance in GFlop/s.
    pub peak_gflops: f64,
    /// Peak memory bandwidth in GB/s.
    pub peak_bw_gbs: f64,
    /// SIMD width in bits (CPUs).
    pub simd_bits: Option<u32>,
    /// Warp/wavefront size (GPUs).
    pub warp_size: Option<u32>,
    /// Thermal design power in W.
    pub tdp_w: f64,
    /// Manufacturing process in nm.
    pub process_nm: u32,
    /// Release year.
    pub year: u32,
    /// Compiler the paper used.
    pub compiler: &'static str,
    // ---- simulation parameters (not in Table II) ----
    /// Cache line size in bytes for the simulator.
    pub line_bytes: usize,
    /// Modelled associativity of the shared cache.
    pub cache_assoc: usize,
    /// Batch lanes resident (interleaved) at once in the simulator: the
    /// occupancy analogue. CPUs: cores; GPUs: occupancy-limited threads.
    pub resident_lanes: usize,
    /// Fraction of peak bandwidth a streaming kernel achieves in practice
    /// (used when converting simulated traffic to predicted time).
    pub stream_efficiency: f64,
    /// Fraction of peak bandwidth the *library gemm* kernels achieve when
    /// launched standalone on tall-skinny corner updates. The paper's
    /// baseline profile shows KokkosBlas::gemm taking 3.8-4.4 ms to move
    /// about a GB on an A100 — far below streaming efficiency — which is
    /// the main cost its kernel fusion removes.
    pub gemm_efficiency: f64,
    /// Fraction of peak bandwidth the *per-lane dense gemv* inside the
    /// fused kernel achieves. §IV-E of the paper: "the gemv kernel is a
    /// bottleneck on MI250X" — its fused version stayed slow until the
    /// gemv was replaced by spmv.
    pub gemv_efficiency: f64,
    /// Instruction-throughput model of the serial interior solve: cost in
    /// picoseconds per matrix row per lane is
    /// `interior_cost_base_ps + interior_cost_band_ps × bandwidth`.
    /// The interior phase takes `max(traffic time, compute time)` — wide
    /// bands (higher degree, non-uniform meshes) push the sequential
    /// sweeps from bandwidth-bound to throughput-bound, which is the
    /// degradation Table V shows on both GPUs.
    pub interior_cost_base_ps: f64,
    /// Per-bandwidth-unit part of the interior element cost (ps).
    pub interior_cost_band_ps: f64,
}

impl Device {
    /// B/F ratio (bytes per flop at peak), as printed in Table II.
    pub fn bf_ratio(&self) -> f64 {
        self.peak_bw_gbs / self.peak_gflops
    }

    /// The shared cache in bytes.
    pub fn shared_cache_bytes(&self) -> usize {
        (self.shared_cache_mib * 1024.0 * 1024.0) as usize
    }

    /// Intel Xeon Gold 6346 (Icelake) — Table II column 1.
    pub fn icelake() -> Self {
        Device {
            kind: DeviceKind::Icelake,
            name: "Intel Xeon Gold 6346 (Icelake)",
            fp64_cores: Some(32),
            shared_cache_mib: 36.0,
            peak_gflops: 3174.4,
            peak_bw_gbs: 204.8,
            simd_bits: Some(512),
            warp_size: None,
            tdp_w: 205.0,
            process_nm: 10,
            year: 2021,
            compiler: "gcc 11.0",
            line_bytes: 64,
            cache_assoc: 12,
            resident_lanes: 32,
            stream_efficiency: 0.75,
            gemm_efficiency: 0.55,
            gemv_efficiency: 0.65,
            // 32 cores at ~3 GHz, a few cycles per banded-solve element.
            interior_cost_base_ps: 40.0,
            interior_cost_band_ps: 30.0,
        }
    }

    /// NVIDIA A100 — Table II column 2.
    pub fn a100() -> Self {
        Device {
            kind: DeviceKind::A100,
            name: "NVIDIA A100",
            fp64_cores: Some(3456),
            shared_cache_mib: 40.0,
            peak_gflops: 9700.0,
            peak_bw_gbs: 1555.0,
            simd_bits: None,
            warp_size: Some(32),
            tdp_w: 400.0,
            process_nm: 7,
            year: 2020,
            compiler: "CUDA/12.2.128",
            line_bytes: 128,
            cache_assoc: 16,
            resident_lanes: 32768,
            stream_efficiency: 0.85,
            gemm_efficiency: 0.17,
            gemv_efficiency: 0.80,
            // Calibrated to Table V: band 1 stays bandwidth-bound, the
            // degree-5 non-uniform band lands near 142 GB/s effective.
            interior_cost_base_ps: 11.0,
            interior_cost_band_ps: 9.0,
        }
    }

    /// AMD MI250X (one GCD) — Table II column 3.
    pub fn mi250x() -> Self {
        Device {
            kind: DeviceKind::Mi250x,
            name: "AMD MI250X (1 GCD)",
            fp64_cores: None,
            shared_cache_mib: 8.0, // the paper's "16 / 2" per GCD
            peak_gflops: 26500.0,
            peak_bw_gbs: 1600.0,
            simd_bits: None,
            warp_size: Some(64),
            tdp_w: 250.0, // the paper's "500 / 2"
            process_nm: 6,
            year: 2021,
            compiler: "rocm 5.7.0",
            line_bytes: 128,
            cache_assoc: 16,
            resident_lanes: 16384,
            stream_efficiency: 0.80,
            gemm_efficiency: 0.10,
            gemv_efficiency: 0.12,
            // MI250X degrades much faster with bandwidth (Table V's 247.8
            // -> 59.2 GB/s slide from degree 3 uniform to 5 non-uniform).
            interior_cost_base_ps: 7.0,
            interior_cost_band_ps: 26.0,
        }
    }

    /// All three platforms, in Table II order.
    pub fn table2() -> Vec<Device> {
        vec![Self::icelake(), Self::a100(), Self::mi250x()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf_ratios_match_table2() {
        // The paper prints B/F 0.064, 0.160, 0.060 (rounded).
        assert!((Device::icelake().bf_ratio() - 0.064).abs() < 1e-3);
        assert!((Device::a100().bf_ratio() - 0.160).abs() < 1e-3);
        assert!((Device::mi250x().bf_ratio() - 0.060).abs() < 1e-3);
    }

    #[test]
    fn cache_sizes() {
        assert_eq!(Device::a100().shared_cache_bytes(), 40 * 1024 * 1024);
        assert_eq!(Device::mi250x().shared_cache_bytes(), 8 * 1024 * 1024);
    }

    #[test]
    fn table2_is_complete() {
        let t = Device::table2();
        assert_eq!(t.len(), 3);
        assert!(t.iter().all(|d| d.peak_gflops > 0.0 && d.peak_bw_gbs > 0.0));
        // GPUs have warps, the CPU has SIMD.
        assert!(t[0].simd_bits.is_some() && t[0].warp_size.is_none());
        assert!(t[1].warp_size == Some(32));
        assert!(t[2].warp_size == Some(64));
    }

    #[test]
    fn descriptors_are_plain_data() {
        // Descriptors must stay freely copyable between threads for the
        // batched model sweeps.
        fn assert_send_sync<T: Send + Sync + Clone>() {}
        assert_send_sync::<Device>();
        assert_send_sync::<DeviceKind>();
    }
}
