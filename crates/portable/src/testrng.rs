//! Deterministic pseudo-random numbers for tests, benchmarks, and fault
//! injection.
//!
//! The workspace builds hermetically (no external crates), so the small
//! slice of the `rand` API the test suites and the fault injector need is
//! provided here: a seedable 64-bit generator ([SplitMix64], Steele et
//! al., OOPSLA 2014) with `gen_range` / `gen_bool` methods. The same seed
//! always yields the same stream on every platform — which is precisely
//! what reproducible failure-injection experiments require. **Not** a
//! cryptographic generator.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::ops::{Range, RangeInclusive};

/// A tiny deterministic generator with a rand-like surface.
///
/// ```
/// use pp_portable::TestRng;
/// let mut rng = TestRng::seed_from_u64(42);
/// let x = rng.gen_range(-1.0..1.0);
/// assert!((-1.0..1.0).contains(&x));
/// let n = rng.gen_range(8usize..30);
/// assert!((8..30).contains(&n));
/// // Identical seeds give identical streams.
/// let mut again = TestRng::seed_from_u64(42);
/// assert_eq!(again.gen_range(-1.0..1.0), x);
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed the generator. Named after the `rand` constructor it replaces.
    pub fn seed_from_u64(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit output (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw from a range; supports `f64`, `usize`, and `u64`
    /// half-open ranges plus inclusive `usize` ranges, mirroring the
    /// call sites `rand::Rng::gen_range` used to serve.
    ///
    /// # Panics
    /// Panics on an empty range.
    pub fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }
}

/// Ranges [`TestRng::gen_range`] can draw from.
pub trait SampleRange {
    /// Element type produced by the draw.
    type Output;
    /// Draw one uniform sample.
    fn sample(self, rng: &mut TestRng) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        self.start + (self.end - self.start) * rng.gen_f64()
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample(self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "gen_range: empty usize range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl SampleRange for RangeInclusive<usize> {
    type Output = usize;
    fn sample(self, rng: &mut TestRng) -> usize {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty inclusive range");
        lo + (rng.next_u64() % (hi - lo + 1) as u64) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample(self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "gen_range: empty u64 range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let a: Vec<u64> = {
            let mut r = TestRng::seed_from_u64(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = TestRng::seed_from_u64(7);
            (0..10).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = TestRng::seed_from_u64(8).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&x));
            let n = rng.gen_range(5usize..9);
            assert!((5..9).contains(&n));
            let m = rng.gen_range(1usize..=5);
            assert!((1..=5).contains(&m));
            let u = rng.gen_range(0u64..100);
            assert!(u < 100);
        }
    }

    #[test]
    fn f64_is_unit_interval_and_not_constant() {
        let mut rng = TestRng::seed_from_u64(3);
        let draws: Vec<f64> = (0..100).map(|_| rng.gen_f64()).collect();
        assert!(draws.iter().all(|x| (0.0..1.0).contains(x)));
        assert!(draws.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = TestRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
