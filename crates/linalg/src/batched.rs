//! Batched drivers: map a per-lane solver over every column of a
//! right-hand-side block through an execution space.
//!
//! These are the analogues of the paper's Listing 2 `parallel_for` wrappers
//! around `SerialPttrs` / `SerialGetrs`: parallelism lives **only** in the
//! batch direction, the per-lane work is strictly sequential.

use crate::banded::BandedLu;
use crate::lu::LuFactors;
use crate::pb::CholeskyBanded;
use crate::pt::PtFactors;
use crate::solver::LaneSolver;
use pp_portable::{ExecSpace, Matrix};

/// Batched `pttrs`: solve the factored SPD tridiagonal system against every
/// column of `b` in place.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn pttrs<E: ExecSpace>(exec: &E, factors: &PtFactors, b: &mut Matrix) {
    assert_eq!(b.nrows(), factors.n(), "pttrs: rhs rows != matrix order");
    exec.for_each_lane_mut(b, |_, mut lane| factors.solve_lane(&mut lane));
}

/// Batched `pbtrs` over every column of `b`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn pbtrs<E: ExecSpace>(exec: &E, factors: &CholeskyBanded, b: &mut Matrix) {
    assert_eq!(b.nrows(), factors.n(), "pbtrs: rhs rows != matrix order");
    exec.for_each_lane_mut(b, |_, mut lane| factors.solve_lane(&mut lane));
}

/// Batched `gbtrs` over every column of `b`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn gbtrs<E: ExecSpace>(exec: &E, factors: &BandedLu, b: &mut Matrix) {
    assert_eq!(b.nrows(), factors.n(), "gbtrs: rhs rows != matrix order");
    exec.for_each_lane_mut(b, |_, mut lane| factors.solve_lane(&mut lane));
}

/// Batched `getrs` over every column of `b`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn getrs<E: ExecSpace>(exec: &E, factors: &LuFactors, b: &mut Matrix) {
    assert_eq!(b.nrows(), factors.n(), "getrs: rhs rows != matrix order");
    exec.for_each_lane_mut(b, |_, mut lane| factors.solve_lane(&mut lane));
}

/// Batched solve through the [`LaneSolver`] trait object (runtime-selected
/// matrix class, Table I of the paper).
///
/// # Panics
/// Panics if `b.nrows() != solver.n()`.
pub fn solve_all<E: ExecSpace>(exec: &E, solver: &dyn LaneSolver, b: &mut Matrix) {
    assert_eq!(b.nrows(), solver.n(), "solve_all: rhs rows != matrix order");
    exec.for_each_lane_mut(b, |_, mut lane| solver.solve_lane(&mut lane));
}

/// Checked batched solve: rejects a shape mismatch with
/// [`crate::Error::ShapeMismatch`] and scans every lane for non-finite values
/// (reporting the offending **batch lane** in
/// [`crate::Error::NonFinite`]) before touching any data, so a poisoned lane
/// fails loudly instead of silently propagating NaN through the batch.
pub fn try_solve_all<E: ExecSpace>(
    exec: &E,
    solver: &dyn LaneSolver,
    b: &mut Matrix,
) -> crate::Result<()> {
    if b.nrows() != solver.n() {
        return Err(crate::Error::ShapeMismatch {
            op: "try_solve_all",
            detail: format!("rhs has {} rows, matrix order is {}", b.nrows(), solver.n()),
        });
    }
    for lane in 0..b.ncols() {
        if let Some(index) = b.col(lane).iter().position(|v| !v.is_finite()) {
            return Err(crate::Error::NonFinite {
                routine: solver.routine(),
                lane,
                index,
            });
        }
    }
    solve_all(exec, solver, b);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::{gbtrf, BandedMatrix};
    use crate::naive::{matvec, solve_dense};
    use crate::pb::{pbtrf, SymBandedMatrix};
    use crate::pt::pttrf;
    use pp_portable::TestRng;
    use pp_portable::{Layout, Parallel, Serial};

    fn rhs_block(rng: &mut TestRng, n: usize, batch: usize, layout: Layout) -> Matrix {
        Matrix::from_fn(n, batch, layout, |_, _| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn batched_pttrs_every_lane_correct_both_layouts_and_spaces() {
        let n = 16;
        let batch = 37;
        let d = vec![5.0; n];
        let e = vec![-1.2; n - 1];
        let f = pttrf(&d, &e).unwrap();
        let dense = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                5.0
            } else if i.abs_diff(j) == 1 {
                -1.2
            } else {
                0.0
            }
        });
        for layout in [Layout::Left, Layout::Right] {
            let mut rng = TestRng::seed_from_u64(77);
            let b = rhs_block(&mut rng, n, batch, layout);
            let mut x_ser = b.clone();
            let mut x_par = b.clone();
            pttrs(&Serial, &f, &mut x_ser);
            pttrs(&Parallel, &f, &mut x_par);
            assert_eq!(x_ser.max_abs_diff(&x_par), 0.0);
            for j in 0..batch {
                let expected = solve_dense(&dense, &b.col(j).to_vec()).unwrap();
                let got = x_ser.col(j).to_vec();
                for (u, v) in got.iter().zip(&expected) {
                    assert!((u - v).abs() < 1e-11, "lane {j} {layout:?}");
                }
            }
        }
    }

    #[test]
    fn batched_getrs_matches_per_lane_reference() {
        let mut rng = TestRng::seed_from_u64(3);
        let n = 7;
        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            let v: f64 = rng.gen_range(-1.0..1.0);
            if i == j {
                v + 10.0
            } else {
                v
            }
        });
        let f = crate::lu::getrf(&a).unwrap();
        let b = rhs_block(&mut rng, n, 20, Layout::Left);
        let mut x = b.clone();
        getrs(&Parallel, &f, &mut x);
        for j in 0..20 {
            let expected = solve_dense(&a, &b.col(j).to_vec()).unwrap();
            for (u, v) in x.col(j).to_vec().iter().zip(&expected) {
                assert!((u - v).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn batched_banded_solvers_residuals() {
        let mut rng = TestRng::seed_from_u64(9);
        let n = 25;
        let batch = 11;

        let gb = BandedMatrix::from_fn(n, 2, 2, |i, j| {
            if i == j {
                8.0
            } else {
                0.5 / (1.0 + i.abs_diff(j) as f64)
            }
        })
        .unwrap();
        let f_gb = gbtrf(&gb).unwrap();
        let b = rhs_block(&mut rng, n, batch, Layout::Left);
        let mut x = b.clone();
        gbtrs(&Parallel, &f_gb, &mut x);
        let dense = gb.to_dense();
        for j in 0..batch {
            let r = matvec(&dense, &x.col(j).to_vec());
            for (u, v) in r.iter().zip(b.col(j).to_vec()) {
                assert!((u - v).abs() < 1e-10);
            }
        }

        let pb = SymBandedMatrix::from_fn(n, 2, |i, j| if i == j { 8.0 } else { 0.5 }).unwrap();
        let f_pb = pbtrf(&pb).unwrap();
        let mut y = b.clone();
        pbtrs(&Parallel, &f_pb, &mut y);
        let dense_pb = pb.to_dense();
        for j in 0..batch {
            let r = matvec(&dense_pb, &y.col(j).to_vec());
            for (u, v) in r.iter().zip(b.col(j).to_vec()) {
                assert!((u - v).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn solve_all_dyn_dispatch() {
        let n = 6;
        let f = pttrf(&vec![4.0; n], &vec![1.0; n - 1]).unwrap();
        let solver: &dyn LaneSolver = &f;
        let mut b = Matrix::zeros(n, 5, Layout::Left);
        b.fill(1.0);
        let reference = {
            let mut r = b.clone();
            pttrs(&Serial, &f, &mut r);
            r
        };
        solve_all(&Parallel, solver, &mut b);
        assert_eq!(b.max_abs_diff(&reference), 0.0);
    }

    #[test]
    #[should_panic(expected = "rhs rows != matrix order")]
    fn shape_mismatch_panics() {
        let f = pttrf(&[2.0, 2.0], &[0.5]).unwrap();
        let mut b = Matrix::zeros(3, 4, Layout::Left);
        pttrs(&Serial, &f, &mut b);
    }

    #[test]
    fn try_solve_all_reports_poisoned_lane_and_leaves_batch_untouched() {
        let n = 5;
        let f = pttrf(&vec![4.0; n], &vec![1.0; n - 1]).unwrap();
        let mut b = Matrix::zeros(n, 6, Layout::Left);
        b.fill(1.0);
        b.set(2, 4, f64::NAN);
        let before = b.clone();
        let err = try_solve_all(&Serial, &f, &mut b).unwrap_err();
        assert_eq!(
            err,
            crate::Error::NonFinite {
                routine: "pttrs",
                lane: 4,
                index: 2,
            }
        );
        // The scan runs before any solve: data is untouched on error.
        assert_eq!(b.max_abs_diff(&before), 0.0);

        // Shape mismatch is typed, not a panic.
        let mut wrong = Matrix::zeros(n + 1, 2, Layout::Left);
        assert!(matches!(
            try_solve_all(&Serial, &f, &mut wrong),
            Err(crate::Error::ShapeMismatch { .. })
        ));

        // Clean batch solves fine.
        let mut clean = Matrix::zeros(n, 3, Layout::Left);
        clean.fill(1.0);
        try_solve_all(&Parallel, &f, &mut clean).unwrap();
        let mut reference = Matrix::zeros(n, 3, Layout::Left);
        reference.fill(1.0);
        pttrs(&Serial, &f, &mut reference);
        assert_eq!(clean.max_abs_diff(&reference), 0.0);
    }
}
