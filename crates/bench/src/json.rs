//! Minimal JSON reader for the bench-regression gate.
//!
//! The workspace is hermetic (no serde), and the only JSON we ever need
//! to read back is what our own benches emit: flat objects, arrays of
//! objects, numbers, strings, booleans, null. This is a small
//! recursive-descent parser over that subset — full string escapes and
//! number grammar, no streaming, no spans. Errors carry a byte offset
//! so a malformed committed baseline is easy to locate.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object keys are sorted; our emitters never rely on duplicate keys.
    Obj(BTreeMap<String, Json>),
}

/// Parse error with the byte offset where parsing failed.
#[derive(Debug, Clone, PartialEq)]
pub struct JsonError {
    pub offset: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

impl Json {
    /// Parse a complete JSON document; trailing whitespace is allowed,
    /// trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(v)
    }

    /// Object field lookup; `None` on non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Walk a `/`-free path of keys, e.g. `at(&["pool", "dispatch_ns"])`.
    pub fn at(&self, path: &[&str]) -> Option<&Json> {
        path.iter().try_fold(self, |v, k| v.get(k))
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected literal {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(map));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs never appear in our bench
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => {
                            return Err(self.err(format!("invalid escape \\{}", other as char)))
                        }
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(c) = self.peek() {
                        if c == b'"' || c == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| self.err("invalid utf-8 in string"))?;
                    out.push_str(chunk);
                }
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number {text:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_bench_style_document() {
        let doc = r#"{
          "bench": "dispatch_overhead",
          "smoke": false,
          "reps": 300,
          "rows": [
            {"batch": 2, "pool": 274.720, "note": null},
            {"batch": 16, "pool": -1.5e2, "note": "a\\b\"cé"}
          ]
        }"#;
        let v = Json::parse(doc).expect("parse");
        assert_eq!(
            v.get("bench").and_then(Json::as_str),
            Some("dispatch_overhead")
        );
        assert_eq!(v.get("smoke").and_then(Json::as_bool), Some(false));
        assert_eq!(v.get("reps").and_then(Json::as_f64), Some(300.0));
        let rows = v.get("rows").and_then(Json::as_array).expect("rows");
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].at(&["pool"]).and_then(Json::as_f64), Some(274.720));
        assert_eq!(rows[0].get("note"), Some(&Json::Null));
        assert_eq!(rows[1].get("pool").and_then(Json::as_f64), Some(-150.0));
        assert_eq!(
            rows[1].get("note").and_then(Json::as_str),
            Some("a\\b\"c\u{e9}")
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\": }",
            "12 34",
            "\"unterminated",
            "nulx",
        ] {
            assert!(Json::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn roundtrips_our_committed_baseline_shape() {
        // Shape-compatible excerpt of BENCH_phases.json.
        let doc = r#"{"versions": [{"version": "Original", "phase_cover": 0.884,
            "phases": [{"phase": "solve_pttrs", "calls": 192}]}],
            "pool": {"dispatch_ns": {"count": 10, "mean": 1200.0}}}"#;
        let v = Json::parse(doc).expect("parse");
        let mean = v
            .at(&["pool", "dispatch_ns", "mean"])
            .and_then(Json::as_f64);
        assert_eq!(mean, Some(1200.0));
        let versions = v.get("versions").and_then(Json::as_array).unwrap();
        assert_eq!(
            versions[0].get("version").and_then(Json::as_str),
            Some("Original")
        );
    }
}
