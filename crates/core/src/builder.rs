//! The batched spline builder: Algorithm 1 in three optimisation stages.

use crate::blocks::{QFactors, SchurBlocks};
use crate::error::{Error, Result};
use pp_bsplines::PeriodicSplineSpace;
use pp_linalg::interleaved::{gbtrs_chunk, getrs_chunk, pbtrs_chunk, pttrs_chunk, row_axpy_chunk};
use pp_linalg::kernels::gemv_lane;
use pp_linalg::tiled::{gbtrs_block, getrs_block, pbtrs_block, pttrs_block, DEFAULT_TILE};
use pp_portable::block::for_each_lane_block_mut;
use pp_portable::instrument::{PhaseId, Span};
use pp_portable::{
    adaptive_enabled, ExecSpace, InterleavedMatrix, Matrix, ResidentBatch, StridedMut, TileTuner,
    LANE_WIDTH,
};

/// Which implementation of the build kernel to run — the paper's
/// `DDC_SPLINES_VERSION` 0 / 1 / 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BuilderVersion {
    /// Four separate batched kernels (paper Listing 2): `Q`-solve batch,
    /// dense corner correction, `getrs` batch, dense corner correction.
    Baseline,
    /// One fused per-lane kernel with dense `gemv` corners (Listing 4).
    Fused,
    /// Fused kernel with sparse COO corners (Listing 6) — the fastest
    /// version in the paper's Table III.
    FusedSpmv,
    /// **Beyond-paper**: fused+spmv with lane tiling, row-outer /
    /// lane-inner over [`pp_linalg::tiled::DEFAULT_TILE`]-lane panels
    /// (see [`SplineBuilder::solve_in_place_tiled`]).
    Tiled,
    /// **Beyond-paper**: fused+spmv on an interleaved-SoA batch layout —
    /// lanes packed in chunks of [`LANE_WIDTH`] so every recurrence step
    /// is one contiguous `[f64; 8]` vector operation (see
    /// [`SplineBuilder::solve_in_place_interleaved`]).
    Interleaved,
}

impl BuilderVersion {
    /// All versions: the paper's three in Table III order, then the
    /// beyond-paper lane-tiled and lane-interleaved variants.
    pub const ALL: [BuilderVersion; 5] = [
        BuilderVersion::Baseline,
        BuilderVersion::Fused,
        BuilderVersion::FusedSpmv,
        BuilderVersion::Tiled,
        BuilderVersion::Interleaved,
    ];

    /// Label as the paper's Table III names it (the lane-tiled and
    /// lane-interleaved variants are ours, so they get their own names).
    pub fn label(self) -> &'static str {
        match self {
            BuilderVersion::Baseline => "Original",
            BuilderVersion::Fused => "Kernel fusion",
            BuilderVersion::FusedSpmv => "gemv->spmv",
            BuilderVersion::Tiled => "Lane tiling",
            BuilderVersion::Interleaved => "Lane interleave",
        }
    }
}

/// A factored, ready-to-solve spline builder for one spline space.
pub struct SplineBuilder {
    space: PeriodicSplineSpace,
    blocks: SchurBlocks,
    version: BuilderVersion,
}

impl SplineBuilder {
    /// Assemble and factor everything (the one-time setup of the paper's
    /// §II-B.1).
    pub fn new(space: PeriodicSplineSpace, version: BuilderVersion) -> Result<Self> {
        let blocks = SchurBlocks::new(&space)?;
        Ok(Self {
            space,
            blocks,
            version,
        })
    }

    /// The spline space this builder serves.
    pub fn space(&self) -> &PeriodicSplineSpace {
        &self.space
    }

    /// The factored block decomposition.
    pub fn blocks(&self) -> &SchurBlocks {
        &self.blocks
    }

    /// Which kernel version solves run with.
    pub fn version(&self) -> BuilderVersion {
        self.version
    }

    /// Switch kernel version without refactoring (the factorisation is
    /// shared by all three).
    pub fn with_version(mut self, version: BuilderVersion) -> Self {
        self.version = version;
        self
    }

    /// Solve `A X = B` in place: on entry each column of `b` holds values
    /// at the interpolation points; on exit, spline coefficients.
    ///
    /// Parallelises over the batch (column) dimension through `exec`.
    pub fn solve_in_place<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) -> Result<()> {
        let n = self.space.num_basis();
        if b.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: b.nrows(),
            });
        }
        match self.version {
            BuilderVersion::Baseline => self.solve_baseline(exec, b),
            BuilderVersion::Fused => self.solve_fused(exec, b, false),
            BuilderVersion::FusedSpmv => self.solve_fused(exec, b, true),
            BuilderVersion::Tiled => return self.solve_in_place_tiled_tuned(exec, b),
            BuilderVersion::Interleaved => return self.solve_in_place_interleaved(exec, b),
        }
        Ok(())
    }

    /// Baseline: four separate parallel regions, four passes over `b` —
    /// the temporal-locality problem §IV-B profiles.
    fn solve_baseline<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) {
        let q = self.blocks.q_size();
        let blocks = &self.blocks;
        // Kernel 1: batched Q-solve on the top part (pttrs/pbtrs/gbtrs).
        exec.for_each_lane_mut(b, |_, lane| {
            let (mut b0, _) = lane.split_at(q);
            blocks.q_solver().solve_lane(&mut b0);
        });
        // Kernel 2: b1 ← b1 − λ b0 (the paper's first gemm).
        exec.for_each_lane_mut(b, |_, lane| {
            let (b0, mut b1) = lane.split_at(q);
            gemv_lane(-1.0, blocks.lambda_dense(), &b0.as_ref(), 1.0, &mut b1);
        });
        // Kernel 3: batched getrs on the border part.
        exec.for_each_lane_mut(b, |_, lane| {
            let (_, mut b1) = lane.split_at(q);
            blocks.delta_factors().solve_lane(&mut b1);
        });
        // Kernel 4: b0 ← b0 − β b1 (the paper's second gemm).
        exec.for_each_lane_mut(b, |_, lane| {
            let (mut b0, b1) = lane.split_at(q);
            gemv_lane(-1.0, blocks.beta_dense(), &b1.as_ref(), 1.0, &mut b0);
        });
    }

    /// Fused: one parallel region doing the whole of Algorithm 1 per lane
    /// (Listing 4), optionally with sparse corners (Listing 6).
    fn solve_fused<E: ExecSpace>(&self, exec: &E, b: &mut Matrix, sparse: bool) {
        let q = self.blocks.q_size();
        let blocks = &self.blocks;
        exec.for_each_lane_mut(b, |_, lane| {
            let (mut b0, mut b1) = lane.split_at(q);
            solve_one_lane(blocks, sparse, &mut b0, &mut b1);
        });
    }
}

impl SplineBuilder {
    /// **Beyond-paper CPU optimisation**: the fused+spmv algorithm with
    /// *lane tiling* — Algorithm 1 runs row-outer / lane-inner over tiles
    /// of `tile` lanes, so every inner loop is a contiguous (or at least
    /// short-strided) row panel instead of a long per-lane sweep. This is
    /// the concrete form of the layout/cache fix the paper's §V-A leaves
    /// as future work. Results are identical to
    /// [`SplineBuilder::solve_in_place`] with
    /// [`BuilderVersion::FusedSpmv`] up to rounding-free reassociation
    /// (the arithmetic per lane is the same).
    ///
    /// `tile == 0` is clamped to "no tiling" (the whole batch as one
    /// block); remainder lanes of a non-dividing tile are solved exactly
    /// once.
    pub fn solve_in_place_tiled<E: ExecSpace>(
        &self,
        exec: &E,
        b: &mut Matrix,
        tile: usize,
    ) -> Result<()> {
        let n = self.space.num_basis();
        if b.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: b.nrows(),
            });
        }
        let blocks = &self.blocks;
        let q = blocks.q_size();
        for_each_lane_block_mut(exec, b, tile, |_, mut blk| {
            // Step 1: Q x0' = b0 on rows 0..q.
            match blocks.q_factors() {
                QFactors::PdsTridiagonal(f) => pttrs_block(f, &mut blk, 0),
                QFactors::PdsBanded(f) => pbtrs_block(f, &mut blk, 0),
                QFactors::GeneralBanded(f) => gbtrs_block(f, &mut blk, 0),
            }
            // Step 2a: b1 ← b1 − λ x0' (sparse, row panels).
            {
                let _span = Span::enter(PhaseId::CornerSpmv);
                for (r, c, v) in blocks.lambda_coo().iter() {
                    blk.row_axpy(q + r, c, -v);
                }
            }
            // Step 2b: δ′ x1 = b1 on the border rows.
            getrs_block(blocks.delta_factors(), &mut blk, q);
            // Step 3: x0 ← x0' − β x1 (sparse, row panels).
            {
                let _span = Span::enter(PhaseId::CornerSpmv);
                for (r, c, v) in blocks.beta_coo().iter() {
                    blk.row_axpy(r, q + c, -v);
                }
            }
        });
        Ok(())
    }

    /// The [`BuilderVersion::Tiled`] entry point: tile width chosen by
    /// the process-global [`TileTuner`] — a live explore/exploit loop
    /// over candidate widths, measured per solve — instead of the
    /// compile-time [`DEFAULT_TILE`] guess. Any width yields
    /// bitwise-identical results (tiling reorders lane visits, each
    /// lane's arithmetic is unchanged), so tuning is purely a throughput
    /// decision. `PP_ADAPTIVE=0` pins [`DEFAULT_TILE`] with no
    /// measurement overhead.
    fn solve_in_place_tiled_tuned<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) -> Result<()> {
        if !adaptive_enabled() {
            return self.solve_in_place_tiled(exec, b, DEFAULT_TILE);
        }
        let tuner = tile_tuner();
        let tile = tuner.pick();
        let t0 = std::time::Instant::now();
        let out = self.solve_in_place_tiled(exec, b, tile);
        tuner.report(tile, t0.elapsed().as_nanos() as u64, b.ncols());
        out
    }
}

/// Process-global tuner for the tiled solver's tile width. One tuner
/// per process (not per builder): the best width is a property of the
/// host's cache hierarchy, which every builder instance shares.
fn tile_tuner() -> &'static TileTuner {
    static TUNER: TileTuner = TileTuner::new(DEFAULT_TILE);
    &TUNER
}

impl SplineBuilder {
    /// **Beyond-paper SIMD optimisation**: the fused+spmv algorithm on an
    /// interleaved-SoA batch layout. The right-hand side is packed into
    /// chunks of [`LANE_WIDTH`] lanes (an explicit transpose recorded
    /// under the `transpose` phase), Algorithm 1 then runs once per chunk
    /// with every recurrence step operating on one contiguous `[f64; 8]`
    /// row of lanes — the cross-lane vectorisation the paper's
    /// sequential-per-lane programming model makes legal by construction
    /// — and the result is unpacked back into `b`'s own layout.
    ///
    /// Full chunks are bit-identical to the scalar fused+spmv path (the
    /// per-lane arithmetic is the same expressions in the same order);
    /// the remainder chunk of a batch not divisible by [`LANE_WIDTH`]
    /// falls back to the scalar lane kernel, so every lane is solved
    /// exactly once either way.
    pub fn solve_in_place_interleaved<E: ExecSpace>(&self, exec: &E, b: &mut Matrix) -> Result<()> {
        let n = self.space.num_basis();
        if b.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: b.nrows(),
            });
        }
        let mut ib = InterleavedMatrix::pack(b);
        self.solve_interleaved_panels(exec, &mut ib);
        ib.unpack_into(b).map_err(Error::from)
    }

    /// **Resident entry point**: run the interleaved Schur pipeline on a
    /// batch that is already packed, reading and writing the panels
    /// natively — zero pack/unpack transposes per call. A pipeline packs
    /// once at ingress ([`ResidentBatch::pack`]), calls this any number
    /// of times, and unpacks once at egress; each call bumps the batch's
    /// generation tag. Results are bit-identical to
    /// [`SplineBuilder::solve_in_place_interleaved`] on the equivalent
    /// host matrix (pack/unpack are pure copies and the per-panel
    /// arithmetic is shared).
    ///
    /// The configured [`BuilderVersion`] is ignored: residency *is* the
    /// interleaved kernel.
    pub fn solve_resident<E: ExecSpace>(&self, exec: &E, b: &mut ResidentBatch) -> Result<()> {
        let n = self.space.num_basis();
        if b.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: b.nrows(),
            });
        }
        self.solve_interleaved_panels(exec, b.panels_mut());
        Ok(())
    }

    /// The shared per-panel Schur pipeline of the interleaved and
    /// resident paths: full chunks take the wide bit-identical kernels,
    /// the remainder chunk falls back to the scalar lane kernel.
    fn solve_interleaved_panels<E: ExecSpace>(&self, exec: &E, ib: &mut InterleavedMatrix) {
        let n = self.space.num_basis();
        let blocks = &self.blocks;
        let q = blocks.q_size();
        ib.for_each_chunk_mut(exec, |_, lanes, panel| {
            if lanes == LANE_WIDTH {
                // Step 1: Q x0' = b0 on rows 0..q, eight lanes wide.
                match blocks.q_factors() {
                    QFactors::PdsTridiagonal(f) => pttrs_chunk(f, panel, n, 0, lanes),
                    QFactors::PdsBanded(f) => pbtrs_chunk(f, panel, n, 0, lanes),
                    QFactors::GeneralBanded(f) => gbtrs_chunk(f, panel, n, 0, lanes),
                }
                // Step 2a: b1 ← b1 − λ x0' (sparse, wide rows).
                {
                    let _span = Span::enter(PhaseId::CornerSpmv);
                    for (r, c, v) in blocks.lambda_coo().iter() {
                        row_axpy_chunk(panel, n, q + r, c, -v);
                    }
                }
                // Step 2b: δ′ x1 = b1 on the border rows.
                getrs_chunk(blocks.delta_factors(), panel, n, q, lanes);
                // Step 3: x0 ← x0' − β x1 (sparse, wide rows).
                let _span = Span::enter(PhaseId::CornerSpmv);
                for (r, c, v) in blocks.beta_coo().iter() {
                    row_axpy_chunk(panel, n, r, q + c, -v);
                }
            } else {
                // Remainder chunk: scalar fused kernel per live lane.
                for l in 0..lanes {
                    let (head, tail) = panel.split_at_mut(q * LANE_WIDTH);
                    let h0 = l.min(head.len());
                    let t0 = l.min(tail.len());
                    let mut b0 = StridedMut::new(&mut head[h0..], q, LANE_WIDTH);
                    let mut b1 = StridedMut::new(&mut tail[t0..], n - q, LANE_WIDTH);
                    solve_one_lane(blocks, true, &mut b0, &mut b1);
                }
            }
        });
    }
}

/// The per-lane body of the fused kernel: Algorithm 1 on one right-hand
/// side. Exposed for the memory-trace instrumentation in `pp-perfmodel`
/// benches.
#[inline]
pub fn solve_one_lane(
    blocks: &SchurBlocks,
    sparse: bool,
    b0: &mut StridedMut<'_>,
    b1: &mut StridedMut<'_>,
) {
    // Step 1: Q x0' = b0.
    blocks.q_solver().solve_lane(b0);
    // Step 2a: b1 ← b1 − λ x0'.
    if sparse {
        blocks.lambda_coo().spmv_lane(-1.0, &b0.as_ref(), b1);
    } else {
        gemv_lane(-1.0, blocks.lambda_dense(), &b0.as_ref(), 1.0, b1);
    }
    // Step 2b: δ′ x1 = (b1 − λ x0').
    blocks.delta_factors().solve_lane(b1);
    // Step 3: x0 = x0' − β x1.
    if sparse {
        blocks.beta_coo().spmv_lane(-1.0, &b1.as_ref(), b0);
    } else {
        gemv_lane(-1.0, blocks.beta_dense(), &b1.as_ref(), 1.0, b0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_bsplines::{assemble_interpolation_matrix, Breaks};
    use pp_linalg::naive;
    use pp_portable::TestRng;
    use pp_portable::{Layout, Parallel, Serial};

    fn space(n: usize, degree: usize, uniform: bool) -> PeriodicSplineSpace {
        let breaks = if uniform {
            Breaks::uniform(n, 0.0, 1.0).unwrap()
        } else {
            Breaks::graded(n, 0.0, 1.0, 0.6).unwrap()
        };
        PeriodicSplineSpace::new(breaks, degree).unwrap()
    }

    fn random_rhs(n: usize, batch: usize, layout: Layout, seed: u64) -> Matrix {
        let mut rng = TestRng::seed_from_u64(seed);
        Matrix::from_fn(n, batch, layout, |_, _| rng.gen_range(-2.0..2.0))
    }

    #[test]
    fn all_versions_match_dense_reference_all_configs() {
        for degree in [3, 4, 5] {
            for uniform in [true, false] {
                let sp = space(24, degree, uniform);
                let a = assemble_interpolation_matrix(&sp);
                let rhs = random_rhs(24, 7, Layout::Left, 42);
                for version in BuilderVersion::ALL {
                    let builder = SplineBuilder::new(sp.clone(), version).unwrap();
                    let mut x = rhs.clone();
                    builder.solve_in_place(&Parallel, &mut x).unwrap();
                    for j in 0..7 {
                        let expected = naive::solve_dense(&a, &rhs.col(j).to_vec()).unwrap();
                        let got = x.col(j).to_vec();
                        for (u, v) in got.iter().zip(&expected) {
                            assert!(
                                (u - v).abs() < 1e-10,
                                "deg {degree} uniform {uniform} {version:?} lane {j}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn versions_agree_with_each_other_tightly() {
        // The three versions perform the same arithmetic up to the COO
        // truncation; results must agree far below solver tolerance.
        let sp = space(64, 3, true);
        let rhs = random_rhs(64, 50, Layout::Left, 7);
        let mut results = Vec::new();
        for version in BuilderVersion::ALL {
            let builder = SplineBuilder::new(sp.clone(), version).unwrap();
            let mut x = rhs.clone();
            builder.solve_in_place(&Parallel, &mut x).unwrap();
            results.push(x);
        }
        assert!(results[0].max_abs_diff(&results[1]) < 1e-13);
        assert!(results[1].max_abs_diff(&results[2]) < 1e-12);
        // The tiled variant reorders loops but not arithmetic: it must
        // agree with fused+spmv to rounding.
        assert!(results[2].max_abs_diff(&results[3]) < 1e-13);
        // The interleaved variant runs the same per-lane recurrences over
        // packed lane vectors; it too must agree to rounding.
        assert!(results[2].max_abs_diff(&results[4]) < 1e-13);
    }

    #[test]
    fn serial_and_parallel_agree_bitwise() {
        let sp = space(32, 4, true);
        let builder = SplineBuilder::new(sp, BuilderVersion::FusedSpmv).unwrap();
        let rhs = random_rhs(32, 33, Layout::Left, 3);
        let mut a = rhs.clone();
        let mut b = rhs.clone();
        builder.solve_in_place(&Serial, &mut a).unwrap();
        builder.solve_in_place(&Parallel, &mut b).unwrap();
        assert_eq!(a.max_abs_diff(&b), 0.0);
    }

    #[test]
    fn both_layouts_supported() {
        let sp = space(20, 3, false);
        let builder = SplineBuilder::new(sp, BuilderVersion::Fused).unwrap();
        let rhs_l = random_rhs(20, 9, Layout::Left, 5);
        let rhs_r = rhs_l.to_layout(Layout::Right);
        let mut xl = rhs_l.clone();
        let mut xr = rhs_r.clone();
        builder.solve_in_place(&Parallel, &mut xl).unwrap();
        builder.solve_in_place(&Parallel, &mut xr).unwrap();
        assert!(xl.max_abs_diff(&xr) < 1e-14);
    }

    #[test]
    fn interpolation_round_trip() {
        // Solve, then evaluating at interpolation points recovers inputs.
        let sp = space(40, 5, true);
        let pts = sp.interpolation_points();
        let builder = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        let mut b = Matrix::from_fn(40, 3, Layout::Left, |i, j| {
            ((j + 1) as f64 * std::f64::consts::TAU * pts[i]).sin()
        });
        let orig = b.clone();
        builder.solve_in_place(&Parallel, &mut b).unwrap();
        for j in 0..3 {
            let coefs = b.col(j).to_vec();
            for (k, &x) in pts.iter().enumerate() {
                assert!(
                    (sp.eval(&coefs, x) - orig.get(k, j)).abs() < 1e-11,
                    "lane {j} point {k}"
                );
            }
        }
    }

    #[test]
    fn tiled_solve_matches_fused_spmv_all_configs() {
        for degree in [3, 4, 5] {
            for uniform in [true, false] {
                let sp = space(28, degree, uniform);
                let builder = SplineBuilder::new(sp, BuilderVersion::FusedSpmv).unwrap();
                for layout in [Layout::Left, Layout::Right] {
                    let rhs = random_rhs(28, 19, layout, 11);
                    let mut reference = rhs.clone();
                    builder.solve_in_place(&Parallel, &mut reference).unwrap();
                    for tile in [1usize, 4, 19, 64] {
                        let mut tiled = rhs.clone();
                        builder
                            .solve_in_place_tiled(&Parallel, &mut tiled, tile)
                            .unwrap();
                        assert!(
                            tiled.max_abs_diff(&reference) < 1e-12,
                            "deg {degree} uniform {uniform} {layout:?} tile {tile}: {}",
                            tiled.max_abs_diff(&reference)
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn tiled_solve_shape_checked() {
        let sp = space(16, 3, true);
        let builder = SplineBuilder::new(sp, BuilderVersion::FusedSpmv).unwrap();
        let mut bad = Matrix::zeros(15, 4, Layout::Left);
        assert!(builder.solve_in_place_tiled(&Serial, &mut bad, 8).is_err());
    }

    #[test]
    fn wrong_shape_rejected() {
        let sp = space(16, 3, true);
        let builder = SplineBuilder::new(sp, BuilderVersion::Baseline).unwrap();
        let mut b = Matrix::zeros(17, 4, Layout::Left);
        assert!(matches!(
            builder.solve_in_place(&Serial, &mut b),
            Err(Error::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn with_version_switches_without_refactor() {
        let sp = space(16, 3, true);
        let builder = SplineBuilder::new(sp, BuilderVersion::Baseline)
            .unwrap()
            .with_version(BuilderVersion::FusedSpmv);
        assert_eq!(builder.version(), BuilderVersion::FusedSpmv);
        let mut b = Matrix::zeros(16, 2, Layout::Left);
        b.fill(1.0);
        builder.solve_in_place(&Serial, &mut b).unwrap();
        // Rows of A sum to 1 => solution of A x = 1 is x = 1.
        for i in 0..16 {
            assert!((b.get(i, 0) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn empty_batch_is_ok() {
        let sp = space(16, 3, true);
        let builder = SplineBuilder::new(sp, BuilderVersion::FusedSpmv).unwrap();
        let mut b = Matrix::zeros(16, 0, Layout::Left);
        builder.solve_in_place(&Parallel, &mut b).unwrap();
    }
}
