//! Flight-recorder capture of an instrumented pooled solve: runs every
//! `BuilderVersion` on the worker pool, snapshots the per-thread event
//! rings, and writes a Chrome/Perfetto `trace_events` JSON timeline plus
//! a folded-stack flamegraph text file next to it. The committed copy
//! (`results/trace_example.json`) is the repository's example trace —
//! open it at <https://ui.perfetto.dev> to see pool dispatches
//! interleaving with per-lane solve spans.
//!
//! Build with `--features instrument` or the timeline comes back empty
//! (the recorder compiles to a no-op without it).
//!
//! Usage: `trace_profile [--smoke] [--out PATH]`

use pp_bench::SplineConfig;
use pp_portable::instrument::{self, PhaseId};
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SplineBuilder};

fn main() {
    let mut smoke = false;
    let mut out = String::from("results/trace_example.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            other => panic!("unknown argument {other:?} (expected --smoke / --out PATH)"),
        }
    }

    // The recorder and the pool read their knobs once, on first use —
    // defaults must be in place before the first instrumented call. A
    // modest ring keeps the committed trace reviewable; four workers make
    // the interleaving visible even on a single-core runner.
    if std::env::var_os("PP_TRACE_CAPACITY").is_none() {
        std::env::set_var("PP_TRACE_CAPACITY", "1024");
    }
    if std::env::var_os("PP_NUM_THREADS").is_none() {
        std::env::set_var("PP_NUM_THREADS", "4");
    }

    let (nx, nv, iters) = if smoke { (128, 64, 2) } else { (512, 256, 3) };
    println!("=== trace_profile: flight-recorder timeline capture ===");
    println!(
        "nx {nx}, nv {nv}, {iters} pooled solve(s) per version, instrumented: {}{}",
        instrument::enabled(),
        if smoke { " [smoke]" } else { "" }
    );
    if !instrument::enabled() {
        println!("warning: built without --features instrument; the timeline will be empty");
    }

    let space = SplineConfig {
        degree: 3,
        uniform: true,
    }
    .space(nx);
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| {
        ((i * 31 + j * 17) % 97) as f64 / 97.0 - 0.5
    });

    // Warm-up outside the recorded window: spins up the pool, registers
    // every worker's ring, and takes first-touch costs off the timeline.
    let warm = SplineBuilder::new(space.clone(), BuilderVersion::Baseline).expect("builder setup");
    let mut b = rhs.clone();
    warm.solve_in_place(&Parallel, &mut b).expect("warm-up");

    instrument::trace_reset();
    for version in BuilderVersion::ALL {
        let builder = SplineBuilder::new(space.clone(), version).expect("builder setup");
        let mut b = rhs.clone();
        for _ in 0..iters {
            builder.solve_in_place(&Parallel, &mut b).expect("solve");
        }
    }
    let trace = instrument::trace_snapshot();

    println!(
        "captured {} event(s) across {} thread(s) (ring capacity {})",
        trace.event_count(),
        trace.threads_with_events(),
        trace.capacity
    );
    for t in &trace.threads {
        if t.events.is_empty() {
            continue;
        }
        println!(
            "    {:<12} {:>6} event(s), {} overwritten",
            t.name,
            t.events.len(),
            t.dropped
        );
    }
    for phase in [PhaseId::Dispatch, PhaseId::SolvePttrs, PhaseId::CornerSpmv] {
        println!(
            "    {:<14} {} span(s) in window",
            phase.name(),
            trace.begin_count(phase)
        );
    }

    if let Some(dir) = std::path::Path::new(&out).parent() {
        std::fs::create_dir_all(dir).expect("creating output directory");
    }
    std::fs::write(&out, instrument::chrome_trace_json(&trace)).expect("writing trace JSON");
    let folded = match out.rsplit_once('.') {
        Some((stem, _)) => format!("{stem}.folded"),
        None => format!("{out}.folded"),
    };
    std::fs::write(&folded, instrument::folded_stacks(&trace)).expect("writing folded stacks");
    println!("wrote {out} (Perfetto) and {folded} (flamegraph folded stacks)");
}
