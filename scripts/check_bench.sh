#!/usr/bin/env bash
# Bench-regression smoke gate: run the two JSON-emitting benches at
# smoke sizes and compare against the committed full-size baselines
# with generous tolerances (see crates/bench/src/bin/bench_gate.rs for
# exactly what is and is not compared). This is a separate, non-required
# CI job — timing on shared runners is noisy, so a failure here is a
# prompt to look, not an automatic merge block.
set -euo pipefail
cd "$(dirname "$0")/.."

mkdir -p target

# PP_NUM_THREADS forces a real worker pool even on single-core runners;
# without it every dispatch is inline and there is no latency to gate.
echo "==> dispatch_overhead --smoke (feature-off build: the hot path must not carry the layer)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --bin dispatch_overhead -- \
    --smoke --out target/BENCH_dispatch_smoke.json

echo "==> phase_profile --smoke --resident (--features instrument)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --features instrument --bin phase_profile -- \
    --smoke --resident --out target/BENCH_phases_smoke.json

echo "==> bench_gate: dispatch latency vs committed BENCH_dispatch.json"
cargo run --release -q -p pp-bench --bin bench_gate -- \
    --kind dispatch \
    --baseline BENCH_dispatch.json \
    --candidate target/BENCH_dispatch_smoke.json

# The gate enforces version-set equality with the baseline, but assert
# the lane-interleaved version and the resident pipeline explicitly on
# both sides so a stale baseline cannot mask either disappearing.
grep -q '"version": "Lane interleave"' target/BENCH_phases_smoke.json
grep -q '"version": "Lane interleave"' BENCH_phases.json
grep -q '"version": "Lane interleave resident"' target/BENCH_phases_smoke.json
grep -q '"version": "Lane interleave resident"' BENCH_phases.json

# Residency's acceptance criterion: the pack/unpack pair amortized
# across the resident chain must stay a sliver of the wall clock. Gate
# the emitted transpose_share on both sides of the comparison — a
# committed baseline over the ceiling is as much a regression as a
# fresh run over it.
TRANSPOSE_SHARE_CEILING=0.15
for f in BENCH_phases.json target/BENCH_phases_smoke.json; do
    share=$(awk '
        index($0, "\"version\": \"Lane interleave resident\"") { found = 1 }
        found && /"transpose_share":/ {
            s = $0; sub(/.*"transpose_share": /, "", s); sub(/,.*/, "", s)
            print s; exit
        }
    ' "$f")
    test -n "$share"
    echo "==> resident transpose share in $f: $share (ceiling $TRANSPOSE_SHARE_CEILING)"
    awk -v s="$share" -v c="$TRANSPOSE_SHARE_CEILING" 'BEGIN { exit !(s < c) }'
done

echo "==> bench_gate: phase attribution vs committed BENCH_phases.json"
cargo run --release -q -p pp-bench --bin bench_gate -- \
    --kind phases \
    --baseline BENCH_phases.json \
    --candidate target/BENCH_phases_smoke.json

# The chaos soak is deterministic (seeded), so unlike the timing gates
# above this one is exact: any invariant violation or silent-wrong SDC
# round fails the script outright.
echo "==> chaos_soak --smoke (seeded fault campaign with SDC injection)"
cargo run --release -q -p pp-bench --bin chaos_soak -- \
    --smoke --out target/BENCH_chaos_smoke.json

echo "==> bench_gate: fault containment vs committed BENCH_chaos.json"
cargo run --release -q -p pp-bench --bin bench_gate -- \
    --kind chaos \
    --baseline BENCH_chaos.json \
    --candidate target/BENCH_chaos_smoke.json

# Fresh telemetry smoke run: resident soak with streaming exporters and
# the injected-slow-lane sentinel demo. The binary self-checks its
# contracts and exits non-zero on any failure.
echo "==> telemetry_soak --smoke (--features instrument)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --features instrument \
    --bin telemetry_soak -- --smoke --out target/BENCH_telemetry_smoke.json

# Every emitted document — committed baseline and fresh smoke run — must
# carry the current telemetry schema_version stamp. bench_gate already
# fails by name on skew for the documents it compares; this loop extends
# the same rule to the telemetry summary, which has no gate kind of its
# own, and fails loudly with the file name on any unstamped document.
SCHEMA_VERSION=1
echo "==> schema_version stamp check (expected $SCHEMA_VERSION)"
for f in BENCH_dispatch.json BENCH_phases.json BENCH_chaos.json BENCH_telemetry.json \
         target/BENCH_dispatch_smoke.json target/BENCH_phases_smoke.json \
         target/BENCH_chaos_smoke.json target/BENCH_telemetry_smoke.json; do
    if ! grep -q "\"schema_version\": $SCHEMA_VERSION" "$f"; then
        echo "FAIL: $f is missing \"schema_version\": $SCHEMA_VERSION" >&2
        exit 1
    fi
done

# Telemetry's acceptance criterion: the streaming exporter must cost
# under 1% of resident-solve throughput at full size. The live smoke
# measurement is too small to be meaningful (fixed per-tick costs loom
# over a sub-millisecond solve), so gate the committed full-size figure
# — regenerating BENCH_telemetry.json with a slow exporter fails here.
OVERHEAD_CEILING_PCT=1.0
overhead=$(awk '/"exporter_overhead_pct":/ {
    s = $0; sub(/.*"exporter_overhead_pct": /, "", s); sub(/,.*/, "", s)
    print s; exit
}' BENCH_telemetry.json)
test -n "$overhead"
echo "==> committed exporter overhead: ${overhead}% (ceiling ${OVERHEAD_CEILING_PCT}%)"
awk -v o="$overhead" -v c="$OVERHEAD_CEILING_PCT" 'BEGIN { exit !(o < c) }'

echo "check_bench: all gates passed"
