//! Resident-batch pipelines against the pack-per-solve reference.
//!
//! The contract under test is the residency acceptance criterion: for
//! every routine class (`pttrs`, `pbtrs`, `gbtrs`, `getrs`) and for the
//! full builder pipeline, `pack once → N solves → unpack once` must be
//! **bit-identical** to N independent `pack → solve → unpack` round
//! trips — pack and unpack are pure copies, so residency may not change
//! a single bit. Batch widths sweep through sub-chunk batches
//! (batch < 8) and partial trailing chunks. The same source runs in both
//! instrumentation modes: plain `cargo test` (spans compiled out) and
//! `cargo test --features instrument` via `scripts/verify.sh` (spans
//! live) — the numerics must not care.

use batched_splines::prelude::*;
use pp_linalg::{
    gbtrf, gbtrs_resident, getrf, getrs_resident, pbtrf, pbtrs_resident, pttrf, pttrs_resident,
    BandedMatrix, SymBandedMatrix,
};
use pp_portable::TestRng;

fn random_rhs(n: usize, batch: usize, layout: Layout, rng: &mut TestRng) -> Matrix {
    Matrix::from_fn(n, batch, layout, |_, _| rng.gen_range(-2.0..2.0))
}

/// Batch widths straddling the lane chunk boundary plus randomized
/// draws, so sub-chunk batches (batch < 8) and partial trailing chunks
/// (batch % 8 != 0) are always exercised.
fn batch_widths(rng: &mut TestRng) -> Vec<usize> {
    let mut widths = vec![
        1,
        LANE_WIDTH - 1,
        LANE_WIDTH,
        LANE_WIDTH + 1,
        3 * LANE_WIDTH,
    ];
    widths.push(rng.gen_range(1..LANE_WIDTH)); // strictly sub-chunk
    widths.push(rng.gen_range(LANE_WIDTH + 1..6 * LANE_WIDTH));
    widths
}

fn assert_bits(expected: &Matrix, got: &Matrix, what: &str) {
    assert_eq!(expected.shape(), got.shape(), "{what}");
    for i in 0..expected.nrows() {
        for j in 0..expected.ncols() {
            assert_eq!(
                expected.get(i, j).to_bits(),
                got.get(i, j).to_bits(),
                "{what}: ({i},{j}) resident {} vs pack-per-solve {}",
                got.get(i, j),
                expected.get(i, j)
            );
        }
    }
}

/// Run `solves` through both disciplines and compare bitwise:
/// pack-per-solve re-packs around every call, resident packs once and
/// unpacks once at the end.
fn residency_vs_pack_per_solve(
    rhs: &Matrix,
    solves: usize,
    solve: &dyn Fn(&mut ResidentBatch),
    what: &str,
) {
    let mut reference = rhs.clone();
    for _ in 0..solves {
        let mut r = ResidentBatch::pack(&reference);
        solve(&mut r);
        r.unpack_into(&mut reference).unwrap();
    }
    let mut r = ResidentBatch::pack(rhs);
    let g0 = r.generation();
    for _ in 0..solves {
        solve(&mut r);
    }
    assert!(r.generation() > g0, "{what}: solves must bump generation");
    assert_bits(&reference, r.host(), what);
}

#[test]
fn pttrs_resident_chain_matches_pack_per_solve() {
    let mut rng = TestRng::seed_from_u64(0xe1);
    for n in [1usize, 5, 16, 33] {
        let d: Vec<f64> = (0..n).map(|_| rng.gen_range(3.0..5.0)).collect();
        let e: Vec<f64> = (0..n.saturating_sub(1))
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let f = pttrf(&d, &e).unwrap();
        for batch in batch_widths(&mut rng) {
            for layout in [Layout::Left, Layout::Right] {
                let rhs = random_rhs(n, batch, layout, &mut rng);
                residency_vs_pack_per_solve(
                    &rhs,
                    3,
                    &|b| pttrs_resident(&Parallel, &f, b),
                    &format!("pttrs n={n} batch={batch}"),
                );
            }
        }
    }
}

#[test]
fn pbtrs_resident_chain_matches_pack_per_solve() {
    let mut rng = TestRng::seed_from_u64(0xe2);
    for n in [1usize, 6, 17, 32] {
        let kd = 2.min(n - 1);
        let a = SymBandedMatrix::from_fn(n, kd, |i, j| {
            if i == j {
                6.0
            } else {
                0.3 + 0.1 * ((i + j) % 3) as f64
            }
        })
        .unwrap();
        let f = pbtrf(&a).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(n, batch, Layout::Left, &mut rng);
            residency_vs_pack_per_solve(
                &rhs,
                3,
                &|b| pbtrs_resident(&Parallel, &f, b),
                &format!("pbtrs n={n} batch={batch}"),
            );
        }
    }
}

#[test]
fn gbtrs_resident_chain_matches_pack_per_solve() {
    let mut rng = TestRng::seed_from_u64(0xe3);
    for n in [1usize, 7, 19, 30] {
        let kl = 2.min(n - 1);
        let ku = 1.min(n - 1);
        // Tiny diagonals force partial pivoting so the row-swap path of
        // the wide kernel is covered too.
        let a = BandedMatrix::from_fn(n, kl, ku, |i, j| {
            if i == j {
                if i % 5 == 4 {
                    1e-8
                } else {
                    4.0
                }
            } else {
                1.0 + 0.2 * ((i * 7 + j) % 5) as f64
            }
        })
        .unwrap();
        let f = gbtrf(&a).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(n, batch, Layout::Left, &mut rng);
            residency_vs_pack_per_solve(
                &rhs,
                3,
                &|b| gbtrs_resident(&Parallel, &f, b),
                &format!("gbtrs n={n} batch={batch}"),
            );
        }
    }
}

#[test]
fn getrs_resident_chain_matches_pack_per_solve() {
    let mut rng = TestRng::seed_from_u64(0xe4);
    for n in [1usize, 4, 9, 13] {
        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                (n as f64) + 2.0
            } else {
                ((i * 13 + j * 5) % 7) as f64 * 0.25 - 0.75
            }
        });
        let f = getrf(&a).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(n, batch, Layout::Left, &mut rng);
            residency_vs_pack_per_solve(
                &rhs,
                3,
                &|b| getrs_resident(&Serial, &f, b),
                &format!("getrs n={n} batch={batch}"),
            );
        }
    }
}

/// Full builder pipeline: `solve_resident` chained N times must be
/// bit-identical to the pack-per-solve interleaved builder
/// (`BuilderVersion::Interleaved` + `solve_in_place`) run N times.
#[test]
fn builder_resident_chain_matches_interleaved_pack_per_solve() {
    let mut rng = TestRng::seed_from_u64(0xe5);
    for degree in [3usize, 5] {
        let space =
            PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), degree).unwrap();
        let builder = SplineBuilder::new(space, BuilderVersion::Interleaved).unwrap();
        for batch in batch_widths(&mut rng) {
            let rhs = random_rhs(32, batch, Layout::Left, &mut rng);
            let mut reference = rhs.clone();
            for _ in 0..3 {
                builder.solve_in_place(&Parallel, &mut reference).unwrap();
            }
            let mut r = ResidentBatch::pack(&rhs);
            for _ in 0..3 {
                builder.solve_resident(&Parallel, &mut r).unwrap();
            }
            assert_bits(
                &reference,
                r.host(),
                &format!("builder deg={degree} batch={batch}"),
            );
        }
    }
}

/// Verified pipeline: the resident entry point must produce the same
/// verdicts and the same bits as the host verified path running the
/// interleaved kernel, including with a quarantined lane in the batch.
#[test]
fn verified_resident_chain_matches_host_verified_path() {
    let mut rng = TestRng::seed_from_u64(0xe6);
    let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
    let verified = SplineBuilder::new(space, BuilderVersion::Interleaved)
        .unwrap()
        .verified(VerifyConfig::default());
    for batch in [3usize, LANE_WIDTH + 3] {
        let mut rhs = random_rhs(32, batch, Layout::Left, &mut rng);
        rhs.set(7, 1, f64::NAN); // poison one lane
        let mut host = rhs.clone();
        let mut resident = ResidentBatch::pack(&rhs);
        for _ in 0..2 {
            let hr = verified.solve_in_place(&Parallel, &mut host).unwrap();
            let rr = verified.solve_resident(&Parallel, &mut resident).unwrap();
            assert_eq!(hr.verdicts().len(), rr.verdicts().len(), "batch={batch}");
            for (lane, (h, r)) in hr.verdicts().iter().zip(rr.verdicts().iter()).enumerate() {
                assert_eq!(h, r, "batch={batch} lane={lane}");
            }
        }
        assert_bits(&host, resident.host(), &format!("verified batch={batch}"));
    }
}

/// Dirty-tag property test: against a randomized sequence of mutating
/// and read-only operations, the generation tag must move exactly when
/// the contents may have moved, and the cached host mirror must always
/// agree with a shadow host matrix maintained alongside.
#[test]
fn generation_tag_tracks_every_mutation_property() {
    let n = 12;
    let batch = 13; // crosses one chunk boundary
    let mut rng = TestRng::seed_from_u64(0xe7);
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space, BuilderVersion::Interleaved).unwrap();

    let mut shadow = random_rhs(n, batch, Layout::Left, &mut rng);
    let mut r = ResidentBatch::pack(&shadow);
    for op in 0..200 {
        let g_before = r.generation();
        let mutated = match rng.gen_range(0..6usize) {
            0 => {
                // Point write.
                let i = rng.gen_range(0..n);
                let j = rng.gen_range(0..batch);
                let v = rng.gen_range(-1.0..1.0);
                r.set(i, j, v);
                shadow.set(i, j, v);
                true
            }
            1 => {
                // Lane scatter.
                let j = rng.gen_range(0..batch);
                let lane: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
                r.write_lane(j, &lane);
                for (i, &v) in lane.iter().enumerate() {
                    shadow.set(i, j, v);
                }
                true
            }
            2 => {
                // Quarantine zeroing.
                let j = rng.gen_range(0..batch);
                r.zero_lane(j);
                for i in 0..n {
                    shadow.set(i, j, 0.0);
                }
                true
            }
            3 => {
                // A full solver dispatch.
                builder.solve_resident(&Parallel, &mut r).unwrap();
                builder.solve_in_place(&Parallel, &mut shadow).unwrap();
                true
            }
            4 => {
                // Read-only stretch: gets and lane gathers must not bump.
                let j = rng.gen_range(0..batch);
                let i = rng.gen_range(0..n);
                assert_eq!(r.get(i, j).to_bits(), shadow.get(i, j).to_bits());
                assert_eq!(r.lane_to_vec(j)[i].to_bits(), shadow.get(i, j).to_bits());
                let _ = r.panels();
                false
            }
            _ => {
                // Re-ingress from the shadow (a no-op refill, but still a
                // mutating access — the tag is conservative by design).
                r.pack_from(&shadow).unwrap();
                true
            }
        };
        if mutated {
            assert!(
                r.generation() > g_before,
                "op {op}: mutation left the generation at {g_before}"
            );
        } else {
            assert_eq!(r.generation(), g_before, "op {op}: read bumped the tag");
        }
        // The mirror may never disagree with the shadow, fresh or not.
        assert_bits(&shadow, r.host(), &format!("op {op}"));
    }
}
