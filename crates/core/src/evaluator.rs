//! Batched spline evaluation.
//!
//! After the builder produces a `(n, batch)` coefficient block, the
//! semi-Lagrangian step evaluates every lane's spline at that lane's
//! characteristic feet (Algorithm 2, line 8). The evaluation is
//! embarrassingly parallel over lanes, like the build.

use crate::error::{Error, Result};
use pp_bsplines::{PeriodicSplineSpace, MAX_DEGREE};
use pp_portable::{ExecSpace, Matrix, ResidentBatch, LANE_WIDTH};

/// Evaluates batched splines over a shared [`PeriodicSplineSpace`].
#[derive(Debug, Clone)]
pub struct SplineEvaluator {
    space: PeriodicSplineSpace,
}

impl SplineEvaluator {
    /// New evaluator for a space.
    pub fn new(space: PeriodicSplineSpace) -> Self {
        Self { space }
    }

    /// The underlying space.
    pub fn space(&self) -> &PeriodicSplineSpace {
        &self.space
    }

    /// Evaluate lane `j`'s spline (column `j` of `coefs`) at each position
    /// in column `j` of `positions`, writing into column `j` of `out`.
    ///
    /// Shapes: `coefs (n, batch)`, `positions (m, batch)`,
    /// `out (m, batch)`.
    pub fn eval_batched<E: ExecSpace>(
        &self,
        exec: &E,
        coefs: &Matrix,
        positions: &Matrix,
        out: &mut Matrix,
    ) -> Result<()> {
        let n = self.space.num_basis();
        if coefs.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: coefs.nrows(),
            });
        }
        if positions.shape() != out.shape() || positions.ncols() != coefs.ncols() {
            return Err(Error::ShapeMismatch {
                expected_rows: positions.nrows(),
                actual_rows: out.nrows(),
            });
        }
        let space = &self.space;
        let degree = space.degree();
        let m = positions.nrows();
        exec.for_each_lane_mut(out, |j, mut out_lane| {
            let mut vals = [0.0; MAX_DEGREE + 1];
            for i in 0..m {
                let x = positions.get(i, j);
                let cell = space.eval_basis(x, &mut vals);
                let mut s = 0.0;
                for (mm, &v) in vals.iter().enumerate().take(degree + 1) {
                    s += v * coefs.get(space.coef_index(cell, mm), j);
                }
                out_lane[i] = s;
            }
        });
        Ok(())
    }

    /// Resident variant of [`SplineEvaluator::eval_batched`]: coefficients
    /// are read straight out of the packed panels and results are written
    /// straight into the output batch's panels — no pack/unpack transpose
    /// on either side. Per-lane arithmetic is identical to the host path,
    /// so results are bit-identical lane for lane.
    ///
    /// Shapes: `coefs (n, batch)`, `positions (m, batch)`,
    /// `out (m, batch)`. Bumps `out`'s generation.
    pub fn eval_resident<E: ExecSpace>(
        &self,
        exec: &E,
        coefs: &ResidentBatch,
        positions: &Matrix,
        out: &mut ResidentBatch,
    ) -> Result<()> {
        let n = self.space.num_basis();
        if coefs.nrows() != n {
            return Err(Error::ShapeMismatch {
                expected_rows: n,
                actual_rows: coefs.nrows(),
            });
        }
        if positions.nrows() != out.nrows()
            || positions.ncols() != out.ncols()
            || positions.ncols() != coefs.ncols()
        {
            return Err(Error::ShapeMismatch {
                expected_rows: positions.nrows(),
                actual_rows: out.nrows(),
            });
        }
        let space = &self.space;
        let degree = space.degree();
        let m = positions.nrows();
        let cpanels = coefs.panels();
        out.for_each_chunk_mut(exec, |c, lanes, chunk| {
            let cc = cpanels.chunk(c);
            let mut vals = [0.0; MAX_DEGREE + 1];
            for l in 0..lanes {
                let j = c * LANE_WIDTH + l;
                for i in 0..m {
                    let x = positions.get(i, j);
                    let cell = space.eval_basis(x, &mut vals);
                    let mut s = 0.0;
                    for (mm, &v) in vals.iter().enumerate().take(degree + 1) {
                        s += v * cc[space.coef_index(cell, mm) * LANE_WIDTH + l];
                    }
                    chunk[i * LANE_WIDTH + l] = s;
                }
            }
        });
        Ok(())
    }

    /// Evaluate one lane at arbitrary points (convenience for examples).
    pub fn eval_lane(&self, coefs: &Matrix, lane: usize, xs: &[f64]) -> Vec<f64> {
        let c = coefs.col(lane).to_vec();
        xs.iter().map(|&x| self.space.eval(&c, x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuilderVersion, SplineBuilder};
    use pp_bsplines::Breaks;
    use pp_portable::{Layout, Parallel, Serial};

    fn setup(n: usize, degree: usize) -> (PeriodicSplineSpace, SplineBuilder) {
        let sp = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), degree).unwrap();
        let b = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        (sp, b)
    }

    #[test]
    fn batched_eval_matches_scalar_eval() {
        let (sp, builder) = setup(32, 3);
        let pts = sp.interpolation_points();
        let batch = 11;
        let mut coefs = Matrix::from_fn(32, batch, Layout::Left, |i, j| {
            ((j + 1) as f64 * std::f64::consts::TAU * pts[i]).cos()
        });
        builder.solve_in_place(&Parallel, &mut coefs).unwrap();

        let positions = Matrix::from_fn(50, batch, Layout::Left, |i, j| {
            (i as f64 + 0.5 * j as f64) / 50.0
        });
        let mut out = Matrix::zeros(50, batch, Layout::Left);
        let ev = SplineEvaluator::new(sp.clone());
        ev.eval_batched(&Parallel, &coefs, &positions, &mut out)
            .unwrap();

        for j in 0..batch {
            let c = coefs.col(j).to_vec();
            for i in 0..50 {
                let expected = sp.eval(&c, positions.get(i, j));
                assert!((out.get(i, j) - expected).abs() < 1e-14, "({i},{j})");
            }
        }
    }

    #[test]
    fn serial_parallel_agree() {
        let (sp, _) = setup(24, 5);
        let coefs = Matrix::from_fn(24, 8, Layout::Left, |i, j| ((i * 3 + j) % 7) as f64);
        let positions = Matrix::from_fn(30, 8, Layout::Left, |i, j| {
            (i as f64 * 0.7 + j as f64 * 1.3) % 1.0
        });
        let ev = SplineEvaluator::new(sp);
        let mut o1 = Matrix::zeros(30, 8, Layout::Left);
        let mut o2 = Matrix::zeros(30, 8, Layout::Left);
        ev.eval_batched(&Serial, &coefs, &positions, &mut o1)
            .unwrap();
        ev.eval_batched(&Parallel, &coefs, &positions, &mut o2)
            .unwrap();
        assert_eq!(o1.max_abs_diff(&o2), 0.0);
    }

    #[test]
    fn resident_eval_bit_identical_to_batched() {
        let (sp, builder) = setup(32, 3);
        let pts = sp.interpolation_points();
        for batch in [3usize, 8, 11, 16] {
            let mut coefs = Matrix::from_fn(32, batch, Layout::Left, |i, j| {
                ((j + 1) as f64 * std::f64::consts::TAU * pts[i]).cos()
            });
            builder.solve_in_place(&Parallel, &mut coefs).unwrap();
            let positions = Matrix::from_fn(40, batch, Layout::Left, |i, j| {
                (i as f64 + 0.3 * j as f64) / 40.0
            });
            let ev = SplineEvaluator::new(sp.clone());

            let mut host = Matrix::zeros(40, batch, Layout::Left);
            ev.eval_batched(&Parallel, &coefs, &positions, &mut host)
                .unwrap();

            let rcoefs = ResidentBatch::pack(&coefs);
            let mut rout = ResidentBatch::zeros(40, batch);
            let g0 = rout.generation();
            ev.eval_resident(&Parallel, &rcoefs, &positions, &mut rout)
                .unwrap();
            assert!(rout.generation() > g0);
            for i in 0..40 {
                for j in 0..batch {
                    assert_eq!(
                        host.get(i, j).to_bits(),
                        rout.get(i, j).to_bits(),
                        "batch {batch} ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn resident_eval_shape_checks() {
        let (sp, _) = setup(16, 3);
        let ev = SplineEvaluator::new(sp);
        let positions = Matrix::zeros(10, 4, Layout::Left);
        let mut out = ResidentBatch::zeros(10, 4);
        let coefs = ResidentBatch::zeros(15, 4); // wrong rows
        assert!(ev
            .eval_resident(&Serial, &coefs, &positions, &mut out)
            .is_err());
        let coefs = ResidentBatch::zeros(16, 3); // batch mismatch
        assert!(ev
            .eval_resident(&Serial, &coefs, &positions, &mut out)
            .is_err());
    }

    #[test]
    fn positions_outside_domain_wrap() {
        let (sp, builder) = setup(20, 3);
        let pts = sp.interpolation_points();
        let mut coefs = Matrix::from_fn(20, 1, Layout::Left, |i, _| {
            (std::f64::consts::TAU * pts[i]).sin()
        });
        builder.solve_in_place(&Serial, &mut coefs).unwrap();
        let ev = SplineEvaluator::new(sp);
        let inside = Matrix::from_fn(5, 1, Layout::Left, |i, _| 0.1 + 0.15 * i as f64);
        let outside = Matrix::from_fn(5, 1, Layout::Left, |i, _| 0.1 + 0.15 * i as f64 - 3.0);
        let mut a = Matrix::zeros(5, 1, Layout::Left);
        let mut b = Matrix::zeros(5, 1, Layout::Left);
        ev.eval_batched(&Serial, &coefs, &inside, &mut a).unwrap();
        ev.eval_batched(&Serial, &coefs, &outside, &mut b).unwrap();
        assert!(a.max_abs_diff(&b) < 1e-12);
    }

    #[test]
    fn shape_checks() {
        let (sp, _) = setup(16, 3);
        let ev = SplineEvaluator::new(sp);
        let coefs = Matrix::zeros(15, 4, Layout::Left); // wrong rows
        let positions = Matrix::zeros(10, 4, Layout::Left);
        let mut out = Matrix::zeros(10, 4, Layout::Left);
        assert!(ev
            .eval_batched(&Serial, &coefs, &positions, &mut out)
            .is_err());
        let coefs = Matrix::zeros(16, 3, Layout::Left); // batch mismatch
        assert!(ev
            .eval_batched(&Serial, &coefs, &positions, &mut out)
            .is_err());
    }
}
