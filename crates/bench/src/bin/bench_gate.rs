//! Bench-regression gate: compare a fresh `--smoke` bench run against a
//! committed full-size baseline and fail on gross regressions.
//!
//! Smoke runs use smaller sizes and far fewer reps than the committed
//! baselines, so exact comparison is meaningless. What *is* stable
//! across sizes is (a) per-dispatch pool latency at a given batch count,
//! and (b) the structure of the phase profile (which versions exist,
//! that phases cover most of the wall clock, that the dispatch histogram
//! is populated). The gate checks only those, with deliberately generous
//! tolerances — it exists to catch "dispatch got 10x slower" or "the
//! instrumentation layer stopped attributing", not 20% noise. Timing
//! comparisons additionally get a fixed absolute slack so single-core CI
//! scheduler hiccups at microsecond scales cannot trip the gate.
//!
//! Usage:
//!   bench_gate --kind dispatch --baseline BENCH_dispatch.json \
//!       --candidate target/BENCH_dispatch_smoke.json [--tol 4.0]
//!   bench_gate --kind phases --baseline BENCH_phases.json \
//!       --candidate target/BENCH_phases_smoke.json [--tol 4.0]
//!   bench_gate --kind chaos --baseline BENCH_chaos.json \
//!       --candidate target/BENCH_chaos_smoke.json
//!
//! The chaos kind is a pure robustness gate (no timing): both documents
//! must report zero invariant violations and zero silent-wrong SDC
//! rounds, and the committed baseline must prove the fault campaign
//! actually exercised corruption (detections > 0).
//!
//! Every kind first checks that *both* documents carry the telemetry
//! `schema_version` this binary was built against: comparing fields
//! across a schema skew is meaningless, so a missing or mismatched
//! version fails by name before any numeric check runs.

use pp_bench::json::Json;
use pp_portable::instrument::SCHEMA_VERSION;
use std::process::ExitCode;

/// Absolute slack added on top of the ratio tolerance for nanosecond
/// latency comparisons (absorbs scheduler noise on loaded CI runners).
const LATENCY_SLACK_NS: f64 = 25_000.0;

/// Ratio bound for the adaptive-vs-static pool policy comparison inside
/// one document: both sides of that A/B ran in the same process on the
/// same host, so it gets a much tighter tolerance than the cross-run
/// gates (the absolute slack still absorbs microsecond scheduler noise).
const ADAPTIVE_TOL: f64 = 1.5;

/// Minimum fraction of wall clock the phase spans must attribute.
const MIN_PHASE_COVER: f64 = 0.5;

/// Absolute slack added to per-phase wall-clock *share* comparisons.
/// Smoke runs shift phase shares a little (fixed per-call overheads
/// loom larger at small sizes); this absorbs that without letting a
/// phase silently grow from a sliver to the whole solve.
const PHASE_SHARE_SLACK: f64 = 0.10;

/// Which document a structural defect was found in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Side {
    Baseline,
    Candidate,
}

impl Side {
    fn name(self) -> &'static str {
        match self {
            Side::Baseline => "baseline",
            Side::Candidate => "candidate",
        }
    }
}

/// A structural defect that makes a candidate/baseline ratio
/// meaningless. Every variant is reported as a named FAIL check — never
/// a panic (a corrupt committed baseline must not crash the gate) and
/// never a silent skip (a missing or zero entry must not pass).
#[derive(Debug, PartialEq)]
enum Mismatch {
    /// A numeric field required for a comparison is absent or null.
    MissingField { side: Side, path: String },
    /// A version entry present on one side has no counterpart.
    MissingVersion { side: Side, version: String },
    /// A phase recorded for a version on one side is absent from the
    /// same version on the other side.
    MissingPhase {
        side: Side,
        version: String,
        phase: String,
    },
    /// The committed baseline value is zero or non-finite. The ratio
    /// `candidate / baseline` is undefined there, and the latency bound
    /// `tol * baseline + slack` degenerates to the absolute slack
    /// alone — which would wave through any regression.
    DegenerateBaseline { what: String, value: f64 },
    /// The document's `schema_version` is absent or differs from the
    /// [`SCHEMA_VERSION`] this gate was built against. Field meanings
    /// may have shifted, so no comparison against it is trustworthy.
    SchemaSkew { side: Side, found: Option<f64> },
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Mismatch::MissingField { side, path } => {
                write!(f, "{}: required field {path} missing or null", side.name())
            }
            Mismatch::MissingVersion { side, version } => {
                write!(f, "{}: version {version:?} has no entry", side.name())
            }
            Mismatch::MissingPhase {
                side,
                version,
                phase,
            } => write!(
                f,
                "{}: version {version:?} is missing phase {phase:?} present on the other side",
                side.name()
            ),
            Mismatch::DegenerateBaseline { what, value } => write!(
                f,
                "baseline {what} is {value} — ratio undefined, regenerate the baseline"
            ),
            Mismatch::SchemaSkew { side, found } => match found {
                Some(v) => write!(
                    f,
                    "{}: schema_version {v} != expected {SCHEMA_VERSION} — regenerate the document",
                    side.name()
                ),
                None => write!(
                    f,
                    "{}: schema_version missing (expected {SCHEMA_VERSION}) — regenerate the document",
                    side.name()
                ),
            },
        }
    }
}

struct Gate {
    failures: Vec<String>,
    checks: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
            checks: 0,
        }
    }

    fn check(&mut self, ok: bool, what: impl Into<String>) {
        self.checks += 1;
        let what = what.into();
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what);
        }
    }

    /// Record a structural mismatch as a failed check.
    fn mismatch(&mut self, m: Mismatch) {
        self.check(false, m.to_string());
    }

    /// `candidate <= tol * baseline + slack`, reported with the numbers.
    /// A zero or non-finite baseline is a typed failure: the bound would
    /// collapse to the slack alone and pass vacuously.
    fn check_latency(&mut self, what: &str, candidate: f64, baseline: f64, tol: f64) {
        if !(baseline > 0.0 && baseline.is_finite()) {
            self.mismatch(Mismatch::DegenerateBaseline {
                what: what.to_string(),
                value: baseline,
            });
            return;
        }
        let bound = tol * baseline + LATENCY_SLACK_NS;
        self.check(
            candidate <= bound,
            format!("{what}: {candidate:.0} ns <= {tol}x{baseline:.0}+slack = {bound:.0} ns"),
        );
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn f64_at(v: &Json, path: &[&str]) -> Option<f64> {
    v.at(path).and_then(Json::as_f64)
}

/// Both sides must be stamped with the telemetry schema this gate was
/// built against; any skew (or an unstamped pre-telemetry document)
/// fails by name before field-by-field comparison starts.
fn gate_schema(gate: &mut Gate, baseline: &Json, candidate: &Json) {
    for (side, doc) in [(Side::Baseline, baseline), (Side::Candidate, candidate)] {
        match doc.get("schema_version").and_then(Json::as_f64) {
            Some(v) if v == f64::from(SCHEMA_VERSION) => gate.check(
                true,
                format!("{}: schema_version {SCHEMA_VERSION}", side.name()),
            ),
            found => gate.mismatch(Mismatch::SchemaSkew { side, found }),
        }
    }
}

/// Gate the dispatch_overhead bench: per-batch pool latency must stay
/// within `tol`x of the committed baseline for every batch count the
/// smoke run shares with it.
fn gate_dispatch(gate: &mut Gate, baseline: &Json, candidate: &Json, tol: f64) {
    gate.check(
        candidate.get("bench").and_then(Json::as_str) == Some("dispatch_overhead"),
        "candidate is a dispatch_overhead document",
    );
    let base_rows = baseline
        .get("per_dispatch_latency_ns")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let cand_rows = candidate
        .get("per_dispatch_latency_ns")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    gate.check(!cand_rows.is_empty(), "candidate has latency rows");
    let mut compared = 0usize;
    for row in cand_rows {
        let (Some(batch), Some(pool)) = (f64_at(row, &["batch"]), f64_at(row, &["pool"])) else {
            gate.check(false, "latency row has batch+pool fields");
            continue;
        };
        let Some(base_pool) = base_rows
            .iter()
            .find(|r| f64_at(r, &["batch"]) == Some(batch))
            .and_then(|r| f64_at(r, &["pool"]))
        else {
            // Smoke batch missing from the baseline: nothing to compare.
            continue;
        };
        compared += 1;
        gate.check_latency(
            &format!("pool latency @ batch {batch}"),
            pool,
            base_pool,
            tol,
        );
    }
    // Trace-driven adaptation must not cost latency: within each
    // document, the adaptive pool policy has to keep up with the static
    // one at every batch size (same process, same host, so the tight
    // ADAPTIVE_TOL applies). A row without the static A/B column is a
    // pre-adaptation document and fails by name.
    for (side, rows) in [(Side::Baseline, base_rows), (Side::Candidate, cand_rows)] {
        for row in rows {
            let batch = f64_at(row, &["batch"]).unwrap_or(f64::NAN);
            let Some(pool_static) = f64_at(row, &["pool_static"]) else {
                gate.mismatch(Mismatch::MissingField {
                    side,
                    path: format!("per_dispatch_latency_ns[batch={batch}].pool_static"),
                });
                continue;
            };
            let pool = f64_at(row, &["pool"]).unwrap_or(f64::NAN);
            if !(pool_static > 0.0 && pool_static.is_finite()) {
                gate.mismatch(Mismatch::DegenerateBaseline {
                    what: format!("{} pool_static @ batch {batch}", side.name()),
                    value: pool_static,
                });
                continue;
            }
            let bound = ADAPTIVE_TOL * pool_static + LATENCY_SLACK_NS;
            gate.check(
                pool <= bound,
                format!(
                    "{} adaptive vs static @ batch {batch}: {pool:.0} ns <= \
                     {ADAPTIVE_TOL}x{pool_static:.0}+slack = {bound:.0} ns",
                    side.name()
                ),
            );
        }
    }
    gate.check(
        compared > 0,
        "at least one batch count overlaps the baseline",
    );
    gate.check(
        f64_at(candidate, &["pool_stats", "dispatches"]).unwrap_or(0.0) > 0.0,
        "pool actually dispatched work",
    );
}

/// Gate the phase_profile bench: the instrumentation layer must still
/// attribute the solve, for the same version set as the baseline.
fn gate_phases(gate: &mut Gate, baseline: &Json, candidate: &Json, tol: f64) {
    gate.check(
        candidate.get("bench").and_then(Json::as_str) == Some("phase_profile"),
        "candidate is a phase_profile document",
    );
    gate.check(
        candidate.get("instrumented").and_then(Json::as_bool) == Some(true),
        "candidate was built with --features instrument",
    );
    let version_names = |doc: &Json| -> Vec<String> {
        doc.get("versions")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.get("version").and_then(Json::as_str).map(String::from))
            .collect()
    };
    let base_versions = version_names(baseline);
    let cand_versions = version_names(candidate);
    gate.check(
        base_versions == cand_versions && !cand_versions.is_empty(),
        format!(
            "version set matches baseline ({})",
            cand_versions.join(", ")
        ),
    );
    let base_entries = baseline
        .get("versions")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    for v in candidate
        .get("versions")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let name = v.get("version").and_then(Json::as_str).unwrap_or("?");
        let cover = f64_at(v, &["phase_cover"]).unwrap_or(0.0);
        gate.check(
            cover >= MIN_PHASE_COVER,
            format!("{name}: phase cover {cover:.3} >= {MIN_PHASE_COVER}"),
        );
        let phases = v
            .get("phases")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        gate.check(phases > 0, format!("{name}: at least one phase attributed"));
        let glups = v
            .at(&["roofline", "glups"])
            .map(|g| g.as_f64().unwrap_or(f64::NAN));
        gate.check(
            matches!(glups, Some(g) if g.is_finite() && g > 0.0),
            format!("{name}: roofline GLUPS is finite and positive"),
        );
        match base_entries
            .iter()
            .find(|b| b.get("version").and_then(Json::as_str) == Some(name))
        {
            Some(base_v) => gate_phase_shares(gate, name, base_v, v, tol),
            None => gate.mismatch(Mismatch::MissingVersion {
                side: Side::Baseline,
                version: name.to_string(),
            }),
        }
    }
    gate.check(
        f64_at(candidate, &["pool", "dispatch_ns", "count"]).unwrap_or(0.0) > 0.0,
        "dispatch histogram is populated",
    );
    let dispatch_mean = |doc: &Json, side: Side, gate: &mut Gate| {
        f64_at(doc, &["pool", "dispatch_ns", "mean"]).map_or_else(
            || {
                gate.mismatch(Mismatch::MissingField {
                    side,
                    path: "pool.dispatch_ns.mean".into(),
                });
                None
            },
            Some,
        )
    };
    let cand_mean = dispatch_mean(candidate, Side::Candidate, gate);
    let base_mean = dispatch_mean(baseline, Side::Baseline, gate);
    if let (Some(c), Some(b)) = (cand_mean, base_mean) {
        gate.check_latency("mean instrumented dispatch latency", c, b, tol);
    }
}

/// Per-phase name → total time, skipping the synthetic `"other"` bucket
/// (the unattributed remainder is covered by the phase_cover check).
/// A phase whose `total_ms` is absent or null is returned as NaN so the
/// caller can report *which* side is defective.
fn phase_totals(version_entry: &Json) -> Vec<(String, f64)> {
    version_entry
        .get("phases")
        .and_then(Json::as_array)
        .unwrap_or(&[])
        .iter()
        .filter_map(|p| {
            let name = p.get("phase").and_then(Json::as_str)?;
            if name == "other" {
                return None;
            }
            Some((
                name.to_string(),
                f64_at(p, &["total_ms"]).unwrap_or(f64::NAN),
            ))
        })
        .collect()
}

/// Compare one version's per-phase wall-clock *shares* between candidate
/// and baseline. Absolute phase times are size-dependent (smoke runs are
/// tiny), but the fraction of the solve each phase occupies is stable —
/// a phase ballooning from a sliver of the baseline to dominating the
/// candidate is exactly the "one kernel got 10x slower" regression this
/// gate exists to catch. Every lookup/division hazard is reported as a
/// typed mismatch: a phase missing from either side, a missing wall
/// clock, or a zero/non-finite committed phase time all FAIL by name
/// instead of panicking or silently passing.
fn gate_phase_shares(gate: &mut Gate, version: &str, base_v: &Json, cand_v: &Json, tol: f64) {
    let wall = |entry: &Json, side: Side, gate: &mut Gate| {
        f64_at(entry, &["wall_ms"]).map_or_else(
            || {
                gate.mismatch(Mismatch::MissingField {
                    side,
                    path: format!("versions[{version:?}].wall_ms"),
                });
                None
            },
            Some,
        )
    };
    let (Some(base_wall), Some(cand_wall)) = (
        wall(base_v, Side::Baseline, gate),
        wall(cand_v, Side::Candidate, gate),
    ) else {
        return;
    };
    if !(base_wall > 0.0 && base_wall.is_finite()) {
        gate.mismatch(Mismatch::DegenerateBaseline {
            what: format!("versions[{version:?}].wall_ms"),
            value: base_wall,
        });
        return;
    }
    let base_phases = phase_totals(base_v);
    let cand_phases = phase_totals(cand_v);
    // Symmetric difference of the phase sets is a typed failure on the
    // side that lost the phase.
    for (name, _) in &base_phases {
        if !cand_phases.iter().any(|(c, _)| c == name) {
            gate.mismatch(Mismatch::MissingPhase {
                side: Side::Candidate,
                version: version.to_string(),
                phase: name.clone(),
            });
        }
    }
    for (name, cand_ms) in &cand_phases {
        let Some((_, base_ms)) = base_phases.iter().find(|(b, _)| b == name) else {
            gate.mismatch(Mismatch::MissingPhase {
                side: Side::Baseline,
                version: version.to_string(),
                phase: name.clone(),
            });
            continue;
        };
        if base_ms.is_nan() {
            gate.mismatch(Mismatch::MissingField {
                side: Side::Baseline,
                path: format!("versions[{version:?}].phases[{name:?}].total_ms"),
            });
            continue;
        }
        if cand_ms.is_nan() {
            gate.mismatch(Mismatch::MissingField {
                side: Side::Candidate,
                path: format!("versions[{version:?}].phases[{name:?}].total_ms"),
            });
            continue;
        }
        if !(*base_ms > 0.0 && base_ms.is_finite()) {
            gate.mismatch(Mismatch::DegenerateBaseline {
                what: format!("versions[{version:?}].phases[{name:?}].total_ms"),
                value: *base_ms,
            });
            continue;
        }
        let base_share = base_ms / base_wall;
        let cand_share = cand_ms / cand_wall;
        let bound = tol * base_share + PHASE_SHARE_SLACK;
        gate.check(
            cand_share <= bound,
            format!(
                "{version}/{name}: share {cand_share:.3} <= {tol}x{base_share:.3}+{PHASE_SHARE_SLACK} = {bound:.3}"
            ),
        );
    }
}

/// Gate the chaos_soak campaign: zero tolerance for invariant
/// violations or silent-wrong SDC rounds, in both the fresh smoke run
/// and the committed full-size baseline.
fn gate_chaos(gate: &mut Gate, baseline: &Json, candidate: &Json) {
    gate.check(
        candidate.get("bench").and_then(Json::as_str) == Some("chaos_soak"),
        "candidate is a chaos_soak document",
    );
    gate.check(
        f64_at(candidate, &["violations"]) == Some(0.0),
        "candidate reports zero invariant violations",
    );
    gate.check(
        f64_at(candidate, &["sdc", "silent_wrong"]) == Some(0.0),
        "candidate reports zero silent-wrong SDC rounds",
    );
    let rounds = candidate
        .get("rounds")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    gate.check(
        rounds >= 8,
        format!("candidate soaked at least 8 seeds (got {rounds})"),
    );
    gate.check(
        f64_at(baseline, &["violations"]) == Some(0.0),
        "baseline reports zero invariant violations",
    );
    gate.check(
        f64_at(baseline, &["sdc", "silent_wrong"]) == Some(0.0),
        "baseline reports zero silent-wrong SDC rounds",
    );
    gate.check(
        f64_at(baseline, &["sdc", "detected"]).unwrap_or(0.0) > 0.0,
        "baseline campaign actually injected and detected corruption",
    );
}

fn main() -> ExitCode {
    let mut kind = String::new();
    let mut baseline = String::new();
    let mut candidate = String::new();
    let mut tol = 4.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--kind" => kind = grab("--kind"),
            "--baseline" => baseline = grab("--baseline"),
            "--candidate" => candidate = grab("--candidate"),
            "--tol" => tol = grab("--tol").parse().expect("--tol needs a number"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        !kind.is_empty() && !baseline.is_empty() && !candidate.is_empty(),
        "usage: bench_gate --kind dispatch|phases|chaos --baseline PATH --candidate PATH [--tol F]"
    );
    assert!(
        tol >= 3.0,
        "tolerances below 3x are noise-chasing; got {tol}"
    );

    let base = load(&baseline);
    let cand = load(&candidate);
    println!("=== bench_gate: {kind} ({candidate} vs {baseline}, tol {tol}x) ===");
    let mut gate = Gate::new();
    gate_schema(&mut gate, &base, &cand);
    match kind.as_str() {
        "dispatch" => gate_dispatch(&mut gate, &base, &cand, tol),
        "phases" => gate_phases(&mut gate, &base, &cand, tol),
        "chaos" => gate_chaos(&mut gate, &base, &cand),
        other => panic!("unknown --kind {other:?} (expected dispatch|phases|chaos)"),
    }
    if gate.failures.is_empty() {
        println!("bench_gate: {} check(s) passed", gate.checks);
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_gate: {}/{} check(s) FAILED",
            gate.failures.len(),
            gate.checks
        );
        ExitCode::FAILURE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Hand-built phase_profile document. `pttrs_ms` lets tests plant a
    /// zero committed phase time; `phases` controls the phase set.
    fn doc(pttrs_ms: f64, extra_phase: bool, dispatch_mean: &str) -> Json {
        let extra = if extra_phase {
            r#"{"phase": "corner_spmv", "calls": 30, "total_ms": 2.0, "mean_ns": 66.0},"#
        } else {
            ""
        };
        let text = format!(
            r#"{{
              "bench": "phase_profile",
              "instrumented": true,
              "versions": [
                {{
                  "version": "Original",
                  "wall_ms": 100.0,
                  "phase_cover": 0.9,
                  "phases": [
                    {{"phase": "solve_pttrs", "calls": 30, "total_ms": {pttrs_ms}}},
                    {extra}
                    {{"phase": "other", "calls": 0, "total_ms": 1.0, "mean_ns": null}}
                  ],
                  "roofline": {{"glups": 0.5}}
                }}
              ],
              "pool": {{"dispatch_ns": {{"count": 5, "mean": {dispatch_mean}}}}}
            }}"#
        );
        Json::parse(&text).expect("test doc parses")
    }

    fn run_phases(baseline: &Json, candidate: &Json) -> Vec<String> {
        let mut gate = Gate::new();
        gate_phases(&mut gate, baseline, candidate, 4.0);
        gate.failures
    }

    #[test]
    fn well_formed_matching_docs_pass() {
        let base = doc(80.0, true, "900.0");
        let cand = doc(70.0, true, "1000.0");
        assert_eq!(run_phases(&base, &cand), Vec::<String>::new());
    }

    #[test]
    fn zero_baseline_phase_time_is_typed_failure_not_silent_pass() {
        // A zero committed phase time previously collapsed the bound to
        // the absolute slack; now it must FAIL by name without panicking.
        let base = doc(0.0, true, "900.0");
        let cand = doc(70.0, true, "1000.0");
        let failures = run_phases(&base, &cand);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("solve_pttrs") && failures[0].contains("ratio undefined"),
            "{failures:?}"
        );
    }

    #[test]
    fn phase_missing_from_candidate_is_typed_failure() {
        let base = doc(80.0, true, "900.0");
        let cand = doc(70.0, false, "1000.0");
        let failures = run_phases(&base, &cand);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("candidate") && failures[0].contains("corner_spmv"),
            "{failures:?}"
        );
    }

    #[test]
    fn phase_missing_from_baseline_is_typed_failure() {
        let base = doc(80.0, false, "900.0");
        let cand = doc(70.0, true, "1000.0");
        let failures = run_phases(&base, &cand);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("baseline") && failures[0].contains("corner_spmv"),
            "{failures:?}"
        );
    }

    #[test]
    fn null_dispatch_mean_is_typed_failure_not_silent_skip() {
        let base = doc(80.0, true, "null");
        let cand = doc(70.0, true, "1000.0");
        let failures = run_phases(&base, &cand);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("baseline") && failures[0].contains("pool.dispatch_ns.mean"),
            "{failures:?}"
        );
    }

    #[test]
    fn zero_baseline_dispatch_mean_is_typed_failure() {
        let mut gate = Gate::new();
        gate.check_latency("mean dispatch", 10_000.0, 0.0, 4.0);
        assert_eq!(gate.failures.len(), 1, "{:?}", gate.failures);
        assert!(gate.failures[0].contains("ratio undefined"));
    }

    /// Hand-built dispatch_overhead document with one latency row.
    fn dispatch_doc(pool: f64, pool_static: &str) -> Json {
        let text = format!(
            r#"{{
              "bench": "dispatch_overhead",
              "schema_version": {SCHEMA_VERSION},
              "per_dispatch_latency_ns": [
                {{"batch": 256, "pool": {pool}, "pool_static": {pool_static},
                  "scoped": 90000.0, "serial": 500000.0}}
              ],
              "pool_stats": {{"dispatches": 100}}
            }}"#
        );
        Json::parse(&text).expect("test doc parses")
    }

    fn run_dispatch(baseline: &Json, candidate: &Json) -> Vec<String> {
        let mut gate = Gate::new();
        gate_dispatch(&mut gate, baseline, candidate, 4.0);
        gate.failures
    }

    #[test]
    fn matching_dispatch_docs_pass_adaptive_gate() {
        let base = dispatch_doc(10_000.0, "11000.0");
        let cand = dispatch_doc(12_000.0, "11000.0");
        assert_eq!(run_dispatch(&base, &cand), Vec::<String>::new());
    }

    #[test]
    fn adaptive_policy_slower_than_static_fails() {
        // Candidate adaptive pool at 4 ms vs static 1 ms: far past
        // 1.5x + 25 µs slack. The baseline row stays healthy.
        let base = dispatch_doc(10_000.0, "11000.0");
        let cand = dispatch_doc(4_000_000.0, "1000000.0");
        let failures = run_dispatch(&base, &cand);
        // The cross-run pool comparison also trips (4 ms vs 10 µs);
        // the adaptive-vs-static check must be among the failures.
        assert!(
            failures
                .iter()
                .any(|f| f.contains("candidate adaptive vs static @ batch 256")),
            "{failures:?}"
        );
    }

    #[test]
    fn missing_pool_static_column_is_typed_failure() {
        // A pre-adaptation document (no A/B column) must fail by name,
        // not silently skip the policy gate.
        let base = dispatch_doc(10_000.0, "11000.0");
        let cand = dispatch_doc(10_000.0, "null");
        let failures = run_dispatch(&base, &cand);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("candidate") && failures[0].contains("pool_static"),
            "{failures:?}"
        );
    }

    fn run_schema(baseline: &Json, candidate: &Json) -> Vec<String> {
        let mut gate = Gate::new();
        gate_schema(&mut gate, baseline, candidate);
        gate.failures
    }

    #[test]
    fn matching_schema_versions_pass() {
        let doc = dispatch_doc(10_000.0, "11000.0");
        assert_eq!(run_schema(&doc, &doc), Vec::<String>::new());
    }

    #[test]
    fn missing_schema_version_fails_by_name() {
        let stamped = dispatch_doc(10_000.0, "11000.0");
        let unstamped = Json::parse(r#"{"bench": "dispatch_overhead"}"#).unwrap();
        let failures = run_schema(&stamped, &unstamped);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("candidate") && failures[0].contains("schema_version missing"),
            "{failures:?}"
        );
    }

    #[test]
    fn skewed_schema_version_fails_by_name() {
        let stamped = dispatch_doc(10_000.0, "11000.0");
        let skewed = Json::parse(r#"{"schema_version": 999}"#).unwrap();
        let failures = run_schema(&skewed, &stamped);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(
            failures[0].contains("baseline") && failures[0].contains("999"),
            "{failures:?}"
        );
    }

    #[test]
    fn ballooning_phase_share_fails() {
        // solve_pttrs at 4 ms of a 100 ms baseline (4% share) but 70 ms
        // of the 100 ms candidate (70%): 70% > 4x4%+10% = 26%.
        let base = doc(4.0, true, "900.0");
        let cand = doc(70.0, true, "1000.0");
        let failures = run_phases(&base, &cand);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].contains("solve_pttrs"), "{failures:?}");
    }
}
