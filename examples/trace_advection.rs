//! Flight-recorder walkthrough on the miniature Vlasov–Poisson solver:
//! run a short two-stream advection with tracing on, export the
//! timeline for Perfetto, then inject one deterministic fault through
//! the `probe_lanes` hook and show the quarantine leaving a fault dump
//! behind (in memory and on disk via `PP_TRACE_DUMP_DIR`).
//!
//! Run with: `cargo run --release --features instrument --example trace_advection`
//!
//! Outputs (paths overridable by the env knobs printed below):
//! * `target/trace_advection.json`   — open at <https://ui.perfetto.dev>
//! * `target/trace_advection.folded` — `flamegraph.pl` / speedscope input
//! * `target/trace_advection_dumps/fault_dump_*.json` — dump-on-fault

use batched_splines::prelude::*;
use pp_advection::vlasov::two_stream;
use pp_portable::instrument;

fn main() {
    // The recorder and the pool read their knobs once, on first use —
    // defaults must be in place before the first instrumented call.
    for (knob, default) in [
        ("PP_NUM_THREADS", "4"),
        ("PP_TRACE_CAPACITY", "2048"),
        ("PP_TRACE_DUMP_DIR", "target/trace_advection_dumps"),
    ] {
        if std::env::var_os(knob).is_none() {
            std::env::set_var(knob, default);
        }
        println!("{knob} = {}", std::env::var(knob).unwrap());
    }
    if !instrument::enabled() {
        println!("note: built without --features instrument; the timeline will be empty");
    }

    let (nx, nv, steps) = (48, 96, 8);
    let k = 0.5;
    let dt = 0.05;

    // --- Part 1: a clean traced run --------------------------------------
    let mut sim = VlasovPoisson1D1V::new(
        nx,
        nv,
        2.0 * std::f64::consts::PI / k,
        5.0,
        3,
        dt,
        two_stream(1.4, 0.01, k),
    )
    .expect("setup");
    sim.solve_poisson();
    // Warm-up spins up the pool and registers every worker's recorder.
    sim.step(&Parallel).expect("warm-up step");

    instrument::trace_reset();
    for _ in 0..steps {
        sim.step(&Parallel).expect("step");
    }
    let trace = instrument::trace_snapshot();
    println!(
        "\ntraced {steps} step(s): {} event(s) across {} thread(s)",
        trace.event_count(),
        trace.threads_with_events()
    );
    std::fs::create_dir_all("target").expect("target dir");
    std::fs::write(
        "target/trace_advection.json",
        instrument::chrome_trace_json(&trace),
    )
    .expect("writing trace");
    std::fs::write(
        "target/trace_advection.folded",
        instrument::folded_stacks(&trace),
    )
    .expect("writing folded stacks");
    println!("wrote target/trace_advection.json and target/trace_advection.folded");

    // --- Part 2: one injected fault, one dump ----------------------------
    // The direct path is backward stable, so a healthy lane essentially
    // never fails verification; `probe_lanes` injects the failure
    // deterministically. With the fallback ladder off, the probed lane
    // has nowhere to go but quarantine — the fault path we want to see.
    let _ = instrument::take_fault_dumps();
    let mut faulty = VlasovPoisson1D1V::new_verified(
        nx,
        nv,
        2.0 * std::f64::consts::PI / k,
        5.0,
        3,
        dt,
        VerifyConfig {
            probe_lanes: vec![5],
            use_ladder: false,
            ..VerifyConfig::default()
        },
        two_stream(1.4, 0.01, k),
    )
    .expect("setup");
    faulty.solve_poisson();
    faulty.step(&Parallel).expect("faulty step");

    let dumps = instrument::take_fault_dumps();
    println!("\ninjected fault produced {} dump(s):", dumps.len());
    for d in &dumps {
        println!(
            "  [{}] {} — {} event(s) in the window, quarantine instants: {}",
            d.reason,
            d.detail,
            d.trace.event_count(),
            d.trace
                .instant_count(instrument::InstantKind::LaneQuarantined),
        );
    }
    assert!(
        !instrument::enabled() || !dumps.is_empty(),
        "instrumented faulty step must leave a dump"
    );
    println!(
        "disk copies under {} (newest per process run)",
        std::env::var("PP_TRACE_DUMP_DIR").unwrap()
    );
}
