//! Stopping criteria for Krylov solvers, with non-finite detection,
//! stagnation detection, and optional wall-clock budgets.

use crate::breakdown::BreakdownKind;
use pp_portable::Budget;

/// When to declare a Krylov solve finished.
///
/// The paper's configuration is a *residual reduction factor*
/// `‖A x − b‖ / ‖b‖ < 10⁻¹⁵` (§III-B); that is the default here.
///
/// On top of the tolerance and the iteration cap, the criteria carry the
/// robustness knobs every solver loop consults:
/// * **non-finite guard** — a NaN/Inf residual is reported as
///   [`BreakdownKind::NonFiniteResidual`] on the spot instead of spinning
///   to `max_iters`;
/// * **stagnation window** — if over `stall_window` consecutive
///   iterations the residual fails to shrink by at least a factor of
///   `1 − stall_improvement`, the lane is declared
///   [`BreakdownKind::Stagnation`]. `stall_window == 0` (the default)
///   disables the check, preserving the paper's plain configuration;
/// * **wall-clock budget** — an optional [`Budget`] polled at the top of
///   every solver iteration; once exhausted the lane stops with
///   [`BreakdownKind::BudgetExhausted`], leaving the partial iterate in
///   place. `None` (the default) adds no per-iteration cost.
///
/// Cloning is cheap (the budget is an `Arc` handle); clones share the
/// budget's cancel flag.
#[derive(Debug, Clone, PartialEq)]
pub struct StopCriteria {
    /// Relative residual threshold `‖r‖ / ‖b‖`.
    pub tol: f64,
    /// Hard iteration cap (guards against runaway loops).
    pub max_iters: usize,
    /// Length of the stagnation window in iterations; `0` disables
    /// stagnation detection.
    pub stall_window: usize,
    /// Minimum relative residual improvement expected over one window
    /// (e.g. `0.01` = at least 1 % smaller than the best residual a
    /// window ago).
    pub stall_improvement: f64,
    /// Optional wall-clock budget; `None` disables deadline checks.
    pub budget: Option<Budget>,
}

/// Verdict of one residual check inside a solver loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResidualVerdict {
    /// Tolerance met; stop with success.
    Converged,
    /// Keep iterating.
    Continue,
    /// The residual is NaN/Inf; stop with
    /// [`BreakdownKind::NonFiniteResidual`].
    NonFinite,
}

impl StopCriteria {
    /// The paper's setting: tolerance `1e-15`, generous iteration cap,
    /// stagnation detection off.
    pub fn paper_default() -> Self {
        Self {
            tol: 1e-15,
            max_iters: 10_000,
            stall_window: 0,
            stall_improvement: 0.0,
            budget: None,
        }
    }

    /// Custom tolerance with the default iteration cap.
    pub fn with_tol(tol: f64) -> Self {
        Self {
            tol,
            ..Self::paper_default()
        }
    }

    /// Enable stagnation detection: give up when the residual improves
    /// by less than `improvement` (relative) over `window` iterations.
    ///
    /// # Panics
    /// Panics if `improvement` is not in `[0, 1)`.
    pub fn with_stagnation(mut self, window: usize, improvement: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&improvement),
            "stall_improvement must be in [0, 1)"
        );
        self.stall_window = window;
        self.stall_improvement = improvement;
        self
    }

    /// Replace the iteration cap.
    pub fn with_max_iters(mut self, max_iters: usize) -> Self {
        self.max_iters = max_iters;
        self
    }

    /// Attach a wall-clock budget: every solver iteration polls it and
    /// stops with [`BreakdownKind::BudgetExhausted`] once it runs out.
    pub fn with_budget(mut self, budget: Budget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// `true` once the attached budget (if any) is cancelled or past its
    /// deadline. Solver loops poll this at the top of every iteration.
    #[inline]
    pub fn budget_exhausted(&self) -> bool {
        self.budget.as_ref().is_some_and(|b| b.exhausted())
    }

    /// `true` when `residual / norm_b` satisfies the tolerance.
    ///
    /// A zero right-hand side converges immediately (the solution is the
    /// zero vector, and any residual test against `‖b‖ = 0` would never
    /// pass). Non-finite residuals and non-finite `norm_b` never satisfy
    /// the criterion — use [`StopCriteria::assess`] in solver loops so
    /// they are diagnosed as [`BreakdownKind::NonFiniteResidual`] rather
    /// than iterated on.
    #[inline]
    pub fn is_converged(&self, residual: f64, norm_b: f64) -> bool {
        if !residual.is_finite() || !norm_b.is_finite() {
            return false;
        }
        if norm_b == 0.0 {
            return residual == 0.0;
        }
        residual / norm_b < self.tol
    }

    /// Classify one residual observation: converged, keep going, or
    /// non-finite breakdown.
    #[inline]
    pub fn assess(&self, residual: f64, norm_b: f64) -> ResidualVerdict {
        if !residual.is_finite() || !norm_b.is_finite() {
            ResidualVerdict::NonFinite
        } else if self.is_converged(residual, norm_b) {
            ResidualVerdict::Converged
        } else {
            ResidualVerdict::Continue
        }
    }

    /// Fresh stagnation tracker configured from these criteria.
    pub fn stagnation_tracker(&self) -> StagnationTracker {
        StagnationTracker::new(self.stall_window, self.stall_improvement)
    }
}

impl Default for StopCriteria {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Sliding-window stagnation detector.
///
/// Remembers the best (smallest) residual seen in each completed window
/// of `window` observations; reports [`BreakdownKind::Stagnation`] when a
/// full window passes without the residual improving on the previous
/// window's best by the configured relative factor.
#[derive(Debug, Clone)]
pub struct StagnationTracker {
    window: usize,
    improvement: f64,
    /// Best residual of the previous completed window (`None` until one
    /// window has elapsed).
    prev_best: Option<f64>,
    /// Best residual of the window being filled.
    cur_best: f64,
    /// Observations in the current window.
    filled: usize,
}

impl StagnationTracker {
    /// Tracker over `window` observations; `window == 0` disables it.
    pub fn new(window: usize, improvement: f64) -> Self {
        Self {
            window,
            improvement,
            prev_best: None,
            cur_best: f64::INFINITY,
            filled: 0,
        }
    }

    /// Record one residual; returns `Some(Stagnation)` when a full
    /// window elapsed without sufficient improvement.
    pub fn observe(&mut self, residual: f64) -> Option<BreakdownKind> {
        if self.window == 0 || !residual.is_finite() {
            return None;
        }
        self.cur_best = self.cur_best.min(residual);
        self.filled += 1;
        if self.filled < self.window {
            return None;
        }
        let stalled = match self.prev_best {
            Some(prev) => self.cur_best > prev * (1.0 - self.improvement),
            None => false,
        };
        self.prev_best = Some(self.cur_best);
        self.cur_best = f64::INFINITY;
        self.filled = 0;
        if stalled {
            Some(BreakdownKind::Stagnation)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_values() {
        let c = StopCriteria::paper_default();
        assert_eq!(c.tol, 1e-15);
        assert!(c.max_iters >= 1000);
        assert_eq!(c.stall_window, 0, "stagnation off by default");
    }

    #[test]
    fn budget_exhaustion_polls_the_attached_budget() {
        let plain = StopCriteria::paper_default();
        assert!(!plain.budget_exhausted(), "no budget: never exhausted");
        let budget = Budget::unlimited();
        let c = StopCriteria::paper_default().with_budget(budget.clone());
        assert!(!c.budget_exhausted());
        budget.cancel();
        assert!(c.budget_exhausted());
        // Clones share the budget.
        assert!(c.clone().budget_exhausted());
    }

    #[test]
    fn convergence_test() {
        let c = StopCriteria::with_tol(1e-6);
        assert!(c.is_converged(1e-8, 1.0));
        assert!(!c.is_converged(1e-4, 1.0));
        // Scaling by ‖b‖ matters.
        assert!(c.is_converged(1e-4, 1e3));
    }

    #[test]
    fn zero_rhs_special_case() {
        let c = StopCriteria::default();
        assert!(c.is_converged(0.0, 0.0));
        assert!(!c.is_converged(1e-30, 0.0));
    }

    #[test]
    fn non_finite_residuals_never_converge() {
        let c = StopCriteria::with_tol(1e-6);
        assert!(!c.is_converged(f64::NAN, 1.0));
        assert!(!c.is_converged(f64::INFINITY, 1.0));
        assert!(!c.is_converged(1e-8, f64::NAN));
        assert!(!c.is_converged(f64::NAN, 0.0));
    }

    #[test]
    fn assess_classifies_all_three_ways() {
        let c = StopCriteria::with_tol(1e-6);
        assert_eq!(c.assess(1e-8, 1.0), ResidualVerdict::Converged);
        assert_eq!(c.assess(1e-3, 1.0), ResidualVerdict::Continue);
        assert_eq!(c.assess(f64::NAN, 1.0), ResidualVerdict::NonFinite);
        assert_eq!(c.assess(1.0, f64::INFINITY), ResidualVerdict::NonFinite);
    }

    #[test]
    fn stagnation_fires_on_flat_residual() {
        let c = StopCriteria::with_tol(1e-15).with_stagnation(5, 0.01);
        let mut t = c.stagnation_tracker();
        let mut fired = None;
        for _ in 0..25 {
            if let Some(k) = t.observe(0.5) {
                fired = Some(k);
                break;
            }
        }
        assert_eq!(fired, Some(BreakdownKind::Stagnation));
    }

    #[test]
    fn stagnation_silent_on_steady_progress() {
        let c = StopCriteria::with_tol(1e-15).with_stagnation(5, 0.01);
        let mut t = c.stagnation_tracker();
        let mut res = 1.0;
        for _ in 0..100 {
            assert_eq!(t.observe(res), None);
            res *= 0.9; // 10 % per iteration: ample progress
        }
    }

    #[test]
    fn disabled_tracker_never_fires() {
        let mut t = StagnationTracker::new(0, 0.5);
        for _ in 0..1000 {
            assert_eq!(t.observe(1.0), None);
        }
    }

    #[test]
    #[should_panic(expected = "stall_improvement")]
    fn bad_improvement_rejected() {
        let _ = StopCriteria::default().with_stagnation(10, 1.5);
    }
}
