//! Demonstration of verified direct solves: condition monitoring at
//! factorization time, per-lane residual verification, quarantine of
//! poisoned lanes, and the factorization fallback ladder.
//!
//! Run with: `cargo run --release --example verified_build`

use batched_splines::prelude::*;
use pp_portable::TestRng;

fn rhs(n: usize, lanes: usize, seed: u64) -> Matrix {
    let mut rng = TestRng::seed_from_u64(seed);
    Matrix::from_fn(n, lanes, Layout::Left, |_, _| rng.gen_range(-1.0..1.0))
}

fn main() {
    let n = 48;
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 3).unwrap();

    // --- Scenario 1: factorization health, captured once at setup ------
    let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
    println!("scenario 1: FactorHealth of the direct factorizations");
    println!("  interior Q: {}", builder.blocks().q_health());
    println!("  border  δ': {}", builder.blocks().delta_health());

    // --- Scenario 2: NaN lanes quarantined, healthy lanes untouched ----
    let verified = builder.verified(VerifyConfig::default());
    let mut b = rhs(n, 6, 42);
    b.set(11, 1, f64::NAN);
    b.set(0, 4, f64::INFINITY);
    println!("\nscenario 2: lanes 1 and 4 poisoned, verified solve");
    let report = verified.solve_in_place(&Parallel, &mut b).unwrap();
    for lane in 0..6 {
        println!("  lane {lane}: {}", report.verdict(lane));
    }
    println!("  report: {report}");

    // --- Scenario 3: forcing lanes down the fallback ladder ------------
    // The direct path is backward stable, so a healthy lane essentially
    // never fails its residual check; `probe_lanes` injects the failure
    // deterministically to exercise the ladder end to end.
    let config = VerifyConfig {
        probe_lanes: vec![0, 2],
        ..VerifyConfig::default()
    };
    let verified = SplineBuilder::new(space, BuilderVersion::FusedSpmv)
        .unwrap()
        .verified(config);
    let mut b = rhs(n, 4, 9);
    println!("\nscenario 3: lanes 0 and 2 forced down the ladder");
    let report = verified.solve_in_place(&Parallel, &mut b).unwrap();
    for lane in 0..4 {
        println!("  lane {lane}: {}", report.verdict(lane));
    }

    // --- Scenario 4: verified advection step ---------------------------
    let space_v = PeriodicSplineSpace::new(Breaks::uniform(64, 0.0, 1.0).unwrap(), 3).unwrap();
    let backend =
        SplineBackend::direct_verified(space_v, BuilderVersion::FusedSpmv, VerifyConfig::default())
            .unwrap();
    let mut adv = Advection1D::new(backend, vec![0.4, -0.3, 0.8], 0.01).unwrap();
    let mut f = adv.init_distribution(|x, _| (std::f64::consts::TAU * x).sin());
    f.set(2, 20, f64::NAN); // poison one velocity lane of the distribution
    adv.step(&Parallel, &mut f).unwrap();
    println!("\nscenario 4: advection with one poisoned velocity lane");
    println!("  backend: {}", adv.backend_label());
    println!("  diagnostics: {}", adv.last_diagnostics().unwrap());
    println!(
        "  distribution finite everywhere: {}",
        f.as_slice().iter().all(|v| v.is_finite())
    );
}
