//! Errors for the advection drivers.

use std::fmt;

/// Errors produced by `pp-advection`.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Grid/backends disagree on resolution.
    ShapeMismatch {
        /// Explanation.
        detail: String,
    },
    /// Underlying spline-solver error.
    Spline(pp_splinesolver::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            Error::Spline(e) => write!(f, "spline solver: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<pp_splinesolver::Error> for Error {
    fn from(e: pp_splinesolver::Error) -> Self {
        Error::Spline(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
