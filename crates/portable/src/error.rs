//! Error type shared by the substrate.

use std::fmt;

/// Errors produced by view construction and shape-checked operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Two operands whose shapes must agree did not.
    ShapeMismatch {
        /// What was being attempted.
        op: &'static str,
        /// Shape of the left/first operand.
        left: (usize, usize),
        /// Shape of the right/second operand.
        right: (usize, usize),
    },
    /// An index or sub-range fell outside the extent of a view.
    OutOfBounds {
        /// What was being attempted.
        op: &'static str,
        /// Offending index.
        index: usize,
        /// Extent it must be below.
        extent: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { op, left, right } => write!(
                f,
                "shape mismatch in {op}: ({}, {}) vs ({}, {})",
                left.0, left.1, right.0, right.1
            ),
            Error::OutOfBounds { op, index, extent } => {
                write!(f, "index {index} out of bounds in {op} (extent {extent})")
            }
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias used across the substrate.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_shape_mismatch() {
        let e = Error::ShapeMismatch {
            op: "gemm",
            left: (3, 4),
            right: (5, 6),
        };
        let s = e.to_string();
        assert!(s.contains("gemm"));
        assert!(s.contains("(3, 4)"));
        assert!(s.contains("(5, 6)"));
    }

    #[test]
    fn display_out_of_bounds() {
        let e = Error::OutOfBounds {
            op: "col",
            index: 7,
            extent: 7,
        };
        let s = e.to_string();
        assert!(s.contains("col"));
        assert!(s.contains('7'));
    }
}
