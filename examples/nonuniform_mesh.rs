//! Non-uniform splines — the capability the paper builds `gbtrs` for:
//! resolving a steep-gradient region (a tokamak edge pedestal, in
//! miniature) with a graded mesh instead of globally refining.
//!
//! Compares interpolation error of a steep profile on (a) a uniform mesh
//! and (b) a graded mesh with the same number of points, then shows the
//! solver classification switching from `pttrs` to `gbtrs` (Table I).
//!
//! ```text
//! cargo run --release --example nonuniform_mesh
//! ```

use batched_splines::prelude::*;
use pp_splinesolver::QClass;

/// A pedestal-like profile with *periodic* continuation: a plateau with
/// steep transport-barrier walls at x = 0.45 and 0.55 (width 0.015),
/// right where the graded mesh is finest. Both tails vanish to ~1e-15 at
/// the domain seam, so the periodic spline space can represent it.
fn pedestal(x: f64) -> f64 {
    let up = ((x - 0.45) / 0.015).tanh();
    let down = ((x - 0.55) / 0.015).tanh();
    0.5 * (up - down) + 0.05 * (std::f64::consts::TAU * x).sin()
}

fn max_error(space: &PeriodicSplineSpace) -> f64 {
    let values: Vec<f64> = space
        .interpolation_points()
        .iter()
        .map(|&x| pedestal(x))
        .collect();
    let coefs = space.interpolate_naive(&values).expect("solvable");
    (0..4001)
        .map(|i| {
            let x = i as f64 / 4001.0;
            (space.eval(&coefs, x) - pedestal(x)).abs()
        })
        .fold(0.0, f64::max)
}

fn main() {
    let n = 128;
    println!("interpolating a pedestal profile (width 0.015) with {n} points\n");

    for degree in [3usize, 4, 5] {
        let uniform =
            PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), degree).unwrap();
        // Cluster points around the steep region: strong grading.
        let graded =
            PeriodicSplineSpace::new(Breaks::graded(n, 0.0, 1.0, 0.85).unwrap(), degree).unwrap();

        let eu = max_error(&uniform);
        let eg = max_error(&graded);

        let qu = SplineBuilder::new(uniform, BuilderVersion::FusedSpmv)
            .unwrap()
            .blocks()
            .q_class();
        let qg = SplineBuilder::new(graded, BuilderVersion::FusedSpmv)
            .unwrap()
            .blocks()
            .q_class();
        assert_eq!(qg, QClass::GeneralBanded, "non-uniform must take gbtrs");

        println!(
            "degree {degree}: uniform err {eu:.3e} ({}) | graded err {eg:.3e} ({}) | improvement {:.1}x",
            qu.routine(),
            qg.routine(),
            eu / eg
        );
        assert!(
            eg < eu,
            "graded mesh must beat uniform on the steep profile"
        );
    }
    println!("\nthe graded mesh resolves the pedestal with the same point budget —");
    println!("this is why the new GYSELA needs non-uniform splines (paper §II-A).");
}
