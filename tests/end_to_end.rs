//! Cross-crate integration tests: the full pipeline from spline space to
//! advected distribution, exercised through the public facade.

use batched_splines::prelude::*;
use pp_advection::vlasov::two_stream;

const TAU: f64 = std::f64::consts::TAU;

/// All six spline configurations (paper's sweep) × all three builder
/// versions × both backends produce coefficients that actually
/// interpolate: evaluation at the interpolation points returns the input
/// data.
#[test]
fn every_configuration_interpolates() {
    for degree in [3usize, 4, 5] {
        for uniform in [true, false] {
            let breaks = if uniform {
                Breaks::uniform(40, 0.0, 2.0).unwrap()
            } else {
                Breaks::graded(40, 0.0, 2.0, 0.5).unwrap()
            };
            let space = PeriodicSplineSpace::new(breaks, degree).unwrap();
            let pts = space.interpolation_points();
            let data = Matrix::from_fn(40, 5, Layout::Left, |i, j| {
                (TAU * pts[i] / 2.0 + j as f64).sin()
            });

            for version in [
                BuilderVersion::Baseline,
                BuilderVersion::Fused,
                BuilderVersion::FusedSpmv,
            ] {
                let builder = SplineBuilder::new(space.clone(), version).unwrap();
                let mut coefs = data.clone();
                builder.solve_in_place(&Parallel, &mut coefs).unwrap();
                for j in 0..5 {
                    let c = coefs.col(j).to_vec();
                    for (k, &x) in pts.iter().enumerate() {
                        assert!(
                            (space.eval(&c, x) - data.get(k, j)).abs() < 1e-10,
                            "deg {degree} uniform {uniform} {version:?}"
                        );
                    }
                }
            }

            let iter = IterativeSplineSolver::new(space.clone(), IterativeConfig::gpu()).unwrap();
            let mut coefs = data.clone();
            iter.solve_in_place(&mut coefs, None).unwrap();
            for j in 0..5 {
                let c = coefs.col(j).to_vec();
                for (k, &x) in pts.iter().enumerate() {
                    assert!(
                        (space.eval(&c, x) - data.get(k, j)).abs() < 1e-9,
                        "iterative deg {degree} uniform {uniform}"
                    );
                }
            }
        }
    }
}

/// Semi-Lagrangian advection converges to the analytic solution at the
/// expected order in space: halving h with a smooth profile shrinks the
/// error by roughly 2^(degree+1).
#[test]
fn advection_spatial_convergence_order() {
    let run = |nx: usize| -> f64 {
        let space = PeriodicSplineSpace::new(Breaks::uniform(nx, 0.0, 1.0).unwrap(), 3).unwrap();
        let backend = SplineBackend::direct(space, BuilderVersion::FusedSpmv).unwrap();
        // Keep the foot offset at a fixed fraction (0.33) of the cell
        // width across refinements, so the interpolation-error constant
        // B(α) is identical and the measured order is clean; the offset
        // also keeps feet off grid points (where interpolation would be
        // exact and hide the spatial error).
        let v = 0.31;
        let dt = 0.33 / (nx as f64 * v);
        let mut adv = Advection1D::new(backend, vec![v], dt).unwrap();
        let f0 = |x: f64, _: f64| (TAU * x).sin();
        let mut f = adv.init_distribution(f0);
        let steps = 16;
        for _ in 0..steps {
            adv.step(&Serial, &mut f).unwrap();
        }
        f.max_abs_diff(&adv.analytic(f0, steps))
    };
    let e1 = run(16);
    let e2 = run(32);
    let order = (e1 / e2).log2();
    assert!(
        order > 3.0,
        "cubic semi-Lagrangian should converge at order ~4, got {order:.2} ({e1:.2e} -> {e2:.2e})"
    );
}

/// The direct builder agrees with the iterative backend to solver
/// tolerance across a realistic advection run.
#[test]
fn backends_agree_through_time_series() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(64, 0.0, 1.0).unwrap(), 4).unwrap();
    let velocities = vec![0.17, -0.41, 0.93];
    let f0 = |x: f64, _: f64| (-(x - 0.4) * (x - 0.4) / 0.01).exp();

    let mut adv_d = Advection1D::new(
        SplineBackend::direct(space.clone(), BuilderVersion::Fused).unwrap(),
        velocities.clone(),
        0.01,
    )
    .unwrap();
    let mut adv_i = Advection1D::new(
        SplineBackend::iterative(space, IterativeConfig::cpu()).unwrap(),
        velocities,
        0.01,
    )
    .unwrap();
    let mut fd = adv_d.init_distribution(f0);
    let mut fi = fd.clone();
    for _ in 0..20 {
        adv_d.step(&Parallel, &mut fd).unwrap();
        adv_i.step(&Parallel, &mut fi).unwrap();
    }
    assert!(fd.max_abs_diff(&fi) < 1e-8, "{}", fd.max_abs_diff(&fi));
}

/// The Vlasov–Poisson driver conserves mass and produces finite fields
/// through a multi-step run (smoke test of the full physics stack).
#[test]
fn vlasov_poisson_smoke() {
    let mut sim =
        VlasovPoisson1D1V::new(24, 48, TAU / 0.5, 5.0, 3, 0.05, two_stream(1.4, 0.01, 0.5))
            .unwrap();
    let m0 = sim.mass();
    for _ in 0..10 {
        sim.step(&Parallel).unwrap();
    }
    assert!(((sim.mass() - m0) / m0).abs() < 1e-4);
    assert!(sim.e_field().iter().all(|e| e.is_finite()));
    assert!(sim.field_energy() >= 0.0);
}

/// Layouts are interchangeable end to end: the same advection in
/// Layout::Left and Layout::Right RHS storage gives identical physics.
#[test]
fn layout_independence() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
    let pts = space.interpolation_points();
    for layout in [Layout::Left, Layout::Right] {
        let mut b = Matrix::from_fn(32, 6, layout, |i, j| (TAU * pts[i] + j as f64).cos());
        builder.solve_in_place(&Parallel, &mut b).unwrap();
        let c = b.col(3).to_vec();
        let x = 0.123;
        assert!(
            (space.eval(&c, x) - (TAU * x + 3.0).cos()).abs() < 1e-4,
            "{layout:?}"
        );
    }
}
