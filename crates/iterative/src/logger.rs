//! Convergence logging — the analogue of the Ginkgo `convergence_logger`
//! the paper attaches around each chunked solve (Listing 3, lines 27/31),
//! extended with per-lane health and the recovery report the fault
//! handling layer produces.
//!
//! Records are stored in *lane order*: the `i`-th recorded result belongs
//! to right-hand-side column `i` of the multi-RHS block. Recovery stages
//! overwrite individual lane records via [`ConvergenceLogger::update_lane`]
//! and append a [`RecoveryEvent`] describing what was attempted.

use crate::breakdown::BreakdownKind;
use crate::multirhs::LaneOutcome;
use crate::solver::SolveResult;

/// One rung of the recovery ladder (see the `RecoveryPolicy` of
/// `pp-splinesolver`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecoveryStage {
    /// Retry with a stronger (larger-block) block-Jacobi preconditioner.
    Reprecondition,
    /// Retry with a different Krylov method.
    SolverSwitch,
    /// Hand the lane to the direct Schur-complement builder.
    DirectFallback,
}

impl std::fmt::Display for RecoveryStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RecoveryStage::Reprecondition => write!(f, "re-precondition"),
            RecoveryStage::SolverSwitch => write!(f, "solver switch"),
            RecoveryStage::DirectFallback => write!(f, "direct fallback"),
        }
    }
}

/// What one recovery rung attempted and achieved.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryEvent {
    /// Which rung ran.
    pub stage: RecoveryStage,
    /// Lanes that were retried.
    pub lanes_attempted: Vec<usize>,
    /// The subset that ended healthy afterwards.
    pub lanes_recovered: Vec<usize>,
}

/// Aggregates per-right-hand-side solve outcomes across a multi-RHS run.
#[derive(Debug, Clone, Default)]
pub struct ConvergenceLogger {
    results: Vec<SolveResult>,
    recovery: Vec<RecoveryEvent>,
}

impl ConvergenceLogger {
    /// Fresh logger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one solve (appends — lane index is the record order).
    pub fn record(&mut self, result: SolveResult) {
        self.results.push(result);
    }

    /// Record a batch of solves.
    pub fn record_all(&mut self, results: impl IntoIterator<Item = SolveResult>) {
        self.results.extend(results);
    }

    /// Replace lane `lane`'s record after a recovery attempt.
    ///
    /// # Panics
    /// Panics if `lane` was never recorded.
    pub fn update_lane(&mut self, lane: usize, result: SolveResult) {
        self.results[lane] = result;
    }

    /// All per-lane records, in lane order.
    pub fn lane_results(&self) -> &[SolveResult] {
        &self.results
    }

    /// The record of one lane, if it exists.
    pub fn lane_result(&self, lane: usize) -> Option<&SolveResult> {
        self.results.get(lane)
    }

    /// The typed outcome of one lane (panics if out of range).
    pub fn lane_outcome(&self, lane: usize) -> LaneOutcome {
        LaneOutcome::from_result(&self.results[lane])
    }

    /// Typed outcomes of every lane, in lane order.
    pub fn outcomes(&self) -> Vec<LaneOutcome> {
        self.results.iter().map(LaneOutcome::from_result).collect()
    }

    /// Lanes that did not converge, in ascending order.
    pub fn failed_lanes(&self) -> Vec<usize> {
        self.results
            .iter()
            .enumerate()
            .filter(|(_, r)| !r.converged)
            .map(|(i, _)| i)
            .collect()
    }

    /// How many lanes ended in each breakdown kind (sorted by kind's
    /// taxonomy order; kinds with zero counts omitted).
    pub fn breakdown_census(&self) -> Vec<(BreakdownKind, usize)> {
        use BreakdownKind::*;
        [
            RhoZero,
            OmegaZero,
            NonFiniteResidual,
            Stagnation,
            MaxIters,
            BudgetExhausted,
        ]
        .into_iter()
        .filter_map(|kind| {
            let count = self
                .results
                .iter()
                .filter(|r| r.breakdown == Some(kind))
                .count();
            (count > 0).then_some((kind, count))
        })
        .collect()
    }

    /// Append one recovery event to the report.
    pub fn record_recovery(&mut self, event: RecoveryEvent) {
        self.recovery.push(event);
    }

    /// The recovery report: every ladder rung that ran, in order.
    pub fn recovery_events(&self) -> &[RecoveryEvent] {
        &self.recovery
    }

    /// Number of recorded solves.
    pub fn count(&self) -> usize {
        self.results.len()
    }

    /// Whether every recorded solve converged.
    pub fn all_converged(&self) -> bool {
        self.results.iter().all(|r| r.converged)
    }

    /// Largest iteration count over all solves — the figure the paper's
    /// Table IV reports ("the number of iterations for each chunk remains
    /// constant", i.e. max == typical).
    pub fn max_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).max().unwrap_or(0)
    }

    /// Smallest iteration count.
    pub fn min_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).min().unwrap_or(0)
    }

    /// Mean iteration count.
    pub fn mean_iterations(&self) -> f64 {
        if self.results.is_empty() {
            0.0
        } else {
            self.results.iter().map(|r| r.iterations).sum::<usize>() as f64
                / self.results.len() as f64
        }
    }

    /// Total iterations across all solves (proportional to total work).
    pub fn total_iterations(&self) -> usize {
        self.results.iter().map(|r| r.iterations).sum()
    }

    /// Worst final relative residual. NaN residuals dominate: if any
    /// lane's residual is NaN the census is NaN, so a poisoned batch can
    /// never masquerade as a healthy one.
    pub fn worst_residual(&self) -> f64 {
        self.results
            .iter()
            .map(|r| r.relative_residual)
            .fold(0.0, |acc, r| if r.is_nan() { r } else { acc.max(r) })
    }

    /// Clear all records and the recovery report.
    pub fn reset(&mut self) {
        self.results.clear();
        self.recovery.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn res(iterations: usize, converged: bool, rr: f64) -> SolveResult {
        if converged {
            SolveResult::converged(iterations, rr)
        } else {
            SolveResult::broken(iterations, rr, BreakdownKind::MaxIters)
        }
    }

    #[test]
    fn aggregation() {
        let mut log = ConvergenceLogger::new();
        log.record(res(10, true, 1e-16));
        log.record(res(14, true, 5e-16));
        log.record(res(12, true, 2e-16));
        assert_eq!(log.count(), 3);
        assert_eq!(log.max_iterations(), 14);
        assert_eq!(log.min_iterations(), 10);
        assert_eq!(log.total_iterations(), 36);
        assert!((log.mean_iterations() - 12.0).abs() < 1e-12);
        assert!(log.all_converged());
        assert_eq!(log.worst_residual(), 5e-16);
    }

    #[test]
    fn divergence_detected() {
        let mut log = ConvergenceLogger::new();
        log.record_all([res(10, true, 1e-16), res(10_000, false, 1e-3)]);
        assert!(!log.all_converged());
        assert_eq!(log.failed_lanes(), vec![1]);
    }

    #[test]
    fn empty_logger() {
        let log = ConvergenceLogger::new();
        assert_eq!(log.max_iterations(), 0);
        assert_eq!(log.mean_iterations(), 0.0);
        assert!(log.all_converged());
        assert!(log.failed_lanes().is_empty());
        assert!(log.breakdown_census().is_empty());
    }

    #[test]
    fn reset_clears() {
        let mut log = ConvergenceLogger::new();
        log.record(res(5, true, 0.0));
        log.record_recovery(RecoveryEvent {
            stage: RecoveryStage::DirectFallback,
            lanes_attempted: vec![0],
            lanes_recovered: vec![0],
        });
        log.reset();
        assert_eq!(log.count(), 0);
        assert!(log.recovery_events().is_empty());
    }

    #[test]
    fn nan_residual_poisons_worst() {
        let mut log = ConvergenceLogger::new();
        log.record(res(3, true, 1e-16));
        log.record(SolveResult::broken(
            0,
            f64::NAN,
            BreakdownKind::NonFiniteResidual,
        ));
        assert!(log.worst_residual().is_nan());
    }

    #[test]
    fn census_counts_kinds() {
        let mut log = ConvergenceLogger::new();
        log.record(res(3, true, 1e-16));
        log.record(SolveResult::broken(
            0,
            f64::NAN,
            BreakdownKind::NonFiniteResidual,
        ));
        log.record(SolveResult::broken(9, 0.5, BreakdownKind::RhoZero));
        log.record(SolveResult::broken(9, 0.5, BreakdownKind::RhoZero));
        assert_eq!(
            log.breakdown_census(),
            vec![
                (BreakdownKind::RhoZero, 2),
                (BreakdownKind::NonFiniteResidual, 1)
            ]
        );
    }

    #[test]
    fn update_lane_and_recovery_report() {
        let mut log = ConvergenceLogger::new();
        log.record(res(3, true, 1e-16));
        log.record(SolveResult::broken(100, 0.9, BreakdownKind::Stagnation));
        assert_eq!(log.failed_lanes(), vec![1]);
        log.update_lane(1, SolveResult::converged(0, 1e-16));
        log.record_recovery(RecoveryEvent {
            stage: RecoveryStage::DirectFallback,
            lanes_attempted: vec![1],
            lanes_recovered: vec![1],
        });
        assert!(log.all_converged());
        assert_eq!(log.recovery_events().len(), 1);
        assert_eq!(
            log.recovery_events()[0].stage,
            RecoveryStage::DirectFallback
        );
    }
}
