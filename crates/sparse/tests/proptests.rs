//! Randomised property tests for the sparse formats: conversions are
//! lossless and every spmv variant computes the same product. Driven by
//! the deterministic [`TestRng`] so runs are reproducible and hermetic.

use pp_portable::{Layout, Matrix, Serial, Strided, StridedMut, TestRng};
use pp_sparse::{Coo, Csc, Csr, SparsityPattern};

/// A random sparse matrix as a dense generator (deterministic in the
/// inputs, so failures reproduce).
fn sparse_dense(m: usize, n: usize, density_pct: usize, seed: u64) -> Matrix {
    Matrix::from_fn(m, n, Layout::Right, |i, j| {
        let h = (i as u64)
            .wrapping_mul(6364136223846793005)
            .wrapping_add((j as u64).wrapping_mul(1442695040888963407))
            .wrapping_add(seed);
        if (h >> 33) % 100 < density_pct as u64 {
            ((h % 2001) as f64 - 1000.0) / 250.0
        } else {
            0.0
        }
    })
}

/// COO -> CSR -> dense and COO -> CSC -> dense reproduce the source.
#[test]
fn conversion_round_trips() {
    let mut g = TestRng::seed_from_u64(0x20);
    for _ in 0..64 {
        let m = g.gen_range(1usize..25);
        let n = g.gen_range(1usize..25);
        let density = g.gen_range(0usize..60);
        let seed = g.gen_range(0u64..500);
        let a = sparse_dense(m, n, density, seed);
        let coo = Coo::from_dense(&a, 0.0);
        assert_eq!(Csr::from_coo(&coo).to_dense().max_abs_diff(&a), 0.0);
        assert_eq!(Csc::from_coo(&coo).to_dense().max_abs_diff(&a), 0.0);
        assert_eq!(coo.to_dense().max_abs_diff(&a), 0.0);
    }
}

/// All four spmv implementations (dense reference, COO lane, CSR, CSC)
/// agree.
#[test]
fn spmv_variants_agree() {
    let mut g = TestRng::seed_from_u64(0x21);
    for _ in 0..64 {
        let m = g.gen_range(1usize..20);
        let n = g.gen_range(1usize..20);
        let density = g.gen_range(5usize..70);
        let seed = g.gen_range(0u64..500);
        let a = sparse_dense(m, n, density, seed);
        let x: Vec<f64> = (0..n).map(|j| ((j * 37 + 11) % 19) as f64 - 9.0).collect();
        let reference: Vec<f64> = (0..m)
            .map(|i| (0..n).map(|j| a.get(i, j) * x[j]).sum())
            .collect();

        let coo = Coo::from_dense(&a, 0.0);
        let mut y_coo = vec![0.0; m];
        coo.spmv_lane(
            1.0,
            &Strided::from_slice(&x),
            &mut StridedMut::from_slice(&mut y_coo),
        );

        let csr = Csr::from_coo(&coo);
        let y_csr = csr.spmv_alloc(&x);
        let mut y_csr_par = vec![0.0; m];
        csr.spmv(&Serial, &x, &mut y_csr_par);

        let csc = Csc::from_coo(&coo);
        let mut y_csc = vec![0.0; m];
        csc.spmv_into(&x, &mut y_csc);

        for i in 0..m {
            assert!((y_coo[i] - reference[i]).abs() < 1e-11);
            assert!((y_csr[i] - reference[i]).abs() < 1e-11);
            assert!((y_csr_par[i] - reference[i]).abs() < 1e-11);
            assert!((y_csc[i] - reference[i]).abs() < 1e-11);
        }
    }
}

/// CSR transpose-spmv equals spmv of the explicit transpose.
#[test]
fn transpose_spmv_consistent() {
    let mut g = TestRng::seed_from_u64(0x22);
    for _ in 0..64 {
        let m = g.gen_range(1usize..18);
        let n = g.gen_range(1usize..18);
        let seed = g.gen_range(0u64..300);
        let a = sparse_dense(m, n, 30, seed);
        let csr = Csr::from_dense(&a, 0.0);
        let x: Vec<f64> = (0..m).map(|i| (i as f64) * 0.5 - 1.0).collect();
        let mut y = vec![0.0; n];
        csr.spmv_transpose_into(&x, &mut y);
        for (j, &yj) in y.iter().enumerate() {
            let expected: f64 = (0..m).map(|i| a.get(i, j) * x[i]).sum();
            assert!((yj - expected).abs() < 1e-11);
        }
    }
}

/// nnz is consistent across formats and the pattern.
#[test]
fn nnz_consistency() {
    let mut g = TestRng::seed_from_u64(0x23);
    for _ in 0..64 {
        let m = g.gen_range(1usize..20);
        let n = g.gen_range(1usize..20);
        let density = g.gen_range(0usize..80);
        let seed = g.gen_range(0u64..300);
        let a = sparse_dense(m, n, density, seed);
        let coo = Coo::from_dense(&a, 0.0);
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        let pat = SparsityPattern::from_dense(&a, 0.0);
        assert_eq!(coo.nnz(), csr.nnz());
        assert_eq!(csr.nnz(), csc.nnz());
        assert_eq!(csc.nnz(), pat.nnz());
    }
}
