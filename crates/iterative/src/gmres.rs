//! Restarted GMRES with right preconditioning — the solver the paper's
//! Ginkgo configuration uses on CPUs (because of Ginkgo's OpenMP BiCGStab
//! issue #1563).

use crate::breakdown::BreakdownKind;
use crate::precond::Preconditioner;
use crate::solver::{norm2, residual_into, IterativeSolver, SolveResult};
use crate::stop::{ResidualVerdict, StopCriteria};
use pp_sparse::Csr;

/// GMRES(m): restarted generalised minimal residual, right-preconditioned
/// (`A M⁻¹ u = b`, `x = M⁻¹ u`), with Givens-rotation least squares.
#[derive(Debug, Clone, Copy)]
pub struct Gmres {
    /// Krylov subspace dimension before restart.
    pub restart: usize,
}

impl Default for Gmres {
    fn default() -> Self {
        Self { restart: 100 }
    }
}

impl Gmres {
    /// GMRES with a given restart length.
    ///
    /// # Panics
    /// Panics if `restart == 0`.
    pub fn new(restart: usize) -> Self {
        assert!(restart > 0, "GMRES restart must be positive");
        Self { restart }
    }
}

impl IterativeSolver for Gmres {
    fn name(&self) -> &'static str {
        "GMRES"
    }

    fn solve(
        &self,
        a: &Csr,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        stop: &StopCriteria,
    ) -> SolveResult {
        let n = b.len();
        assert_eq!(a.nrows(), n, "GMRES: dimension mismatch");
        assert_eq!(x.len(), n, "GMRES: dimension mismatch");
        let norm_b = norm2(b);
        let restart = self.restart.min(n.max(1));
        let mut iterations = 0;
        let mut converged = false;
        let mut breakdown = None;
        let mut stall = stop.stagnation_tracker();
        let mut r = vec![0.0; n];
        let mut w = vec![0.0; n];
        let mut z = vec![0.0; n];

        'outer: while iterations < stop.max_iters {
            if stop.budget_exhausted() {
                breakdown = Some(BreakdownKind::BudgetExhausted);
                break;
            }
            residual_into(a, x, b, &mut r);
            let beta = norm2(&r);
            match stop.assess(beta, norm_b) {
                ResidualVerdict::Converged => {
                    converged = true;
                    break;
                }
                ResidualVerdict::NonFinite => {
                    breakdown = Some(BreakdownKind::NonFiniteResidual);
                    break;
                }
                ResidualVerdict::Continue => {}
            }

            // Arnoldi basis (restart+1 vectors), Hessenberg in `h`,
            // Givens rotations in (cs, sn), residual norms in g.
            let mut v: Vec<Vec<f64>> = Vec::with_capacity(restart + 1);
            v.push(r.iter().map(|ri| ri / beta).collect());
            let mut h = vec![vec![0.0; restart]; restart + 1];
            let mut cs = vec![0.0; restart];
            let mut sn = vec![0.0; restart];
            let mut g = vec![0.0; restart + 1];
            g[0] = beta;
            let mut k_used = 0;

            for k in 0..restart {
                if iterations >= stop.max_iters {
                    break;
                }
                // Poll the budget inside the Arnoldi cycle too (a restart
                // cycle can be long): break the *inner* loop so the
                // partial cycle's update is still applied to x, then the
                // breakdown check below ends the solve.
                if stop.budget_exhausted() {
                    breakdown = Some(BreakdownKind::BudgetExhausted);
                    break;
                }
                iterations += 1;
                // w = A M⁻¹ v_k
                m.apply(&v[k], &mut z);
                a.spmv_into(&z, &mut w);
                // Modified Gram-Schmidt with one reorthogonalisation pass
                // ("twice is enough"): at the paper's 1e-15 tolerance a
                // single MGS pass loses enough orthogonality to stall the
                // residual estimate around 1e-14.
                for (i, vi) in v.iter().enumerate().take(k + 1) {
                    let hik: f64 = w.iter().zip(vi).map(|(wj, vj)| wj * vj).sum();
                    h[i][k] = hik;
                    for (wj, vj) in w.iter_mut().zip(vi) {
                        *wj -= hik * vj;
                    }
                }
                for (i, vi) in v.iter().enumerate().take(k + 1) {
                    let corr: f64 = w.iter().zip(vi).map(|(wj, vj)| wj * vj).sum();
                    h[i][k] += corr;
                    for (wj, vj) in w.iter_mut().zip(vi) {
                        *wj -= corr * vj;
                    }
                }
                let hkk = norm2(&w);
                if !hkk.is_finite() {
                    // The Arnoldi vector is poisoned; applying this
                    // column would contaminate x, so bail with the
                    // iterate from the last completed restart cycle.
                    breakdown = Some(BreakdownKind::NonFiniteResidual);
                    break 'outer;
                }
                h[k + 1][k] = hkk;
                // Apply accumulated Givens rotations to the new column.
                for i in 0..k {
                    let t = cs[i] * h[i][k] + sn[i] * h[i + 1][k];
                    h[i + 1][k] = -sn[i] * h[i][k] + cs[i] * h[i + 1][k];
                    h[i][k] = t;
                }
                // New rotation to annihilate h[k+1][k].
                let denom = (h[k][k] * h[k][k] + hkk * hkk).sqrt();
                if denom == 0.0 {
                    k_used = k;
                    break;
                }
                cs[k] = h[k][k] / denom;
                sn[k] = hkk / denom;
                h[k][k] = denom;
                h[k + 1][k] = 0.0;
                g[k + 1] = -sn[k] * g[k];
                g[k] *= cs[k];
                k_used = k + 1;

                if stop.is_converged(g[k + 1].abs(), norm_b) {
                    break;
                }
                if hkk == 0.0 {
                    break; // lucky breakdown: exact solution in subspace
                }
                if let Some(kind) = stall.observe(g[k + 1].abs()) {
                    // Keep the partial progress of this cycle, then stop.
                    breakdown = Some(kind);
                    break;
                }
                v.push(w.iter().map(|wj| wj / hkk).collect());
            }

            if k_used == 0 {
                // The Arnoldi process produced no usable direction. Keep
                // an earlier diagnosis (e.g. a budget that ran out before
                // the first Arnoldi step); otherwise the Krylov basis
                // collapsed at the first step.
                breakdown = breakdown.or(Some(BreakdownKind::RhoZero));
                break 'outer;
            }
            // Back-solve the k_used × k_used triangular system H y = g.
            let mut y = vec![0.0; k_used];
            for i in (0..k_used).rev() {
                let mut s = g[i];
                for j in i + 1..k_used {
                    s -= h[i][j] * y[j];
                }
                y[i] = s / h[i][i];
            }
            // u = V y; x += M⁻¹ u.
            let mut u = vec![0.0; n];
            for (j, yj) in y.iter().enumerate() {
                for (ui, vi) in u.iter_mut().zip(&v[j]) {
                    *ui += yj * vi;
                }
            }
            m.apply(&u, &mut z);
            for (xi, zi) in x.iter_mut().zip(&z) {
                *xi += zi;
            }
            // Inner criterion met: stop on the internal residual estimate,
            // as Ginkgo's stopping criterion does.
            if stop.is_converged(g[k_used].abs(), norm_b) {
                converged = true;
                break;
            }
            if breakdown.is_some() {
                break; // stagnation detected inside the cycle
            }
        }

        crate::solver::finish(a, x, b, stop, iterations, converged, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{BlockJacobi, Identity, Jacobi};
    use pp_portable::Matrix;
    use pp_portable::TestRng;

    fn general_system(n: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        let mut rng = TestRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, pp_portable::Layout::Right, |i, j| {
            if i == j {
                7.0
            } else if i.abs_diff(j) <= 2 {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let csr = Csr::from_dense(&a, 0.0);
        let mut rng2 = TestRng::seed_from_u64(seed + 1);
        let x_true: Vec<f64> = (0..n).map(|_| rng2.gen_range(-2.0..2.0)).collect();
        let b = csr.spmv_alloc(&x_true);
        (csr, x_true, b)
    }

    #[test]
    fn converges_without_restart() {
        let (a, x_true, b) = general_system(60, 1);
        let mut x = vec![0.0; 60];
        let res = Gmres::new(60).solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn converges_with_short_restart() {
        let (a, x_true, b) = general_system(80, 2);
        let mut x = vec![0.0; 80];
        let res = Gmres::new(10).solve(
            &a,
            &Jacobi::new(&a),
            &b,
            &mut x,
            &StopCriteria::with_tol(1e-11),
        );
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-7);
        }
    }

    #[test]
    fn paper_tolerance_reachable_with_block_jacobi() {
        let (a, _, b) = general_system(100, 3);
        let mut x = vec![0.0; 100];
        let bj = BlockJacobi::new(&a, 32);
        let res = Gmres::default().solve(&a, &bj, &b, &mut x, &StopCriteria::paper_default());
        assert!(res.converged, "{res:?}");
        assert!(res.relative_residual < 1e-15);
    }

    #[test]
    fn identity_system_converges_immediately() {
        let a = Csr::from_dense(
            &Matrix::from_fn(4, 4, pp_portable::Layout::Right, |i, j| {
                (i == j) as u8 as f64
            }),
            0.0,
        );
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let mut x = vec![0.0; 4];
        let res = Gmres::default().solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(res.converged);
        assert!(res.iterations <= 1);
    }

    #[test]
    fn warm_start_skips_work() {
        let (a, x_true, b) = general_system(30, 4);
        let mut x = x_true.clone();
        let res = Gmres::default().solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn max_iters_respected() {
        let (a, _, b) = general_system(50, 5);
        let mut x = vec![0.0; 50];
        let stop = StopCriteria::with_tol(1e-300).with_max_iters(7);
        let res = Gmres::new(3).solve(&a, &Identity, &b, &mut x, &stop);
        assert!(res.iterations <= 7);
        assert!(!res.converged);
    }

    #[test]
    #[should_panic(expected = "restart must be positive")]
    fn zero_restart_rejected() {
        let _ = Gmres::new(0);
    }

    // ---- one test per BreakdownKind ----

    #[test]
    fn breakdown_rho_zero_on_collapsed_basis() {
        // A = 0: the Arnoldi process yields w = A v₁ = 0 and the Krylov
        // basis collapses at the first step with no usable direction.
        let a = Csr::from_dense(&Matrix::zeros(3, 3, pp_portable::Layout::Right), 0.0);
        let b = [1.0, 2.0, 3.0];
        let mut x = [0.0; 3];
        let res = Gmres::default().solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::RhoZero));
        assert!(res.breakdown.unwrap().is_hard());
    }

    #[test]
    fn breakdown_non_finite_detected_immediately() {
        let (a, _, mut b) = general_system(10, 6);
        b[2] = f64::NAN;
        let mut x = vec![0.0; 10];
        let res = Gmres::default().solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::NonFiniteResidual));
        assert_eq!(res.iterations, 0, "must not spin to max_iters");
    }

    #[test]
    fn breakdown_stagnation_at_the_rounding_floor() {
        let (a, _, b) = general_system(24, 7);
        let mut x = vec![0.0; 24];
        let stop = StopCriteria::with_tol(1e-300).with_stagnation(4, 0.5);
        let res = Gmres::new(8).solve(&a, &Identity, &b, &mut x, &stop);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::Stagnation));
        assert!(res.iterations < stop.max_iters);
    }

    #[test]
    fn breakdown_max_iters_reported() {
        let (a, _, b) = general_system(50, 8);
        let mut x = vec![0.0; 50];
        let stop = StopCriteria::with_tol(1e-300).with_max_iters(3);
        let res = Gmres::new(3).solve(&a, &Identity, &b, &mut x, &stop);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::MaxIters));
        assert!(!res.breakdown.unwrap().is_hard());
    }
}
