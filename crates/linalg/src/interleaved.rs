//! Lane-interleaved SIMD solve kernels: forward/backward sweeps over
//! `[f64; LANE_WIDTH]` vectors of lanes.
//!
//! The per-lane recurrences of `pttrs`/`pbtrs`/`gbtrs`/`getrs` are
//! strictly sequential *along the matrix dimension* but embarrassingly
//! parallel *across lanes* — the paper's whole programming model
//! (Listing 1) is built on that. On an [`InterleavedMatrix`] chunk each
//! row of eight lanes is one contiguous 64-byte panel, so every
//! recurrence step below is a hand-unrolled `for l in 0..LANE_WIDTH`
//! loop over one `[f64; 8]` row — the shape LLVM reliably turns into a
//! single AVX-512 (or two AVX2) vector operations, checked in the phase
//! profile rather than assumed.
//!
//! Each lane of the wide kernels performs the **exact same arithmetic,
//! in the same order, as the scalar lane kernels** (divisions stay
//! divisions, no reassociation), so results are bit-identical per lane;
//! the only scalar short-cuts dropped are the `if x != 0.0 { ... }`
//! skip-branches, which elide exact no-op updates and cannot change
//! values. Remainder chunks (fewer live lanes than [`LANE_WIDTH`]) fall
//! back to the scalar lane kernels on strided views of the same chunk.

use crate::banded::BandedLu;
use crate::lu::LuFactors;
use crate::pb::CholeskyBanded;
use crate::pt::PtFactors;
use pp_portable::instrument::{PhaseId, Span};
use pp_portable::{ExecSpace, InterleavedMatrix, StridedMut, LANE_WIDTH};

/// Reinterpret a chunk panel as `nrows` rows of [`LANE_WIDTH`] lanes.
///
/// # Panics
/// Panics if the panel length is not `nrows * LANE_WIDTH`.
#[inline]
fn rows_mut(chunk: &mut [f64], nrows: usize) -> &mut [[f64; LANE_WIDTH]] {
    assert_eq!(
        chunk.len(),
        nrows * LANE_WIDTH,
        "interleaved: panel length must be nrows * LANE_WIDTH"
    );
    // SAFETY: `[f64; LANE_WIDTH]` has the same layout as LANE_WIDTH
    // consecutive f64 (no padding), and the length was checked above, so
    // the cast reinterprets exactly the same memory with the same
    // mutable provenance.
    unsafe { std::slice::from_raw_parts_mut(chunk.as_mut_ptr().cast(), nrows) }
}

/// Wide `row[i] += a * row[k]` on an interleaved panel — the chunk
/// analogue of [`pp_portable::BlockMut::row_axpy`], used for the sparse
/// COO corner corrections of the fused Algorithm 1.
#[inline]
pub fn row_axpy_chunk(chunk: &mut [f64], nrows: usize, i: usize, k: usize, a: f64) {
    debug_assert!(i < nrows && k < nrows && i != k);
    let r = rows_mut(chunk, nrows);
    let src = r[k];
    let dst = &mut r[i];
    for l in 0..LANE_WIDTH {
        dst[l] += a * src[l];
    }
}

/// Interleaved `pttrs` on one chunk: solve the factored SPD tridiagonal
/// system on rows `row0..row0 + factors.n()` for the first `lanes`
/// lanes. Full chunks (`lanes == LANE_WIDTH`) take the wide path; the
/// remainder chunk falls back to the scalar lane kernel per live lane.
pub fn pttrs_chunk(
    factors: &PtFactors,
    chunk: &mut [f64],
    nrows: usize,
    row0: usize,
    lanes: usize,
) {
    let n = factors.n();
    debug_assert!(row0 + n <= nrows);
    if n == 0 || lanes == 0 {
        return;
    }
    if lanes < LANE_WIDTH {
        for l in 0..lanes {
            let mut lane = StridedMut::new(&mut chunk[row0 * LANE_WIDTH + l..], n, LANE_WIDTH);
            factors.solve_lane(&mut lane);
        }
        return;
    }
    let _span = Span::enter(PhaseId::SolvePttrs);
    let d = factors.d();
    let e = factors.e();
    let r = rows_mut(chunk, nrows);
    // Solve L x = b (unit lower bidiagonal with multipliers e).
    for i in 1..n {
        let ei = e[i - 1];
        let prev = r[row0 + i - 1];
        let cur = &mut r[row0 + i];
        for l in 0..LANE_WIDTH {
            cur[l] -= ei * prev[l];
        }
    }
    // Solve D L**T x = b.
    let dn = d[n - 1];
    let last = &mut r[row0 + n - 1];
    for l in 0..LANE_WIDTH {
        last[l] /= dn;
    }
    for i in (0..n - 1).rev() {
        let di = d[i];
        let ei = e[i];
        let next = r[row0 + i + 1];
        let cur = &mut r[row0 + i];
        for l in 0..LANE_WIDTH {
            cur[l] = cur[l] / di - next[l] * ei;
        }
    }
}

/// Interleaved `pbtrs` on one chunk (SPD banded Cholesky solve), same
/// row-window and remainder-lane contract as [`pttrs_chunk`].
pub fn pbtrs_chunk(
    factors: &CholeskyBanded,
    chunk: &mut [f64],
    nrows: usize,
    row0: usize,
    lanes: usize,
) {
    let n = factors.n();
    debug_assert!(row0 + n <= nrows);
    if n == 0 || lanes == 0 {
        return;
    }
    if lanes < LANE_WIDTH {
        for l in 0..lanes {
            let mut lane = StridedMut::new(&mut chunk[row0 * LANE_WIDTH + l..], n, LANE_WIDTH);
            factors.solve_lane(&mut lane);
        }
        return;
    }
    let _span = Span::enter(PhaseId::SolvePbtrs);
    let kd = factors.kd();
    let r = rows_mut(chunk, nrows);
    // Forward: L y = b.
    for j in 0..n {
        let ljj = factors.l(j, j);
        {
            let row = &mut r[row0 + j];
            for l in 0..LANE_WIDTH {
                row[l] /= ljj;
            }
        }
        let yj = r[row0 + j];
        let hi = (j + kd).min(n - 1);
        for i in j + 1..=hi {
            let lij = factors.l(i, j);
            let row = &mut r[row0 + i];
            for l in 0..LANE_WIDTH {
                row[l] -= lij * yj[l];
            }
        }
    }
    // Backward: Lᵀ x = y.
    for j in (0..n).rev() {
        let hi = (j + kd).min(n - 1);
        for i in j + 1..=hi {
            let lij = factors.l(i, j);
            let xi = r[row0 + i];
            let row = &mut r[row0 + j];
            for l in 0..LANE_WIDTH {
                row[l] -= lij * xi[l];
            }
        }
        let ljj = factors.l(j, j);
        let row = &mut r[row0 + j];
        for l in 0..LANE_WIDTH {
            row[l] /= ljj;
        }
    }
}

/// Interleaved `gbtrs` on one chunk (general banded LU solve with
/// partial pivoting — the pivot sequence is a property of the factors,
/// so row swaps vectorise across lanes), same contract as
/// [`pttrs_chunk`].
pub fn gbtrs_chunk(factors: &BandedLu, chunk: &mut [f64], nrows: usize, row0: usize, lanes: usize) {
    let n = factors.n();
    debug_assert!(row0 + n <= nrows);
    if n == 0 || lanes == 0 {
        return;
    }
    if lanes < LANE_WIDTH {
        for l in 0..lanes {
            let mut lane = StridedMut::new(&mut chunk[row0 * LANE_WIDTH + l..], n, LANE_WIDTH);
            factors.solve_lane(&mut lane);
        }
        return;
    }
    let _span = Span::enter(PhaseId::SolveGbtrs);
    let kl = factors.kl_internal();
    let kv = factors.upper_bandwidth();
    let ipiv = factors.pivots();
    let r = rows_mut(chunk, nrows);
    // Forward: apply P and the unit-lower factor.
    for j in 0..n.saturating_sub(1) {
        let p = ipiv[j];
        if p != j {
            r.swap(row0 + j, row0 + p);
        }
        let km = kl.min(n - 1 - j);
        let bj = r[row0 + j];
        for i in 1..=km {
            let fij = factors.factor(j + i, j);
            let row = &mut r[row0 + j + i];
            for l in 0..LANE_WIDTH {
                row[l] -= fij * bj[l];
            }
        }
    }
    // Backward: U x = b (bandwidth kl + ku after pivoting fill-in).
    for j in (0..n).rev() {
        let fjj = factors.factor(j, j);
        {
            let row = &mut r[row0 + j];
            for l in 0..LANE_WIDTH {
                row[l] /= fjj;
            }
        }
        let xj = r[row0 + j];
        let lm = kv.min(j);
        for i in 1..=lm {
            let fij = factors.factor(j - i, j);
            let row = &mut r[row0 + j - i];
            for l in 0..LANE_WIDTH {
                row[l] -= fij * xj[l];
            }
        }
    }
}

/// Interleaved dense `getrs` on one chunk (for the tiny Schur border),
/// same contract as [`pttrs_chunk`].
pub fn getrs_chunk(
    factors: &LuFactors,
    chunk: &mut [f64],
    nrows: usize,
    row0: usize,
    lanes: usize,
) {
    let n = factors.n();
    debug_assert!(row0 + n <= nrows);
    if n == 0 || lanes == 0 {
        return;
    }
    if lanes < LANE_WIDTH {
        for l in 0..lanes {
            let mut lane = StridedMut::new(&mut chunk[row0 * LANE_WIDTH + l..], n, LANE_WIDTH);
            factors.solve_lane(&mut lane);
        }
        return;
    }
    let _span = Span::enter(PhaseId::SchurGetrs);
    let lu = factors.lu();
    let ipiv = factors.ipiv();
    let r = rows_mut(chunk, nrows);
    // b <- P b.
    for i in 0..n {
        let p = ipiv[i];
        if p != i {
            r.swap(row0 + i, row0 + p);
        }
    }
    // Forward with unit lower triangle.
    for i in 1..n {
        let mut s = r[row0 + i];
        for k in 0..i {
            let a = lu.get(i, k);
            let bk = r[row0 + k];
            for l in 0..LANE_WIDTH {
                s[l] -= a * bk[l];
            }
        }
        r[row0 + i] = s;
    }
    // Backward with upper triangle.
    for i in (0..n).rev() {
        let mut s = r[row0 + i];
        for k in i + 1..n {
            let a = lu.get(i, k);
            let bk = r[row0 + k];
            for l in 0..LANE_WIDTH {
                s[l] -= a * bk[l];
            }
        }
        let aii = lu.get(i, i);
        for l in 0..LANE_WIDTH {
            s[l] /= aii;
        }
        r[row0 + i] = s;
    }
}

/// Batched interleaved `pttrs`: solve every lane of `b` in place,
/// chunk-parallel through `exec`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn pttrs_interleaved<E: ExecSpace>(exec: &E, factors: &PtFactors, b: &mut InterleavedMatrix) {
    assert_eq!(
        b.nrows(),
        factors.n(),
        "pttrs_interleaved: rhs rows != order"
    );
    let n = factors.n();
    b.for_each_chunk_mut(exec, |_, lanes, panel| {
        pttrs_chunk(factors, panel, n, 0, lanes);
    });
}

/// Batched interleaved `pbtrs`, chunk-parallel through `exec`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn pbtrs_interleaved<E: ExecSpace>(
    exec: &E,
    factors: &CholeskyBanded,
    b: &mut InterleavedMatrix,
) {
    assert_eq!(
        b.nrows(),
        factors.n(),
        "pbtrs_interleaved: rhs rows != order"
    );
    let n = factors.n();
    b.for_each_chunk_mut(exec, |_, lanes, panel| {
        pbtrs_chunk(factors, panel, n, 0, lanes);
    });
}

/// Batched interleaved `gbtrs`, chunk-parallel through `exec`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn gbtrs_interleaved<E: ExecSpace>(exec: &E, factors: &BandedLu, b: &mut InterleavedMatrix) {
    assert_eq!(
        b.nrows(),
        factors.n(),
        "gbtrs_interleaved: rhs rows != order"
    );
    let n = factors.n();
    b.for_each_chunk_mut(exec, |_, lanes, panel| {
        gbtrs_chunk(factors, panel, n, 0, lanes);
    });
}

/// Batched interleaved dense `getrs`, chunk-parallel through `exec`.
///
/// # Panics
/// Panics if `b.nrows() != factors.n()`.
pub fn getrs_interleaved<E: ExecSpace>(exec: &E, factors: &LuFactors, b: &mut InterleavedMatrix) {
    assert_eq!(
        b.nrows(),
        factors.n(),
        "getrs_interleaved: rhs rows != order"
    );
    let n = factors.n();
    b.for_each_chunk_mut(exec, |_, lanes, panel| {
        getrs_chunk(factors, panel, n, 0, lanes);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::banded::{gbtrf, BandedMatrix};
    use crate::batched;
    use crate::lu::getrf;
    use crate::pb::{pbtrf, SymBandedMatrix};
    use crate::pt::pttrf;
    use pp_portable::{Layout, Matrix, Parallel, Serial, TestRng};

    fn random_rhs(n: usize, batch: usize, seed: u64) -> Matrix {
        let mut rng = TestRng::seed_from_u64(seed);
        Matrix::from_fn(n, batch, Layout::Left, |_, _| rng.gen_range(-3.0..3.0))
    }

    /// Wide solve must be bit-identical to the scalar per-lane solve (the
    /// arithmetic per lane is literally the same expressions).
    fn assert_bit_identical(scalar: &Matrix, wide: &InterleavedMatrix) {
        for i in 0..scalar.nrows() {
            for j in 0..scalar.ncols() {
                let s = scalar.get(i, j);
                let w = wide.get(i, j);
                assert!(
                    s.to_bits() == w.to_bits(),
                    "({i},{j}): scalar {s:e} != wide {w:e}"
                );
            }
        }
    }

    #[test]
    fn pttrs_interleaved_bit_identical_to_scalar() {
        for n in [1usize, 2, 17, 64] {
            let f = pttrf(&vec![4.0; n], &vec![-1.0; n.saturating_sub(1)]).unwrap();
            for batch in [1usize, 7, 8, 9, 16, 50] {
                let b0 = random_rhs(n, batch, 42 + n as u64);
                let mut scalar = b0.clone();
                batched::pttrs(&Serial, &f, &mut scalar);
                let mut wide = InterleavedMatrix::pack(&b0);
                pttrs_interleaved(&Parallel, &f, &mut wide);
                assert_bit_identical(&scalar, &wide);
            }
        }
    }

    #[test]
    fn pbtrs_interleaved_matches_scalar() {
        for (n, kd) in [(1usize, 0usize), (9, 2), (33, 3)] {
            let f = pbtrf(
                &SymBandedMatrix::from_fn(n, kd, |i, j| if i == j { 6.0 } else { -1.0 }).unwrap(),
            )
            .unwrap();
            for batch in [3usize, 8, 21] {
                let b0 = random_rhs(n, batch, 7 + n as u64);
                let mut scalar = b0.clone();
                batched::pbtrs(&Serial, &f, &mut scalar);
                let mut wide = InterleavedMatrix::pack(&b0);
                pbtrs_interleaved(&Parallel, &f, &mut wide);
                assert_bit_identical(&scalar, &wide);
            }
        }
    }

    #[test]
    fn gbtrs_interleaved_matches_scalar_with_pivoting() {
        // Small diagonal entries force genuine row interchanges.
        let n = 31;
        let a = BandedMatrix::from_fn(n, 2, 2, |i, j| {
            if i == j {
                if i % 5 == 0 {
                    1e-8
                } else {
                    4.0
                }
            } else {
                1.0 + (i + j) as f64 * 0.01
            }
        })
        .unwrap();
        let f = gbtrf(&a).unwrap();
        for batch in [5usize, 8, 19] {
            let b0 = random_rhs(n, batch, 13);
            let mut scalar = b0.clone();
            batched::gbtrs(&Serial, &f, &mut scalar);
            let mut wide = InterleavedMatrix::pack(&b0);
            gbtrs_interleaved(&Parallel, &f, &mut wide);
            assert_bit_identical(&scalar, &wide);
        }
    }

    #[test]
    fn getrs_interleaved_matches_scalar() {
        let n = 12;
        let mut rng = TestRng::seed_from_u64(5);
        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i == j {
                8.0
            } else {
                rng.gen_range(-1.0..1.0)
            }
        });
        let f = getrf(&a).unwrap();
        for batch in [1usize, 8, 11, 24] {
            let b0 = random_rhs(n, batch, 23);
            let mut scalar = b0.clone();
            batched::getrs(&Serial, &f, &mut scalar);
            let mut wide = InterleavedMatrix::pack(&b0);
            getrs_interleaved(&Parallel, &f, &mut wide);
            assert_bit_identical(&scalar, &wide);
        }
    }

    #[test]
    fn degenerate_sizes_solve_without_panicking() {
        // n == 1: no off-diagonal exists; the kernels must not touch e[0].
        let f1 = pttrf(&[4.0], &[]).unwrap();
        let b0 = random_rhs(1, 11, 3);
        let mut wide = InterleavedMatrix::pack(&b0);
        pttrs_interleaved(&Serial, &f1, &mut wide);
        for j in 0..11 {
            assert_eq!(wide.get(0, j), b0.get(0, j) / 4.0);
        }
        // n == 0: empty factors, empty rhs.
        let f0 = pttrf(&[], &[]).unwrap();
        let mut empty = InterleavedMatrix::pack(&Matrix::zeros(0, 5, Layout::Left));
        pttrs_interleaved(&Serial, &f0, &mut empty);
    }

    #[test]
    fn row_axpy_chunk_updates_one_row() {
        let mut chunk = vec![0.0; 3 * LANE_WIDTH];
        for l in 0..LANE_WIDTH {
            chunk[l] = (l + 1) as f64; // row 0
        }
        row_axpy_chunk(&mut chunk, 3, 2, 0, -2.0);
        for l in 0..LANE_WIDTH {
            assert_eq!(chunk[2 * LANE_WIDTH + l], -2.0 * (l + 1) as f64);
            assert_eq!(chunk[LANE_WIDTH + l], 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "rhs rows != order")]
    fn shape_mismatch_rejected() {
        let f = pttrf(&[4.0, 4.0], &[1.0]).unwrap();
        let mut b = InterleavedMatrix::zeros(3, 4);
        pttrs_interleaved(&Serial, &f, &mut b);
    }
}
