//! Failure-injection tests: malformed inputs must produce typed errors
//! (or well-defined propagation), never panics or silent corruption.

use batched_splines::prelude::*;
use pp_bsplines::ClampedSplineSpace;
use pp_linalg::{gbtrf, getrf, pbtrf, pttrf, BandedMatrix, SymBandedMatrix};
use pp_portable::Matrix as PMatrix;
use pp_splinesolver::SchurBlocks;

/// Singular inputs are rejected with typed errors by every factorisation.
#[test]
fn singular_matrices_rejected_everywhere() {
    // getrf: rank-deficient dense.
    let dense = PMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
    assert!(getrf(&dense).is_err());
    // gbtrf: zero column.
    let mut gb = BandedMatrix::new(3, 1, 1).unwrap();
    gb.set(0, 0, 1.0).unwrap();
    gb.set(2, 2, 1.0).unwrap();
    assert!(gbtrf(&gb).is_err());
    // pbtrf: indefinite.
    let mut pb = SymBandedMatrix::new(2, 1).unwrap();
    pb.set(0, 0, 1.0).unwrap();
    pb.set(1, 0, 5.0).unwrap();
    pb.set(1, 1, 1.0).unwrap();
    assert!(pbtrf(&pb).is_err());
    // pttrf: non-positive diagonal.
    assert!(pttrf(&[0.0, 1.0], &[0.5]).is_err());
}

/// Mesh construction rejects non-monotone and degenerate inputs.
#[test]
fn bad_meshes_rejected() {
    assert!(Breaks::from_points(vec![0.0, 0.5, 0.4, 1.0]).is_err());
    assert!(Breaks::from_points(vec![0.0, 0.0, 1.0]).is_err());
    assert!(Breaks::from_points(vec![1.0]).is_err());
    assert!(Breaks::uniform(0, 0.0, 1.0).is_err());
    assert!(Breaks::uniform(8, 1.0, 1.0).is_err());
    assert!(Breaks::uniform(8, f64::NAN, 1.0).is_err());
    assert!(Breaks::graded(8, 0.0, 1.0, 1.5).is_err());
    assert!(Breaks::graded(8, 0.0, 1.0, -0.1).is_err());
}

/// Space construction enforces degree and size bounds.
#[test]
fn bad_spaces_rejected() {
    let b = Breaks::uniform(8, 0.0, 1.0).unwrap();
    assert!(PeriodicSplineSpace::new(b.clone(), 0).is_err());
    assert!(PeriodicSplineSpace::new(b.clone(), 6).is_err());
    assert!(PeriodicSplineSpace::new(Breaks::uniform(6, 0.0, 1.0).unwrap(), 3).is_err());
    assert!(ClampedSplineSpace::new(Breaks::uniform(3, 0.0, 1.0).unwrap(), 3).is_err());
    assert!(ClampedSplineSpace::new(b, 6).is_err());
}

/// The Schur decomposition refuses matrices that are not banded-plus-
/// border.
#[test]
fn unstructured_matrix_rejected() {
    let dense = PMatrix::from_fn(16, 16, Layout::Right, |i, j| 1.0 / (1 + i + j) as f64);
    assert!(SchurBlocks::from_dense(&dense, 3, true).is_err());
}

/// NaN right-hand sides propagate NaN (no panic, no fake convergence in
/// the direct path).
#[test]
fn nan_rhs_propagates_in_direct_solver() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space, BuilderVersion::FusedSpmv).unwrap();
    let mut b = Matrix::zeros(16, 2, Layout::Left);
    b.set(3, 0, f64::NAN);
    b.set(0, 1, 1.0);
    builder.solve_in_place(&Serial, &mut b).unwrap();
    // Lane 0 is poisoned...
    assert!(b.col(0).to_vec().iter().any(|v| v.is_nan()));
    // ...but lane 1 is untouched by it (lanes are independent).
    assert!(b.col(1).to_vec().iter().all(|v| v.is_finite()));
}

/// NaN right-hand sides make the iterative backend report failure rather
/// than "converge".
#[test]
fn nan_rhs_fails_iterative_solver() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
    let solver = IterativeSplineSolver::new(space, IterativeConfig::gpu()).unwrap();
    let mut b = Matrix::zeros(16, 1, Layout::Left);
    b.set(5, 0, f64::NAN);
    assert!(solver.solve_in_place(&mut b, None).is_err());
}

/// Shape mismatches are rejected across the stack.
#[test]
fn shape_mismatches_rejected() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space.clone(), BuilderVersion::Fused).unwrap();
    let mut wrong = Matrix::zeros(17, 2, Layout::Left);
    assert!(builder.solve_in_place(&Serial, &mut wrong).is_err());
    assert!(builder.solve_in_place_tiled(&Serial, &mut wrong, 8).is_err());

    let ev = SplineEvaluator::new(space.clone());
    let coefs = Matrix::zeros(16, 2, Layout::Left);
    let pos = Matrix::zeros(4, 3, Layout::Left); // batch mismatch
    let mut out = Matrix::zeros(4, 3, Layout::Left);
    assert!(ev.eval_batched(&Serial, &coefs, &pos, &mut out).is_err());

    let backend = SplineBackend::direct(space, BuilderVersion::Fused).unwrap();
    let mut adv = Advection1D::new(backend, vec![0.1, 0.2], 0.1).unwrap();
    let mut bad = Matrix::zeros(2, 17, Layout::Right);
    assert!(adv.step(&Serial, &mut bad).is_err());
    let mut good = adv.init_distribution(|_, _| 1.0);
    assert!(adv
        .step_with_displacements(&Serial, &mut good, &[0.1])
        .is_err());
}

/// Error messages are informative (contain the offending quantity).
#[test]
fn error_messages_carry_context() {
    let e = pttrf(&[-2.0, 1.0], &[0.1]).unwrap_err();
    let msg = e.to_string();
    assert!(msg.contains("pttrf") && msg.contains("positive definite"), "{msg}");

    let e = Breaks::from_points(vec![0.0, 2.0, 1.0]).unwrap_err();
    assert!(e.to_string().contains("index 1"), "{e}");
}
