//! # pp-iterative — Krylov iterative solvers (the Ginkgo substitute)
//!
//! The paper compares its Kokkos-kernels direct spline builder against a
//! [Ginkgo](https://ginkgo-project.github.io)-based iterative one (§II-C.2,
//! §III-B). This crate reproduces the configuration the paper uses:
//!
//! * the four solvers Ginkgo offers and the paper names — [`Cg`], [`BiCg`],
//!   [`BiCgStab`] (used on GPUs) and [`Gmres`] (used on CPUs because of the
//!   Ginkgo OpenMP BiCGStab issue #1563);
//! * a **block-Jacobi preconditioner** with tunable `max_block_size`
//!   between 1 and 32 ([`BlockJacobi`]);
//! * the stopping rule `‖A x − b‖ / ‖b‖ < 10⁻¹⁵` ([`StopCriteria`]);
//! * CSR matrix storage (from `pp-sparse`);
//! * the **chunked multi-right-hand-side driver** of the paper's Listing 3
//!   ([`multirhs::ChunkedSolver`]): right-hand sides are processed in
//!   chunks (8192 on CPUs, 65535 on GPUs — the CUDA/HIP grid limit),
//!   copied to a buffer, solved, and copied back, optionally warm-started
//!   from the previous time step's solution.
//!
//! The solver iteration counts this crate produces are the quantity
//! reported in the paper's Table IV.
//!
//! ## Fault handling
//!
//! At the paper's scale (up to 10¹² lanes per advection step) individual
//! right-hand sides *will* go wrong, and one bad lane must never doom its
//! batch. The fault layer is:
//!
//! * [`BreakdownKind`] — the typed taxonomy of why a Krylov solve stopped
//!   short (ρ → 0, ω → 0, NaN/Inf, stagnation, iteration budget), carried
//!   on every [`SolveResult`];
//! * [`LaneOutcome`] — per-lane health reported by the chunked driver:
//!   healthy lanes keep their solutions, broken lanes carry their
//!   diagnosis;
//! * [`FaultInjector`] — deterministic fault injection (NaN/Inf lanes,
//!   near-singular perturbations, iteration starvation) for exercising
//!   the above in tests.

// Non-test code in this crate is free of `unwrap()`; keep it that way
// (failures must surface as typed errors or documented invariants).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]

pub mod bicg;
pub mod bicgstab;
pub mod breakdown;
pub mod cg;
pub mod fault;
pub mod gmres;
pub mod logger;
pub mod multirhs;
pub mod precond;
pub mod solver;
pub mod stop;

pub use bicg::BiCg;
pub use bicgstab::BiCgStab;
pub use breakdown::BreakdownKind;
pub use cg::Cg;
pub use fault::{BitFlip, ChaosBudgetKind, ChaosReport, FaultInjector, SdcMode, SlowSolver};
pub use gmres::Gmres;
pub use logger::{ConvergenceLogger, RecoveryEvent, RecoveryStage};
pub use multirhs::{ChunkedSolver, LaneOutcome, CPU_COLS_PER_CHUNK, GPU_COLS_PER_CHUNK};
pub use precond::{BlockJacobi, Identity, Jacobi, Preconditioner};
pub use solver::{IterativeSolver, SolveResult};
pub use stop::{ResidualVerdict, StopCriteria};
