//! Preconditioners: identity, point-Jacobi, and the block-Jacobi the paper
//! configures Ginkgo with (`max_block_size` tunable between 1 and 32).

use pp_linalg::{getrf, LuFactors};
use pp_sparse::Csr;

/// Application of an (approximate) inverse: `z ← M⁻¹ r`.
pub trait Preconditioner: Send + Sync {
    /// Apply `M⁻¹`.
    fn apply(&self, r: &[f64], z: &mut [f64]);

    /// Apply `M⁻ᵀ` (needed by BiCG). Defaults to [`Preconditioner::apply`],
    /// which is exact for symmetric preconditioners (identity, Jacobi).
    fn apply_transpose(&self, r: &[f64], z: &mut [f64]) {
        self.apply(r, z);
    }

    /// Display name.
    fn name(&self) -> &'static str;
}

/// No preconditioning: `z = r`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Identity;

impl Preconditioner for Identity {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        z.copy_from_slice(r);
    }
    fn name(&self) -> &'static str {
        "none"
    }
}

/// Point-Jacobi: `z = D⁻¹ r`.
#[derive(Debug, Clone)]
pub struct Jacobi {
    inv_diag: Vec<f64>,
}

impl Jacobi {
    /// Build from the diagonal of `a`. Zero diagonal entries are treated as
    /// ones (the entry passes through unpreconditioned).
    pub fn new(a: &Csr) -> Self {
        let n = a.nrows();
        let inv_diag = (0..n)
            .map(|i| {
                let d = a.get(i, i);
                if d == 0.0 {
                    1.0
                } else {
                    1.0 / d
                }
            })
            .collect();
        Self { inv_diag }
    }
}

impl Preconditioner for Jacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        for ((zi, ri), di) in z.iter_mut().zip(r).zip(&self.inv_diag) {
            *zi = ri * di;
        }
    }
    fn name(&self) -> &'static str {
        "jacobi"
    }
}

/// Block-Jacobi: the diagonal of `A` is carved into dense blocks of at most
/// `max_block_size` rows; each block is LU-factored once and solved on
/// every application. With `max_block_size = 1` this degenerates to
/// point-Jacobi, matching Ginkgo's tunable used in the paper.
pub struct BlockJacobi {
    /// `(start_row, factors)` per block, and the transposed factors for
    /// `apply_transpose`.
    blocks: Vec<(usize, LuFactors, LuFactors)>,
    n: usize,
}

impl BlockJacobi {
    /// Carve `a`'s diagonal into blocks of at most `max_block_size` and
    /// factor each. Singular blocks fall back to the identity (entries pass
    /// through), mirroring a robust library preconditioner.
    ///
    /// # Panics
    /// Panics if `max_block_size == 0`.
    pub fn new(a: &Csr, max_block_size: usize) -> Self {
        assert!(max_block_size > 0, "block size must be positive");
        let n = a.nrows();
        let mut blocks = Vec::new();
        let mut lo = 0;
        while lo < n {
            let hi = (lo + max_block_size).min(n);
            let block = a
                .dense_block(lo, hi)
                .expect("block bounds valid by construction");
            let blockt = pp_portable::transpose(&block);
            match (getrf(&block), getrf(&blockt)) {
                (Ok(f), Ok(ft)) => blocks.push((lo, f, ft)),
                _ => {
                    // Singular block: substitute the identity.
                    let k = hi - lo;
                    let eye =
                        pp_portable::Matrix::from_fn(k, k, pp_portable::Layout::Right, |i, j| {
                            (i == j) as u8 as f64
                        });
                    let f = getrf(&eye).expect("identity is nonsingular");
                    blocks.push((lo, f.clone(), f));
                }
            }
            lo = hi;
        }
        Self { blocks, n }
    }

    /// Number of blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl Preconditioner for BlockJacobi {
    fn apply(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        z.copy_from_slice(r);
        for (lo, f, _) in &self.blocks {
            f.solve_slice(&mut z[*lo..lo + f.n()]);
        }
    }

    fn apply_transpose(&self, r: &[f64], z: &mut [f64]) {
        debug_assert_eq!(r.len(), self.n);
        z.copy_from_slice(r);
        for (lo, _, ft) in &self.blocks {
            ft.solve_slice(&mut z[*lo..lo + ft.n()]);
        }
    }

    fn name(&self) -> &'static str {
        "block-jacobi"
    }
}

/// Check that a preconditioner application is a reasonable approximate
/// inverse: `‖A M⁻¹ r − r‖ / ‖r‖` (diagnostic, used in tests and ablation).
pub fn approximation_quality(a: &Csr, m: &dyn Preconditioner, r: &[f64]) -> f64 {
    let mut z = vec![0.0; r.len()];
    m.apply(r, &mut z);
    let az = a.spmv_alloc(&z);
    let num: f64 = az
        .iter()
        .zip(r)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let den: f64 = r.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::Matrix;
    use pp_portable::TestRng;

    fn spd_tridiag(n: usize) -> Csr {
        Csr::from_dense(
            &Matrix::from_fn(n, n, pp_portable::Layout::Right, |i, j| {
                if i == j {
                    4.0
                } else if i.abs_diff(j) == 1 {
                    -1.0
                } else {
                    0.0
                }
            }),
            0.0,
        )
    }

    #[test]
    fn identity_is_identity() {
        let r = [1.0, -2.0, 3.0];
        let mut z = [0.0; 3];
        Identity.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn jacobi_divides_by_diagonal() {
        let a = spd_tridiag(4);
        let j = Jacobi::new(&a);
        let r = [4.0, 8.0, -4.0, 2.0];
        let mut z = [0.0; 4];
        j.apply(&r, &mut z);
        assert_eq!(z, [1.0, 2.0, -1.0, 0.5]);
    }

    #[test]
    fn block_jacobi_block_size_one_equals_jacobi() {
        let a = spd_tridiag(7);
        let bj = BlockJacobi::new(&a, 1);
        assert_eq!(bj.num_blocks(), 7);
        let j = Jacobi::new(&a);
        let mut rng = TestRng::seed_from_u64(1);
        let r: Vec<f64> = (0..7).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut z1 = vec![0.0; 7];
        let mut z2 = vec![0.0; 7];
        bj.apply(&r, &mut z1);
        j.apply(&r, &mut z2);
        for (u, v) in z1.iter().zip(&z2) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn block_jacobi_full_block_is_exact_inverse() {
        let n = 6;
        let a = spd_tridiag(n);
        let bj = BlockJacobi::new(&a, n); // one block covering A
        assert_eq!(bj.num_blocks(), 1);
        let mut rng = TestRng::seed_from_u64(2);
        let r: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        // Applying M⁻¹ = A⁻¹ then A must give r back.
        assert!(approximation_quality(&a, &bj, &r) < 1e-12);
    }

    #[test]
    fn larger_blocks_approximate_better() {
        let a = spd_tridiag(32);
        let mut rng = TestRng::seed_from_u64(3);
        let r: Vec<f64> = (0..32).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let q1 = approximation_quality(&a, &BlockJacobi::new(&a, 1), &r);
        let q8 = approximation_quality(&a, &BlockJacobi::new(&a, 8), &r);
        let q32 = approximation_quality(&a, &BlockJacobi::new(&a, 32), &r);
        assert!(q8 < q1, "block 8 ({q8}) should beat point ({q1})");
        assert!(q32 < q8, "full block ({q32}) should beat block 8 ({q8})");
    }

    #[test]
    fn transpose_apply_uses_transposed_blocks() {
        // Non-symmetric block: apply and apply_transpose must differ and
        // each must invert the right operator.
        let dense = Matrix::from_rows(&[&[2.0, 1.0], &[0.0, 3.0]]);
        let a = Csr::from_dense(&dense, 0.0);
        let bj = BlockJacobi::new(&a, 2);
        let r = [1.0, 1.0];
        let mut z = [0.0; 2];
        bj.apply(&r, &mut z);
        // A z = r  =>  z = [1/3, 1/3]
        assert!((z[0] - 1.0 / 3.0).abs() < 1e-14);
        assert!((z[1] - 1.0 / 3.0).abs() < 1e-14);
        let mut zt = [0.0; 2];
        bj.apply_transpose(&r, &mut zt);
        // Aᵀ zt = r  =>  zt = [1/2, 1/6]
        assert!((zt[0] - 0.5).abs() < 1e-14);
        assert!((zt[1] - 1.0 / 6.0).abs() < 1e-14);
    }

    #[test]
    fn uneven_tail_block() {
        let a = spd_tridiag(10);
        let bj = BlockJacobi::new(&a, 4); // blocks 4+4+2
        assert_eq!(bj.num_blocks(), 3);
        let r = vec![1.0; 10];
        let mut z = vec![0.0; 10];
        bj.apply(&r, &mut z);
        assert!(z.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn singular_block_falls_back_to_identity() {
        // Zero matrix: every 1x1 diagonal block is singular.
        let a = Csr::from_dense(&Matrix::zeros(3, 3, pp_portable::Layout::Right), 0.0);
        let bj = BlockJacobi::new(&a, 1);
        let r = [5.0, -2.0, 1.0];
        let mut z = [0.0; 3];
        bj.apply(&r, &mut z);
        assert_eq!(z, r);
    }

    #[test]
    fn naive_reference_agrees_with_full_block() {
        let n = 5;
        let a = spd_tridiag(n);
        let bj = BlockJacobi::new(&a, n);
        let b = vec![1.0; n];
        let mut z = vec![0.0; n];
        bj.apply(&b, &mut z);
        let expected = pp_linalg::naive::solve_dense(&a.to_dense(), &b).unwrap();
        for (u, v) in z.iter().zip(&expected) {
            assert!((u - v).abs() < 1e-12);
        }
    }
}
