//! Streaming telemetry export: a background sampler over the epoch ring.
//!
//! [`TelemetryStream::start`] spawns one `pp-telemetry` thread that, once
//! per configured period, advances the window clock ([`window_tick`]),
//! takes a [`window_snapshot`], and
//!
//! * appends one schema-versioned JSONL record (optionally
//!   roofline-annotated via [`RooflineSpec`]) to `jsonl_path`,
//! * rewrites a Prometheus text exposition of the *cumulative* totals at
//!   `prometheus_path` (write-to-temp + rename, so scrapers never see a
//!   torn file), and
//! * evaluates the configured [`SloSpec`]s against the windowed p99s,
//!   firing the flight-recorder [`fault_dump`](crate::fault_dump)
//!   (edge-triggered, see [`crate::sentinel`]) on breach.
//!
//! The solver threads never see any of this: sampling reads the same
//! relaxed atomics `Snapshot::capture` reads, so exporter overhead is
//! one capture per period regardless of solve rate. With the
//! `instrument` feature off [`TelemetryStream`] is a ZST, `start` spawns
//! nothing, and no statics exist.

use crate::phase::PhaseId;
use crate::sentinel::SloSpec;
use crate::snapshot::{json_escape, json_f64, Snapshot};
use pp_perfmodel::device::Device;
use std::fmt::Write as _;
use std::path::PathBuf;
use std::time::Duration;

/// How to annotate streamed records with roofline numbers: the device to
/// normalise against, the batch geometry, and the phase whose windowed
/// calls count solves (its mean windowed duration is the per-solve
/// elapsed time fed to `RooflineAnnotation::measured`).
#[derive(Debug, Clone)]
pub struct RooflineSpec {
    pub device: Device,
    pub nx: usize,
    pub nv: usize,
    pub anchor: PhaseId,
}

/// Configuration for [`TelemetryStream::start`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Sampling period (one epoch tick + one record per period).
    pub period: Duration,
    /// Window width, in epochs, for the windowed view each record and
    /// every SLO check is computed over.
    pub window_epochs: usize,
    /// Append one JSONL record per period here (file is truncated at
    /// start). `None` disables the JSONL stream.
    pub jsonl_path: Option<PathBuf>,
    /// Rewrite a Prometheus text exposition here each period. `None`
    /// disables it.
    pub prometheus_path: Option<PathBuf>,
    /// SLOs the latency sentinel watches (empty = sentinel off).
    pub slos: Vec<SloSpec>,
    /// Roofline annotation for streamed records (`None` = `null`).
    pub roofline: Option<RooflineSpec>,
}

impl Default for StreamConfig {
    fn default() -> StreamConfig {
        StreamConfig {
            period: Duration::from_millis(250),
            window_epochs: 8,
            jsonl_path: None,
            prometheus_path: None,
            slos: Vec::new(),
            roofline: None,
        }
    }
}

/// What a finished stream did — returned by [`TelemetryStream::stop`]
/// so harnesses can assert on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamSummary {
    /// Sampling periods that ran (== JSONL records when enabled).
    pub ticks: u64,
    /// Fresh SLO breaches the sentinel dumped on.
    pub breaches: u64,
}

/// Prometheus text exposition (format 0.0.4) of a cumulative snapshot.
/// Metric families are fixed; registry names become label values, so no
/// name sanitisation is needed. Histogram buckets are emitted
/// cumulatively with the closing `+Inf` bucket, as the format requires.
pub fn prometheus_text(snap: &Snapshot) -> String {
    let mut out = String::new();
    out.push_str("# TYPE pp_phase_ns_total counter\n");
    for s in &snap.phases {
        let _ = writeln!(
            out,
            "pp_phase_ns_total{{phase=\"{}\"}} {}",
            s.phase.name(),
            s.total_ns
        );
    }
    out.push_str("# TYPE pp_phase_calls_total counter\n");
    for s in &snap.phases {
        let _ = writeln!(
            out,
            "pp_phase_calls_total{{phase=\"{}\"}} {}",
            s.phase.name(),
            s.calls
        );
    }
    out.push_str("# TYPE pp_counter_total counter\n");
    for (name, v) in &snap.counters {
        let _ = writeln!(
            out,
            "pp_counter_total{{name=\"{}\"}} {v}",
            json_escape(name)
        );
    }
    out.push_str("# TYPE pp_gauge gauge\n");
    for (name, v) in &snap.gauges {
        let _ = writeln!(
            out,
            "pp_gauge{{name=\"{}\"}} {}",
            json_escape(name),
            json_f64(*v)
        );
    }
    out.push_str("# TYPE pp_histogram histogram\n");
    for h in &snap.histograms {
        let name = json_escape(&h.name);
        let mut cum = 0u64;
        for &(upper, n) in &h.buckets {
            cum += n;
            let _ = writeln!(
                out,
                "pp_histogram_bucket{{name=\"{name}\",le=\"{upper}\"}} {cum}"
            );
        }
        let _ = writeln!(
            out,
            "pp_histogram_bucket{{name=\"{name}\",le=\"+Inf\"}} {cum}"
        );
        let _ = writeln!(out, "pp_histogram_sum{{name=\"{name}\"}} {}", h.sum);
        let _ = writeln!(out, "pp_histogram_count{{name=\"{name}\"}} {}", h.count);
    }
    out
}

/// Build the `extra` splice (roofline + breaches) for one JSONL record.
/// Shared with the unit tests; pure data in, string out.
#[cfg_attr(not(feature = "instrument"), allow(dead_code))]
pub(crate) fn record_extra(
    window: &crate::window::WindowStats,
    roofline: Option<&RooflineSpec>,
    breach_names: &[String],
) -> String {
    let mut extra = String::from(", \"roofline\": ");
    match roofline {
        Some(spec) => {
            let solves = window.phase_calls(spec.anchor);
            let total_ns = window.phase_total_ns(spec.anchor);
            if solves > 0 && total_ns > 0 {
                let per_solve = Duration::from_nanos(total_ns / solves);
                let ann = crate::snapshot::RooflineAnnotation::measured(
                    &spec.device,
                    spec.nx,
                    spec.nv,
                    per_solve.max(Duration::from_nanos(1)),
                );
                extra.push_str(&ann.to_json());
            } else {
                extra.push_str("null");
            }
        }
        None => extra.push_str("null"),
    }
    extra.push_str(", \"breaches\": [");
    for (k, name) in breach_names.iter().enumerate() {
        let _ = write!(
            extra,
            "{}\"{}\"",
            if k == 0 { "" } else { ", " },
            json_escape(name)
        );
    }
    extra.push(']');
    extra
}

#[cfg(feature = "instrument")]
mod active_stream {
    use super::*;
    use crate::sentinel::{check_slos, SentinelState};
    use crate::window::{window_now_ns, window_snapshot, window_tick};
    use std::fs;
    use std::io::Write as _;
    use std::sync::{Arc, Condvar, Mutex};
    use std::thread::JoinHandle;

    #[derive(Debug)]
    struct Shared {
        stop: Mutex<bool>,
        cv: Condvar,
    }

    /// Handle to the background sampler thread. Dropping it without
    /// [`stop`](TelemetryStream::stop) also stops the thread (the
    /// summary is discarded).
    #[derive(Debug)]
    pub struct TelemetryStream {
        shared: Arc<Shared>,
        handle: Option<JoinHandle<StreamSummary>>,
    }

    impl TelemetryStream {
        /// Start the sampler thread. Output files are created (parents
        /// included) up front; I/O errors afterwards are reported via
        /// `warn_once` and never panic the sampler.
        pub fn start(config: StreamConfig) -> TelemetryStream {
            let shared = Arc::new(Shared {
                stop: Mutex::new(false),
                cv: Condvar::new(),
            });
            let thread_shared = Arc::clone(&shared);
            let handle = std::thread::Builder::new()
                .name("pp-telemetry".into())
                .spawn(move || run_sampler(config, thread_shared))
                .expect("spawn pp-telemetry sampler thread");
            TelemetryStream {
                shared,
                handle: Some(handle),
            }
        }

        /// Stop the sampler after one final flush tick and return what
        /// it did.
        pub fn stop(mut self) -> StreamSummary {
            self.signal_stop();
            self.handle
                .take()
                .and_then(|h| h.join().ok())
                .unwrap_or_default()
        }

        fn signal_stop(&self) {
            *self.shared.stop.lock().unwrap() = true;
            self.shared.cv.notify_all();
        }
    }

    impl Drop for TelemetryStream {
        fn drop(&mut self) {
            if let Some(handle) = self.handle.take() {
                self.signal_stop();
                let _ = handle.join();
            }
        }
    }

    fn open_jsonl(path: &std::path::Path) -> Option<fs::File> {
        if let Some(parent) = path.parent() {
            let _ = fs::create_dir_all(parent);
        }
        match fs::File::create(path) {
            Ok(f) => Some(f),
            Err(e) => {
                crate::env::warn_once(
                    "stream.jsonl_open",
                    &format!("pp-instrument: cannot open {}: {e}", path.display()),
                );
                None
            }
        }
    }

    fn write_prometheus(path: &std::path::Path, text: &str) {
        let tmp = path.with_extension("prom.tmp");
        let ok = fs::write(&tmp, text).and_then(|()| fs::rename(&tmp, path));
        if let Err(e) = ok {
            crate::env::warn_once(
                "stream.prometheus_write",
                &format!("pp-instrument: cannot write {}: {e}", path.display()),
            );
        }
    }

    fn run_sampler(config: StreamConfig, shared: Arc<Shared>) -> StreamSummary {
        let mut jsonl = config.jsonl_path.as_deref().and_then(open_jsonl);
        let mut sentinel = SentinelState::new();
        let mut summary = StreamSummary::default();
        loop {
            let stopping = {
                let guard = shared.stop.lock().unwrap();
                let (guard, _timeout) = shared
                    .cv
                    .wait_timeout_while(guard, config.period, |stop| !*stop)
                    .unwrap();
                *guard
            };

            // One sample per period, plus one final flush sample on the
            // way out so short-lived streams still emit a record.
            window_tick();
            let window = window_snapshot(config.window_epochs);

            let breaches = check_slos(&window, &config.slos);
            let fresh = sentinel.observe(&breaches);
            for b in &fresh {
                summary.breaches += 1;
                crate::counter("sentinel.breaches").inc();
                crate::trace_instant(crate::trace::InstantKind::SloBreach);
                let detail = b.describe();
                crate::fault_dump("slo_breach", || detail.clone());
            }

            let breach_names: Vec<String> = breaches.iter().map(|b| b.histogram.clone()).collect();
            let extra = record_extra(&window, config.roofline.as_ref(), &breach_names);
            let line = window.to_jsonl(summary.ticks, window_now_ns(), &extra);
            if let Some(f) = jsonl.as_mut() {
                if writeln!(f, "{line}").and_then(|()| f.flush()).is_err() {
                    crate::env::warn_once(
                        "stream.jsonl_write",
                        "pp-instrument: JSONL stream write failed; stopping stream output",
                    );
                    jsonl = None;
                }
            }
            if let Some(path) = config.prometheus_path.as_deref() {
                write_prometheus(path, &prometheus_text(&Snapshot::capture()));
            }
            summary.ticks += 1;

            if stopping {
                return summary;
            }
        }
    }
}

#[cfg(feature = "instrument")]
pub use active_stream::TelemetryStream;

#[cfg(not(feature = "instrument"))]
mod inert_stream {
    use super::{StreamConfig, StreamSummary};

    /// Inert sampler handle: zero-sized, spawns nothing.
    #[derive(Debug, Clone, Copy, Default)]
    pub struct TelemetryStream;

    impl TelemetryStream {
        /// No-op; no thread is spawned and no files are touched.
        #[inline(always)]
        pub fn start(_config: StreamConfig) -> TelemetryStream {
            TelemetryStream
        }

        /// Always the empty summary.
        #[inline(always)]
        pub fn stop(self) -> StreamSummary {
            StreamSummary::default()
        }
    }
}

#[cfg(not(feature = "instrument"))]
pub use inert_stream::TelemetryStream;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{HistogramStat, PhaseStat};
    use crate::window::WindowStats;

    #[test]
    fn prometheus_exposition_shape() {
        let snap = Snapshot {
            phases: vec![PhaseStat {
                phase: PhaseId::Dispatch,
                calls: 4,
                total_ns: 400,
            }],
            counters: vec![("pool.dispatches".into(), 4)],
            gauges: vec![("pool.workers".into(), 4.0)],
            histograms: vec![HistogramStat {
                name: "pool.dispatch_ns".into(),
                count: 3,
                sum: 300,
                min: 50,
                max: 200,
                buckets: vec![(64, 1), (256, 2)],
            }],
        };
        let text = prometheus_text(&snap);
        assert!(text.contains("# TYPE pp_histogram histogram\n"));
        assert!(text.contains("pp_phase_ns_total{phase=\"dispatch\"} 400\n"));
        assert!(text.contains("pp_counter_total{name=\"pool.dispatches\"} 4\n"));
        assert!(text.contains("pp_gauge{name=\"pool.workers\"} 4.000\n"));
        // Buckets are cumulative and closed by +Inf.
        assert!(text.contains("pp_histogram_bucket{name=\"pool.dispatch_ns\",le=\"64\"} 1\n"));
        assert!(text.contains("pp_histogram_bucket{name=\"pool.dispatch_ns\",le=\"256\"} 3\n"));
        assert!(text.contains("pp_histogram_bucket{name=\"pool.dispatch_ns\",le=\"+Inf\"} 3\n"));
        assert!(text.contains("pp_histogram_count{name=\"pool.dispatch_ns\"} 3\n"));
    }

    #[test]
    fn record_extra_annotates_roofline_and_breaches() {
        let window = WindowStats {
            span_ns: 1_000_000,
            epochs: 1,
            phases: vec![PhaseStat {
                phase: PhaseId::SolvePttrs,
                calls: 10,
                total_ns: 10_000_000,
            }],
            ..WindowStats::default()
        };
        let spec = RooflineSpec {
            device: Device::icelake(),
            nx: 128,
            nv: 128,
            anchor: PhaseId::SolvePttrs,
        };
        let extra = record_extra(&window, Some(&spec), &["pool.dispatch_ns".into()]);
        assert!(extra.contains("\"roofline\": {\"device\""));
        assert!(extra.contains("\"glups\""));
        assert!(extra.ends_with("\"breaches\": [\"pool.dispatch_ns\"]"));

        // No anchor calls in the window -> null annotation.
        let empty = WindowStats::default();
        let extra = record_extra(&empty, Some(&spec), &[]);
        assert!(extra.starts_with(", \"roofline\": null"));
        assert!(extra.ends_with("\"breaches\": []"));
    }
}
