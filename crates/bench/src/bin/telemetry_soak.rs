//! Online-telemetry soak: the streaming exporters and the latency
//! sentinel exercised end to end against a live resident-solve
//! workload, with a deliberately injected slow lane to demonstrate the
//! SLO-breach → fault-dump path.
//!
//! Three stages:
//!
//! 1. **Healthy soak** — a resident interleaved pipeline solves in a
//!    loop while a [`TelemetryStream`] emits windowed JSONL snapshots
//!    and a Prometheus text exposition. Every snapshot carries the
//!    `soak.resident_solves` gauge, so the stream provably observes the
//!    live workload (scripts/verify.sh greps for it).
//! 2. **Injected slow lane** — a probe dispatch whose lane 0 sleeps
//!    pushes the windowed p99 of `soak.probe_ns` far past its SLO; the
//!    sentinel must fire exactly the edge-triggered breach and capture
//!    an `"slo_breach"` flight-recorder dump, which is written out as
//!    the committed sentinel demo.
//! 3. **Exporter overhead** — the same solve loop timed with the
//!    sampler off and on; the committed full-size figure is gated at
//!    <1% by scripts/check_bench.sh.
//!
//! The binary self-asserts (non-zero exit) on every contract above, so
//! CI catches a silent exporter or a sentinel that never fires. Built
//! without `--features instrument` it degrades to a plain solve loop
//! and reports `"instrumented": false`.
//!
//! Usage: `telemetry_soak [--smoke] [--out PATH] [--jsonl PATH]
//!         [--prom PATH] [--demo-out PATH]`

use pp_bench::SplineConfig;
use pp_perfmodel::Device;
use pp_portable::instrument::{
    self, PhaseId, RooflineSpec, SloSpec, StreamConfig, TelemetryStream, SCHEMA_VERSION,
};
use pp_portable::{parallel_for, Layout, Matrix, Parallel, ResidentBatch};
use pp_splinesolver::{BuilderVersion, SplineBuilder};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// SLO ceiling on the probe's windowed p99: ~2.1 ms (a log2 bucket
/// boundary, so the reported p99 upper bound compares exactly). The
/// healthy probe runs in microseconds; the injected lane sleeps
/// [`SLOW_LANE`], four buckets higher.
const PROBE_SLO_NS: u64 = 1 << 21;

/// Sleep injected into lane 0 of the probe dispatch during the breach
/// stage — far enough past the SLO that scheduling noise cannot mask
/// the breach.
const SLOW_LANE: Duration = Duration::from_millis(8);

/// One probe: a small pool dispatch whose wall clock lands in
/// `soak.probe_ns` — the histogram the sentinel watches. `slow` makes
/// lane 0 sleep, dragging the whole dispatch (and thus the recorded
/// latency) past the SLO.
fn probe(slow: bool) {
    let t0 = Instant::now();
    parallel_for(64, |i| {
        if slow && i == 0 {
            std::thread::sleep(SLOW_LANE);
        }
        std::hint::black_box(i);
    });
    instrument::histogram("soak.probe_ns").record(t0.elapsed().as_nanos() as u64);
}

/// Run resident solves until `deadline`, bumping the solves gauge, with
/// one healthy probe per iteration. Returns the solve count.
fn soak_until(builder: &SplineBuilder, rb: &mut ResidentBatch, deadline: Instant) -> u64 {
    let gauge = instrument::gauge("soak.resident_solves");
    let mut count = 0u64;
    while Instant::now() < deadline {
        builder
            .solve_resident(&Parallel, rb)
            .expect("resident solve");
        count += 1;
        gauge.set(count as f64);
        probe(false);
    }
    count
}

/// Wall clock of `iters` resident solves (the overhead-measurement
/// workload; no probes, no gauge writes — just the solver).
fn timed_solves(builder: &SplineBuilder, rb: &mut ResidentBatch, iters: usize) -> Duration {
    let t0 = Instant::now();
    for _ in 0..iters {
        builder
            .solve_resident(&Parallel, rb)
            .expect("resident solve");
    }
    t0.elapsed()
}

fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "null".into()
    }
}

fn main() {
    let mut smoke = false;
    let mut out = String::from("BENCH_telemetry.json");
    let mut jsonl = String::from("target/telemetry_stream.jsonl");
    let mut prom = String::from("target/telemetry.prom");
    let mut demo_out = String::from("target/sentinel_demo.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = args.next().expect("--out needs a path"),
            "--jsonl" => jsonl = args.next().expect("--jsonl needs a path"),
            "--prom" => prom = args.next().expect("--prom needs a path"),
            "--demo-out" => demo_out = args.next().expect("--demo-out needs a path"),
            other => panic!(
                "unknown argument {other:?} \
                 (expected --smoke / --out / --jsonl / --prom / --demo-out)"
            ),
        }
    }

    // Smoke shrinks the problem and the sampling period, not the shape
    // of the campaign: every stage and every assertion still runs.
    let (nx, nv, period, soak) = if smoke {
        (
            64,
            256,
            Duration::from_millis(50),
            Duration::from_millis(400),
        )
    } else {
        (
            512,
            1024,
            Duration::from_millis(250),
            Duration::from_secs(2),
        )
    };
    let breach_rounds = 24;
    let overhead_iters = if smoke { 20 } else { 40 };

    println!("=== telemetry_soak: streaming exporters + latency sentinel ===");
    println!(
        "nx {nx}, nv {nv}, period {:?}, instrumented: {}{}",
        period,
        instrument::enabled(),
        if smoke { " [smoke]" } else { "" }
    );

    let space = SplineConfig {
        degree: 3,
        uniform: true,
    }
    .space(nx);
    let builder = SplineBuilder::new(space, BuilderVersion::Interleaved).expect("builder setup");
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| {
        ((i * 13 + j * 7) % 89) as f64 / 89.0 - 0.5
    });
    let mut rb = ResidentBatch::pack(&rhs);

    if !instrument::enabled() {
        println!("warning: built without --features instrument; running the solve loop only");
        let solves = soak_until(&builder, &mut rb, Instant::now() + soak);
        let mut j = String::from("{\n  \"bench\": \"telemetry_soak\",\n");
        let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
        let _ = writeln!(j, "  \"smoke\": {smoke},");
        j.push_str("  \"instrumented\": false,\n");
        let _ = writeln!(j, "  \"resident_solves\": {solves}");
        j.push_str("}\n");
        std::fs::write(&out, &j).expect("writing bench JSON");
        println!("wrote {out} (inert mode: no stream to assert on)");
        return;
    }

    instrument::reset();
    let mut failures: Vec<String> = Vec::new();

    // ---- Stage 1 + 2: streamed soak, then the injected slow lane. ----
    let stream = TelemetryStream::start(StreamConfig {
        period,
        window_epochs: 8,
        jsonl_path: Some(jsonl.clone().into()),
        prometheus_path: Some(prom.clone().into()),
        slos: vec![SloSpec::new("soak.probe_ns", PROBE_SLO_NS)],
        roofline: Some(RooflineSpec {
            device: Device::icelake(),
            nx,
            nv,
            // One pool dispatch per resident solve, so Dispatch's
            // windowed calls count solves.
            anchor: PhaseId::Dispatch,
        }),
    });

    let solves = soak_until(&builder, &mut rb, Instant::now() + soak);
    println!("healthy soak: {solves} resident solve(s)");

    println!(
        "injecting slow lane: {breach_rounds} probe(s) with lane 0 asleep {SLOW_LANE:?} \
         (SLO p99 <= {PROBE_SLO_NS} ns)"
    );
    for _ in 0..breach_rounds {
        probe(true);
    }
    // Let the sampler observe the breached window before stopping (the
    // stop path also runs one final tick, so this is belt and braces).
    std::thread::sleep(period + period / 2);
    let summary = stream.stop();
    println!(
        "stream: {} tick(s), {} sentinel breach(es)",
        summary.ticks, summary.breaches
    );

    if summary.ticks < 2 {
        failures.push(format!(
            "expected >= 2 sampler ticks, got {}",
            summary.ticks
        ));
    }
    if summary.breaches < 1 {
        failures.push("sentinel never fired on the injected slow lane".into());
    }

    // The breach must have captured a flight-recorder dump.
    let dumps = instrument::take_fault_dumps();
    let breach_dump = dumps.iter().find(|d| d.reason == "slo_breach");
    match breach_dump {
        None => failures.push("no slo_breach fault dump was captured".into()),
        Some(dump) => {
            if !dump.detail.contains("soak.probe_ns") {
                failures.push(format!(
                    "breach dump names the wrong histogram: {}",
                    dump.detail
                ));
            }
            // The committed sentinel demo: the injected-fault context
            // plus the full dump (timeline + metrics at capture).
            let mut demo = String::from("{\n  \"demo\": \"sentinel_slo_breach\",\n");
            let _ = writeln!(demo, "  \"schema_version\": {SCHEMA_VERSION},");
            demo.push_str(
                "  \"injected\": \"probe dispatch with lane 0 asleep, dragging the windowed \
                 p99 of soak.probe_ns past its SLO\",\n",
            );
            let _ = writeln!(
                demo,
                "  \"slo\": {{\"histogram\": \"soak.probe_ns\", \"p99_max_ns\": {PROBE_SLO_NS}}},"
            );
            let _ = writeln!(demo, "  \"slow_lane_sleep_ms\": {},", SLOW_LANE.as_millis());
            let _ = writeln!(demo, "  \"sentinel_breaches\": {},", summary.breaches);
            let _ = writeln!(demo, "  \"fault_dump\": {}", dump.to_json());
            demo.push_str("}\n");
            if let Some(dir) = std::path::Path::new(&demo_out).parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            std::fs::write(&demo_out, &demo).expect("writing sentinel demo");
            println!("wrote {demo_out}");
        }
    }

    // The JSONL stream: every line schema-stamped, the last ones
    // carrying the live workload gauge.
    let mut snapshots = 0usize;
    match std::fs::read_to_string(&jsonl) {
        Err(e) => failures.push(format!("JSONL stream {jsonl} unreadable: {e}")),
        Ok(text) => {
            let lines: Vec<&str> = text.lines().collect();
            snapshots = lines.len();
            if lines.is_empty() {
                failures.push(format!("JSONL stream {jsonl} is empty"));
            }
            let stamp = format!("\"schema_version\": {SCHEMA_VERSION}");
            for (i, line) in lines.iter().enumerate() {
                if !line.contains(&stamp) {
                    failures.push(format!("JSONL line {i} missing {stamp}"));
                    break;
                }
            }
            if !lines
                .last()
                .is_some_and(|l| l.contains("soak.resident_solves"))
            {
                failures.push("final JSONL snapshot lacks the soak.resident_solves gauge".into());
            }
        }
    }
    match std::fs::read_to_string(&prom) {
        Err(e) => failures.push(format!("Prometheus exposition {prom} unreadable: {e}")),
        Ok(text) => {
            if !text.contains("pp_gauge{name=\"soak.resident_solves\"}") {
                failures.push("Prometheus exposition lacks the soak gauge".into());
            }
        }
    }

    // ---- Stage 3: exporter overhead on the plain solve loop. ----
    // Min-of-3 on each side rejects one-off scheduling hiccups; the
    // streamed side runs a fast sampler (both exporters live) to make
    // the measurement an upper bound on production overhead.
    let mut base = Duration::MAX;
    for _ in 0..3 {
        base = base.min(timed_solves(&builder, &mut rb, overhead_iters));
    }
    let overhead_stream = TelemetryStream::start(StreamConfig {
        period: Duration::from_millis(25),
        window_epochs: 8,
        jsonl_path: Some("target/telemetry_overhead.jsonl".into()),
        prometheus_path: Some("target/telemetry_overhead.prom".into()),
        slos: Vec::new(),
        roofline: None,
    });
    let mut streamed = Duration::MAX;
    for _ in 0..3 {
        streamed = streamed.min(timed_solves(&builder, &mut rb, overhead_iters));
    }
    let _ = overhead_stream.stop();
    let overhead_pct = (streamed.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
    println!(
        "exporter overhead: base {:.3} ms, streamed {:.3} ms -> {overhead_pct:.3}%",
        base.as_secs_f64() * 1e3,
        streamed.as_secs_f64() * 1e3,
    );

    // ---- Summary JSON. ----
    let mut j = String::from("{\n  \"bench\": \"telemetry_soak\",\n");
    let _ = writeln!(j, "  \"schema_version\": {SCHEMA_VERSION},");
    let _ = writeln!(j, "  \"smoke\": {smoke},");
    j.push_str("  \"instrumented\": true,\n");
    let _ = writeln!(j, "  \"nx\": {nx},");
    let _ = writeln!(j, "  \"nv\": {nv},");
    let _ = writeln!(j, "  \"period_ms\": {},", period.as_millis());
    let _ = writeln!(j, "  \"resident_solves\": {solves},");
    let _ = writeln!(j, "  \"ticks\": {},", summary.ticks);
    let _ = writeln!(j, "  \"snapshots\": {snapshots},");
    let _ = writeln!(j, "  \"sentinel_breaches\": {},", summary.breaches);
    let _ = writeln!(j, "  \"probe_slo_p99_max_ns\": {PROBE_SLO_NS},");
    let _ = writeln!(
        j,
        "  \"exporter_overhead_pct\": {},",
        json_f64(overhead_pct)
    );
    let _ = writeln!(j, "  \"jsonl\": \"{jsonl}\",");
    let _ = writeln!(j, "  \"prometheus\": \"{prom}\",");
    let _ = writeln!(j, "  \"sentinel_demo\": \"{demo_out}\"");
    j.push_str("}\n");
    std::fs::write(&out, &j).expect("writing bench JSON");
    println!("wrote {out}");

    if !failures.is_empty() {
        eprintln!("telemetry_soak: {} contract violation(s):", failures.len());
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
    println!("telemetry_soak: all contracts held");
}
