//! Feature-off implementation: the same API surface as [`crate::active`]
//! with every type zero-sized and every method an inlined no-op. No
//! global state exists in this configuration — there is nothing to
//! allocate, lock, or leak.

use crate::phase::PhaseId;
use crate::trace::{FaultDump, InstantKind, Trace};

/// RAII phase timer (inert: zero-sized, records nothing).
///
/// Deliberately NOT `Copy`: the active `Span` has a `Drop` impl, so
/// call sites that end a span early with `drop(span)` must compile
/// warning-free in both configurations.
#[must_use = "a span records on drop; binding it to _ drops immediately"]
pub struct Span;

impl Span {
    /// No-op.
    #[inline(always)]
    pub fn enter(_phase: PhaseId) -> Span {
        Span
    }

    /// No-op.
    #[inline(always)]
    pub fn enter_lane(_phase: PhaseId, _lane: u32) -> Span {
        Span
    }
}

/// Manual timer (inert: zero-sized, reads no clock).
#[must_use]
#[derive(Clone, Copy)]
pub struct Timer;

impl Timer {
    /// No-op.
    #[inline(always)]
    pub fn start() -> Timer {
        Timer
    }

    /// Always zero.
    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        0
    }
}

/// Monotonic named counter (inert).
#[derive(Clone, Copy)]
pub struct Counter;

impl Counter {
    /// No-op.
    #[inline(always)]
    pub fn add(&self, _n: u64) {}

    /// No-op.
    #[inline(always)]
    pub fn inc(&self) {}

    /// Always zero.
    #[inline(always)]
    pub fn value(&self) -> u64 {
        0
    }
}

/// Named gauge (inert).
#[derive(Clone, Copy)]
pub struct Gauge;

impl Gauge {
    /// No-op.
    #[inline(always)]
    pub fn set(&self, _v: f64) {}

    /// Always zero.
    #[inline(always)]
    pub fn value(&self) -> f64 {
        0.0
    }
}

/// Log2-bucketed named histogram (inert).
#[derive(Clone, Copy)]
pub struct Histogram;

impl Histogram {
    /// No-op.
    #[inline(always)]
    pub fn record(&self, _v: u64) {}

    /// Always zero.
    #[inline(always)]
    pub fn count(&self) -> u64 {
        0
    }
}

/// No-op.
#[inline(always)]
pub fn record_phase_ns(_phase: PhaseId, _ns: u64) {}

/// Inert handle.
#[inline(always)]
pub fn counter(_name: &'static str) -> Counter {
    Counter
}

/// Inert handle.
#[inline(always)]
pub fn gauge(_name: &'static str) -> Gauge {
    Gauge
}

/// Inert handle.
#[inline(always)]
pub fn histogram(_name: &'static str) -> Histogram {
    Histogram
}

/// No-op.
#[inline(always)]
pub fn reset() {}

/// No-op.
#[inline(always)]
pub fn trace_instant(_kind: InstantKind) {}

/// No-op.
#[inline(always)]
pub fn trace_instant_lane(_kind: InstantKind, _lane: u32) {}

/// Always empty.
#[inline(always)]
pub fn trace_snapshot() -> Trace {
    Trace::default()
}

/// No-op.
#[inline(always)]
pub fn trace_reset() {}

/// No-op; `detail` is never evaluated.
#[inline(always)]
pub fn fault_dump(_reason: &'static str, _detail: impl FnOnce() -> String) {}

/// Always empty.
#[inline(always)]
pub fn take_fault_dumps() -> Vec<FaultDump> {
    Vec::new()
}
