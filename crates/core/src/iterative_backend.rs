//! The Ginkgo-style iterative spline backend (§III-B of the paper).
//!
//! Same job as [`SplineBuilder`] — turn a
//! `(n, batch)` block of interpolation values into spline coefficients —
//! but via Krylov iteration on the CSR-stored matrix, pipelined in chunks
//! along the batch direction, with block-Jacobi preconditioning and
//! optional warm starts from the previous time step.

use crate::builder::{BuilderVersion, SplineBuilder};
use crate::error::{Error, Result};
use pp_bsplines::{assemble_interpolation_matrix, PeriodicSplineSpace};
use pp_iterative::{
    solver::{norm2, residual_into},
    BiCg, BiCgStab, BlockJacobi, Cg, ChunkedSolver, ConvergenceLogger, Gmres, IterativeSolver,
    Preconditioner, RecoveryEvent, RecoveryStage, SolveResult, StopCriteria, CPU_COLS_PER_CHUNK,
    GPU_COLS_PER_CHUNK,
};
use pp_portable::instrument::{counter, fault_dump, trace_instant, Counter, InstantKind};
use pp_portable::{Layout, Matrix, Parallel};
use pp_sparse::Csr;
use std::sync::OnceLock;

/// Cached counters for one recovery rung.
struct StageMetrics {
    attempts: Counter,
    lanes_attempted: Counter,
    lanes_recovered: Counter,
}

/// Cached counters for the whole recovery ladder.
struct RecoveryMetrics {
    reprecondition: StageMetrics,
    solver_switch: StageMetrics,
    direct_fallback: StageMetrics,
}

impl RecoveryMetrics {
    fn of(&self, stage: RecoveryStage) -> &StageMetrics {
        match stage {
            RecoveryStage::Reprecondition => &self.reprecondition,
            RecoveryStage::SolverSwitch => &self.solver_switch,
            RecoveryStage::DirectFallback => &self.direct_fallback,
        }
    }
}

fn recovery_metrics() -> &'static RecoveryMetrics {
    static METRICS: OnceLock<RecoveryMetrics> = OnceLock::new();
    METRICS.get_or_init(|| RecoveryMetrics {
        reprecondition: StageMetrics {
            attempts: counter("recovery.reprecondition.attempts"),
            lanes_attempted: counter("recovery.reprecondition.lanes_attempted"),
            lanes_recovered: counter("recovery.reprecondition.lanes_recovered"),
        },
        solver_switch: StageMetrics {
            attempts: counter("recovery.solver_switch.attempts"),
            lanes_attempted: counter("recovery.solver_switch.lanes_attempted"),
            lanes_recovered: counter("recovery.solver_switch.lanes_recovered"),
        },
        direct_fallback: StageMetrics {
            attempts: counter("recovery.direct_fallback.attempts"),
            lanes_attempted: counter("recovery.direct_fallback.lanes_attempted"),
            lanes_recovered: counter("recovery.direct_fallback.lanes_recovered"),
        },
    })
}

/// Which Krylov method to run. The paper's Ginkgo configuration uses
/// GMRES on CPUs and BiCGStab on GPUs; CG and BiCG are the other two
/// solvers Ginkgo offers and the paper lists (§II-B.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KrylovKind {
    /// GMRES — what the paper runs on CPUs.
    Gmres,
    /// BiCGStab — what the paper runs on GPUs.
    BiCgStab,
    /// CG — valid for the (symmetric positive definite) uniform spline
    /// matrices.
    Cg,
    /// BiCG — general systems, needs the transposed operator.
    BiCg,
}

/// Configuration of the iterative backend.
///
/// Cloning is cheap; a [`Budget`](pp_portable::Budget) attached to `stop`
/// is shared (`Arc`) between clones.
#[derive(Debug, Clone)]
pub struct IterativeConfig {
    /// Solver choice.
    pub kind: KrylovKind,
    /// Block-Jacobi `max_block_size` (the paper tunes 1–32).
    pub max_block_size: usize,
    /// Chunk length along the batch direction.
    pub cols_per_chunk: usize,
    /// Stopping criteria (the paper: relative residual < 1e-15).
    pub stop: StopCriteria,
    /// Warm-start from caller-provided previous solutions.
    pub warm_start: bool,
}

impl IterativeConfig {
    /// The paper's CPU configuration: GMRES, chunk 8192.
    pub fn cpu() -> Self {
        Self {
            kind: KrylovKind::Gmres,
            max_block_size: 32,
            cols_per_chunk: CPU_COLS_PER_CHUNK,
            stop: StopCriteria::paper_default(),
            warm_start: true,
        }
    }

    /// The paper's GPU configuration: BiCGStab, chunk 65535.
    pub fn gpu() -> Self {
        Self {
            kind: KrylovKind::BiCgStab,
            max_block_size: 32,
            cols_per_chunk: GPU_COLS_PER_CHUNK,
            ..Self::cpu()
        }
    }
}

/// The escalation ladder [`IterativeSplineSolver::solve_with_recovery`]
/// climbs when lanes of a batch break down or stall.
///
/// Rungs run in a fixed order — re-precondition, solver switch, direct
/// fallback — each retrying only the lanes that are still unhealthy, until
/// every lane is healthy or the attempt budget is spent. Each rung that
/// runs appends a [`RecoveryEvent`] to the returned logger's recovery
/// report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryPolicy {
    /// Rung 1: retry failed lanes with a stronger (doubled-block)
    /// block-Jacobi preconditioner.
    pub reprecondition: bool,
    /// Rung 2: retry failed lanes with the complementary Krylov method
    /// (BiCGStab ⇄ GMRES; CG/BiCG escalate to GMRES).
    pub solver_switch: bool,
    /// Rung 3: hand failed lanes to the direct Schur-complement
    /// [`SplineBuilder`]. Lanes whose direct solution is non-finite (e.g.
    /// NaN-poisoned right-hand sides) stay broken.
    pub direct_fallback: bool,
    /// Total number of rungs allowed to run (bounds the retry cost).
    pub max_attempts: usize,
}

impl Default for RecoveryPolicy {
    /// The full ladder: all three rungs enabled, one pass each.
    fn default() -> Self {
        Self {
            reprecondition: true,
            solver_switch: true,
            direct_fallback: true,
            max_attempts: 3,
        }
    }
}

impl RecoveryPolicy {
    /// No recovery at all: failed lanes keep their typed outcomes.
    pub fn disabled() -> Self {
        Self {
            reprecondition: false,
            solver_switch: false,
            direct_fallback: false,
            max_attempts: 0,
        }
    }

    /// Only the direct-solver rung (skip iterative retries).
    pub fn direct_only() -> Self {
        Self {
            reprecondition: false,
            solver_switch: false,
            direct_fallback: true,
            max_attempts: 1,
        }
    }
}

/// A ready-to-solve iterative spline solver.
pub struct IterativeSplineSolver {
    space: PeriodicSplineSpace,
    matrix: Csr,
    precond: BlockJacobi,
    config: IterativeConfig,
}

impl IterativeSplineSolver {
    /// Assemble the CSR matrix and build the block-Jacobi preconditioner.
    pub fn new(space: PeriodicSplineSpace, config: IterativeConfig) -> Result<Self> {
        if config.max_block_size == 0 || config.cols_per_chunk == 0 {
            return Err(Error::UnexpectedStructure {
                detail: "iterative config requires positive block and chunk sizes".into(),
            });
        }
        let dense = assemble_interpolation_matrix(&space);
        let matrix = Csr::from_dense(&dense, 0.0);
        let precond = BlockJacobi::new(&matrix, config.max_block_size);
        Ok(Self {
            space,
            matrix,
            precond,
            config,
        })
    }

    /// The spline space.
    pub fn space(&self) -> &PeriodicSplineSpace {
        &self.space
    }

    /// The CSR interpolation matrix.
    pub fn matrix(&self) -> &Csr {
        &self.matrix
    }

    /// Active configuration.
    pub fn config(&self) -> &IterativeConfig {
        &self.config
    }

    /// Solve `A X = B` in place (values in, coefficients out), optionally
    /// warm-started from `previous` (last time step's coefficients).
    ///
    /// Returns the convergence log (Table IV's iteration counts come from
    /// [`ConvergenceLogger::max_iterations`]); errs if any lane failed.
    pub fn solve_in_place(
        &self,
        b: &mut Matrix,
        previous: Option<&Matrix>,
    ) -> Result<ConvergenceLogger> {
        let logger = self.run_chunked(b, previous)?;
        if !logger.all_converged() {
            return Err(Error::NotConverged {
                lanes: b.ncols(),
                worst_residual: logger.worst_residual(),
            });
        }
        Ok(logger)
    }

    /// Solve `A X = B` in place like [`solve_in_place`], then climb the
    /// [`RecoveryPolicy`] ladder over any lanes that broke down or
    /// stalled.
    ///
    /// Unlike `solve_in_place`, residual unhealthy lanes are **not** an
    /// error: the returned [`ConvergenceLogger`] carries one typed outcome
    /// per lane ([`ConvergenceLogger::outcomes`]) plus the recovery report
    /// ([`ConvergenceLogger::recovery_events`]), and healthy lanes always
    /// keep their solutions. `Err` is reserved for structural problems
    /// (shape mismatch, unusable direct fallback).
    ///
    /// [`solve_in_place`]: IterativeSplineSolver::solve_in_place
    pub fn solve_with_recovery(
        &self,
        b: &mut Matrix,
        previous: Option<&Matrix>,
        policy: &RecoveryPolicy,
    ) -> Result<ConvergenceLogger> {
        // Keep the right-hand sides: the chunked solve overwrites `b` with
        // (possibly garbage) iterates, and retries need the originals.
        let rhs_orig = b.clone();
        let mut logger = self.run_chunked(b, previous)?;

        let mut attempts = 0usize;
        let ladder = [
            (policy.reprecondition, RecoveryStage::Reprecondition),
            (policy.solver_switch, RecoveryStage::SolverSwitch),
            (policy.direct_fallback, RecoveryStage::DirectFallback),
        ];
        for (enabled, stage) in ladder {
            let failed = logger.failed_lanes();
            if !enabled || failed.is_empty() || attempts >= policy.max_attempts {
                continue;
            }
            // A rung is pure extra work; once the wall-clock budget (if
            // any) is gone, stop escalating and leave the remaining lanes
            // with their typed outcomes. The skip is observable via the
            // counter so degraded runs cannot masquerade as exhaustive.
            if self.config.stop.budget_exhausted() {
                counter("recovery.rungs_skipped_budget").inc();
                break;
            }
            attempts += 1;
            trace_instant(match stage {
                RecoveryStage::Reprecondition => InstantKind::RecoveryReprecondition,
                RecoveryStage::SolverSwitch => InstantKind::RecoverySolverSwitch,
                RecoveryStage::DirectFallback => InstantKind::RecoveryDirectFallback,
            });
            let recovered = match stage {
                RecoveryStage::Reprecondition => {
                    // Stronger smoothing: double the block size (capped at
                    // the matrix order; the paper tunes 1-32, recovery may
                    // exceed that deliberately).
                    let block = (self.config.max_block_size * 2).clamp(2, self.matrix.nrows());
                    let strong = BlockJacobi::new(&self.matrix, block);
                    self.retry_lanes(
                        self.krylov(self.config.kind).as_ref(),
                        &strong,
                        b,
                        &rhs_orig,
                        &failed,
                        &mut logger,
                    )
                }
                RecoveryStage::SolverSwitch => {
                    let other = match self.config.kind {
                        KrylovKind::BiCgStab => KrylovKind::Gmres,
                        KrylovKind::Gmres => KrylovKind::BiCgStab,
                        // CG/BiCG escalate to the most robust general
                        // method available.
                        KrylovKind::Cg | KrylovKind::BiCg => KrylovKind::Gmres,
                    };
                    self.retry_lanes(
                        self.krylov(other).as_ref(),
                        &self.precond,
                        b,
                        &rhs_orig,
                        &failed,
                        &mut logger,
                    )
                }
                RecoveryStage::DirectFallback => {
                    self.direct_fallback(b, &rhs_orig, &failed, &mut logger)?
                }
            };
            recovery_metrics().of(stage).attempts.inc();
            recovery_metrics()
                .of(stage)
                .lanes_attempted
                .add(failed.len() as u64);
            recovery_metrics()
                .of(stage)
                .lanes_recovered
                .add(recovered.len() as u64);
            logger.record_recovery(RecoveryEvent {
                stage,
                lanes_attempted: failed,
                lanes_recovered: recovered,
            });
        }
        if attempts > 0 {
            // The ladder ran: snapshot the flight recorder with the
            // breakdown/recovery timeline still in the rings.
            fault_dump("recovery_escalation", || {
                use std::fmt::Write as _;
                let mut d = format!("{attempts} recovery rung(s) ran");
                for ev in logger.recovery_events() {
                    let _ = write!(
                        d,
                        "; {:?}: {}/{} lane(s) recovered",
                        ev.stage,
                        ev.lanes_recovered.len(),
                        ev.lanes_attempted.len()
                    );
                }
                d
            });
        }
        Ok(logger)
    }

    /// Solve one right-hand side (no chunking, no warm start). Returns
    /// `Ok(Some(x))` when the lane converged, `Ok(None)` when the Krylov
    /// iteration failed on it — the verified builder's last ladder rung
    /// treats `None` as "stay quarantined".
    pub fn solve_single(&self, rhs: &[f64]) -> Result<Option<Vec<f64>>> {
        if rhs.len() != self.space.num_basis() {
            return Err(Error::ShapeMismatch {
                expected_rows: self.space.num_basis(),
                actual_rows: rhs.len(),
            });
        }
        let solver = self.krylov(self.config.kind);
        let mut x = vec![0.0; rhs.len()];
        let res = solver.solve(&self.matrix, &self.precond, rhs, &mut x, &self.config.stop);
        Ok(if res.converged { Some(x) } else { None })
    }

    /// One chunked pass over every lane with the configured solver.
    fn run_chunked(&self, b: &mut Matrix, previous: Option<&Matrix>) -> Result<ConvergenceLogger> {
        if b.nrows() != self.space.num_basis() {
            return Err(Error::ShapeMismatch {
                expected_rows: self.space.num_basis(),
                actual_rows: b.nrows(),
            });
        }
        let solver = self.krylov(self.config.kind);
        let mut logger = ConvergenceLogger::new();
        ChunkedSolver::new(
            solver.as_ref(),
            &self.precond,
            self.config.stop.clone(),
            self.config.cols_per_chunk,
        )
        .warm_start(self.config.warm_start)
        .solve_in_place(&self.matrix, b, previous, &mut logger);
        Ok(logger)
    }

    fn krylov(&self, kind: KrylovKind) -> Box<dyn IterativeSolver> {
        match kind {
            KrylovKind::Gmres => Box::new(Gmres::default()),
            KrylovKind::BiCgStab => Box::new(BiCgStab),
            KrylovKind::Cg => Box::new(Cg),
            KrylovKind::BiCg => Box::new(BiCg),
        }
    }

    /// Re-run `lanes` from their original right-hand sides (cold start:
    /// the failed iterate is not a trustworthy guess). Lanes that converge
    /// write their solutions back and have their logger records replaced.
    /// Returns the recovered lanes.
    fn retry_lanes(
        &self,
        solver: &dyn IterativeSolver,
        precond: &dyn Preconditioner,
        b: &mut Matrix,
        rhs_orig: &Matrix,
        lanes: &[usize],
        logger: &mut ConvergenceLogger,
    ) -> Vec<usize> {
        let n = self.matrix.nrows();
        let mut recovered = Vec::new();
        for &lane in lanes {
            let rhs = rhs_orig.col(lane).to_vec();
            let mut x = vec![0.0; n];
            let res = solver.solve(&self.matrix, precond, &rhs, &mut x, &self.config.stop);
            if res.converged {
                b.col_mut(lane).copy_from_slice(&x);
                logger.update_lane(lane, res);
                recovered.push(lane);
            }
        }
        recovered
    }

    /// Last rung: solve `lanes` with the direct Schur-complement builder.
    /// A lane is recovered only if its direct solution is finite and its
    /// *true* relative residual is small — NaN-poisoned inputs produce
    /// NaN solutions and stay broken.
    fn direct_fallback(
        &self,
        b: &mut Matrix,
        rhs_orig: &Matrix,
        lanes: &[usize],
        logger: &mut ConvergenceLogger,
    ) -> Result<Vec<usize>> {
        let n = self.matrix.nrows();
        let builder = SplineBuilder::new(self.space.clone(), BuilderVersion::FusedSpmv)?;
        let mut block = Matrix::zeros(n, lanes.len(), Layout::Left);
        for (k, &lane) in lanes.iter().enumerate() {
            block
                .col_mut(k)
                .copy_from_slice(&rhs_orig.col(lane).to_vec());
        }
        builder.solve_in_place(&Parallel, &mut block)?;

        let mut recovered = Vec::new();
        let mut r = vec![0.0; n];
        for (k, &lane) in lanes.iter().enumerate() {
            let x = block.col(k).to_vec();
            if !x.iter().all(|v| v.is_finite()) {
                continue;
            }
            let rhs = rhs_orig.col(lane).to_vec();
            residual_into(&self.matrix, &x, &rhs, &mut r);
            let norm_b = norm2(&rhs);
            let rr = if norm_b > 0.0 {
                norm2(&r) / norm_b
            } else {
                norm2(&r)
            };
            // The direct solver is exact up to roundoff; accept anything
            // within a generous multiple of the Krylov tolerance so a
            // slightly-above-tol direct residual still counts as rescue.
            if rr.is_finite() && rr <= self.config.stop.tol.max(1e-10) {
                b.col_mut(lane).copy_from_slice(&x);
                logger.update_lane(lane, SolveResult::converged(0, rr));
                recovered.push(lane);
            }
        }
        Ok(recovered)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{BuilderVersion, SplineBuilder};
    use pp_bsplines::Breaks;
    use pp_portable::TestRng;
    use pp_portable::{Layout, Parallel};

    fn space(n: usize, degree: usize, uniform: bool) -> PeriodicSplineSpace {
        let breaks = if uniform {
            Breaks::uniform(n, 0.0, 1.0).unwrap()
        } else {
            Breaks::graded(n, 0.0, 1.0, 0.6).unwrap()
        };
        PeriodicSplineSpace::new(breaks, degree).unwrap()
    }

    #[test]
    fn iterative_matches_direct_builder() {
        for degree in [3, 4, 5] {
            for uniform in [true, false] {
                let sp = space(32, degree, uniform);
                let mut rng = TestRng::seed_from_u64(degree as u64);
                let rhs = Matrix::from_fn(32, 6, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));

                let direct = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
                let mut x_direct = rhs.clone();
                direct.solve_in_place(&Parallel, &mut x_direct).unwrap();

                let iter = IterativeSplineSolver::new(sp, IterativeConfig::gpu()).unwrap();
                let mut x_iter = rhs.clone();
                let log = iter.solve_in_place(&mut x_iter, None).unwrap();
                assert!(log.all_converged());
                assert!(
                    x_direct.max_abs_diff(&x_iter) < 1e-9,
                    "deg {degree} uniform {uniform}: {}",
                    x_direct.max_abs_diff(&x_iter)
                );
            }
        }
    }

    #[test]
    fn iteration_counts_grow_with_degree() {
        // Table IV's headline trend: higher degree => more iterations.
        let mut counts = Vec::new();
        for degree in [3, 4, 5] {
            let sp = space(64, degree, true);
            let iter = IterativeSplineSolver::new(sp, IterativeConfig::gpu()).unwrap();
            let mut rng = TestRng::seed_from_u64(1);
            let mut b = Matrix::from_fn(64, 4, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
            let log = iter.solve_in_place(&mut b, None).unwrap();
            counts.push(log.max_iterations());
        }
        assert!(
            counts[0] <= counts[1] && counts[1] <= counts[2],
            "iterations should grow with degree: {counts:?}"
        );
    }

    #[test]
    fn gmres_and_bicgstab_agree() {
        let sp = space(40, 3, true);
        let mut rng = TestRng::seed_from_u64(9);
        let rhs = Matrix::from_fn(40, 5, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let mut cfg = IterativeConfig::cpu();
        cfg.cols_per_chunk = 3; // exercise chunking
        let g = IterativeSplineSolver::new(sp.clone(), cfg).unwrap();
        let mut xg = rhs.clone();
        g.solve_in_place(&mut xg, None).unwrap();
        let b = IterativeSplineSolver::new(sp, IterativeConfig::gpu()).unwrap();
        let mut xb = rhs.clone();
        b.solve_in_place(&mut xb, None).unwrap();
        assert!(xg.max_abs_diff(&xb) < 1e-10);
    }

    #[test]
    fn warm_start_reduces_work() {
        let sp = space(48, 4, true);
        let solver = IterativeSplineSolver::new(sp.clone(), IterativeConfig::gpu()).unwrap();
        let pts = sp.interpolation_points();
        let mut b0 = Matrix::from_fn(48, 4, Layout::Left, |i, _| {
            (std::f64::consts::TAU * pts[i]).sin()
        });
        let log_cold = solver.solve_in_place(&mut b0, None).unwrap();
        // Next "time step": nearly identical values, warm-started from b0.
        let mut b1 = Matrix::from_fn(48, 4, Layout::Left, |i, _| {
            (std::f64::consts::TAU * (pts[i] + 1e-4)).sin()
        });
        let log_warm = solver.solve_in_place(&mut b1, Some(&b0)).unwrap();
        assert!(
            log_warm.max_iterations() <= log_cold.max_iterations(),
            "warm {} cold {}",
            log_warm.max_iterations(),
            log_cold.max_iterations()
        );
    }

    #[test]
    fn cg_and_bicg_kinds_also_solve() {
        // CG needs SPD: uniform cubic qualifies (circulant [1/6,4/6,1/6]).
        let sp = space(32, 3, true);
        let mut rng = TestRng::seed_from_u64(4);
        let rhs = Matrix::from_fn(32, 3, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let direct = SplineBuilder::new(sp.clone(), BuilderVersion::FusedSpmv).unwrap();
        let mut reference = rhs.clone();
        direct.solve_in_place(&Parallel, &mut reference).unwrap();
        for kind in [KrylovKind::Cg, KrylovKind::BiCg] {
            let mut cfg = IterativeConfig::gpu();
            cfg.kind = kind;
            let solver = IterativeSplineSolver::new(sp.clone(), cfg).unwrap();
            let mut x = rhs.clone();
            let log = solver.solve_in_place(&mut x, None).unwrap();
            assert!(log.all_converged(), "{kind:?}");
            assert!(x.max_abs_diff(&reference) < 1e-9, "{kind:?}");
        }
    }

    #[test]
    fn invalid_config_rejected() {
        let sp = space(16, 3, true);
        let mut cfg = IterativeConfig::cpu();
        cfg.max_block_size = 0;
        assert!(IterativeSplineSolver::new(sp, cfg).is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let sp = space(16, 3, true);
        let solver = IterativeSplineSolver::new(sp, IterativeConfig::cpu()).unwrap();
        let mut b = Matrix::zeros(17, 2, Layout::Left);
        assert!(solver.solve_in_place(&mut b, None).is_err());
    }
}
