//! Table V — achieved bandwidth of the spline building kernel on each
//! platform and the Pennycook performance-portability metric P(a,p,H).
//!
//! Icelake column: measured on the host. A100/MI250X columns: modelled
//! (cache simulation + roofline). The paper's reference values:
//!
//!   uniform (Degree 3)      9.75 (4.38%)  268.6 (17.3%)  247.8 (15.5%)  P=0.086
//!   uniform (Degree 4)      3.83 (1.87%)  252.6 (16.2%)  154.6 (9.7%)   P=0.043
//!   uniform (Degree 5)      3.83 (1.87%)  251.3 (16.1%)  153.5 (9.6%)   P=0.043
//!   non-uniform (Degree 3)  5.37 (2.62%)  208.4 (13.4%)  123.5 (7.7%)   P=0.051
//!   non-uniform (Degree 4)  5.15 (2.52%)  169.9 (10.9%)  81.8 (5.1%)    P=0.044
//!   non-uniform (Degree 5)  4.96 (2.42%)  142.2 (9.15%)  59.2 (3.7%)    P=0.038

use pp_bench::gpu_model::{effective_bandwidth_gbs, predict};
use pp_bench::{parse_args, time_mean, SplineConfig};
use pp_perfmodel::{achieved_bandwidth_gbs, performance_portability, Device};
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SchurBlocks, SplineBuilder};

fn main() {
    let args = parse_args(1000, 20_000, 5);
    println!(
        "=== Table V: spline-build bandwidth & performance portability, (n, batch) = ({}, {}) ===",
        args.nx, args.nv
    );
    println!("(paper size: 1000 100000; bandwidth = Nx*Nv*8/t, one load/store per point)\n");
    let icelake = Device::icelake();
    let a100 = Device::a100();
    let mi250x = Device::mi250x();

    println!(
        "{:<24} {:>20} {:>20} {:>20} {:>10}",
        "", "Icelake (meas.)", "A100 (model)", "MI250X (model)", "P(a,p,H)"
    );

    for cfg in SplineConfig::ALL {
        let space = cfg.space(args.nx);
        let blocks = SchurBlocks::new(&space).expect("factorisation");
        let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).expect("setup");
        let rhs = Matrix::from_fn(args.nx, args.nv, Layout::Left, |i, j| {
            ((i * 3 + j) % 17) as f64 / 17.0
        });
        let mut work = rhs.clone();
        let host = time_mean(args.iters, || {
            work.deep_copy_from(&rhs).expect("same shape");
            builder.solve_in_place(&Parallel, &mut work).expect("solve");
        });
        let bw_host = achieved_bandwidth_gbs(args.nx, args.nv, host);
        let t_a100 = predict(&a100, &blocks, BuilderVersion::FusedSpmv, args.nv).time_s;
        let t_mi = predict(&mi250x, &blocks, BuilderVersion::FusedSpmv, args.nv).time_s;
        let bw_a100 = effective_bandwidth_gbs(args.nx, args.nv, t_a100);
        let bw_mi = effective_bandwidth_gbs(args.nx, args.nv, t_mi);

        let effs = [
            Some(bw_host / icelake.peak_bw_gbs),
            Some(bw_a100 / a100.peak_bw_gbs),
            Some(bw_mi / mi250x.peak_bw_gbs),
        ];
        let p = performance_portability(&effs);

        println!(
            "{:<24} {:>11.2} ({:>4.1}%) {:>11.1} ({:>4.1}%) {:>11.1} ({:>4.1}%) {:>10.3}",
            cfg.label(),
            bw_host,
            effs[0].unwrap() * 100.0,
            bw_a100,
            effs[1].unwrap() * 100.0,
            bw_mi,
            effs[2].unwrap() * 100.0,
            p
        );
    }
    println!("\nexpected shape: uniform deg 3 best; degradation with degree and");
    println!("non-uniformity; P dominated by the weakest (CPU) column.");
}
