//! Minimal std-only data parallelism.
//!
//! The workspace must build in hermetic environments with no external
//! crates, so the rayon-style "parallel for over indices" the execution
//! spaces need is implemented here directly: worker threads pull
//! fixed-size index chunks off a shared atomic counter until the range is
//! exhausted. That is exactly the schedule the paper's
//! `Kokkos::parallel_for(batch, ...)` relies on — independent lanes,
//! dynamic load balancing, no per-lane allocation.
//!
//! Dispatch runs on the persistent worker pool in [`crate::pool`]: like a
//! Kokkos dispatch onto an existing OpenMP team, launching a batch wakes
//! parked threads instead of spawning new ones, so per-dispatch latency
//! is microseconds rather than the hundreds of microseconds
//! `std::thread::scope` costs. The original scoped dispatchers are kept
//! as [`scoped_parallel_for`] / [`scoped_parallel_sum`] — they are the
//! baseline the `dispatch_overhead` bench bin measures the pool against.
//!
//! The worker budget comes from [`num_threads`]: the `PP_NUM_THREADS`
//! environment variable when set (clamped to `[1, 4096]`, warn-once on
//! malformed values), else the hardware's available parallelism, cached
//! once per process.
//!
//! Deadline-aware variants ([`parallel_for_budgeted`],
//! [`parallel_for_each_mut_budgeted`]) take a [`Budget`] and stop
//! claiming new chunks once it is exhausted — see [`crate::budget`] for
//! the cooperative-cancellation contract.

use crate::budget::{Budget, DispatchOutcome};
use crate::pool;
use crate::ptr::SharedMutPtr;
use pp_instrument as instrument;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Chunk-claim granularity: ~8 chunks per worker keeps claim overhead
/// negligible while still load-balancing ragged lane costs.
const CHUNKS_PER_WORKER: usize = 8;

/// Upper clamp for `PP_NUM_THREADS`: far above any real host, low
/// enough that a typo (`PP_NUM_THREADS=40000`) cannot ask the OS for
/// tens of thousands of parked workers.
const MAX_THREADS: usize = 4096;

static NUM_THREADS: OnceLock<usize> = OnceLock::new();

/// Resolve the worker budget from an optional `PP_NUM_THREADS` value and
/// the hardware fallback. Malformed values warn once to stderr and fall
/// back to the hardware count; out-of-range values warn and clamp to
/// `[1, 4096]`. Split out for unit testing (the cached [`num_threads`]
/// reads the real environment exactly once).
fn thread_budget(env: Option<&str>, hardware: usize) -> usize {
    match instrument::env::parse_usize_clamped("PP_NUM_THREADS", env, 1, MAX_THREADS) {
        Some(n) => n,
        None => hardware.clamp(1, MAX_THREADS),
    }
}

/// Number of worker threads to use for batch dispatch.
///
/// Honours the `PP_NUM_THREADS` environment variable (clamped to
/// `[1, 4096]`; malformed values warn once to stderr and are ignored),
/// falling back to the hardware's available parallelism. The value is
/// computed **once** and cached for the life of the process — both
/// because the persistent pool sizes itself from it, and because
/// re-querying `available_parallelism` on every dispatch measurably
/// taxed small batches.
pub fn num_threads() -> usize {
    *NUM_THREADS.get_or_init(|| {
        let hardware = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        thread_budget(std::env::var("PP_NUM_THREADS").ok().as_deref(), hardware)
    })
}

/// Call `f(i)` for every `i in 0..n`, distributing indices over the
/// persistent worker pool. Falls back to a plain loop when `n` is small,
/// only one worker is budgeted, or the call is nested inside another
/// parallel dispatch.
///
/// Chunks are claimed dynamically (atomic fetch-add), so uneven lane
/// costs — exactly what fault recovery produces, where a few lanes
/// iterate to their budget while the rest converge quickly — do not
/// serialise the batch. Lane outputs do not depend on which thread ran
/// them, so results are bit-identical to the serial loop.
pub fn parallel_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = num_threads().min(n);
    if threads <= 1 || pool::in_dispatch() {
        pool::note_inline_dispatch();
        for i in 0..n {
            f(i);
        }
        return;
    }
    // The static chunk is the load-balance bound; adaptation may shrink
    // it for expensive lanes (live per-lane cost estimate), never grow
    // it. Chunk boundaries change scheduling only — lane outputs are
    // identical either way.
    let static_chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let chunk = crate::adaptive::adaptive_for_chunk(static_chunk);
    pool::global().dispatch(n, chunk, &f);
}

/// Call `f(i, &mut items[i])` for every element, distributing elements
/// over the persistent worker pool. Each index is claimed exactly once,
/// so the mutable accesses are disjoint.
///
/// This is the shape the chunked multi-RHS solver needs: a vector of
/// per-lane work slots, each mutated by exactly one worker, with dynamic
/// claiming so a few pathological lanes (breakdown retries, iteration
/// budgets) don't serialise the rest of the batch.
pub fn parallel_for_each_mut<T, F>(items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || pool::in_dispatch() {
        pool::note_inline_dispatch();
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    struct Slots<T>(*mut T);
    // SAFETY: each index is claimed by exactly one worker (atomic
    // fetch-add), so no two threads ever form a `&mut` to the same slot.
    unsafe impl<T: Send> Sync for Slots<T> {}
    let slots = Slots(items.as_mut_ptr());
    let slots = &slots;
    let run = move |i: usize| {
        // SAFETY: `i < n` and each `i` is produced exactly once.
        f(i, unsafe { &mut *slots.0.add(i) });
    };
    // Static policy is the finest granularity (chunk 1); when the live
    // per-lane estimate says lanes are cheap, claims are batched up —
    // but never past the `parallel_for`-style balance ceiling, so
    // ragged lanes still cannot serialise the batch.
    let ceiling = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    pool::global().dispatch(n, crate::adaptive::adaptive_each_chunk(ceiling), &run);
}

/// [`parallel_for`] under a [`Budget`]: stops claiming new chunks once
/// the budget is exhausted and reports whether the range was drained.
///
/// The serial fallback (tiny batch, one worker, nested dispatch) polls
/// the budget at the same chunk granularity the pool would use, so the
/// deadline contract — overshoot bounded by one chunk of lane work — is
/// identical on both paths.
pub fn parallel_for_budgeted<F: Fn(usize) + Sync>(
    n: usize,
    budget: &Budget,
    f: F,
) -> DispatchOutcome {
    let threads = num_threads().min(n);
    // Deadline overshoot is bounded by one chunk of lane work, so the
    // adaptive chunk (always ≤ the static one) can only tighten the
    // deadline contract, never loosen it.
    let static_chunk = n.div_ceil(threads.max(1) * CHUNKS_PER_WORKER).max(1);
    let chunk = crate::adaptive::adaptive_for_chunk(static_chunk);
    if threads <= 1 || pool::in_dispatch() {
        pool::note_inline_dispatch();
        return serial_for_budgeted(n, chunk, budget, &f);
    }
    pool::global().dispatch_budgeted(n, chunk, Some(budget), &f)
}

/// [`parallel_for_each_mut`] under a [`Budget`]. On
/// [`DispatchOutcome::TimedOut`] the items past the last claimed chunk
/// were **not** visited — callers that need per-item completion state
/// must encode it in the items themselves (the chunked multi-RHS solver
/// leaves unvisited lanes' result slots empty and reports them as
/// budget-exhausted).
pub fn parallel_for_each_mut_budgeted<T, F>(
    items: &mut [T],
    budget: &Budget,
    f: F,
) -> DispatchOutcome
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let n = items.len();
    let threads = num_threads().min(n);
    if threads <= 1 || pool::in_dispatch() {
        pool::note_inline_dispatch();
        let chunk = n.div_ceil(CHUNKS_PER_WORKER).max(1);
        let mut iter = items.iter_mut().enumerate();
        let mut visited = 0usize;
        while visited < n {
            if budget.exhausted() {
                pool::note_timed_out(budget);
                return DispatchOutcome::TimedOut;
            }
            for (i, item) in iter.by_ref().take(chunk) {
                f(i, item);
                visited += 1;
            }
        }
        return DispatchOutcome::Completed;
    }
    struct Slots<T>(*mut T);
    // SAFETY: each index is claimed by exactly one worker (atomic
    // fetch-add), so no two threads ever form a `&mut` to the same slot.
    unsafe impl<T: Send> Sync for Slots<T> {}
    let slots = Slots(items.as_mut_ptr());
    let slots = &slots;
    let run = move |i: usize| {
        // SAFETY: `i < n` and each `i` is produced exactly once.
        f(i, unsafe { &mut *slots.0.add(i) });
    };
    // Chunk 1 stays static here: the chunk is the cancellation
    // granularity, and budgeted callers opted into the tightest one.
    pool::global().dispatch_budgeted(n, 1, Some(budget), &run)
}

/// Budget-polling serial loop shared by the inline fallbacks: runs `f`
/// over `0..n`, checking the budget before each `chunk`-sized block.
fn serial_for_budgeted(
    n: usize,
    chunk: usize,
    budget: &Budget,
    f: impl Fn(usize),
) -> DispatchOutcome {
    let mut lo = 0usize;
    while lo < n {
        if budget.exhausted() {
            pool::note_timed_out(budget);
            return DispatchOutcome::TimedOut;
        }
        let hi = (lo + chunk).min(n);
        for i in lo..hi {
            f(i);
        }
        lo = hi;
    }
    DispatchOutcome::Completed
}

/// Sum `f(i)` over `i in 0..n` with deterministic per-chunk partials.
///
/// The range is cut into fixed chunks; each chunk's partial sum is
/// accumulated serially (in index order) and the partials are combined in
/// chunk order. The bracketing therefore depends only on `n` and the
/// worker budget — **not** on thread scheduling — so repeated runs return
/// bitwise-identical results, unlike an OpenMP/rayon-style per-worker
/// reduction whose combine order races. (Changing `PP_NUM_THREADS`
/// changes the bracketing, like changing `OMP_NUM_THREADS` does.)
pub fn parallel_sum<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    let threads = num_threads().min(n);
    if threads <= 1 || pool::in_dispatch() {
        pool::note_inline_dispatch();
        return (0..n).map(f).sum();
    }
    // Deliberately NOT adaptive: the chunk size *is* the partial-sum
    // bracketing, so a live-telemetry-driven chunk would make the
    // floating-point result depend on recent scheduling history. The
    // bracketing must stay a function of `n` and the worker budget only.
    let chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let nchunks = n.div_ceil(chunk);
    let mut partials = vec![0.0f64; nchunks];
    let ptr = SharedMutPtr(partials.as_mut_ptr());
    pool::global().dispatch(nchunks, 1, &|c: usize| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        let mut acc = 0.0;
        for i in lo..hi {
            acc += f(i);
        }
        // SAFETY: chunk index `c` is claimed exactly once, so this is the
        // only write to `partials[c]`, and `c < nchunks` by construction.
        unsafe { *ptr.add(c) = acc };
    });
    partials.iter().sum()
}

/// Reference dispatcher: `f(i)` for `i in 0..n` over **freshly spawned**
/// scoped threads, re-creating and joining OS threads on every call.
///
/// This was the original `Parallel` implementation; it is kept as the
/// per-call baseline that the `dispatch_overhead` bench measures the
/// persistent pool against. Prefer [`parallel_for`] everywhere else.
pub fn scoped_parallel_for<F: Fn(usize) + Sync>(n: usize, f: F) {
    let threads = num_threads().min(n);
    if threads <= 1 {
        for i in 0..n {
            f(i);
        }
        return;
    }
    let chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let start = next.fetch_add(chunk, Ordering::Relaxed);
                if start >= n {
                    break;
                }
                for i in start..(start + chunk).min(n) {
                    f(i);
                }
            });
        }
    });
}

/// Reference reduction over freshly spawned scoped threads (per-worker
/// partials, combined in join order). Kept only as the bench baseline for
/// [`parallel_sum`]; its combine order is schedule-dependent, which is
/// exactly the nondeterminism the pooled reduction fixes.
pub fn scoped_parallel_sum<F: Fn(usize) -> f64 + Sync>(n: usize, f: F) -> f64 {
    let threads = num_threads().min(n);
    if threads <= 1 {
        return (0..n).map(f).sum();
    }
    let chunk = n.div_ceil(threads * CHUNKS_PER_WORKER).max(1);
    let next = AtomicUsize::new(0);
    let f = &f;
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut acc = 0.0;
                    loop {
                        let start = next.fetch_add(chunk, Ordering::Relaxed);
                        if start >= n {
                            break;
                        }
                        for i in start..(start + chunk).min(n) {
                            acc += f(i);
                        }
                    }
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("parallel_sum worker panicked"))
            .sum()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn visits_every_index_exactly_once() {
        let hits: Vec<AtomicUsize> = (0..1237).map(|_| AtomicUsize::new(0)).collect();
        parallel_for(1237, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn zero_and_one_sized_ranges() {
        parallel_for(0, |_| panic!("must not be called"));
        let count = AtomicUsize::new(0);
        parallel_for(1, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(count.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn sum_matches_closed_form() {
        let expected = (0..5000).map(|i| i as f64).sum::<f64>();
        assert_eq!(parallel_sum(5000, |i| i as f64), expected);
        assert_eq!(parallel_sum(0, |_| 1.0), 0.0);
        assert_eq!(parallel_sum(1, |_| 2.5), 2.5);
    }

    #[test]
    fn sum_is_bitwise_deterministic_across_runs() {
        // Mixed magnitudes make the sum order-sensitive: any schedule
        // dependence in the bracketing would show up bitwise.
        let f = |i: usize| ((i as f64) * 0.7).sin() * 10f64.powi((i % 13) as i32 - 6);
        let first = parallel_sum(10_000, f);
        for _ in 0..10 {
            assert_eq!(parallel_sum(10_000, f).to_bits(), first.to_bits());
        }
    }

    #[test]
    fn at_least_one_thread_reported_and_cached() {
        assert!(num_threads() >= 1);
        assert_eq!(num_threads(), num_threads());
    }

    #[test]
    fn thread_budget_override_rules() {
        assert_eq!(thread_budget(None, 8), 8);
        assert_eq!(thread_budget(Some("3"), 8), 3);
        assert_eq!(thread_budget(Some(" 5 "), 8), 5);
        // Clamped to at least one worker.
        assert_eq!(thread_budget(Some("0"), 8), 1);
        // Garbage falls back to the hardware count.
        assert_eq!(thread_budget(Some("lots"), 8), 8);
        assert_eq!(thread_budget(Some(""), 8), 8);
        assert_eq!(thread_budget(None, 0), 1);
    }

    #[test]
    fn for_each_mut_touches_every_slot_once() {
        let mut items: Vec<u64> = vec![0; 997];
        parallel_for_each_mut(&mut items, |i, slot| {
            *slot += i as u64 + 1;
        });
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }
        let mut empty: Vec<u64> = Vec::new();
        parallel_for_each_mut(&mut empty, |_, _| panic!("must not run"));
    }

    #[test]
    fn budgeted_for_completes_under_ample_budget() {
        let budget = Budget::with_deadline(std::time::Duration::from_secs(3600));
        let hits: Vec<AtomicUsize> = (0..999).map(|_| AtomicUsize::new(0)).collect();
        let outcome = parallel_for_budgeted(999, &budget, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcome, DispatchOutcome::Completed);
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn budgeted_for_times_out_when_cancelled() {
        let budget = Budget::unlimited();
        budget.cancel();
        let count = AtomicUsize::new(0);
        let outcome = parallel_for_budgeted(10_000, &budget, |_| {
            count.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(outcome, DispatchOutcome::TimedOut);
        assert_eq!(count.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn budgeted_for_each_mut_marks_visited_slots_only() {
        let budget = Budget::with_deadline(std::time::Duration::from_secs(3600));
        let mut items: Vec<u64> = vec![0; 503];
        let outcome = parallel_for_each_mut_budgeted(&mut items, &budget, |i, slot| {
            *slot = i as u64 + 1;
        });
        assert_eq!(outcome, DispatchOutcome::Completed);
        for (i, v) in items.iter().enumerate() {
            assert_eq!(*v, i as u64 + 1);
        }

        let exhausted = Budget::unlimited();
        exhausted.cancel();
        let mut items: Vec<u64> = vec![0; 503];
        let outcome = parallel_for_each_mut_budgeted(&mut items, &exhausted, |_, slot| {
            *slot = 1;
        });
        assert_eq!(outcome, DispatchOutcome::TimedOut);
        assert!(items.iter().all(|v| *v == 0), "no slot visited");
    }

    #[test]
    fn budgeted_serial_fallback_checks_budget_when_nested() {
        // Inside a dispatch (or on a single-worker host) the budgeted
        // loop degrades to the polling serial fallback; an exhausted
        // budget must still stop it. Assertion failures propagate as
        // lane panics.
        parallel_for(64, |_| {
            let budget = Budget::unlimited();
            budget.cancel();
            let o = parallel_for_budgeted(100, &budget, |_| panic!("must not run"));
            assert_eq!(o, DispatchOutcome::TimedOut);
        });
    }

    #[test]
    fn scoped_baseline_still_correct() {
        let hits: Vec<AtomicUsize> = (0..700).map(|_| AtomicUsize::new(0)).collect();
        scoped_parallel_for(700, |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        let expected = (0..3000).map(|i| i as f64).sum::<f64>();
        assert_eq!(scoped_parallel_sum(3000, |i| i as f64), expected);
    }
}
