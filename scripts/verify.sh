#!/usr/bin/env bash
# Tier-1 verification: build, full workspace test suite, and lint-clean
# clippy. CI and pre-merge both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all --check

echo "==> cargo build --release"
cargo build --release

# Debug profile on purpose: keeps debug_assert! contracts (e.g. the
# solve_lane length preconditions) exercised by the suite.
echo "==> cargo test --workspace"
cargo test --workspace -q

# The instrumentation layer compiles to a no-op by default, so the
# workspace run above only covers the inert half. Re-run the crates
# that carry active-layer tests with the feature on (pp-bench carries
# the trace round-trip/export schema tests).
echo "==> cargo test --features instrument (active instrumentation layer)"
cargo test -q -p pp-instrument --features instrument
cargo test -q -p pp-bench --features instrument
cargo test -q -p batched-splines --features instrument

# Smoke-run the dispatch-overhead bench: exercises the persistent
# worker-pool dispatch path and the JSON emitter end to end (tiny sizes,
# seconds). PP_NUM_THREADS forces a real pool even on single-core CI.
echo "==> dispatch_overhead bench smoke (pool dispatch + JSON emitter)"
mkdir -p target
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --bin dispatch_overhead -- \
    --smoke --out target/BENCH_dispatch_smoke.json
test -s target/BENCH_dispatch_smoke.json

# Smoke-run the flight recorder end to end: a traced pooled solve
# (Perfetto export) and the traced-advection example with one injected
# fault (dump-on-fault, written under target/ for CI artifact upload).
echo "==> trace smoke (flight recorder export + dump-on-fault example)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --features instrument \
    --bin trace_profile -- --smoke --out target/trace_example_smoke.json
test -s target/trace_example_smoke.json
PP_NUM_THREADS=4 cargo run --release -q --features instrument \
    --example trace_advection > /dev/null
test -s target/trace_advection.json
ls target/trace_advection_dumps/fault_dump_*.json > /dev/null

# Smoke-run the phase profiler: every builder version — including the
# lane-interleaved kernels and the resident pipeline — must run under
# the instrumentation layer and attribute its solve phases. The greps
# pin the Interleaved version and the resident entry into the emitted
# document so either silently dropping out fails tier-1, not just the
# bench gate.
echo "==> phase_profile bench smoke (per-phase attribution incl. Interleaved + resident)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --features instrument \
    --bin phase_profile -- --smoke --resident --out target/BENCH_phases_smoke.json
test -s target/BENCH_phases_smoke.json
grep -q '"version": "Lane interleave"' target/BENCH_phases_smoke.json
grep -q '"version": "Lane interleave resident"' target/BENCH_phases_smoke.json

# Smoke-run the telemetry runtime end to end: a resident solve loop
# with the background sampler streaming JSONL + Prometheus snapshots,
# an injected-slow-lane SLO breach captured as a sentinel fault dump,
# and an exporter-overhead measurement. The binary exits non-zero if
# any of its contracts (ticks, breach, dump reason, stream contents)
# fail. The grep pins the resident-solve gauge into the streamed JSONL
# so the exporter silently dropping gauges fails tier-1.
echo "==> telemetry_soak smoke (streaming exporters + SLO sentinel demo)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --features instrument \
    --bin telemetry_soak -- --smoke --out target/BENCH_telemetry_smoke.json
test -s target/BENCH_telemetry_smoke.json
test -s target/telemetry_stream.jsonl
test -s target/telemetry.prom
test -s target/sentinel_demo.json
grep -q 'soak.resident_solves' target/telemetry_stream.jsonl

# Smoke-run the chaos-soak campaign: seeded fault scenarios (NaN lanes,
# near-singular systems, slow lanes) under wall-clock budgets. The binary
# exits non-zero if any invariant (no hang, no silent budget cut, seeded
# determinism, healthy pool) is violated. The full >= 32-seed soak runs
# in the nightly CI job.
echo "==> chaos_soak smoke (budgets, cancellation, watchdog invariants)"
PP_NUM_THREADS=4 cargo run --release -q -p pp-bench --bin chaos_soak -- \
    --smoke --out target/BENCH_chaos_smoke.json
test -s target/BENCH_chaos_smoke.json

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: all checks passed"
