//! Sparsity-pattern analysis and rendering.
//!
//! Reproduces the paper's Fig. 1 — the banded-plus-corners pattern of the
//! degree-3 uniform periodic spline matrix — and provides the bandwidth
//! detection used to classify the spline sub-matrix `Q` (Table I).

use pp_portable::Matrix;

/// The boolean structure of a matrix: which entries are non-zero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsityPattern {
    nrows: usize,
    ncols: usize,
    /// Row-major mask.
    mask: Vec<bool>,
}

impl SparsityPattern {
    /// Pattern of the entries of `a` with `|a| > threshold`.
    pub fn from_dense(a: &Matrix, threshold: f64) -> Self {
        let (m, n) = a.shape();
        let mut mask = vec![false; m * n];
        for i in 0..m {
            for j in 0..n {
                mask[i * n + j] = a.get(i, j).abs() > threshold;
            }
        }
        Self {
            nrows: m,
            ncols: n,
            mask,
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Whether `(i, j)` is structurally non-zero.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> bool {
        self.mask[i * self.ncols + j]
    }

    /// Count of structural non-zeros.
    pub fn nnz(&self) -> usize {
        self.mask.iter().filter(|&&b| b).count()
    }

    /// Fraction of non-zero entries.
    pub fn density(&self) -> f64 {
        if self.mask.is_empty() {
            0.0
        } else {
            self.nnz() as f64 / self.mask.len() as f64
        }
    }

    /// Smallest `(kl, ku)` such that all non-zeros satisfy
    /// `j - ku ≤ i ≤ j + kl`.
    pub fn bandwidths(&self) -> (usize, usize) {
        let mut kl = 0usize;
        let mut ku = 0usize;
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                if self.get(i, j) {
                    if i > j {
                        kl = kl.max(i - j);
                    } else {
                        ku = ku.max(j - i);
                    }
                }
            }
        }
        (kl, ku)
    }

    /// `true` when the pattern is banded with bandwidths at most
    /// `(kl, ku)`.
    pub fn is_banded(&self, kl: usize, ku: usize) -> bool {
        let (akl, aku) = self.bandwidths();
        akl <= kl && aku <= ku
    }

    /// `true` when the pattern is symmetric (requires a square matrix).
    pub fn is_symmetric(&self) -> bool {
        if self.nrows != self.ncols {
            return false;
        }
        for i in 0..self.nrows {
            for j in 0..i {
                if self.get(i, j) != self.get(j, i) {
                    return false;
                }
            }
        }
        true
    }

    /// Render as ASCII art in the style of a spy plot: `*` for non-zero,
    /// `.` for zero — this is how the harness prints Fig. 1.
    pub fn render(&self) -> String {
        let mut s = String::with_capacity(self.nrows * (self.ncols + 1));
        for i in 0..self.nrows {
            for j in 0..self.ncols {
                s.push(if self.get(i, j) { '*' } else { '.' });
            }
            s.push('\n');
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::Layout;

    fn tridiag_pattern(n: usize) -> SparsityPattern {
        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            if i.abs_diff(j) <= 1 {
                1.0
            } else {
                0.0
            }
        });
        SparsityPattern::from_dense(&a, 0.0)
    }

    #[test]
    fn nnz_and_density() {
        let p = tridiag_pattern(5);
        assert_eq!(p.nnz(), 13);
        assert!((p.density() - 13.0 / 25.0).abs() < 1e-15);
    }

    #[test]
    fn bandwidth_detection() {
        assert_eq!(tridiag_pattern(6).bandwidths(), (1, 1));
        let a = Matrix::from_fn(6, 6, Layout::Right, |i, j| {
            if j >= i && j - i <= 2 {
                1.0
            } else {
                0.0
            }
        });
        assert_eq!(SparsityPattern::from_dense(&a, 0.0).bandwidths(), (0, 2));
    }

    #[test]
    fn periodic_corners_break_bandedness() {
        // Tridiagonal + periodic wrap entries = full bandwidth.
        let n = 8;
        let a = Matrix::from_fn(n, n, Layout::Right, |i, j| {
            let d = i.abs_diff(j);
            if d <= 1 || d == n - 1 {
                1.0
            } else {
                0.0
            }
        });
        let p = SparsityPattern::from_dense(&a, 0.0);
        assert_eq!(p.bandwidths(), (n - 1, n - 1));
        assert!(!p.is_banded(1, 1));
        assert!(p.is_symmetric());
    }

    #[test]
    fn render_marks_structure() {
        let p = tridiag_pattern(3);
        assert_eq!(p.render(), "**.\n***\n.**\n");
    }

    #[test]
    fn asymmetric_pattern_detected() {
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[0.0, 1.0]]);
        assert!(!SparsityPattern::from_dense(&a, 0.0).is_symmetric());
        let rect = Matrix::zeros(2, 3, Layout::Right);
        assert!(!SparsityPattern::from_dense(&rect, 0.0).is_symmetric());
    }
}
