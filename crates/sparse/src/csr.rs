//! Compressed Sparse Row storage.
//!
//! CSR is the format the paper's Ginkgo implementation stores the spline
//! matrix in (§III-B). The iterative solvers in `pp-iterative` consume this
//! type; its [`Csr::spmv`] is row-parallel over an
//! `ExecSpace`, matching how a fully-parallelised
//! library (as opposed to the batched-serial approach) applies the operator.

use crate::coo::Coo;
use crate::error::{Error, Result};
use pp_portable::{ExecSpace, Matrix};

/// A sparse matrix in CSR format.
///
/// ```
/// use pp_portable::Matrix;
/// use pp_sparse::Csr;
///
/// let dense = Matrix::from_rows(&[&[2.0, 0.0], &[-1.0, 3.0]]);
/// let a = Csr::from_dense(&dense, 0.0);
/// assert_eq!(a.nnz(), 3);
/// assert_eq!(a.spmv_alloc(&[1.0, 2.0]), vec![2.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Csr {
    nrows: usize,
    ncols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csr {
    /// Build from a COO matrix, summing duplicates and sorting columns
    /// within each row.
    pub fn from_coo(coo: &Coo) -> Self {
        let nrows = coo.nrows();
        let ncols = coo.ncols();
        // Count entries per row.
        let mut counts = vec![0usize; nrows];
        for &r in coo.rows_idx() {
            counts[r] += 1;
        }
        let mut row_ptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            row_ptr[i + 1] = row_ptr[i] + counts[i];
        }
        // Scatter into place.
        let mut col_idx = vec![0usize; coo.nnz()];
        let mut values = vec![0.0; coo.nnz()];
        let mut cursor = row_ptr.clone();
        for (r, c, v) in coo.iter() {
            let k = cursor[r];
            col_idx[k] = c;
            values[k] = v;
            cursor[r] += 1;
        }
        // Sort within rows and merge duplicates.
        let mut out_col = Vec::with_capacity(coo.nnz());
        let mut out_val = Vec::with_capacity(coo.nnz());
        let mut out_ptr = vec![0usize; nrows + 1];
        for i in 0..nrows {
            let lo = row_ptr[i];
            let hi = row_ptr[i + 1];
            let mut row: Vec<(usize, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            row.sort_by_key(|&(c, _)| c);
            let mut it = row.into_iter();
            if let Some((mut pc, mut pv)) = it.next() {
                for (c, v) in it {
                    if c == pc {
                        pv += v; // duplicate coordinate: accumulate
                    } else {
                        out_col.push(pc);
                        out_val.push(pv);
                        (pc, pv) = (c, v);
                    }
                }
                out_col.push(pc);
                out_val.push(pv);
            }
            out_ptr[i + 1] = out_col.len();
        }
        Self {
            nrows,
            ncols,
            row_ptr: out_ptr,
            col_idx: out_col,
            values: out_val,
        }
    }

    /// Extract the non-zeros of a dense matrix.
    pub fn from_dense(a: &Matrix, threshold: f64) -> Self {
        Self::from_coo(&Coo::from_dense(a, threshold))
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Row pointer array (length `nrows + 1`).
    #[inline]
    pub fn row_ptr(&self) -> &[usize] {
        &self.row_ptr
    }

    /// Column index array.
    #[inline]
    pub fn col_idx(&self) -> &[usize] {
        &self.col_idx
    }

    /// Values array.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Entries `(col, value)` of row `i`.
    #[inline]
    pub fn row(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.row_ptr[i];
        let hi = self.row_ptr[i + 1];
        self.col_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// Read `A(i, j)` (zero when not stored).
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.row(i).find(|&(c, _)| c == j).map_or(0.0, |(_, v)| v)
    }

    /// Sequential `y ← A x` into a caller-provided buffer.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        for i in 0..self.nrows {
            let mut s = 0.0;
            for (c, v) in self.row(i) {
                s += v * x[c];
            }
            y[i] = s;
        }
    }

    /// Row-parallel `y ← A x` over an execution space.
    pub fn spmv<E: ExecSpace>(&self, exec: &E, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        // Rows are independent; hand each worker its own output element
        // through a raw pointer (same disjointness argument as lane
        // dispatch).
        struct YPtr(*mut f64);
        unsafe impl Send for YPtr {}
        unsafe impl Sync for YPtr {}
        impl YPtr {
            /// # Safety
            /// `i` must be in bounds and written by exactly one worker.
            unsafe fn write(&self, i: usize, v: f64) {
                *self.0.add(i) = v;
            }
        }
        let yp = YPtr(y.as_mut_ptr());
        exec.for_each(self.nrows, |i| {
            let mut s = 0.0;
            for (c, v) in self.row(i) {
                s += v * x[c];
            }
            // SAFETY: each i is visited exactly once; i < y.len().
            unsafe {
                yp.write(i, s);
            }
        });
    }

    /// `y ← Aᵀ x` without materialising the transpose (row-scatter form),
    /// needed by the BiCG solver.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv_t: x length");
        assert_eq!(y.len(), self.ncols, "spmv_t: y length");
        y.fill(0.0);
        for i in 0..self.nrows {
            let xi = x[i];
            if xi != 0.0 {
                for (c, v) in self.row(i) {
                    y[c] += v * xi;
                }
            }
        }
    }

    /// `y ← A x` allocating the result.
    pub fn spmv_alloc(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.nrows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Extract the square diagonal block `rows/cols [lo, hi)` as dense
    /// (used by the block-Jacobi preconditioner).
    pub fn dense_block(&self, lo: usize, hi: usize) -> Result<Matrix> {
        if hi > self.nrows || hi > self.ncols || lo > hi {
            return Err(Error::ShapeMismatch {
                op: "dense_block",
                detail: format!("[{lo}, {hi}) outside {}x{}", self.nrows, self.ncols),
            });
        }
        let k = hi - lo;
        let mut m = Matrix::zeros(k, k, pp_portable::Layout::Right);
        for i in lo..hi {
            for (c, v) in self.row(i) {
                if c >= lo && c < hi {
                    m.set(i - lo, c - lo, v);
                }
            }
        }
        Ok(m)
    }

    /// Densify (tests).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols, pp_portable::Layout::Right);
        for i in 0..self.nrows {
            for (c, v) in self.row(i) {
                m.add_assign(i, c, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::TestRng;
    use pp_portable::{Parallel, Serial};

    fn sample() -> Matrix {
        Matrix::from_rows(&[
            &[4.0, -1.0, 0.0, 0.0],
            &[-1.0, 4.0, -1.0, 0.0],
            &[0.0, -1.0, 4.0, -1.0],
            &[0.5, 0.0, -1.0, 4.0],
        ])
    }

    #[test]
    fn dense_round_trip() {
        let a = sample();
        let csr = Csr::from_dense(&a, 0.0);
        assert_eq!(csr.nnz(), 11);
        assert_eq!(csr.to_dense().max_abs_diff(&a), 0.0);
    }

    #[test]
    fn rows_sorted_by_column() {
        let csr = Csr::from_dense(&sample(), 0.0);
        for i in 0..csr.nrows() {
            let cols: Vec<usize> = csr.row(i).map(|(c, _)| c).collect();
            let mut sorted = cols.clone();
            sorted.sort_unstable();
            assert_eq!(cols, sorted);
        }
    }

    #[test]
    fn duplicate_triplets_merge() {
        let coo =
            Coo::from_triplets(2, 2, vec![0, 0, 1], vec![1, 1, 0], vec![2.0, 3.0, 1.0]).unwrap();
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.nnz(), 2);
        assert_eq!(csr.get(0, 1), 5.0);
        assert_eq!(csr.get(1, 0), 1.0);
        assert_eq!(csr.get(0, 0), 0.0);
    }

    #[test]
    fn spmv_matches_dense() {
        let mut rng = TestRng::seed_from_u64(4);
        let a = Matrix::from_fn(30, 30, pp_portable::Layout::Right, |_, _| {
            if rng.gen_bool(0.2) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        });
        let csr = Csr::from_dense(&a, 0.0);
        let x: Vec<f64> = (0..30).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let expected: Vec<f64> = (0..30)
            .map(|i| (0..30).map(|j| a.get(i, j) * x[j]).sum())
            .collect();
        let y = csr.spmv_alloc(&x);
        for (u, v) in y.iter().zip(&expected) {
            assert!((u - v).abs() < 1e-13);
        }
        // Parallel path agrees bit-for-bit with sequential.
        let mut y_par = vec![0.0; 30];
        csr.spmv(&Parallel, &x, &mut y_par);
        assert_eq!(y, y_par);
        let mut y_ser = vec![0.0; 30];
        csr.spmv(&Serial, &x, &mut y_ser);
        assert_eq!(y, y_ser);
    }

    #[test]
    fn transpose_spmv_matches_explicit() {
        let a = sample();
        let csr = Csr::from_dense(&a, 0.0);
        let x = [1.0, 2.0, -1.0, 0.5];
        let mut y = vec![0.0; 4];
        csr.spmv_transpose_into(&x, &mut y);
        for j in 0..4 {
            let expected: f64 = (0..4).map(|i| a.get(i, j) * x[i]).sum();
            assert!((y[j] - expected).abs() < 1e-13);
        }
    }

    #[test]
    fn dense_block_extracts_diagonal_block() {
        let csr = Csr::from_dense(&sample(), 0.0);
        let blk = csr.dense_block(1, 3).unwrap();
        assert_eq!(blk.shape(), (2, 2));
        assert_eq!(blk.get(0, 0), 4.0);
        assert_eq!(blk.get(0, 1), -1.0);
        assert_eq!(blk.get(1, 0), -1.0);
        assert_eq!(blk.get(1, 1), 4.0);
        assert!(csr.dense_block(3, 5).is_err());
    }

    #[test]
    fn empty_rows_are_handled() {
        let coo = Coo::from_triplets(3, 3, vec![2], vec![0], vec![1.0]).unwrap();
        let csr = Csr::from_coo(&coo);
        assert_eq!(csr.row(0).count(), 0);
        assert_eq!(csr.row(1).count(), 0);
        assert_eq!(csr.row(2).count(), 1);
        let y = csr.spmv_alloc(&[1.0, 1.0, 1.0]);
        assert_eq!(y, vec![0.0, 0.0, 1.0]);
    }
}
