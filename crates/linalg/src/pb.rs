//! Symmetric positive-definite banded matrices and their Cholesky
//! factorisation (`pbtrf`/`pbtrs`).
//!
//! This is the `Q` solver for **uniform splines of degree 4 and 5**
//! (Table I of the paper). Lower-triangle LAPACK `pb` storage: element
//! `A(i, j)` with `j ≤ i ≤ j + kd` lives at `ab[i - j][j]`.

use crate::error::{Error, Result};
use crate::health::{check_finite_input, check_solve_slice, rcond_estimate, FactorHealth};
use pp_portable::instrument::{PhaseId, Span};
use pp_portable::StridedMut;

/// A symmetric positive-definite banded matrix (lower storage).
#[derive(Debug, Clone)]
pub struct SymBandedMatrix {
    n: usize,
    kd: usize,
    /// Column-major band storage, `kd + 1` rows by `n` columns.
    ab: Vec<f64>,
}

impl SymBandedMatrix {
    /// An all-zero SPD-banded container of order `n` with `kd`
    /// sub-diagonals.
    pub fn new(n: usize, kd: usize) -> Result<Self> {
        if kd >= n.max(1) {
            return Err(Error::InvalidBandwidth {
                op: "SymBandedMatrix::new",
                n,
                bandwidth: kd,
            });
        }
        Ok(Self {
            n,
            kd,
            ab: vec![0.0; (kd + 1) * n],
        })
    }

    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth (number of sub-diagonals).
    pub fn kd(&self) -> usize {
        self.kd
    }

    #[inline]
    fn idx(&self, i: usize, j: usize) -> usize {
        debug_assert!(j <= i && i - j <= self.kd);
        (i - j) + j * (self.kd + 1)
    }

    /// Read `A(i, j)` (symmetry applied; outside-band reads zero).
    ///
    /// # Panics
    /// Panics if `i` or `j` is out of range.
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(
            i < self.n && j < self.n,
            "SymBandedMatrix::get out of bounds"
        );
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        if r - c <= self.kd {
            self.ab[self.idx(r, c)]
        } else {
            0.0
        }
    }

    /// Write `A(i, j)` (and by symmetry `A(j, i)`).
    ///
    /// Returns an error when the element lies outside the band and
    /// `v != 0`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) -> Result<()> {
        let (r, c) = if i >= j { (i, j) } else { (j, i) };
        if r >= self.n {
            return Err(Error::ShapeMismatch {
                op: "SymBandedMatrix::set",
                detail: format!("({i}, {j}) out of range for order {}", self.n),
            });
        }
        if r - c > self.kd {
            if v == 0.0 {
                return Ok(());
            }
            return Err(Error::ShapeMismatch {
                op: "SymBandedMatrix::set",
                detail: format!("({i}, {j}) outside bandwidth {}", self.kd),
            });
        }
        let k = self.idx(r, c);
        self.ab[k] = v;
        Ok(())
    }

    /// Build from a generator sampled on the lower band only
    /// (`f(i, j)` with `j ≤ i ≤ j + kd`).
    pub fn from_fn(n: usize, kd: usize, mut f: impl FnMut(usize, usize) -> f64) -> Result<Self> {
        let mut m = Self::new(n, kd)?;
        for j in 0..n {
            for i in j..=(j + kd).min(n.saturating_sub(1)) {
                let k = m.idx(i, j);
                m.ab[k] = f(i, j);
            }
        }
        Ok(m)
    }

    /// Densify (tests / setup).
    pub fn to_dense(&self) -> pp_portable::Matrix {
        pp_portable::Matrix::from_fn(self.n, self.n, pp_portable::Layout::Right, |i, j| {
            self.get(i, j)
        })
    }
}

/// Banded Cholesky factors `A = L·Lᵀ` (lower storage, LAPACK `pbtrf`).
#[derive(Debug, Clone)]
pub struct CholeskyBanded {
    n: usize,
    kd: usize,
    ab: Vec<f64>,
    health: FactorHealth,
}

impl CholeskyBanded {
    /// Matrix order.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Bandwidth.
    pub fn kd(&self) -> usize {
        self.kd
    }

    /// Numerical-health report captured at factorisation time (`pbcon`).
    pub fn health(&self) -> &FactorHealth {
        &self.health
    }

    /// Fault-injection hook: mutable view of the packed Cholesky band
    /// (`L` in LAPACK `dpbtrf` lower storage). Exists so robustness tests
    /// and the chaos harness can flip bits in factor memory *between*
    /// factorization and solve — the silent-data-corruption scenario the
    /// ABFT layer ([`crate::abft`]) detects. Never call it from
    /// production code.
    pub fn fault_data_mut(&mut self) -> &mut [f64] {
        &mut self.ab
    }

    #[inline]
    pub(crate) fn l(&self, i: usize, j: usize) -> f64 {
        self.ab[(i - j) + j * (self.kd + 1)]
    }

    /// Solve `A x = b` in place for one lane (`pbtrs`).
    ///
    /// The lane length must equal the matrix order `n`.
    ///
    /// # Panics (debug)
    /// Debug builds assert `b.len() == self.n()`; release builds make the
    /// caller responsible. Use [`CholeskyBanded::try_solve_slice`] for a
    /// checked variant.
    pub fn solve_lane(&self, b: &mut StridedMut<'_>) {
        let _span = Span::enter(PhaseId::SolvePbtrs);
        let n = self.n;
        debug_assert_eq!(b.len(), n, "pbtrs: lane length must equal matrix order");
        let kd = self.kd;
        // Forward: L y = b.
        for j in 0..n {
            let yj = b[j] / self.l(j, j);
            b[j] = yj;
            if yj != 0.0 {
                let hi = (j + kd).min(n - 1);
                for i in j + 1..=hi {
                    b[i] -= self.l(i, j) * yj;
                }
            }
        }
        // Backward: Lᵀ x = y.
        for j in (0..n).rev() {
            let mut s = b[j];
            let hi = (j + kd).min(n - 1);
            for i in j + 1..=hi {
                s -= self.l(i, j) * b[i];
            }
            b[j] = s / self.l(j, j);
        }
    }

    /// Solve into a plain slice (setup-time convenience).
    ///
    /// # Panics (debug)
    /// Debug builds assert `b.len() == self.n()` (see
    /// [`CholeskyBanded::solve_lane`]).
    pub fn solve_slice(&self, b: &mut [f64]) {
        self.solve_lane(&mut StridedMut::from_slice(b));
    }

    /// Checked solve: verifies the length contract and rejects non-finite
    /// right-hand sides with a typed error.
    pub fn try_solve_slice(&self, b: &mut [f64]) -> Result<()> {
        check_solve_slice("pbtrs", self.n(), b)?;
        self.solve_slice(b);
        Ok(())
    }
}

/// Cholesky-factor an SPD banded matrix (LAPACK `dpbtf2`, lower,
/// unblocked).
///
/// Returns [`Error::NotPositiveDefinite`] when a leading minor fails.
pub fn pbtrf(a: &SymBandedMatrix) -> Result<CholeskyBanded> {
    let _span = Span::enter(PhaseId::FactorPbtrf);
    let n = a.n();
    let kd = a.kd();
    check_finite_input("pbtrf", a.ab.iter().copied())?;
    // ‖A‖₁ with symmetry: column j collects the stored lower band plus the
    // mirrored super-diagonal entries.
    let mut anorm = 0.0_f64;
    let mut amax = 0.0_f64;
    for j in 0..n {
        let mut col = 0.0;
        let lo = j.saturating_sub(kd);
        let hi = (j + kd).min(n.saturating_sub(1));
        for i in lo..=hi {
            let v = a.get(i, j).abs();
            col += v;
            amax = amax.max(v);
        }
        anorm = anorm.max(col);
    }
    let mut ab = a.ab.clone();
    let ld = kd + 1;
    for j in 0..n {
        let ajj = ab[j * ld];
        if ajj <= 0.0 {
            return Err(Error::NotPositiveDefinite {
                routine: "pbtrf",
                index: j,
                value: ajj,
            });
        }
        let ajj = ajj.sqrt();
        ab[j * ld] = ajj;
        let kn = kd.min(n - 1 - j);
        if kn > 0 {
            for i in 1..=kn {
                ab[i + j * ld] /= ajj;
            }
            // Symmetric rank-1 update of the trailing band (lower part).
            for c in 1..=kn {
                let ljc = ab[c + j * ld];
                if ljc != 0.0 {
                    for r in c..=kn {
                        ab[(r - c) + (j + c) * ld] -= ab[r + j * ld] * ljc;
                    }
                }
            }
        }
    }
    // Growth of the factor entries: max L(i,j)² / max|A|. Stable Cholesky
    // keeps this ≈ 1 (each L entry is bounded by the diagonal it divides).
    let lmax = ab.iter().fold(0.0_f64, |m, &v| m.max(v.abs()));
    let pivot_growth = if amax > 0.0 { lmax * lmax / amax } else { 1.0 };
    let mut f = CholeskyBanded {
        n,
        kd,
        ab,
        health: FactorHealth {
            routine: "pbtrf",
            anorm,
            rcond: 1.0,
            pivot_growth,
        },
    };
    // Symmetric: one solve serves both estimator directions.
    let rcond = rcond_estimate(n, anorm, |v| f.solve_slice(v), |v| f.solve_slice(v));
    f.health.rcond = rcond;
    Ok(f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::{matvec, relative_residual, solve_dense};
    use pp_portable::TestRng;

    /// A random strictly diagonally dominant symmetric banded matrix
    /// (hence SPD).
    fn random_spd_banded(rng: &mut TestRng, n: usize, kd: usize) -> SymBandedMatrix {
        let mut m = SymBandedMatrix::new(n, kd).unwrap();
        for j in 0..n {
            for i in j + 1..=(j + kd).min(n - 1) {
                m.set(i, j, rng.gen_range(-1.0..1.0)).unwrap();
            }
        }
        for i in 0..n {
            let row_sum: f64 = (0..n).filter(|&j| j != i).map(|j| m.get(i, j).abs()).sum();
            m.set(i, i, row_sum + rng.gen_range(0.5..2.0)).unwrap();
        }
        m
    }

    #[test]
    fn storage_symmetry() {
        let mut m = SymBandedMatrix::new(5, 2).unwrap();
        m.set(3, 1, 4.5).unwrap();
        assert_eq!(m.get(3, 1), 4.5);
        assert_eq!(m.get(1, 3), 4.5); // symmetric read
        m.set(1, 3, -2.0).unwrap(); // symmetric write
        assert_eq!(m.get(3, 1), -2.0);
        assert_eq!(m.get(0, 4), 0.0);
        assert!(m.set(0, 4, 1.0).is_err());
    }

    #[test]
    fn cholesky_reconstructs_matrix() {
        let mut rng = TestRng::seed_from_u64(2);
        let a = random_spd_banded(&mut rng, 8, 2);
        let f = pbtrf(&a).unwrap();
        // Rebuild A(i,j) = sum_k L(i,k) L(j,k) and compare inside the band.
        for j in 0..8 {
            for i in j..=(j + 2).min(7) {
                let mut s = 0.0;
                for k in 0..=j {
                    if i - k <= 2 && j - k <= 2 {
                        s += f.l(i, k) * f.l(j, k);
                    }
                }
                assert!((s - a.get(i, j)).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn solve_matches_dense_reference() {
        let mut rng = TestRng::seed_from_u64(31);
        for (n, kd) in [(1, 0), (4, 1), (9, 2), (20, 3), (40, 5)] {
            let a = random_spd_banded(&mut rng, n, kd);
            let dense = a.to_dense();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let expected = solve_dense(&dense, &b).unwrap();
            let f = pbtrf(&a).unwrap();
            let mut x = b.clone();
            f.solve_slice(&mut x);
            for (u, v) in x.iter().zip(&expected) {
                assert!((u - v).abs() < 1e-10, "(n,kd)=({n},{kd})");
            }
            assert!(relative_residual(&dense, &x, &b) < 1e-12);
        }
    }

    #[test]
    fn non_positive_definite_rejected() {
        let mut a = SymBandedMatrix::new(3, 1).unwrap();
        a.set(0, 0, 1.0).unwrap();
        a.set(1, 0, 2.0).unwrap(); // makes the 2x2 leading minor negative
        a.set(1, 1, 1.0).unwrap();
        a.set(2, 2, 1.0).unwrap();
        assert!(matches!(pbtrf(&a), Err(Error::NotPositiveDefinite { .. })));
    }

    #[test]
    fn kd_zero_is_diagonal_solve() {
        let mut a = SymBandedMatrix::new(3, 0).unwrap();
        for i in 0..3 {
            a.set(i, i, (i + 1) as f64).unwrap();
        }
        let f = pbtrf(&a).unwrap();
        let mut x = vec![2.0, 6.0, 12.0];
        f.solve_slice(&mut x);
        for (u, v) in x.iter().zip([2.0, 3.0, 4.0]) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn agrees_with_pt_solver_on_tridiagonal() {
        let n = 10;
        let a = SymBandedMatrix::from_fn(n, 1, |i, j| if i == j { 4.0 } else { 1.0 }).unwrap();
        let f_pb = pbtrf(&a).unwrap();
        let f_pt = crate::pt::pttrf(&vec![4.0; n], &vec![1.0; n - 1]).unwrap();
        let b: Vec<f64> = (0..n).map(|i| (i as f64).sin()).collect();
        let mut x1 = b.clone();
        let mut x2 = b;
        f_pb.solve_slice(&mut x1);
        f_pt.solve_slice(&mut x2);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn health_reports_and_checked_solves() {
        let mut rng = TestRng::seed_from_u64(12);
        let a = random_spd_banded(&mut rng, 12, 2);
        let f = pbtrf(&a).unwrap();
        let h = f.health();
        assert_eq!(h.routine, "pbtrf");
        assert!(h.rcond > 1e-4, "rcond {}", h.rcond);
        assert!(h.pivot_growth < 3.0, "growth {}", h.pivot_growth);
        assert!(!h.is_suspect());

        let mut short = vec![1.0; 5];
        assert!(matches!(
            f.try_solve_slice(&mut short),
            Err(Error::ShapeMismatch { op: "pbtrs", .. })
        ));
        let mut nan = vec![0.0; 12];
        nan[7] = f64::NAN;
        assert!(matches!(
            f.try_solve_slice(&mut nan),
            Err(Error::NonFinite {
                routine: "pbtrs",
                index: 7,
                ..
            })
        ));

        let mut sick = SymBandedMatrix::new(3, 1).unwrap();
        sick.set(0, 0, f64::NAN).unwrap();
        assert!(matches!(
            pbtrf(&sick),
            Err(Error::NonFinite {
                routine: "pbtrf",
                ..
            })
        ));
    }

    /// Property: pbtrf/pbtrs recovers the true solution for random SPD
    /// banded systems.
    #[test]
    fn prop_spd_banded_solve_recovers() {
        let mut g = TestRng::seed_from_u64(0x5EED_5439);
        for _ in 0..64 {
            let n = g.gen_range(1usize..30);
            let kd = g.gen_range(0usize..5);
            let seed = g.gen_range(0u64..500);
            let kd = kd.min(n - 1);
            let mut rng = TestRng::seed_from_u64(seed);
            let a = random_spd_banded(&mut rng, n, kd);
            let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let b = matvec(&a.to_dense(), &x_true);
            let f = pbtrf(&a).unwrap();
            let mut x = b;
            f.solve_slice(&mut x);
            for (u, v) in x.iter().zip(&x_true) {
                assert!((u - v).abs() < 1e-8);
            }
        }
    }
}
