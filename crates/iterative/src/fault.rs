//! Deterministic fault injection for robustness testing.
//!
//! At the paper's production scale ("heavy traffic", 10⁵–10¹² lanes per
//! advection step) breakdowns are a *when*, not an *if*. This module
//! manufactures them on demand, reproducibly: NaN/Inf-poisoned lanes,
//! near-singular matrix perturbations, and iteration-budget starvation.
//! The failure-injection test tier drives the chunked solver and the
//! recovery ladder with these faults and asserts typed per-lane outcomes
//! and zero panics.
//!
//! All randomness comes from [`TestRng`], so a seed pins the exact fault
//! pattern across platforms and runs.

use crate::stop::StopCriteria;
use pp_portable::{Matrix, TestRng};
use pp_sparse::Csr;

/// Deterministic generator of the failure modes a batched Krylov stack
/// must survive.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    rng: TestRng,
}

impl FaultInjector {
    /// Injector with a fixed seed: the same seed produces the same fault
    /// pattern, always.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: TestRng::seed_from_u64(seed),
        }
    }

    /// Poison `count` distinct random lanes (columns) of `b` with NaN at
    /// one random row each; returns the poisoned lane indices, sorted.
    ///
    /// # Panics
    /// Panics if `count > b.ncols()`.
    pub fn poison_nan_lanes(&mut self, b: &mut Matrix, count: usize) -> Vec<usize> {
        self.poison_lanes(b, count, f64::NAN)
    }

    /// Poison `count` distinct random lanes of `b` with `+Inf`; returns
    /// the poisoned lane indices, sorted.
    ///
    /// # Panics
    /// Panics if `count > b.ncols()`.
    pub fn poison_inf_lanes(&mut self, b: &mut Matrix, count: usize) -> Vec<usize> {
        self.poison_lanes(b, count, f64::INFINITY)
    }

    fn poison_lanes(&mut self, b: &mut Matrix, count: usize, value: f64) -> Vec<usize> {
        let ncols = b.ncols();
        assert!(count <= ncols, "cannot poison {count} of {ncols} lanes");
        let mut lanes = Vec::with_capacity(count);
        while lanes.len() < count {
            let lane = self.rng.gen_range(0..ncols);
            if !lanes.contains(&lane) {
                lanes.push(lane);
            }
        }
        lanes.sort_unstable();
        for &lane in &lanes {
            let row = self.rng.gen_range(0..b.nrows());
            b.set(row, lane, value);
        }
        lanes
    }

    /// A near-singular copy of `a`: one random row is scaled down to
    /// `eps` times its original magnitude, driving the matrix toward
    /// rank deficiency (condition number ~ 1/eps). With `eps == 0` the
    /// row is exactly zero and the matrix is singular.
    ///
    /// # Panics
    /// Panics if `a` is empty or `eps` is negative/non-finite.
    pub fn near_singular(&mut self, a: &Csr, eps: f64) -> Csr {
        assert!(a.nrows() > 0, "cannot perturb an empty matrix");
        assert!(
            eps >= 0.0 && eps.is_finite(),
            "eps must be finite and non-negative"
        );
        let row = self.rng.gen_range(0..a.nrows());
        let mut dense = a.to_dense();
        for j in 0..dense.ncols() {
            let v = dense.get(row, j);
            dense.set(row, j, v * eps);
        }
        // Threshold 0 keeps explicit zeros out but preserves structure
        // of the scaled row for eps > 0.
        Csr::from_dense(&dense, 0.0)
    }

    /// Starve a stopping criterion: same tolerance, but at most
    /// `max_iters` iterations — forces `MaxIters` outcomes on any lane
    /// that genuinely needs the work.
    pub fn starved(stop: &StopCriteria, max_iters: usize) -> StopCriteria {
        StopCriteria { max_iters, ..*stop }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::Layout;

    #[test]
    fn nan_poisoning_is_deterministic_and_disjoint() {
        let make = || {
            let mut b = Matrix::zeros(8, 20, Layout::Left);
            let lanes = FaultInjector::new(3).poison_nan_lanes(&mut b, 5);
            (b, lanes)
        };
        let (b1, lanes1) = make();
        let (_b2, lanes2) = make();
        assert_eq!(lanes1, lanes2);
        assert_eq!(lanes1.len(), 5);
        assert!(lanes1.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
        for j in 0..20 {
            let has_nan = b1.col(j).to_vec().iter().any(|v| v.is_nan());
            assert_eq!(has_nan, lanes1.contains(&j));
        }
    }

    #[test]
    fn inf_poisoning_hits_requested_lanes() {
        let mut b = Matrix::zeros(4, 6, Layout::Left);
        let lanes = FaultInjector::new(7).poison_inf_lanes(&mut b, 2);
        for &j in &lanes {
            assert!(b.col(j).to_vec().iter().any(|v| v.is_infinite()));
        }
    }

    #[test]
    #[should_panic(expected = "cannot poison")]
    fn over_poisoning_rejected() {
        let mut b = Matrix::zeros(4, 3, Layout::Left);
        FaultInjector::new(1).poison_nan_lanes(&mut b, 4);
    }

    #[test]
    fn near_singular_degrades_one_row() {
        let a = Csr::from_dense(
            &Matrix::from_fn(6, 6, Layout::Right, |i, j| {
                if i == j {
                    4.0
                } else if i.abs_diff(j) == 1 {
                    -1.0
                } else {
                    0.0
                }
            }),
            0.0,
        );
        let bad = FaultInjector::new(5).near_singular(&a, 1e-14);
        let (orig, pert) = (a.to_dense(), bad.to_dense());
        let mut scaled_rows = 0;
        for i in 0..6 {
            let row_changed = (0..6).any(|j| orig.get(i, j) != pert.get(i, j));
            if row_changed {
                scaled_rows += 1;
                for j in 0..6 {
                    assert!((pert.get(i, j) - orig.get(i, j) * 1e-14).abs() < 1e-25);
                }
            }
        }
        assert_eq!(scaled_rows, 1);
    }

    #[test]
    fn exactly_singular_at_eps_zero() {
        let a = Csr::from_dense(&Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]), 0.0);
        let bad = FaultInjector::new(2).near_singular(&a, 0.0);
        let d = bad.to_dense();
        assert!((0..2).any(|i| (0..2).all(|j| d.get(i, j) == 0.0)));
    }

    #[test]
    fn starved_keeps_everything_but_budget() {
        let stop = StopCriteria::with_tol(1e-12).with_stagnation(50, 0.01);
        let starved = FaultInjector::starved(&stop, 2);
        assert_eq!(starved.max_iters, 2);
        assert_eq!(starved.tol, 1e-12);
        assert_eq!(starved.stall_window, 50);
    }
}
