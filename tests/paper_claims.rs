//! Integration tests pinning the paper's *claims* — each test encodes one
//! assertion the paper makes, so a regression that breaks the
//! reproduction story fails loudly. (The quantitative tables live in the
//! pp-bench harness binaries; these tests check the qualitative claims at
//! CI-friendly sizes.)

use batched_splines::prelude::*;
use pp_perfmodel::traffic::{simulate_builder_traffic, BuilderKernel, KernelVersion};
use pp_perfmodel::{performance_portability, TrafficReport};
use pp_splinesolver::{QClass, SchurBlocks};

/// Table I: the solver classification for all six configurations.
#[test]
fn table1_solver_classification() {
    let expectations = [
        (3, true, "pttrs"),
        (4, true, "pbtrs"),
        (5, true, "pbtrs"),
        (3, false, "gbtrs"),
        (4, false, "gbtrs"),
        (5, false, "gbtrs"),
    ];
    for (degree, uniform, routine) in expectations {
        let breaks = if uniform {
            Breaks::uniform(48, 0.0, 1.0).unwrap()
        } else {
            Breaks::graded(48, 0.0, 1.0, 0.6).unwrap()
        };
        let space = PeriodicSplineSpace::new(breaks, degree).unwrap();
        let blocks = SchurBlocks::new(&space).unwrap();
        assert_eq!(
            blocks.q_solver().routine(),
            routine,
            "degree {degree}, uniform {uniform}"
        );
        assert_eq!(blocks.q_class(), QClass::from_table(degree, uniform));
    }
}

/// §II-B: "the matrix A ... is fixed in time and only b is time
/// evolving" — one factorisation serves arbitrarily many solves.
#[test]
fn one_factorisation_many_solves() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
    let pts = space.interpolation_points();
    for step in 0..5 {
        let shift = step as f64 * 0.01;
        let mut b = Matrix::from_fn(32, 3, Layout::Left, |i, _| {
            (std::f64::consts::TAU * (pts[i] - shift)).sin()
        });
        builder.solve_in_place(&Serial, &mut b).unwrap();
        let c = b.col(0).to_vec();
        let x = 0.3;
        assert!(
            (space.eval(&c, x) - (std::f64::consts::TAU * (x - shift)).sin()).abs() < 1e-4,
            "step {step}"
        );
    }
}

/// §IV-D: the corner blocks are "largely sparse" and spmv reduces the
/// corner work from O(n) to O(nnz) without changing the answer.
#[test]
fn sparse_corners_preserve_answers_and_are_sparse() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(200, 0.0, 1.0).unwrap(), 3).unwrap();
    let blocks = SchurBlocks::new(&space).unwrap();
    // λ: 2 non-zeros exactly (the paper's figure for the cubic case).
    assert_eq!(blocks.lambda_coo().nnz(), 2);
    // β: truncated exponential tails, far sparser than its q·border dense
    // size.
    assert!(blocks.beta_coo().nnz() * 3 < blocks.q_size());

    let b_dense = SplineBuilder::new(space.clone(), BuilderVersion::Fused).unwrap();
    let b_sparse = SplineBuilder::new(space, BuilderVersion::FusedSpmv).unwrap();
    let rhs = Matrix::from_fn(200, 10, Layout::Left, |i, j| ((i * 13 + j * 7) % 31) as f64);
    let mut x1 = rhs.clone();
    let mut x2 = rhs;
    b_dense.solve_in_place(&Parallel, &mut x1).unwrap();
    b_sparse.solve_in_place(&Parallel, &mut x2).unwrap();
    assert!(x1.max_abs_diff(&x2) < 1e-11);
}

/// Table III's ordering in the traffic model: on a GPU-like cache
/// hierarchy the three versions rank Original ≥ Fused > FusedSpmv.
#[test]
fn table3_ordering_in_the_model() {
    let mut device = Device::a100();
    device.shared_cache_mib = 0.5;
    device.resident_lanes = 512;
    let kernel = BuilderKernel::cubic_uniform(256);
    let batch = 4096;
    let t: Vec<f64> = [
        KernelVersion::Baseline,
        KernelVersion::Fused,
        KernelVersion::FusedSpmv,
    ]
    .iter()
    .map(|&v| simulate_builder_traffic(&device, v, &kernel, batch).predicted_time_s(&device))
    .collect();
    assert!(t[0] > t[1], "fusion must help: {t:?}");
    assert!(t[1] > t[2], "sparsity must help: {t:?}");
}

/// §V-A / Fig. 2: the direct builder beats the iterative solver on wall
/// clock for the same problem, on every spline configuration.
#[test]
fn direct_beats_iterative() {
    use std::time::Instant;
    for degree in [3usize, 5] {
        let space =
            PeriodicSplineSpace::new(Breaks::uniform(128, 0.0, 1.0).unwrap(), degree).unwrap();
        let rhs = Matrix::from_fn(128, 64, Layout::Left, |i, j| ((i + j) % 17) as f64 / 17.0);

        let direct = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
        let mut xd = rhs.clone();
        let t0 = Instant::now();
        direct.solve_in_place(&Parallel, &mut xd).unwrap();
        let t_direct = t0.elapsed();

        let iter = IterativeSplineSolver::new(space, IterativeConfig::gpu()).unwrap();
        let mut xi = rhs.clone();
        let t0 = Instant::now();
        iter.solve_in_place(&mut xi, None).unwrap();
        let t_iter = t0.elapsed();

        assert!(
            t_direct < t_iter,
            "degree {degree}: direct {t_direct:?} should beat iterative {t_iter:?}"
        );
    }
}

/// Equation (8): the Pennycook metric behaves as the paper uses it —
/// harmonic mean, dominated by the worst platform, zero when unsupported.
#[test]
fn pennycook_metric_semantics() {
    // Reproduce the paper's Table V row: P(4.38%, 17.3%, 15.5%) = 0.086.
    let p = performance_portability(&[Some(0.0438), Some(0.173), Some(0.155)]);
    assert!((p - 0.086).abs() < 2e-3);
    assert_eq!(performance_portability(&[Some(0.5), None, Some(0.5)]), 0.0);
}

/// §IV-B: the ideal traffic figure — (1000, 100000) doubles is 0.8 GB
/// each way.
#[test]
fn ideal_traffic_figure() {
    let kernel = BuilderKernel::cubic_uniform(1000);
    let ideal = TrafficReport::ideal_bytes(&kernel, 100_000);
    assert!((ideal - 1.6e9).abs() < 1e6); // 0.8 GB load + 0.8 GB store
}
