//! Bench-regression gate: compare a fresh `--smoke` bench run against a
//! committed full-size baseline and fail on gross regressions.
//!
//! Smoke runs use smaller sizes and far fewer reps than the committed
//! baselines, so exact comparison is meaningless. What *is* stable
//! across sizes is (a) per-dispatch pool latency at a given batch count,
//! and (b) the structure of the phase profile (which versions exist,
//! that phases cover most of the wall clock, that the dispatch histogram
//! is populated). The gate checks only those, with deliberately generous
//! tolerances — it exists to catch "dispatch got 10x slower" or "the
//! instrumentation layer stopped attributing", not 20% noise. Timing
//! comparisons additionally get a fixed absolute slack so single-core CI
//! scheduler hiccups at microsecond scales cannot trip the gate.
//!
//! Usage:
//!   bench_gate --kind dispatch --baseline BENCH_dispatch.json \
//!       --candidate target/BENCH_dispatch_smoke.json [--tol 4.0]
//!   bench_gate --kind phases --baseline BENCH_phases.json \
//!       --candidate target/BENCH_phases_smoke.json [--tol 4.0]
//!   bench_gate --kind chaos --baseline BENCH_chaos.json \
//!       --candidate target/BENCH_chaos_smoke.json
//!
//! The chaos kind is a pure robustness gate (no timing): both documents
//! must report zero invariant violations and zero silent-wrong SDC
//! rounds, and the committed baseline must prove the fault campaign
//! actually exercised corruption (detections > 0).

use pp_bench::json::Json;
use std::process::ExitCode;

/// Absolute slack added on top of the ratio tolerance for nanosecond
/// latency comparisons (absorbs scheduler noise on loaded CI runners).
const LATENCY_SLACK_NS: f64 = 25_000.0;

/// Minimum fraction of wall clock the phase spans must attribute.
const MIN_PHASE_COVER: f64 = 0.5;

struct Gate {
    failures: Vec<String>,
    checks: usize,
}

impl Gate {
    fn new() -> Self {
        Gate {
            failures: Vec::new(),
            checks: 0,
        }
    }

    fn check(&mut self, ok: bool, what: impl Into<String>) {
        self.checks += 1;
        let what = what.into();
        if ok {
            println!("  ok   {what}");
        } else {
            println!("  FAIL {what}");
            self.failures.push(what);
        }
    }

    /// `candidate <= tol * baseline + slack`, reported with the numbers.
    fn check_latency(&mut self, what: &str, candidate: f64, baseline: f64, tol: f64) {
        let bound = tol * baseline + LATENCY_SLACK_NS;
        self.check(
            candidate <= bound,
            format!("{what}: {candidate:.0} ns <= {tol}x{baseline:.0}+slack = {bound:.0} ns"),
        );
    }
}

fn load(path: &str) -> Json {
    let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    Json::parse(&text).unwrap_or_else(|e| panic!("parsing {path}: {e}"))
}

fn f64_at(v: &Json, path: &[&str]) -> Option<f64> {
    v.at(path).and_then(Json::as_f64)
}

/// Gate the dispatch_overhead bench: per-batch pool latency must stay
/// within `tol`x of the committed baseline for every batch count the
/// smoke run shares with it.
fn gate_dispatch(gate: &mut Gate, baseline: &Json, candidate: &Json, tol: f64) {
    gate.check(
        candidate.get("bench").and_then(Json::as_str) == Some("dispatch_overhead"),
        "candidate is a dispatch_overhead document",
    );
    let base_rows = baseline
        .get("per_dispatch_latency_ns")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    let cand_rows = candidate
        .get("per_dispatch_latency_ns")
        .and_then(Json::as_array)
        .unwrap_or(&[]);
    gate.check(!cand_rows.is_empty(), "candidate has latency rows");
    let mut compared = 0usize;
    for row in cand_rows {
        let (Some(batch), Some(pool)) = (f64_at(row, &["batch"]), f64_at(row, &["pool"])) else {
            gate.check(false, "latency row has batch+pool fields");
            continue;
        };
        let Some(base_pool) = base_rows
            .iter()
            .find(|r| f64_at(r, &["batch"]) == Some(batch))
            .and_then(|r| f64_at(r, &["pool"]))
        else {
            // Smoke batch missing from the baseline: nothing to compare.
            continue;
        };
        compared += 1;
        gate.check_latency(
            &format!("pool latency @ batch {batch}"),
            pool,
            base_pool,
            tol,
        );
    }
    gate.check(
        compared > 0,
        "at least one batch count overlaps the baseline",
    );
    gate.check(
        f64_at(candidate, &["pool_stats", "dispatches"]).unwrap_or(0.0) > 0.0,
        "pool actually dispatched work",
    );
}

/// Gate the phase_profile bench: the instrumentation layer must still
/// attribute the solve, for the same version set as the baseline.
fn gate_phases(gate: &mut Gate, baseline: &Json, candidate: &Json, tol: f64) {
    gate.check(
        candidate.get("bench").and_then(Json::as_str) == Some("phase_profile"),
        "candidate is a phase_profile document",
    );
    gate.check(
        candidate.get("instrumented").and_then(Json::as_bool) == Some(true),
        "candidate was built with --features instrument",
    );
    let version_names = |doc: &Json| -> Vec<String> {
        doc.get("versions")
            .and_then(Json::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|v| v.get("version").and_then(Json::as_str).map(String::from))
            .collect()
    };
    let base_versions = version_names(baseline);
    let cand_versions = version_names(candidate);
    gate.check(
        base_versions == cand_versions && !cand_versions.is_empty(),
        format!(
            "version set matches baseline ({})",
            cand_versions.join(", ")
        ),
    );
    for v in candidate
        .get("versions")
        .and_then(Json::as_array)
        .unwrap_or(&[])
    {
        let name = v.get("version").and_then(Json::as_str).unwrap_or("?");
        let cover = f64_at(v, &["phase_cover"]).unwrap_or(0.0);
        gate.check(
            cover >= MIN_PHASE_COVER,
            format!("{name}: phase cover {cover:.3} >= {MIN_PHASE_COVER}"),
        );
        let phases = v
            .get("phases")
            .and_then(Json::as_array)
            .map_or(0, <[Json]>::len);
        gate.check(phases > 0, format!("{name}: at least one phase attributed"));
        let glups = v
            .at(&["roofline", "glups"])
            .map(|g| g.as_f64().unwrap_or(f64::NAN));
        gate.check(
            matches!(glups, Some(g) if g.is_finite() && g > 0.0),
            format!("{name}: roofline GLUPS is finite and positive"),
        );
    }
    let cand_mean = f64_at(candidate, &["pool", "dispatch_ns", "mean"]);
    let base_mean = f64_at(baseline, &["pool", "dispatch_ns", "mean"]);
    gate.check(
        f64_at(candidate, &["pool", "dispatch_ns", "count"]).unwrap_or(0.0) > 0.0,
        "dispatch histogram is populated",
    );
    if let (Some(c), Some(b)) = (cand_mean, base_mean) {
        gate.check_latency("mean instrumented dispatch latency", c, b, tol);
    }
}

/// Gate the chaos_soak campaign: zero tolerance for invariant
/// violations or silent-wrong SDC rounds, in both the fresh smoke run
/// and the committed full-size baseline.
fn gate_chaos(gate: &mut Gate, baseline: &Json, candidate: &Json) {
    gate.check(
        candidate.get("bench").and_then(Json::as_str) == Some("chaos_soak"),
        "candidate is a chaos_soak document",
    );
    gate.check(
        f64_at(candidate, &["violations"]) == Some(0.0),
        "candidate reports zero invariant violations",
    );
    gate.check(
        f64_at(candidate, &["sdc", "silent_wrong"]) == Some(0.0),
        "candidate reports zero silent-wrong SDC rounds",
    );
    let rounds = candidate
        .get("rounds")
        .and_then(Json::as_array)
        .map_or(0, <[Json]>::len);
    gate.check(
        rounds >= 8,
        format!("candidate soaked at least 8 seeds (got {rounds})"),
    );
    gate.check(
        f64_at(baseline, &["violations"]) == Some(0.0),
        "baseline reports zero invariant violations",
    );
    gate.check(
        f64_at(baseline, &["sdc", "silent_wrong"]) == Some(0.0),
        "baseline reports zero silent-wrong SDC rounds",
    );
    gate.check(
        f64_at(baseline, &["sdc", "detected"]).unwrap_or(0.0) > 0.0,
        "baseline campaign actually injected and detected corruption",
    );
}

fn main() -> ExitCode {
    let mut kind = String::new();
    let mut baseline = String::new();
    let mut candidate = String::new();
    let mut tol = 4.0f64;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        let mut grab = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match a.as_str() {
            "--kind" => kind = grab("--kind"),
            "--baseline" => baseline = grab("--baseline"),
            "--candidate" => candidate = grab("--candidate"),
            "--tol" => tol = grab("--tol").parse().expect("--tol needs a number"),
            other => panic!("unknown argument {other:?}"),
        }
    }
    assert!(
        !kind.is_empty() && !baseline.is_empty() && !candidate.is_empty(),
        "usage: bench_gate --kind dispatch|phases|chaos --baseline PATH --candidate PATH [--tol F]"
    );
    assert!(
        tol >= 3.0,
        "tolerances below 3x are noise-chasing; got {tol}"
    );

    let base = load(&baseline);
    let cand = load(&candidate);
    println!("=== bench_gate: {kind} ({candidate} vs {baseline}, tol {tol}x) ===");
    let mut gate = Gate::new();
    match kind.as_str() {
        "dispatch" => gate_dispatch(&mut gate, &base, &cand, tol),
        "phases" => gate_phases(&mut gate, &base, &cand, tol),
        "chaos" => gate_chaos(&mut gate, &base, &cand),
        other => panic!("unknown --kind {other:?} (expected dispatch|phases|chaos)"),
    }
    if gate.failures.is_empty() {
        println!("bench_gate: {} check(s) passed", gate.checks);
        ExitCode::SUCCESS
    } else {
        println!(
            "bench_gate: {}/{} check(s) FAILED",
            gate.failures.len(),
            gate.checks
        );
        ExitCode::FAILURE
    }
}
