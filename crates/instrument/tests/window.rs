//! Property tests for the telemetry primitives the online runtime leans
//! on: log2 histogram bucket boundaries (through the public record →
//! capture path) and windowed-merge associativity.
//!
//! `pp-portable`'s `TestRng` would be a circular dev-dependency, so the
//! file carries the same splitmix-style generator inline.

use pp_instrument::{
    enabled, histogram, window_snapshot, window_tick, HistogramStat, PhaseId, PhaseStat, Snapshot,
    WindowStats,
};

/// splitmix64 — deterministic, no deps; good enough to sweep u64s.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// The documented bucket for a sample: bucket 0 holds only zero
/// (upper bound 1); bucket `b ≥ 1` spans `[2^(b-1), 2^b)` and reports
/// upper bound `2^b`; the overflow bucket reports `u64::MAX`.
fn documented_upper(v: u64) -> u64 {
    if v == 0 {
        return 1;
    }
    let b = 64 - v.leading_zeros() as usize;
    if b >= 64 {
        u64::MAX
    } else {
        1u64 << b
    }
}

fn observed_upper(name: &'static str, v: u64) -> u64 {
    histogram(name).record(v);
    let snap = Snapshot::capture();
    let h = snap.histogram(name).expect("histogram exists");
    assert_eq!(h.count, 1, "{name}: exactly one sample");
    assert_eq!(h.buckets.len(), 1, "{name}: exactly one bucket");
    h.buckets[0].0
}

#[test]
fn bucket_boundaries_land_where_documented() {
    if !enabled() {
        return;
    }
    // The fixed points the satellite names: zero, exact powers of two
    // (both sides of each boundary), and u64::MAX.
    assert_eq!(observed_upper("win.prop.zero", 0), 1);
    assert_eq!(observed_upper("win.prop.one", 1), 2);
    assert_eq!(observed_upper("win.prop.max", u64::MAX), u64::MAX);
    static POW_NAMES: [&str; 4] = ["win.prop.p1", "win.prop.p7", "win.prop.p32", "win.prop.p63"];
    for (name, k) in POW_NAMES.iter().zip([1u32, 7, 32, 63]) {
        let v = 1u64 << k;
        // 2^k is the *inclusive lower* edge of its bucket: upper 2^(k+1).
        assert_eq!(observed_upper(name, v), documented_upper(v), "2^{k}");
        assert_eq!(documented_upper(v - 1), 1u64 << k, "2^{k} - 1");
    }
}

#[test]
fn random_samples_fall_inside_their_reported_bucket() {
    if !enabled() {
        return;
    }
    let mut rng = Rng(0x5eed_0001);
    let h = histogram("win.prop.sweep");
    let mut recorded: Vec<u64> = Vec::new();
    for _ in 0..512 {
        // Bias across magnitudes: random width, then random value.
        let shift = (rng.next() % 64) as u32;
        let v = rng.next() >> shift;
        h.record(v);
        recorded.push(v);
    }
    let snap = Snapshot::capture();
    let stat = snap.histogram("win.prop.sweep").expect("histogram");
    assert_eq!(stat.count, 512);
    // Every reported bucket count matches a hand-binned reference.
    for &(upper, n) in &stat.buckets {
        let expect = recorded
            .iter()
            .filter(|&&v| documented_upper(v) == upper)
            .count() as u64;
        assert_eq!(n, expect, "bucket le={upper}");
    }
    assert_eq!(
        stat.buckets.iter().map(|&(_, n)| n).sum::<u64>(),
        512,
        "no sample lost between buckets"
    );
}

fn random_window(rng: &mut Rng) -> WindowStats {
    let mut phases = Vec::new();
    // Declaration order matters: merge() rebuilds phase lists in
    // `PhaseId::ALL` order, so the generator emits them the same way.
    for phase in [PhaseId::Assemble, PhaseId::SolvePttrs, PhaseId::Dispatch] {
        if rng.next() % 2 == 0 {
            phases.push(PhaseStat {
                phase,
                calls: rng.next() % 1_000 + 1,
                total_ns: rng.next() % 1_000_000,
            });
        }
    }
    let counters = (0..rng.next() % 3)
        .map(|i| (format!("c{i}"), rng.next() % 100 + 1))
        .collect();
    let gauges = (0..rng.next() % 3)
        .map(|i| (format!("g{i}"), (rng.next() % 1_000) as f64 / 8.0))
        .collect();
    let histograms = (0..rng.next() % 3)
        .map(|i| {
            let buckets: Vec<(u64, u64)> = (0..rng.next() % 5 + 1)
                .map(|_| {
                    let b = rng.next() % 63 + 1;
                    (1u64 << b, rng.next() % 50 + 1)
                })
                .collect::<std::collections::BTreeMap<u64, u64>>()
                .into_iter()
                .collect();
            let count = buckets.iter().map(|&(_, n)| n).sum();
            HistogramStat {
                name: format!("h{i}"),
                count,
                sum: rng.next() % 10_000,
                min: buckets.first().map_or(0, |&(u, _)| u / 2),
                max: buckets.last().map_or(0, |&(u, _)| u),
                buckets,
            }
        })
        .collect();
    WindowStats {
        span_ns: rng.next() % 1_000_000,
        epochs: (rng.next() % 8) as usize,
        phases,
        counters,
        gauges,
        histograms,
    }
}

#[test]
fn windowed_merge_is_associative() {
    // Pure plain-data property: holds in both feature modes. Counter,
    // phase, and bucket merges are u64 additions; gauges are
    // last-write-wins; min/max combine as min/max — all associative,
    // and the overlapping-name cases are exercised because the
    // generator draws from a small name pool.
    let mut rng = Rng(0xa550_c1a7e);
    for round in 0..200 {
        let a = random_window(&mut rng);
        let b = random_window(&mut rng);
        let c = random_window(&mut rng);
        let left = a.merge(&b).merge(&c);
        let right = a.merge(&b.merge(&c));
        assert_eq!(left, right, "round {round}");
    }
}

#[test]
fn merge_identity_is_the_empty_window() {
    let mut rng = Rng(0x1d);
    for _ in 0..50 {
        let a = random_window(&mut rng);
        let empty = WindowStats::default();
        assert_eq!(empty.merge(&a), a.merge(&empty));
        let merged = a.merge(&empty);
        // Monotone aggregates survive merging with the identity
        // (gauges too: the identity has none to overwrite with).
        assert_eq!(merged.phases, a.phases);
        assert_eq!(merged.counters, a.counters);
        assert_eq!(merged.histograms.len(), a.histograms.len());
    }
}

#[test]
fn window_sees_only_recent_epochs() {
    if !enabled() {
        // Inert build: the ring does not exist and windows are empty.
        window_tick();
        assert!(window_snapshot(4).is_empty());
        return;
    }
    let h = histogram("win.recent");
    for _ in 0..100 {
        h.record(1 << 4);
    }
    window_tick();
    for _ in 0..7 {
        h.record(1 << 20);
    }
    // Window of 1 epoch: only the 7 post-tick samples.
    let w = window_snapshot(1);
    let stat = w.histogram("win.recent").expect("windowed histogram");
    assert_eq!(stat.count, 7);
    assert_eq!(stat.buckets, vec![(1 << 21, 7)]);
    // Zero epochs means "since process start": both batches visible.
    let wide = window_snapshot(0);
    assert!(wide.histogram("win.recent").expect("wide").count >= 107);
}
