//! Event-timeline data model: what the per-thread flight recorders
//! capture and what the exporters consume.
//!
//! Everything in this module is plain data, compiled in both feature
//! modes so exporters, tests, and fault-dump consumers never need `cfg`.
//! The *recording* side (the ring buffers) lives in [`crate::active`]
//! and compiles to no-ops in [`crate::inert`].

use crate::phase::PhaseId;
use crate::snapshot::{json_escape, Snapshot};
use std::path::{Path, PathBuf};

/// One-off timeline markers that are not phase spans: faults, recovery
/// decisions, and dispatch protocol edges.
///
/// A closed enum for the same reason [`PhaseId`] is one: the hot-path
/// record is an integer store (no strings, no allocation) and every
/// exporter agrees on the vocabulary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum InstantKind {
    /// `VerifiedBuilder` quarantined a lane (zeroed it out).
    LaneQuarantined,
    /// `VerifiedBuilder` accepted a lane after iterative refinement.
    LaneRefined,
    /// `VerifiedBuilder` recovered a lane via the fallback ladder.
    LaneRecovered,
    /// Krylov breakdown: ρ hit zero (Lanczos/CG pivot loss).
    BreakdownRhoZero,
    /// Krylov breakdown: ω hit zero (BiCGStab stabilisation loss).
    BreakdownOmegaZero,
    /// Krylov breakdown: residual went NaN/Inf.
    BreakdownNonFiniteResidual,
    /// Krylov breakdown: residual stagnated for a full window.
    BreakdownStagnation,
    /// Krylov gave up at the iteration cap without converging.
    BreakdownMaxIters,
    /// Recovery ladder ran its re-preconditioning rung.
    RecoveryReprecondition,
    /// Recovery ladder switched Krylov solvers.
    RecoverySolverSwitch,
    /// Recovery ladder fell back to the direct Schur solve.
    RecoveryDirectFallback,
    /// A pool worker committed to a dispatched job.
    DispatchCommit,
    /// The dispatcher revoked an uncommitted job slot.
    DispatchRevoke,
    /// An input was rejected as non-finite before any work ran.
    NonFiniteInput,
    /// Iterative refinement stopped improving before reaching tolerance.
    RefineSaturated,
    /// A [`FaultDump`] was captured here.
    FaultDumped,
    /// The pool watchdog saw a dispatch overrun its deadline by more
    /// than the configured slack.
    WatchdogTrip,
    /// A time budget ran out before the work under it finished.
    BudgetExhausted,
    /// `VerifiedBuilder` degraded its verification under budget
    /// pressure (skipped refinement, sampling, or ladder rungs).
    DegradedVerify,
    /// An ABFT checksum mismatch flagged silent data corruption in a
    /// lane's solve (factor data, right-hand side, or coefficients).
    SdcDetected,
    /// A crash-consistent checkpoint generation was committed to disk.
    CheckpointWritten,
    /// Simulation state was restored from a checkpoint generation.
    CheckpointRestored,
    /// The latency sentinel saw a windowed p99 breach its SLO.
    SloBreach,
}

impl InstantKind {
    /// Number of instant kinds (length of [`InstantKind::ALL`]).
    pub const COUNT: usize = 23;

    /// Every kind, in declaration order (= index order).
    pub const ALL: [InstantKind; Self::COUNT] = [
        InstantKind::LaneQuarantined,
        InstantKind::LaneRefined,
        InstantKind::LaneRecovered,
        InstantKind::BreakdownRhoZero,
        InstantKind::BreakdownOmegaZero,
        InstantKind::BreakdownNonFiniteResidual,
        InstantKind::BreakdownStagnation,
        InstantKind::BreakdownMaxIters,
        InstantKind::RecoveryReprecondition,
        InstantKind::RecoverySolverSwitch,
        InstantKind::RecoveryDirectFallback,
        InstantKind::DispatchCommit,
        InstantKind::DispatchRevoke,
        InstantKind::NonFiniteInput,
        InstantKind::RefineSaturated,
        InstantKind::FaultDumped,
        InstantKind::WatchdogTrip,
        InstantKind::BudgetExhausted,
        InstantKind::DegradedVerify,
        InstantKind::SdcDetected,
        InstantKind::CheckpointWritten,
        InstantKind::CheckpointRestored,
        InstantKind::SloBreach,
    ];

    /// Dense index of this kind (its discriminant).
    #[inline(always)]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Stable snake_case name used in exported traces.
    pub const fn name(self) -> &'static str {
        match self {
            InstantKind::LaneQuarantined => "lane_quarantined",
            InstantKind::LaneRefined => "lane_refined",
            InstantKind::LaneRecovered => "lane_recovered",
            InstantKind::BreakdownRhoZero => "breakdown_rho_zero",
            InstantKind::BreakdownOmegaZero => "breakdown_omega_zero",
            InstantKind::BreakdownNonFiniteResidual => "breakdown_non_finite_residual",
            InstantKind::BreakdownStagnation => "breakdown_stagnation",
            InstantKind::BreakdownMaxIters => "breakdown_max_iters",
            InstantKind::RecoveryReprecondition => "recovery_reprecondition",
            InstantKind::RecoverySolverSwitch => "recovery_solver_switch",
            InstantKind::RecoveryDirectFallback => "recovery_direct_fallback",
            InstantKind::DispatchCommit => "dispatch_commit",
            InstantKind::DispatchRevoke => "dispatch_revoke",
            InstantKind::NonFiniteInput => "non_finite_input",
            InstantKind::RefineSaturated => "refine_saturated",
            InstantKind::FaultDumped => "fault_dumped",
            InstantKind::WatchdogTrip => "watchdog_trip",
            InstantKind::BudgetExhausted => "budget_exhausted",
            InstantKind::DegradedVerify => "degraded_verify",
            InstantKind::SdcDetected => "sdc_detected",
            InstantKind::CheckpointWritten => "checkpoint_written",
            InstantKind::CheckpointRestored => "checkpoint_restored",
            InstantKind::SloBreach => "slo_breach",
        }
    }
}

/// What one timeline event was.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A [`crate::Span`] opened on this phase.
    Begin(PhaseId),
    /// The matching span closed.
    End(PhaseId),
    /// A one-off marker.
    Instant(InstantKind),
}

/// One recorded event: a timestamp (ns since the process trace epoch),
/// what happened, and the batch lane it concerned (if any).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Nanoseconds since the first trace event in the process.
    pub t_ns: u64,
    /// What happened.
    pub kind: TraceEventKind,
    /// Batch lane index, when the event is lane-scoped.
    pub lane: Option<u32>,
}

/// One thread's surviving window of events, oldest first.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ThreadTrace {
    /// Stable per-process recorder id (registration order).
    pub tid: u64,
    /// OS thread name at registration (`pp-pool-N` for workers).
    pub name: String,
    /// Events still in the ring, in record order.
    pub events: Vec<TraceEvent>,
    /// Events overwritten before this snapshot (flight-recorder loss).
    pub dropped: u64,
}

/// A point-in-time copy of every thread's flight recorder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Per-thread windows, in recorder-registration order.
    pub threads: Vec<ThreadTrace>,
    /// Ring capacity (events per thread) the recorders ran with.
    pub capacity: usize,
}

impl Trace {
    /// True when no thread recorded anything.
    pub fn is_empty(&self) -> bool {
        self.threads.iter().all(|t| t.events.is_empty())
    }

    /// Total surviving events across all threads.
    pub fn event_count(&self) -> usize {
        self.threads.iter().map(|t| t.events.len()).sum()
    }

    /// Number of threads with at least one surviving event.
    pub fn threads_with_events(&self) -> usize {
        self.threads.iter().filter(|t| !t.events.is_empty()).count()
    }

    /// Occurrences of the instant `kind` anywhere in the window.
    pub fn instant_count(&self, kind: InstantKind) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == TraceEventKind::Instant(kind))
            .count()
    }

    /// Span begins recorded for `phase` anywhere in the window.
    pub fn begin_count(&self, phase: PhaseId) -> usize {
        self.threads
            .iter()
            .flat_map(|t| &t.events)
            .filter(|e| e.kind == TraceEventKind::Begin(phase))
            .count()
    }
}

/// A flight-recorder dump captured when a fault-handling path fired:
/// the full timeline window, the aggregate metrics at that moment, and
/// the triggering report rendered into `detail`.
///
/// [`FaultDump::to_json`] writes a Perfetto-loadable object (the
/// timeline is the top-level `traceEvents` key; the extra keys are
/// ignored by trace viewers).
#[derive(Debug, Clone)]
pub struct FaultDump {
    /// Which fault path captured the dump (stable identifier, e.g.
    /// `"verified_quarantine"` or `"recovery_escalation"`).
    pub reason: &'static str,
    /// Human-readable rendering of the triggering report
    /// (`LaneReport` lanes, `RecoveryEvent` ladder, …).
    pub detail: String,
    /// Capture time, ns since the process trace epoch.
    pub t_ns: u64,
    /// The timeline window at capture.
    pub trace: Trace,
    /// Aggregate metrics at capture.
    pub metrics: Snapshot,
}

impl FaultDump {
    /// Serialise to a Perfetto-loadable JSON object: `traceEvents`
    /// holds the timeline, `reason`/`detail`/`t_ns`/`metrics` ride
    /// alongside as ignored-by-viewers metadata.
    pub fn to_json(&self) -> String {
        let mut j = String::from("{\n");
        j.push_str(&format!(
            "  \"schema_version\": {},\n",
            crate::window::SCHEMA_VERSION
        ));
        j.push_str(&format!(
            "  \"reason\": \"{}\",\n",
            json_escape(self.reason)
        ));
        j.push_str(&format!(
            "  \"detail\": \"{}\",\n",
            json_escape(&self.detail)
        ));
        j.push_str(&format!("  \"t_ns\": {},\n", self.t_ns));
        j.push_str("  \"traceEvents\": ");
        j.push_str(&crate::export::chrome_trace_events(&self.trace));
        j.push_str(",\n  \"metrics\": ");
        let metrics = self.metrics.to_json();
        j.push_str(metrics.trim_end());
        j.push_str("\n}\n");
        j
    }

    /// Write the dump into `dir` as `fault_dump_<seq>.json`, creating
    /// the directory if needed. Returns the path written.
    ///
    /// # Errors
    /// Propagates filesystem errors from `create_dir_all`/`write`.
    pub fn write_to(&self, dir: &Path, seq: u64) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("fault_dump_{seq:04}.json"));
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_all_is_in_index_order_and_complete() {
        assert_eq!(InstantKind::ALL.len(), InstantKind::COUNT);
        for (i, k) in InstantKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "{}", k.name());
        }
    }

    #[test]
    fn instant_names_are_unique() {
        for (i, a) in InstantKind::ALL.iter().enumerate() {
            for b in &InstantKind::ALL[i + 1..] {
                assert_ne!(a.name(), b.name());
            }
        }
    }

    #[test]
    fn trace_queries_on_empty() {
        let t = Trace::default();
        assert!(t.is_empty());
        assert_eq!(t.event_count(), 0);
        assert_eq!(t.threads_with_events(), 0);
        assert_eq!(t.instant_count(InstantKind::LaneQuarantined), 0);
        assert_eq!(t.begin_count(PhaseId::Dispatch), 0);
    }

    #[test]
    fn fault_dump_serialises_without_trailing_comma() {
        let dump = FaultDump {
            reason: "test_reason",
            detail: "a \"quoted\" detail\nwith newline".into(),
            t_ns: 42,
            trace: Trace::default(),
            metrics: Snapshot::default(),
        };
        let j = dump.to_json();
        assert!(j.contains("\"traceEvents\": ["));
        assert!(j.contains("\\\"quoted\\\""));
        assert!(j.contains("\\n"));
        assert!(j.ends_with("}\n"));
    }
}
