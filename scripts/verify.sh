#!/usr/bin/env bash
# Tier-1 verification: build, full workspace test suite, and lint-clean
# clippy. CI and pre-merge both run exactly this script.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

# Debug profile on purpose: keeps debug_assert! contracts (e.g. the
# solve_lane length preconditions) exercised by the suite.
echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --workspace --no-deps (rustdoc warnings are errors)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps --quiet

echo "verify: all checks passed"
