//! §IV traffic analysis — the Nsight-compute observables of the paper's
//! optimisation narrative, reproduced with the cache simulator on the
//! A100 model at the paper's problem size (n, batch) = (1000, 100000).
//!
//! Paper reference points (A100, cubic uniform):
//!   ideal        : 0.8 GB of right-hand sides (load), 0.8 GB (store)
//!   baseline pttrs: 1.58 GB load / 1.56 GB store, L2 hit 57.4 %
//!   fused kernel : 3.16 GB load / 2.37 GB store (whole fused kernel)
//!   fused + spmv : 1.60 GB load / 1.59 GB store, L2 hit 57.7 %

use pp_bench::gpu_model::{kernel_from_blocks, predict};
use pp_bench::{parse_args, SplineConfig};
use pp_perfmodel::traffic::TrafficReport;
use pp_perfmodel::Device;
use pp_splinesolver::{BuilderVersion, SchurBlocks};

fn main() {
    let args = parse_args(1000, 100_000, 1);
    let cfg = SplineConfig {
        degree: 3,
        uniform: true,
    };
    println!(
        "=== Section IV: simulated memory traffic (model: A100), (n, batch) = ({}, {}) ===\n",
        args.nx, args.nv
    );
    let blocks = SchurBlocks::new(&cfg.space(args.nx)).expect("factorisation");
    let kernel = kernel_from_blocks(&blocks);
    println!(
        "structure: q = {}, border = {}, band = {}, lambda nnz = {}, beta nnz = {} (paper: 2 and 48)\n",
        kernel.q, kernel.border, kernel.q_band, kernel.lambda_nnz, kernel.beta_nnz
    );

    let device = Device::a100();
    let ideal = TrafficReport::ideal_bytes(&kernel, args.nv);
    println!(
        "ideal traffic (one 8-byte load+store per point): {:.2} GB total ({:.2} GB each way)\n",
        ideal / 1e9,
        ideal / 2e9
    );

    println!(
        "{:<16} {:>12} {:>12} {:>12} {:>10} {:>14}",
        "version", "read [GB]", "write [GB]", "total [GB]", "hit rate", "model time"
    );
    for version in BuilderVersion::ALL {
        let p = predict(&device, &blocks, version, args.nv);
        println!(
            "{:<16} {:>12.2} {:>12.2} {:>12.2} {:>9.1}% {:>11.2} ms",
            version.label(),
            p.traffic.mem_read_bytes() / 1e9,
            p.traffic.mem_write_bytes() / 1e9,
            p.traffic.total_bytes() / 1e9,
            p.traffic.hit_rate() * 100.0,
            p.time_s * 1e3
        );
    }
    println!("\npaper (measured on real A100): baseline pttrs alone 1.58/1.56 GB,");
    println!("fused 3.16/2.37 GB, fused+spmv 1.60/1.59 GB; L2 hit rates 52-58 %.");
}
