//! Periodic B-spline spaces: basis evaluation, Greville points, spline
//! evaluation.

use crate::basis::{eval_nonzero_basis, eval_nonzero_basis_deriv};
use crate::error::{Error, Result};
use crate::knots::Breaks;

/// Largest supported spline degree (the paper uses 3, 4 and 5).
pub const MAX_DEGREE: usize = 5;

/// Where the interpolation (collocation) points sit.
///
/// [`PointPlacement::Greville`] is the default and keeps the collocation
/// matrix well conditioned on *any* mesh. [`PointPlacement::KnotLike`]
/// places points on break points (odd degree) or cell midpoints (even
/// degree) — identical to Greville on uniform meshes, but degrading with
/// mesh grading, which reproduces the conditioning penalty the paper's
/// non-uniform rows show (see EXPERIMENTS.md on Table IV).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PointPlacement {
    /// Greville abscissae `(τ_{k+1} + … + τ_{k+d})/d` (default).
    #[default]
    Greville,
    /// Break points (odd degree) / cell midpoints (even degree).
    KnotLike,
}

/// A periodic spline space of a given degree over a set of break points.
///
/// The space has exactly `n = breaks.num_cells()` degrees of freedom;
/// periodic basis function `k` is the wrap-around identification
/// `B_k = Σ_p B^ext_{k + p·n}` of the extended-knot B-splines.
#[derive(Debug, Clone)]
pub struct PeriodicSplineSpace {
    degree: usize,
    breaks: Breaks,
    /// Extended knot vector `τ_0 … τ_{n+2d}` with `d` periodically wrapped
    /// intervals on each side: `τ_j = t_{j−d}` extended by ±L.
    ext_knots: Vec<f64>,
    n: usize,
    placement: PointPlacement,
}

impl PeriodicSplineSpace {
    /// Build a periodic space. `degree` must be in `1..=5` and the mesh
    /// must have more than `2·degree` cells (so that periodic images of a
    /// basis function never overlap themselves).
    pub fn new(breaks: Breaks, degree: usize) -> Result<Self> {
        Self::with_placement(breaks, degree, PointPlacement::Greville)
    }

    /// Build a periodic space with an explicit interpolation-point
    /// placement.
    pub fn with_placement(
        breaks: Breaks,
        degree: usize,
        placement: PointPlacement,
    ) -> Result<Self> {
        if degree == 0 || degree > MAX_DEGREE {
            return Err(Error::UnsupportedDegree { degree });
        }
        let n = breaks.num_cells();
        if n <= 2 * degree {
            return Err(Error::TooFewCells { cells: n, degree });
        }
        let l = breaks.period();
        let t = breaks.points();
        let mut ext_knots = Vec::with_capacity(n + 2 * degree + 1);
        for j in 0..(n + 2 * degree + 1) {
            let idx = j as isize - degree as isize;
            let tau = if idx < 0 {
                t[(idx + n as isize) as usize] - l
            } else if idx > n as isize {
                t[(idx - n as isize) as usize] + l
            } else {
                t[idx as usize]
            };
            ext_knots.push(tau);
        }
        Ok(Self {
            degree,
            breaks,
            ext_knots,
            n,
            placement,
        })
    }

    /// The active interpolation-point placement.
    pub fn placement(&self) -> PointPlacement {
        self.placement
    }

    /// Spline degree.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The underlying break points.
    pub fn breaks(&self) -> &Breaks {
        &self.breaks
    }

    /// Number of periodic basis functions / degrees of freedom.
    pub fn num_basis(&self) -> usize {
        self.n
    }

    /// The extended knot vector (mainly for tests and diagnostics).
    pub fn ext_knots(&self) -> &[f64] {
        &self.ext_knots
    }

    /// Map `x` into the fundamental period `[x_min, x_max)`.
    #[inline]
    pub fn wrap(&self, x: f64) -> f64 {
        let x0 = self.breaks.x_min();
        let l = self.breaks.period();
        let mut w = x - l * ((x - x0) / l).floor();
        // Guard against floating-point landing exactly on the right edge.
        if w >= x0 + l {
            w = x0;
        }
        w
    }

    /// Index of the cell containing `wrap(x)`.
    #[inline]
    pub fn cell_of(&self, x: f64) -> usize {
        let w = self.wrap(x);
        let t = self.breaks.points();
        if self.breaks.is_uniform() {
            let h = self.breaks.period() / self.n as f64;
            let c = ((w - self.breaks.x_min()) / h) as usize;
            c.min(self.n - 1)
        } else {
            let c = t.partition_point(|&tk| tk <= w);
            c.saturating_sub(1).min(self.n - 1)
        }
    }

    /// Evaluate the `degree + 1` non-vanishing basis functions at `x`.
    ///
    /// Returns the containing cell `c`; `out[m]` holds the value of the
    /// periodic basis function with index [`Self::coef_index`]`(c, m)`.
    #[inline]
    pub fn eval_basis(&self, x: f64, out: &mut [f64; MAX_DEGREE + 1]) -> usize {
        let w = self.wrap(x);
        let cell = self.cell_of(w);
        let span = cell + self.degree;
        eval_nonzero_basis(&self.ext_knots, self.degree, span, w, out.as_mut_slice());
        cell
    }

    /// Evaluate the derivatives of the non-vanishing basis functions at
    /// `x`; indexing as in [`Self::eval_basis`].
    #[inline]
    pub fn eval_basis_deriv(&self, x: f64, out: &mut [f64; MAX_DEGREE + 1]) -> usize {
        let w = self.wrap(x);
        let cell = self.cell_of(w);
        let span = cell + self.degree;
        eval_nonzero_basis_deriv(&self.ext_knots, self.degree, span, w, out.as_mut_slice());
        cell
    }

    /// Periodic coefficient index of local basis `m` in cell `cell`.
    #[inline]
    pub fn coef_index(&self, cell: usize, m: usize) -> usize {
        (cell + m) % self.n
    }

    /// Greville abscissa of periodic basis `k`, wrapped into the domain:
    /// `g_k = (τ_{k+1} + … + τ_{k+d}) / d`.
    ///
    /// For uniform meshes this lands on break points (odd degree) or cell
    /// midpoints (even degree) — the alignment that keeps the
    /// interpolation matrix banded apart from thin periodic corners.
    pub fn greville(&self, k: usize) -> f64 {
        debug_assert!(k < self.n);
        let d = self.degree;
        let s: f64 = self.ext_knots[k + 1..=k + d].iter().sum();
        self.wrap(s / d as f64)
    }

    /// Interpolation point of basis `k` under the active placement.
    ///
    /// `KnotLike` aligns with Greville on uniform meshes: for odd degree
    /// the break point `t_{k−(d−1)/2}`, for even degree the midpoint of
    /// cell `k − d/2` (both wrapped).
    pub fn interpolation_point(&self, k: usize) -> f64 {
        match self.placement {
            PointPlacement::Greville => self.greville(k),
            PointPlacement::KnotLike => {
                let t = self.breaks.points();
                let n = self.n as isize;
                let d = self.degree as isize;
                if self.degree % 2 == 1 {
                    let idx = (k as isize - (d - 1) / 2).rem_euclid(n) as usize;
                    self.wrap(t[idx])
                } else {
                    let cell = (k as isize - d / 2).rem_euclid(n) as usize;
                    self.wrap(0.5 * (t[cell] + t[cell + 1]))
                }
            }
        }
    }

    /// The `n` interpolation points, in basis order.
    pub fn interpolation_points(&self) -> Vec<f64> {
        (0..self.n).map(|k| self.interpolation_point(k)).collect()
    }

    /// Evaluate the periodic spline with coefficients `coefs` at `x`.
    ///
    /// # Panics
    /// Panics if `coefs.len() != num_basis()`.
    #[inline]
    pub fn eval(&self, coefs: &[f64], x: f64) -> f64 {
        assert_eq!(coefs.len(), self.n, "eval: coefficient count");
        let mut vals = [0.0; MAX_DEGREE + 1];
        let cell = self.eval_basis(x, &mut vals);
        let mut s = 0.0;
        for m in 0..=self.degree {
            s += vals[m] * coefs[self.coef_index(cell, m)];
        }
        s
    }

    /// Evaluate the spline derivative at `x`.
    ///
    /// # Panics
    /// Panics if `coefs.len() != num_basis()`.
    pub fn eval_deriv(&self, coefs: &[f64], x: f64) -> f64 {
        assert_eq!(coefs.len(), self.n, "eval_deriv: coefficient count");
        let mut vals = [0.0; MAX_DEGREE + 1];
        let cell = self.eval_basis_deriv(x, &mut vals);
        let mut s = 0.0;
        for m in 0..=self.degree {
            s += vals[m] * coefs[self.coef_index(cell, m)];
        }
        s
    }

    /// Integral of the periodic spline over one period:
    /// `∫ s = Σ_k c_k · w_k` with `w_k = (τ_{k+d+1} − τ_k)/(d+1)` (the
    /// classic B-spline integral; the wrapped pieces of each periodic
    /// basis tile exactly one support's worth of measure). Used for
    /// conservation diagnostics.
    ///
    /// # Panics
    /// Panics if `coefs.len() != num_basis()`.
    pub fn integrate(&self, coefs: &[f64]) -> f64 {
        assert_eq!(coefs.len(), self.n, "integrate: coefficient count");
        let d = self.degree;
        let mut total = 0.0;
        for k in 0..self.n {
            let w = (self.ext_knots[k + d + 1] - self.ext_knots[k]) / (d as f64 + 1.0);
            total += w * coefs[k];
        }
        total
    }

    /// Solve the interpolation problem with a dense reference solver.
    ///
    /// `values[k]` is the target at interpolation point `k`. This is the
    /// slow, obviously-correct path used by tests and examples; the
    /// production path is the Schur-complement builder in
    /// `pp-splinesolver`.
    pub fn interpolate_naive(&self, values: &[f64]) -> Result<Vec<f64>> {
        if values.len() != self.n {
            return Err(Error::LengthMismatch {
                op: "interpolate_naive",
                expected: self.n,
                actual: values.len(),
            });
        }
        let a = crate::matrix::assemble_interpolation_matrix(self);
        pp_linalg::naive::solve_dense(&a, values).map_err(|_| Error::SingularMatrix)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::TestRng;

    fn uniform_space(n: usize, degree: usize) -> PeriodicSplineSpace {
        PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), degree).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(matches!(
            PeriodicSplineSpace::new(Breaks::uniform(8, 0.0, 1.0).unwrap(), 0),
            Err(Error::UnsupportedDegree { .. })
        ));
        assert!(matches!(
            PeriodicSplineSpace::new(Breaks::uniform(8, 0.0, 1.0).unwrap(), 6),
            Err(Error::UnsupportedDegree { .. })
        ));
        assert!(matches!(
            PeriodicSplineSpace::new(Breaks::uniform(6, 0.0, 1.0).unwrap(), 3),
            Err(Error::TooFewCells { .. })
        ));
    }

    #[test]
    fn ext_knots_are_periodic_extension() {
        let s = uniform_space(8, 3);
        let k = s.ext_knots();
        assert_eq!(k.len(), 8 + 7);
        // τ_d == t_0, τ_{d+n} == t_n.
        assert_eq!(k[3], 0.0);
        assert!((k[3 + 8] - 1.0).abs() < 1e-15);
        // Wrapped left knots are negative mirror of right end.
        assert!((k[2] - (-0.125)).abs() < 1e-15);
        // Monotone.
        for w in k.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn wrap_and_cell() {
        let s = uniform_space(10, 3);
        assert!((s.wrap(1.23) - 0.23).abs() < 1e-14);
        assert!((s.wrap(-0.1) - 0.9).abs() < 1e-14);
        assert_eq!(s.cell_of(0.0), 0);
        assert_eq!(s.cell_of(0.05), 0);
        assert_eq!(s.cell_of(0.95), 9);
        assert_eq!(s.cell_of(1.0), 0); // wraps
        assert_eq!(s.cell_of(0.999999999), 9);
    }

    #[test]
    fn cell_of_nonuniform_matches_scan() {
        let s = PeriodicSplineSpace::new(Breaks::graded(20, 0.0, 2.0, 0.7).unwrap(), 3).unwrap();
        for i in 0..200 {
            let x = 2.0 * (i as f64 + 0.5) / 200.0;
            let c = s.cell_of(x);
            let t = s.breaks().points();
            assert!(t[c] <= x && x <= t[c + 1], "x={x} c={c}");
        }
    }

    #[test]
    fn periodic_partition_of_unity() {
        for degree in 1..=5 {
            for breaks in [
                Breaks::uniform(12, 0.0, 1.0).unwrap(),
                Breaks::graded(12, 0.0, 1.0, 0.6).unwrap(),
            ] {
                let s = PeriodicSplineSpace::new(breaks, degree).unwrap();
                let ones = vec![1.0; s.num_basis()];
                for i in 0..97 {
                    let x = i as f64 / 97.0;
                    assert!((s.eval(&ones, x) - 1.0).abs() < 1e-12, "deg {degree} x {x}");
                }
            }
        }
    }

    #[test]
    fn greville_points_uniform_degree3_are_break_points() {
        let s = uniform_space(8, 3);
        // g_k = t_{k-1} wrapped.
        let pts = s.interpolation_points();
        assert!((pts[0] - 0.875).abs() < 1e-14); // t_{-1} wraps to t_7
        assert!((pts[1] - 0.0).abs() < 1e-14);
        assert!((pts[4] - 0.375).abs() < 1e-14);
    }

    #[test]
    fn greville_points_uniform_degree4_are_midpoints() {
        let s = uniform_space(10, 4);
        let pts = s.interpolation_points();
        let h = 0.1;
        for &p in &pts {
            // Distance to nearest break point should be h/2.
            let r = (p / h).fract();
            assert!((r - 0.5).abs() < 1e-10, "{p}");
        }
    }

    #[test]
    fn spline_evaluation_is_periodic() {
        let s = uniform_space(16, 3);
        let coefs: Vec<f64> = (0..16).map(|i| ((i * 7) % 5) as f64).collect();
        for i in 0..20 {
            let x = i as f64 / 20.0;
            assert!((s.eval(&coefs, x) - s.eval(&coefs, x + 3.0)).abs() < 1e-12);
            assert!((s.eval(&coefs, x) - s.eval(&coefs, x - 2.0)).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_reproduces_values_at_points() {
        for degree in [3, 4, 5] {
            for breaks in [
                Breaks::uniform(20, 0.0, 1.0).unwrap(),
                Breaks::graded(20, 0.0, 1.0, 0.5).unwrap(),
            ] {
                let s = PeriodicSplineSpace::new(breaks, degree).unwrap();
                let pts = s.interpolation_points();
                let values: Vec<f64> = pts
                    .iter()
                    .map(|&x| (std::f64::consts::TAU * x).sin() + 0.3)
                    .collect();
                let coefs = s.interpolate_naive(&values).unwrap();
                for (k, &x) in pts.iter().enumerate() {
                    assert!(
                        (s.eval(&coefs, x) - values[k]).abs() < 1e-11,
                        "deg {degree} point {k}"
                    );
                }
            }
        }
    }

    #[test]
    fn interpolation_converges_spectrally_with_degree() {
        // Interpolating a smooth periodic function: error should fall
        // rapidly as h^(degree+1).
        let f = |x: f64| (std::f64::consts::TAU * x).sin();
        let mut errors = Vec::new();
        for degree in [3, 5] {
            let s = uniform_space(32, degree);
            let values: Vec<f64> = s.interpolation_points().iter().map(|&x| f(x)).collect();
            let coefs = s.interpolate_naive(&values).unwrap();
            let err = (0..301)
                .map(|i| {
                    let x = i as f64 / 301.0;
                    (s.eval(&coefs, x) - f(x)).abs()
                })
                .fold(0.0, f64::max);
            errors.push(err);
        }
        // Cubic error ~ h^4·(2π)^4 ≈ 2e-5 on 32 cells; quintic ~ h^6·(2π)^6.
        assert!(errors[0] < 1e-4, "{errors:?}");
        assert!(errors[1] < errors[0] / 10.0, "{errors:?}");
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let s = uniform_space(24, 4);
        let coefs: Vec<f64> = (0..24)
            .map(|i| (std::f64::consts::TAU * i as f64 / 24.0).cos())
            .collect();
        let eps = 1e-6;
        for i in 0..50 {
            let x = (i as f64 + 0.3) / 50.0;
            let d = s.eval_deriv(&coefs, x);
            let fd = (s.eval(&coefs, x + eps) - s.eval(&coefs, x - eps)) / (2.0 * eps);
            assert!((d - fd).abs() < 1e-6, "x={x}: {d} vs {fd}");
        }
    }

    #[test]
    fn knotlike_placement_equals_greville_on_uniform_meshes() {
        for degree in [3usize, 4, 5] {
            let g = uniform_space(16, degree);
            let k = PeriodicSplineSpace::with_placement(
                Breaks::uniform(16, 0.0, 1.0).unwrap(),
                degree,
                PointPlacement::KnotLike,
            )
            .unwrap();
            let pg = g.interpolation_points();
            let pk = k.interpolation_points();
            for (a, b) in pg.iter().zip(&pk) {
                assert!((a - b).abs() < 1e-13, "deg {degree}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn knotlike_placement_solvable_on_graded_meshes() {
        for degree in [3usize, 4, 5] {
            let s = PeriodicSplineSpace::with_placement(
                Breaks::graded(20, 0.0, 1.0, 0.8).unwrap(),
                degree,
                PointPlacement::KnotLike,
            )
            .unwrap();
            assert_eq!(s.placement(), PointPlacement::KnotLike);
            let pts = s.interpolation_points();
            let values: Vec<f64> = pts
                .iter()
                .map(|&x| (std::f64::consts::TAU * x).sin())
                .collect();
            let coefs = s.interpolate_naive(&values).unwrap();
            for (k, &x) in pts.iter().enumerate() {
                assert!(
                    (s.eval(&coefs, x) - values[k]).abs() < 1e-10,
                    "deg {degree}"
                );
            }
        }
    }

    #[test]
    fn integrate_constant_gives_period() {
        for degree in 1..=5 {
            for breaks in [
                Breaks::uniform(16, 0.0, 2.0).unwrap(),
                Breaks::graded(16, 0.0, 2.0, 0.5).unwrap(),
            ] {
                let s = PeriodicSplineSpace::new(breaks, degree).unwrap();
                let ones = vec![1.0; s.num_basis()];
                assert!(
                    (s.integrate(&ones) - 2.0).abs() < 1e-12,
                    "deg {degree}: {}",
                    s.integrate(&ones)
                );
            }
        }
    }

    #[test]
    fn integrate_matches_quadrature() {
        let s = uniform_space(32, 3);
        let pts = s.interpolation_points();
        let values: Vec<f64> = pts
            .iter()
            .map(|&x| (std::f64::consts::TAU * x).sin() + 1.5)
            .collect();
        let coefs = s.interpolate_naive(&values).unwrap();
        // Fine midpoint quadrature of the spline itself.
        let m = 20_000;
        let quad: f64 = (0..m)
            .map(|i| s.eval(&coefs, (i as f64 + 0.5) / m as f64))
            .sum::<f64>()
            / m as f64;
        assert!((s.integrate(&coefs) - quad).abs() < 1e-9);
    }

    /// Degree-d splines reproduce constants exactly everywhere, for
    /// every degree and mesh grading.
    #[test]
    fn prop_constant_reproduction() {
        let mut g = TestRng::seed_from_u64(0x5EED_E399);
        for _ in 0..64 {
            let degree = g.gen_range(1usize..=5);
            let n = g.gen_range(12usize..40);
            let strength = g.gen_range(0.0f64..0.9);
            let x = g.gen_range(-5.0f64..5.0);
            let breaks = Breaks::graded(n, 0.0, 1.0, strength).unwrap();
            let s = PeriodicSplineSpace::new(breaks, degree).unwrap();
            let c = vec![2.5; s.num_basis()];
            assert!((s.eval(&c, x) - 2.5).abs() < 1e-11);
        }
    }

    /// Spline evaluation is linear in the coefficients.
    #[test]
    fn prop_linearity() {
        let mut g = TestRng::seed_from_u64(0x5EED_7EEF);
        for _ in 0..64 {
            let n = g.gen_range(12usize..30);
            let x = g.gen_range(0.0f64..1.0);
            let seed = g.gen_range(0u64..100);
            let mut rng = TestRng::seed_from_u64(seed);
            let s = uniform_space(n, 3);
            let a: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
            let sum: Vec<f64> = a.iter().zip(&b).map(|(u, v)| u + 2.0 * v).collect();
            let lhs = s.eval(&sum, x);
            let rhs = s.eval(&a, x) + 2.0 * s.eval(&b, x);
            assert!((lhs - rhs).abs() < 1e-12);
        }
    }
}
