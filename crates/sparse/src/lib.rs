//! # pp-sparse — sparse matrix storage and kernels
//!
//! Three storage formats and the sparse kernels the paper's optimisation
//! story revolves around:
//!
//! * [`Coo`] — COOrdinate-list storage. §IV-D of the paper stores the
//!   spline matrix's corner blocks in COO *"in order to avoid implementing
//!   kernels for both CSR and CSC formats"*; its Listing 5/6 COO class and
//!   per-lane `spmv` loop are reproduced here ([`Coo::spmv_lane`]).
//! * [`Csr`] — Compressed Sparse Row, the format the Ginkgo-style iterative
//!   backend (`pp-iterative`) consumes, with a row-parallel [`Csr::spmv`].
//! * [`Csc`] — Compressed Sparse Column, for completeness and for
//!   column-oriented assembly.
//!
//! [`pattern::SparsityPattern`] reproduces the paper's Fig. 1 (the sparsity
//! pattern of the degree-3 uniform spline matrix) and detects bandwidths,
//! which the spline builder uses to classify its sub-matrix `Q` (Table I).

// Numerical kernels here deliberately use index loops (matching the
// LAPACK-style algorithms they implement) and NaN-rejecting negated
// comparisons; silence the corresponding style lints crate-wide.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::int_plus_one)]

pub mod coo;
pub mod csc;
pub mod csr;
pub mod error;
pub mod pattern;

pub use coo::Coo;
pub use csc::Csc;
pub use csr::Csr;
pub use error::{Error, Result};
pub use pattern::SparsityPattern;
