//! A set-associative, write-back, write-allocate LRU cache simulator.
//!
//! Stands in for "NVIDIA Nsight compute" in §IV of the paper: replaying a
//! kernel's address trace through a cache with a device's geometry yields
//! the bytes moved to/from memory and the hit rates that the paper reads
//! off the profiler.

/// Whether an access reads or writes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Read access.
    Load,
    /// Write access.
    Store,
}

/// Counters accumulated over a trace replay.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CacheStats {
    /// Number of load accesses.
    pub loads: u64,
    /// Number of store accesses.
    pub stores: u64,
    /// Load hits.
    pub load_hits: u64,
    /// Store hits.
    pub store_hits: u64,
    /// Bytes fetched from memory (misses × line, including write
    /// allocations).
    pub mem_read_bytes: u64,
    /// Bytes written back to memory (dirty evictions × line).
    pub mem_write_bytes: u64,
}

impl CacheStats {
    /// Overall hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.loads + self.stores;
        if total == 0 {
            return 0.0;
        }
        (self.load_hits + self.store_hits) as f64 / total as f64
    }

    /// Field-wise difference `self − earlier` (for phase snapshots).
    pub fn minus(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            load_hits: self.load_hits - earlier.load_hits,
            store_hits: self.store_hits - earlier.store_hits,
            mem_read_bytes: self.mem_read_bytes - earlier.mem_read_bytes,
            mem_write_bytes: self.mem_write_bytes - earlier.mem_write_bytes,
        }
    }

    /// Field-wise accumulation.
    pub fn add(&mut self, other: &CacheStats) {
        self.loads += other.loads;
        self.stores += other.stores;
        self.load_hits += other.load_hits;
        self.store_hits += other.store_hits;
        self.mem_read_bytes += other.mem_read_bytes;
        self.mem_write_bytes += other.mem_write_bytes;
    }

    /// Load hit rate.
    pub fn load_hit_rate(&self) -> f64 {
        if self.loads == 0 {
            0.0
        } else {
            self.load_hits as f64 / self.loads as f64
        }
    }
}

/// One cache level.
///
/// ```
/// use pp_perfmodel::{AccessKind, Cache};
///
/// let mut c = Cache::new(4096, 64, 4);
/// assert!(!c.access(0, AccessKind::Load));  // cold miss fetches the line
/// assert!(c.access(32, AccessKind::Store)); // same line: hit
/// assert_eq!(c.stats().mem_read_bytes, 64);
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    line_bytes: usize,
    num_sets: usize,
    assoc: usize,
    /// Per set: most-recent-first list of `(tag, dirty)`.
    sets: Vec<Vec<(u64, bool)>>,
    stats: CacheStats,
}

impl Cache {
    /// A cache of `size_bytes` capacity with `line_bytes` lines and
    /// `assoc`-way sets. Size is rounded down to a whole number of sets;
    /// a degenerate geometry gets one set (fully associative).
    ///
    /// # Panics
    /// Panics if `line_bytes` or `assoc` is zero.
    pub fn new(size_bytes: usize, line_bytes: usize, assoc: usize) -> Self {
        assert!(line_bytes > 0 && assoc > 0, "invalid cache geometry");
        let lines = (size_bytes / line_bytes).max(assoc);
        let num_sets = (lines / assoc).max(1);
        Self {
            line_bytes,
            num_sets,
            assoc,
            sets: vec![Vec::with_capacity(assoc); num_sets],
            stats: CacheStats::default(),
        }
    }

    /// Line size in bytes.
    pub fn line_bytes(&self) -> usize {
        self.line_bytes
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.num_sets * self.assoc * self.line_bytes
    }

    /// Access one byte address. Returns `true` on hit.
    pub fn access(&mut self, addr: u64, kind: AccessKind) -> bool {
        let line = addr / self.line_bytes as u64;
        // XOR-folded set index: real shared caches hash addresses so that
        // power-of-two strides (like lane-contiguous batched vectors) do
        // not collapse onto a handful of sets. Sequential lines still map
        // one-to-one onto sets within each num_sets-sized block.
        let set_idx = ((line ^ (line / self.num_sets as u64)) % self.num_sets as u64) as usize;
        let set = &mut self.sets[set_idx];
        match kind {
            AccessKind::Load => self.stats.loads += 1,
            AccessKind::Store => self.stats.stores += 1,
        }

        if let Some(pos) = set.iter().position(|&(tag, _)| tag == line) {
            let (tag, dirty) = set.remove(pos);
            set.insert(0, (tag, dirty || kind == AccessKind::Store));
            match kind {
                AccessKind::Load => self.stats.load_hits += 1,
                AccessKind::Store => self.stats.store_hits += 1,
            }
            return true;
        }

        // Miss: fetch the line (write-allocate), evict LRU if full.
        self.stats.mem_read_bytes += self.line_bytes as u64;
        if set.len() == self.assoc {
            let (_, dirty) = set.pop().expect("set is full");
            if dirty {
                self.stats.mem_write_bytes += self.line_bytes as u64;
            }
        }
        set.insert(0, (line, kind == AccessKind::Store));
        false
    }

    /// Access a contiguous range of `len` bytes starting at `addr`
    /// (touches every line the range covers once).
    pub fn access_range(&mut self, addr: u64, len: usize, kind: AccessKind) {
        if len == 0 {
            return;
        }
        let first = addr / self.line_bytes as u64;
        let last = (addr + len as u64 - 1) / self.line_bytes as u64;
        for line in first..=last {
            self.access(line * self.line_bytes as u64, kind);
        }
    }

    /// Flush: write back all dirty lines and empty the cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            for &(_, dirty) in set.iter() {
                if dirty {
                    self.stats.mem_write_bytes += self.line_bytes as u64;
                }
            }
            set.clear();
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset statistics (keeps cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 64, 4);
        assert!(!c.access(0, AccessKind::Load)); // cold miss
        assert!(c.access(8, AccessKind::Load)); // same line
        assert!(c.access(0, AccessKind::Store));
        let s = c.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.load_hits, 1);
        assert_eq!(s.store_hits, 1);
        assert_eq!(s.mem_read_bytes, 64);
    }

    #[test]
    fn capacity_eviction_and_writeback() {
        // Fully associative, 2 lines of 64 B.
        let mut c = Cache::new(128, 64, 2);
        c.access(0, AccessKind::Store); // line 0 dirty
        c.access(64, AccessKind::Load); // line 1
        c.access(128, AccessKind::Load); // evicts line 0 (LRU, dirty)
        let s = c.stats();
        assert_eq!(s.mem_write_bytes, 64, "dirty eviction must write back");
        assert_eq!(s.mem_read_bytes, 3 * 64);
        // Line 0 is gone.
        assert!(!c.access(0, AccessKind::Load));
    }

    #[test]
    fn lru_order_is_respected() {
        let mut c = Cache::new(128, 64, 2);
        c.access(0, AccessKind::Load); // A
        c.access(64, AccessKind::Load); // B
        c.access(0, AccessKind::Load); // touch A -> MRU
        c.access(128, AccessKind::Load); // evicts B
        assert!(c.access(0, AccessKind::Load), "A must survive");
        assert!(!c.access(64, AccessKind::Load), "B must be evicted");
    }

    #[test]
    fn streaming_larger_than_cache_misses_every_line() {
        let mut c = Cache::new(4096, 64, 8);
        let lines = 1000;
        for i in 0..lines {
            c.access(i * 64, AccessKind::Load);
        }
        let s = c.stats();
        assert_eq!(s.load_hits, 0);
        assert_eq!(s.mem_read_bytes, lines * 64);
    }

    #[test]
    fn working_set_within_cache_hits_on_second_pass() {
        let mut c = Cache::new(64 * 1024, 64, 8);
        for pass in 0..2 {
            for i in 0..512 {
                let hit = c.access(i * 64, AccessKind::Load);
                if pass == 1 {
                    assert!(hit, "second pass over a resident set must hit");
                }
            }
        }
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn access_range_touches_every_line_once() {
        let mut c = Cache::new(8192, 64, 8);
        c.access_range(30, 200, AccessKind::Load); // spans lines 0..=3
        assert_eq!(c.stats().loads, 4);
        c.access_range(0, 0, AccessKind::Load);
        assert_eq!(c.stats().loads, 4);
    }

    #[test]
    fn flush_writes_dirty_lines() {
        let mut c = Cache::new(1024, 64, 4);
        c.access(0, AccessKind::Store);
        c.access(64, AccessKind::Load);
        c.flush();
        assert_eq!(c.stats().mem_write_bytes, 64);
        assert!(!c.access(0, AccessKind::Load), "flushed lines are cold");
    }

    #[test]
    fn geometry() {
        let c = Cache::new(40 * 1024 * 1024, 128, 16);
        assert_eq!(c.capacity_bytes(), 40 * 1024 * 1024);
        assert_eq!(c.line_bytes(), 128);
    }
}
