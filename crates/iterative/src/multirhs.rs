//! Chunked multi-right-hand-side driver — the paper's Listing 3 — with
//! per-lane fault isolation.
//!
//! Ginkgo could not hold all ~10⁵ right-hand sides at once (memory) and its
//! CUDA/HIP backends cap the batch at 65535, so the paper *pipelines along
//! the batch direction*: right-hand sides are processed in chunks
//! (`cols_per_chunk` = 8192 on CPUs, 65535 on GPUs), each chunk copied into
//! a contiguous buffer, solved, and copied back over the input (in-place
//! semantics). The previous time step's solution is used as the initial
//! guess (warm start), which the paper notes makes a good guess for a
//! slowly-evolving advection problem.
//!
//! **Fault isolation.** Lanes are independent systems; one poisoned column
//! (NaN right-hand side, Krylov breakdown, stagnation) must not doom its
//! chunk. Each lane therefore ends in a typed [`LaneOutcome`] —
//! [`Converged`](LaneOutcome::Converged), [`Broke`](LaneOutcome::Broke)
//! with its [`BreakdownKind`], [`Stalled`](LaneOutcome::Stalled), or, when
//! a wall-clock [`Budget`](pp_portable::Budget) attached to the
//! [`StopCriteria`] runs out, [`Partial`](LaneOutcome::Partial) with the
//! relative residual the lane actually achieved — and healthy lanes keep
//! their solutions regardless of what their neighbours did. The per-lane records land in the [`ConvergenceLogger`] in lane
//! order, ready for the recovery ladder of `pp-splinesolver` to retry the
//! casualties.

use crate::breakdown::BreakdownKind;
use crate::logger::ConvergenceLogger;
use crate::precond::Preconditioner;
use crate::solver::{IterativeSolver, SolveResult};
use crate::stop::StopCriteria;
use pp_portable::instrument::{counter, trace_instant_lane, Counter, InstantKind, PhaseId, Span};
use pp_portable::{parallel_for_each_mut, parallel_for_each_mut_budgeted, Matrix};
use pp_sparse::Csr;
use std::sync::OnceLock;

/// Chunk size the paper uses on CPUs.
pub const CPU_COLS_PER_CHUNK: usize = 8192;
/// Chunk size the paper uses on GPUs (the CUDA/HIP grid-dimension limit).
pub const GPU_COLS_PER_CHUNK: usize = 65535;

/// How one batch lane (one right-hand-side column) ended.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LaneOutcome {
    /// The lane met the stopping criterion; its solution is in place.
    Converged,
    /// A hard Krylov breakdown ([`BreakdownKind::is_hard`]); the lane's
    /// buffer holds the last iterate, which may be garbage (NaN for
    /// poisoned inputs).
    Broke(BreakdownKind),
    /// The lane ran out of iterations or stagnated with a finite
    /// residual; the buffer holds the best partial iterate.
    Stalled,
    /// The *wall-clock* budget ran out before the lane converged
    /// ([`BreakdownKind::BudgetExhausted`]). The buffer holds the
    /// partial iterate reached at the deadline (for lanes never started,
    /// the initial guess) and `relative_residual` is the residual that
    /// iterate actually achieves.
    Partial {
        /// Relative residual `‖A x − b‖ / ‖b‖` of the iterate left in
        /// the lane buffer.
        relative_residual: f64,
    },
}

impl LaneOutcome {
    /// Classify a solve result.
    pub fn from_result(result: &SolveResult) -> Self {
        if result.converged {
            LaneOutcome::Converged
        } else {
            match result.breakdown {
                Some(BreakdownKind::BudgetExhausted) => LaneOutcome::Partial {
                    relative_residual: result.relative_residual,
                },
                Some(kind) if kind.is_hard() => LaneOutcome::Broke(kind),
                // Stagnation / MaxIters / missing diagnosis: soft stall.
                _ => LaneOutcome::Stalled,
            }
        }
    }

    /// `true` for [`LaneOutcome::Converged`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, LaneOutcome::Converged)
    }
}

/// Cached per-outcome lane counters.
struct LaneMetrics {
    converged: Counter,
    broke: Counter,
    stalled: Counter,
    partial: Counter,
}

impl LaneMetrics {
    fn of(&self, outcome: LaneOutcome) -> &Counter {
        match outcome {
            LaneOutcome::Converged => &self.converged,
            LaneOutcome::Broke(_) => &self.broke,
            LaneOutcome::Stalled => &self.stalled,
            LaneOutcome::Partial { .. } => &self.partial,
        }
    }
}

fn lane_metrics() -> &'static LaneMetrics {
    static METRICS: OnceLock<LaneMetrics> = OnceLock::new();
    METRICS.get_or_init(|| LaneMetrics {
        converged: counter("krylov.lanes.converged"),
        broke: counter("krylov.lanes.broke"),
        stalled: counter("krylov.lanes.stalled"),
        partial: counter("krylov.lanes.partial"),
    })
}

/// Drives an [`IterativeSolver`] over every column of a right-hand-side
/// block, chunk by chunk.
pub struct ChunkedSolver<'a> {
    solver: &'a dyn IterativeSolver,
    precond: &'a dyn Preconditioner,
    stop: StopCriteria,
    cols_per_chunk: usize,
    /// Use the incoming contents of the solution block as initial guesses.
    warm_start: bool,
}

impl<'a> ChunkedSolver<'a> {
    /// New driver with the paper's CPU chunk size and warm starting on.
    ///
    /// # Panics
    /// Panics if `cols_per_chunk == 0`.
    pub fn new(
        solver: &'a dyn IterativeSolver,
        precond: &'a dyn Preconditioner,
        stop: StopCriteria,
        cols_per_chunk: usize,
    ) -> Self {
        assert!(cols_per_chunk > 0, "cols_per_chunk must be positive");
        Self {
            solver,
            precond,
            stop,
            cols_per_chunk,
            warm_start: true,
        }
    }

    /// Toggle warm starting (on by default).
    pub fn warm_start(mut self, on: bool) -> Self {
        self.warm_start = on;
        self
    }

    /// Solve `A X = B` for every column of `b`, **in place**: on entry `b`
    /// holds the right-hand sides, on exit the solutions (the paper's
    /// Listing 3 copies the chunk solution back over `b`).
    ///
    /// `x_guess`, when provided with `warm_start`, supplies per-column
    /// initial guesses (e.g. the previous time step's spline
    /// coefficients). Must have the same shape as `b`.
    ///
    /// Columns within a chunk are solved concurrently (Ginkgo parallelises
    /// internally; here the parallelism is across independent columns).
    /// Every lane ends in a typed [`LaneOutcome`]; a broken lane never
    /// prevents its neighbours from converging and writing back their
    /// solutions. Per-lane [`SolveResult`]s are appended to `logger` in
    /// lane order; the returned vector gives the same information as
    /// typed outcomes.
    ///
    /// # Panics
    /// Panics on shape mismatches.
    pub fn solve_in_place(
        &self,
        a: &Csr,
        b: &mut Matrix,
        x_guess: Option<&Matrix>,
        logger: &mut ConvergenceLogger,
    ) -> Vec<LaneOutcome> {
        let n = a.nrows();
        assert_eq!(b.nrows(), n, "solve_in_place: rhs rows != matrix order");
        if let Some(g) = x_guess {
            assert_eq!(g.shape(), b.shape(), "solve_in_place: guess shape");
        }
        let batch = b.ncols();
        let mut outcomes = Vec::with_capacity(batch);
        let main_chunk_size = self.cols_per_chunk.min(batch.max(1));
        let iend = batch.div_ceil(main_chunk_size);

        for chunk in 0..iend {
            let begin = chunk * main_chunk_size;
            let end = if chunk + 1 == iend {
                batch
            } else {
                begin + main_chunk_size
            };

            // Copy the chunk into contiguous per-lane buffers (Listing 3's
            // deep_copy into b_buffer / x), solve each lane, copy back.
            struct LaneSlot {
                rhs: Vec<f64>,
                x: Vec<f64>,
                result: Option<SolveResult>,
            }
            let mut slots: Vec<LaneSlot> = (begin..end)
                .map(|j| {
                    let rhs = b.col(j).to_vec();
                    let x = match (self.warm_start, x_guess) {
                        (true, Some(g)) => g.col(j).to_vec(),
                        _ => vec![0.0; n],
                    };
                    LaneSlot {
                        rhs,
                        x,
                        result: None,
                    }
                })
                .collect();

            let run = |offset: usize, slot: &mut LaneSlot| {
                let _span = Span::enter_lane(PhaseId::KrylovIter, (begin + offset) as u32);
                let res = self
                    .solver
                    .solve(a, self.precond, &slot.rhs, &mut slot.x, &self.stop);
                slot.result = Some(res);
            };
            // With a budget attached, the dispatch itself stops claiming
            // lanes once the deadline passes or the budget is cancelled;
            // lanes it never started are reported below as budget-exhausted
            // with the residual their initial iterate achieves.
            match self.stop.budget.as_ref() {
                Some(budget) => {
                    let _ = parallel_for_each_mut_budgeted(&mut slots, budget, run);
                }
                None => parallel_for_each_mut(&mut slots, run),
            }

            for (offset, slot) in slots.into_iter().enumerate() {
                let res = match slot.result {
                    Some(res) => res,
                    // The budget expired before this lane was claimed: its
                    // buffer still holds the initial guess. Report that
                    // iterate honestly (one extra SpMV per skipped lane).
                    None => SolveResult::broken(
                        0,
                        crate::solver::true_relative_residual(a, &slot.x, &slot.rhs),
                        BreakdownKind::BudgetExhausted,
                    ),
                };
                b.col_mut(begin + offset).copy_from_slice(&slot.x);
                logger.record(res);
                if let Some(kind) = res.breakdown {
                    trace_instant_lane(
                        match kind {
                            BreakdownKind::RhoZero => InstantKind::BreakdownRhoZero,
                            BreakdownKind::OmegaZero => InstantKind::BreakdownOmegaZero,
                            BreakdownKind::NonFiniteResidual => {
                                InstantKind::BreakdownNonFiniteResidual
                            }
                            BreakdownKind::Stagnation => InstantKind::BreakdownStagnation,
                            BreakdownKind::MaxIters => InstantKind::BreakdownMaxIters,
                            BreakdownKind::BudgetExhausted => InstantKind::BudgetExhausted,
                        },
                        (begin + offset) as u32,
                    );
                }
                let outcome = LaneOutcome::from_result(&res);
                lane_metrics().of(outcome).inc();
                outcomes.push(outcome);
            }
        }
        outcomes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bicgstab::BiCgStab;
    use crate::gmres::Gmres;
    use crate::precond::BlockJacobi;
    use pp_portable::{Layout, TestRng};

    fn system(n: usize) -> Csr {
        Csr::from_dense(
            &pp_portable::Matrix::from_fn(n, n, Layout::Right, |i, j| {
                if i == j {
                    4.0
                } else if i.abs_diff(j) == 1 {
                    -1.0
                } else {
                    0.0
                }
            }),
            0.0,
        )
    }

    #[test]
    fn solves_every_column_across_chunks() {
        let n = 20;
        let a = system(n);
        let mut rng = TestRng::seed_from_u64(5);
        let x_true = Matrix::from_fn(n, 23, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let mut b = Matrix::zeros(n, 23, Layout::Left);
        for j in 0..23 {
            let bx = a.spmv_alloc(&x_true.col(j).to_vec());
            b.col_mut(j).copy_from_slice(&bx);
        }
        let bj = BlockJacobi::new(&a, 4);
        let driver = ChunkedSolver::new(&BiCgStab, &bj, StopCriteria::with_tol(1e-13), 7);
        let mut log = ConvergenceLogger::new();
        let outcomes = driver.solve_in_place(&a, &mut b, None, &mut log);
        assert_eq!(log.count(), 23);
        assert!(log.all_converged());
        assert!(outcomes.iter().all(|o| o.is_healthy()));
        assert!(b.max_abs_diff(&x_true) < 1e-8);
    }

    #[test]
    fn chunk_boundaries_exact_multiple() {
        let n = 8;
        let a = system(n);
        let mut b = Matrix::zeros(n, 12, Layout::Left);
        b.fill(1.0);
        let bj = BlockJacobi::new(&a, 2);
        let gmres = Gmres::default();
        let driver = ChunkedSolver::new(&gmres, &bj, StopCriteria::with_tol(1e-12), 4);
        let mut log = ConvergenceLogger::new();
        driver.solve_in_place(&a, &mut b, None, &mut log);
        assert_eq!(log.count(), 12);
        assert!(log.all_converged());
        // All columns identical => all solutions identical.
        for j in 1..12 {
            for i in 0..n {
                assert!((b.get(i, j) - b.get(i, 0)).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn warm_start_reduces_iterations() {
        let n = 40;
        let a = system(n);
        let mut rng = TestRng::seed_from_u64(9);
        // "Previous time step" solution: the exact solution slightly
        // perturbed, as the paper's advection produces.
        let x_exact = Matrix::from_fn(n, 10, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let mut b = Matrix::zeros(n, 10, Layout::Left);
        for j in 0..10 {
            b.col_mut(j)
                .copy_from_slice(&a.spmv_alloc(&x_exact.col(j).to_vec()));
        }
        let guess = {
            let mut g = x_exact.clone();
            for j in 0..10 {
                for i in 0..n {
                    let v = g.get(i, j) + 1e-6 * ((i + j) as f64).sin();
                    g.set(i, j, v);
                }
            }
            g
        };
        let bj = BlockJacobi::new(&a, 8);
        let stop = StopCriteria::with_tol(1e-13);

        let mut b_cold = b.clone();
        let mut log_cold = ConvergenceLogger::new();
        ChunkedSolver::new(&BiCgStab, &bj, stop.clone(), 100)
            .warm_start(false)
            .solve_in_place(&a, &mut b_cold, Some(&guess), &mut log_cold);

        let mut b_warm = b.clone();
        let mut log_warm = ConvergenceLogger::new();
        ChunkedSolver::new(&BiCgStab, &bj, stop, 100).solve_in_place(
            &a,
            &mut b_warm,
            Some(&guess),
            &mut log_warm,
        );

        assert!(log_cold.all_converged() && log_warm.all_converged());
        assert!(
            log_warm.total_iterations() < log_cold.total_iterations(),
            "warm {} vs cold {}",
            log_warm.total_iterations(),
            log_cold.total_iterations()
        );
    }

    #[test]
    fn single_column_and_oversized_chunk() {
        let n = 6;
        let a = system(n);
        let mut b = Matrix::zeros(n, 1, Layout::Left);
        b.fill(2.0);
        let bj = BlockJacobi::new(&a, 3);
        let driver = ChunkedSolver::new(&BiCgStab, &bj, StopCriteria::with_tol(1e-12), 10_000);
        let mut log = ConvergenceLogger::new();
        driver.solve_in_place(&a, &mut b, None, &mut log);
        assert_eq!(log.count(), 1);
        assert!(log.all_converged());
    }

    #[test]
    fn poisoned_lane_does_not_doom_its_chunk() {
        // Three lanes in ONE chunk; the middle lane's rhs is NaN.
        let n = 12;
        let a = system(n);
        let mut rng = TestRng::seed_from_u64(11);
        let x_true = Matrix::from_fn(n, 3, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let mut b = Matrix::zeros(n, 3, Layout::Left);
        for j in 0..3 {
            b.col_mut(j)
                .copy_from_slice(&a.spmv_alloc(&x_true.col(j).to_vec()));
        }
        b.set(4, 1, f64::NAN);
        let bj = BlockJacobi::new(&a, 4);
        let driver = ChunkedSolver::new(&BiCgStab, &bj, StopCriteria::with_tol(1e-13), 64);
        let mut log = ConvergenceLogger::new();
        let outcomes = driver.solve_in_place(&a, &mut b, None, &mut log);

        assert_eq!(
            outcomes[1],
            LaneOutcome::Broke(BreakdownKind::NonFiniteResidual)
        );
        // The poisoned lane is diagnosed instantly, not after max_iters.
        assert_eq!(log.lane_results()[1].iterations, 0);
        // Healthy neighbours converge and keep their solutions.
        for j in [0usize, 2] {
            assert!(outcomes[j].is_healthy(), "lane {j}: {:?}", outcomes[j]);
            for i in 0..n {
                assert!((b.get(i, j) - x_true.get(i, j)).abs() < 1e-8);
            }
        }
        assert_eq!(log.failed_lanes(), vec![1]);
    }

    #[test]
    fn exhausted_budget_marks_lanes_partial_and_preserves_guesses() {
        use pp_portable::Budget;
        let n = 16;
        let a = system(n);
        let mut rng = TestRng::seed_from_u64(21);
        let x_true = Matrix::from_fn(n, 6, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let mut b = Matrix::zeros(n, 6, Layout::Left);
        for j in 0..6 {
            b.col_mut(j)
                .copy_from_slice(&a.spmv_alloc(&x_true.col(j).to_vec()));
        }
        let bj = BlockJacobi::new(&a, 4);
        // Budget cancelled before the solve even begins: every lane must
        // come back Partial, with the (zero-guess) iterate left in place.
        let budget = Budget::unlimited();
        budget.cancel();
        let stop = StopCriteria::with_tol(1e-13).with_budget(budget);
        let driver = ChunkedSolver::new(&BiCgStab, &bj, stop, 4);
        let mut log = ConvergenceLogger::new();
        let outcomes = driver.solve_in_place(&a, &mut b, None, &mut log);

        assert_eq!(outcomes.len(), 6);
        for (j, o) in outcomes.iter().enumerate() {
            match o {
                LaneOutcome::Partial { relative_residual } => {
                    // Zero guess against a non-zero rhs: residual is 1.
                    assert!(
                        (relative_residual - 1.0).abs() < 1e-12,
                        "lane {j}: residual {relative_residual}"
                    );
                }
                other => panic!("lane {j}: expected Partial, got {other:?}"),
            }
        }
        assert!(log
            .lane_results()
            .iter()
            .all(|r| r.breakdown == Some(BreakdownKind::BudgetExhausted)));
        // The buffers hold the initial (zero) iterate, not the rhs.
        for j in 0..6 {
            for i in 0..n {
                assert_eq!(b.get(i, j), 0.0);
            }
        }
    }

    #[test]
    fn ample_budget_matches_unbudgeted_solve_bit_for_bit() {
        use pp_portable::Budget;
        use std::time::Duration;
        let n = 24;
        let a = system(n);
        let mut rng = TestRng::seed_from_u64(33);
        let mut b_plain = Matrix::from_fn(n, 9, Layout::Left, |_, _| rng.gen_range(-1.0..1.0));
        let mut b_budgeted = b_plain.clone();
        let bj = BlockJacobi::new(&a, 4);

        let mut log_plain = ConvergenceLogger::new();
        ChunkedSolver::new(&BiCgStab, &bj, StopCriteria::with_tol(1e-13), 4).solve_in_place(
            &a,
            &mut b_plain,
            None,
            &mut log_plain,
        );

        let stop = StopCriteria::with_tol(1e-13)
            .with_budget(Budget::with_deadline(Duration::from_secs(600)));
        let mut log_budgeted = ConvergenceLogger::new();
        let outcomes = ChunkedSolver::new(&BiCgStab, &bj, stop, 4).solve_in_place(
            &a,
            &mut b_budgeted,
            None,
            &mut log_budgeted,
        );

        assert!(outcomes.iter().all(|o| o.is_healthy()));
        // An ample budget must not perturb the numerics at all.
        assert_eq!(b_plain.max_abs_diff(&b_budgeted), 0.0);
        assert_eq!(
            log_plain.total_iterations(),
            log_budgeted.total_iterations()
        );
    }

    #[test]
    fn starved_lanes_report_stalled() {
        let n = 30;
        let a = system(n);
        let mut b = Matrix::zeros(n, 2, Layout::Left);
        b.fill(1.0);
        let bj = BlockJacobi::new(&a, 1);
        // One iteration is nowhere near enough at 1e-13.
        let stop = StopCriteria::with_tol(1e-13).with_max_iters(1);
        let driver = ChunkedSolver::new(&BiCgStab, &bj, stop, 64);
        let mut log = ConvergenceLogger::new();
        let outcomes = driver.solve_in_place(&a, &mut b, None, &mut log);
        assert!(outcomes.iter().all(|o| *o == LaneOutcome::Stalled));
        assert!(log
            .lane_results()
            .iter()
            .all(|r| r.breakdown == Some(BreakdownKind::MaxIters)));
    }
}
