//! Degenerate-size regression tests: `n == 1` and `n == 0` systems must
//! factor and solve without panicking (and without touching the
//! nonexistent off-diagonal `e[0]`) in every routine class and batched
//! driver — scalar, tiled, and interleaved.

use pp_linalg::{
    batched, gbtrf, gbtrs_interleaved, gbtrs_tiled, getrf, getrs_interleaved, pbtrf,
    pbtrs_interleaved, pbtrs_tiled, pttrf, pttrs_interleaved, pttrs_tiled, BandedMatrix,
    SymBandedMatrix,
};
use pp_portable::{InterleavedMatrix, Layout, Matrix, Serial};

fn rhs(n: usize, batch: usize) -> Matrix {
    Matrix::from_fn(n, batch, Layout::Left, |i, j| (i + 2 * j + 1) as f64)
}

#[test]
fn pttr_n1_and_n0() {
    // n == 1: e has length 0; the solve is a single diagonal division.
    let f = pttrf(&[4.0], &[]).unwrap();
    assert_eq!(f.n(), 1);
    assert!(f.e().is_empty());
    let mut b = vec![6.0];
    f.solve_slice(&mut b);
    assert_eq!(b, vec![1.5]);
    let mut m = rhs(1, 9);
    batched::pttrs(&Serial, &f, &mut m);
    let mut t = rhs(1, 9);
    pttrs_tiled(&Serial, &f, &mut t, 4);
    assert_eq!(m.max_abs_diff(&t), 0.0);
    let mut iv = InterleavedMatrix::pack(&rhs(1, 9));
    pttrs_interleaved(&Serial, &f, &mut iv);
    for j in 0..9 {
        assert_eq!(iv.get(0, j), m.get(0, j));
    }
    // n == 0: constructible and a no-op.
    let f0 = pttrf(&[], &[]).unwrap();
    assert_eq!(f0.n(), 0);
    let mut empty: Vec<f64> = vec![];
    f0.solve_slice(&mut empty);
    let mut m0 = Matrix::zeros(0, 4, Layout::Left);
    batched::pttrs(&Serial, &f0, &mut m0);
    pttrs_tiled(&Serial, &f0, &mut m0, 2);
}

#[test]
fn pbtr_n1_and_n0() {
    let f = pbtrf(&SymBandedMatrix::from_fn(1, 0, |_, _| 9.0).unwrap()).unwrap();
    assert_eq!(f.n(), 1);
    let mut b = vec![9.0];
    f.solve_slice(&mut b);
    assert!((b[0] - 1.0).abs() < 1e-15);
    let mut m = rhs(1, 5);
    batched::pbtrs(&Serial, &f, &mut m);
    let mut t = rhs(1, 5);
    pbtrs_tiled(&Serial, &f, &mut t, 0);
    assert!(m.max_abs_diff(&t) < 1e-15);
    let mut iv = InterleavedMatrix::pack(&rhs(1, 5));
    pbtrs_interleaved(&Serial, &f, &mut iv);
    for j in 0..5 {
        assert!((iv.get(0, j) - m.get(0, j)).abs() < 1e-15);
    }
    let f0 = pbtrf(&SymBandedMatrix::new(0, 0).unwrap()).unwrap();
    assert_eq!(f0.n(), 0);
    let mut m0 = Matrix::zeros(0, 3, Layout::Right);
    batched::pbtrs(&Serial, &f0, &mut m0);
    pbtrs_tiled(&Serial, &f0, &mut m0, 1);
}

#[test]
fn gbtr_n1_and_n0() {
    let f = gbtrf(&BandedMatrix::from_fn(1, 0, 0, |_, _| 2.0).unwrap()).unwrap();
    assert_eq!(f.n(), 1);
    let mut b = vec![5.0];
    f.solve_slice(&mut b);
    assert_eq!(b, vec![2.5]);
    let mut m = rhs(1, 7);
    batched::gbtrs(&Serial, &f, &mut m);
    let mut t = rhs(1, 7);
    gbtrs_tiled(&Serial, &f, &mut t, 7 + 1);
    assert_eq!(m.max_abs_diff(&t), 0.0);
    let mut iv = InterleavedMatrix::pack(&rhs(1, 7));
    gbtrs_interleaved(&Serial, &f, &mut iv);
    for j in 0..7 {
        assert_eq!(iv.get(0, j), m.get(0, j));
    }
    let f0 = gbtrf(&BandedMatrix::new(0, 0, 0).unwrap()).unwrap();
    assert_eq!(f0.n(), 0);
    let mut m0 = Matrix::zeros(0, 2, Layout::Left);
    batched::gbtrs(&Serial, &f0, &mut m0);
    gbtrs_tiled(&Serial, &f0, &mut m0, 2);
}

#[test]
fn getr_n1_and_n0() {
    let f = getrf(&Matrix::from_rows(&[&[8.0]])).unwrap();
    assert_eq!(f.n(), 1);
    let mut b = vec![4.0];
    f.solve_slice(&mut b);
    assert_eq!(b, vec![0.5]);
    let mut m = rhs(1, 6);
    batched::getrs(&Serial, &f, &mut m);
    let mut iv = InterleavedMatrix::pack(&rhs(1, 6));
    getrs_interleaved(&Serial, &f, &mut iv);
    for j in 0..6 {
        assert_eq!(iv.get(0, j), m.get(0, j));
    }
    let f0 = getrf(&Matrix::zeros(0, 0, Layout::Right)).unwrap();
    assert_eq!(f0.n(), 0);
    let mut m0 = Matrix::zeros(0, 3, Layout::Left);
    batched::getrs(&Serial, &f0, &mut m0);
}
