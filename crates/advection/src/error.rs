//! Errors for the advection drivers.

use std::fmt;

/// Errors produced by `pp-advection`.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// Grid/backends disagree on resolution.
    ShapeMismatch {
        /// Explanation.
        detail: String,
    },
    /// Underlying spline-solver error.
    Spline(pp_splinesolver::Error),
    /// A non-finite (NaN/Inf) value was found in advection input —
    /// distribution values, characteristic feet, or displacements.
    NonFiniteInput {
        /// Batch lane of the offending value.
        lane: usize,
        /// Position within the lane.
        index: usize,
    },
    /// Writing a checkpoint failed, or a restored snapshot is unusable
    /// (corrupt, or incompatible with this solver's grid / time step).
    Checkpoint {
        /// Explanation.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            Error::Spline(e) => write!(f, "spline solver: {e}"),
            Error::NonFiniteInput { lane, index } => write!(
                f,
                "non-finite value in advection input at lane {lane}, index {index}"
            ),
            Error::Checkpoint { detail } => write!(f, "checkpoint: {detail}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<pp_splinesolver::Error> for Error {
    fn from(e: pp_splinesolver::Error) -> Self {
        match e {
            pp_splinesolver::Error::NonFiniteInput { lane, index } => {
                Error::NonFiniteInput { lane, index }
            }
            pp_splinesolver::Error::Checkpoint { detail } => Error::Checkpoint { detail },
            other => Error::Spline(other),
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_finite_conversion_is_specialised() {
        let e: Error = pp_splinesolver::Error::NonFiniteInput { lane: 4, index: 1 }.into();
        assert_eq!(e, Error::NonFiniteInput { lane: 4, index: 1 });
        let msg = e.to_string();
        assert!(msg.contains("lane 4"), "{msg}");
        assert!(msg.contains("index 1"), "{msg}");
    }
}
