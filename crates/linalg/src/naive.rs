//! Naive dense reference solver, used as ground truth in tests across the
//! workspace. Plain Gaussian elimination with partial pivoting on a copied
//! dense matrix — slow, simple, and independent of every optimised path.

use crate::error::{Error, Result};
use pp_portable::Matrix;

/// Dense matrix-vector product `A x`.
///
/// # Panics
/// Panics if `x.len() != A.ncols()`.
pub fn matvec(a: &Matrix, x: &[f64]) -> Vec<f64> {
    assert_eq!(a.ncols(), x.len(), "matvec: dimension mismatch");
    (0..a.nrows())
        .map(|i| (0..a.ncols()).map(|j| a.get(i, j) * x[j]).sum())
        .collect()
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
///
/// Returns the solution vector, or [`Error::Singular`] if a pivot vanishes.
pub fn solve_dense(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let n = a.nrows();
    if a.ncols() != n || b.len() != n {
        return Err(Error::ShapeMismatch {
            op: "solve_dense",
            detail: format!("A is {:?}, b has length {}", a.shape(), b.len()),
        });
    }
    // Augmented dense working copy.
    let mut m: Vec<Vec<f64>> = (0..n)
        .map(|i| {
            let mut row: Vec<f64> = (0..n).map(|j| a.get(i, j)).collect();
            row.push(b[i]);
            row
        })
        .collect();

    for k in 0..n {
        // Partial pivot.
        let piv = (k..n)
            .max_by(|&p, &q| m[p][k].abs().total_cmp(&m[q][k].abs()))
            .expect("non-empty range");
        if m[piv][k].abs() < f64::EPSILON * 1e3 {
            return Err(Error::Singular {
                routine: "solve_dense",
                index: k,
            });
        }
        m.swap(k, piv);
        for i in k + 1..n {
            let factor = m[i][k] / m[k][k];
            for j in k..=n {
                m[i][j] -= factor * m[k][j];
            }
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let s: f64 = (i + 1..n).map(|j| m[i][j] * x[j]).sum();
        x[i] = (m[i][n] - s) / m[i][i];
    }
    Ok(x)
}

/// Relative residual `‖A x − b‖₂ / ‖b‖₂` (with a floor on `‖b‖` to avoid
/// division by zero).
pub fn relative_residual(a: &Matrix, x: &[f64], b: &[f64]) -> f64 {
    let ax = matvec(a, x);
    let num: f64 = ax
        .iter()
        .zip(b)
        .map(|(p, q)| (p - q) * (p - q))
        .sum::<f64>()
        .sqrt();
    let den: f64 = b.iter().map(|v| v * v).sum::<f64>().sqrt().max(1e-300);
    num / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::Layout;

    #[test]
    fn solves_identity() {
        let a = Matrix::from_fn(4, 4, Layout::Right, |i, j| (i == j) as u8 as f64);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        assert_eq!(solve_dense(&a, &b).unwrap(), b);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3] x = [3; 5]  =>  x = [4/5, 7/5]
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve_dense(&a, &[3.0, 5.0]).unwrap();
        assert!((x[0] - 0.8).abs() < 1e-14);
        assert!((x[1] - 1.4).abs() < 1e-14);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve_dense(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert!(matches!(
            solve_dense(&a, &[1.0, 2.0]),
            Err(Error::Singular { .. })
        ));
    }

    #[test]
    fn shape_mismatch_is_detected() {
        let a = Matrix::zeros(3, 2, Layout::Right);
        assert!(solve_dense(&a, &[1.0, 2.0, 3.0]).is_err());
    }

    #[test]
    fn residual_of_exact_solution_is_zero() {
        let a = Matrix::from_rows(&[&[3.0, 1.0], &[1.0, 2.0]]);
        let x = solve_dense(&a, &[5.0, 5.0]).unwrap();
        assert!(relative_residual(&a, &x, &[5.0, 5.0]) < 1e-14);
    }
}
