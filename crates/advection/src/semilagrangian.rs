//! 1D batched semi-Lagrangian advection (the paper's Algorithm 2).

use crate::error::{Error, Result};
use pp_bsplines::PeriodicSplineSpace;
use pp_portable::instrument::{self, PhaseId, Span};
use pp_portable::{transpose_into_with, ExecSpace, Layout, Matrix, ResidentBatch};
use pp_splinesolver::{
    BuilderVersion, IterativeConfig, IterativeSplineSolver, LaneReport, SplineBuilder,
    SplineEvaluator, VerifiedBuilder, VerifyConfig,
};
use std::fmt;
use std::time::{Duration, Instant};

/// Which spline construction backend drives the advection — the paper's
/// Kokkos-kernels (direct) vs. Ginkgo (iterative) comparison.
// One long-lived backend per driver: the variant size gap is irrelevant.
#[allow(clippy::large_enum_variant)]
pub enum SplineBackend {
    /// Schur-complement direct builder (`pp-splinesolver::SplineBuilder`).
    Direct(SplineBuilder),
    /// Direct builder running the lane-tiled kernel (the §V-A future-work
    /// optimisation) with the given tile width.
    DirectTiled(SplineBuilder, usize),
    /// Krylov iterative solver (`pp-splinesolver::IterativeSplineSolver`).
    Iterative(Box<IterativeSplineSolver>),
    /// Direct builder with per-lane verification, quarantine and the
    /// factorization fallback ladder
    /// (`pp-splinesolver::VerifiedBuilder`). Fills
    /// [`Advection1D::last_diagnostics`] each step.
    DirectVerified(Box<VerifiedBuilder>),
}

impl SplineBackend {
    /// Direct backend with a given kernel version.
    pub fn direct(space: PeriodicSplineSpace, version: BuilderVersion) -> Result<Self> {
        Ok(SplineBackend::Direct(SplineBuilder::new(space, version)?))
    }

    /// Direct backend using the lane-tiled solve path.
    pub fn direct_tiled(space: PeriodicSplineSpace, tile: usize) -> Result<Self> {
        Ok(SplineBackend::DirectTiled(
            SplineBuilder::new(space, pp_splinesolver::BuilderVersion::FusedSpmv)?,
            tile,
        ))
    }

    /// Iterative backend with a given configuration.
    pub fn iterative(space: PeriodicSplineSpace, config: IterativeConfig) -> Result<Self> {
        Ok(SplineBackend::Iterative(Box::new(
            IterativeSplineSolver::new(space, config)?,
        )))
    }

    /// Direct backend wrapped in per-lane verification (residual checks,
    /// refinement, quarantine, fallback ladder).
    pub fn direct_verified(
        space: PeriodicSplineSpace,
        version: BuilderVersion,
        config: VerifyConfig,
    ) -> Result<Self> {
        Ok(SplineBackend::DirectVerified(Box::new(
            SplineBuilder::new(space, version)?.verified(config),
        )))
    }

    fn space(&self) -> &PeriodicSplineSpace {
        match self {
            SplineBackend::Direct(b) => b.space(),
            SplineBackend::DirectTiled(b, _) => b.space(),
            SplineBackend::Iterative(s) => s.space(),
            SplineBackend::DirectVerified(b) => b.builder().space(),
        }
    }

    /// Short label for benchmark output.
    pub fn label(&self) -> &'static str {
        match self {
            SplineBackend::Direct(_) => "kokkos-kernels",
            SplineBackend::DirectTiled(..) => "kokkos-kernels-tiled",
            SplineBackend::Iterative(_) => "ginkgo",
            SplineBackend::DirectVerified(_) => "kokkos-kernels-verified",
        }
    }
}

/// What the verified spline backend observed during one advection step.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdvectionDiagnostics {
    /// Lanes whose input or solve was unrecoverable (zeroed and flagged).
    pub quarantined_lanes: Vec<usize>,
    /// Lanes rescued by a factorization-ladder rung.
    pub recovered_lanes: Vec<usize>,
    /// Lanes fixed by iterative refinement alone.
    pub refined_lanes: Vec<usize>,
    /// Total refinement steps spent across the batch.
    pub refinement_steps: usize,
    /// Worst relative residual over the healthy lanes.
    pub worst_residual: f64,
    /// Largest characteristic foot displacement `max |x_i − foot(i,j)|`
    /// this step — a CFL-style sanity figure for the semi-Lagrangian step.
    pub max_foot_displacement: f64,
}

impl AdvectionDiagnostics {
    /// `true` when no lane needed repair or quarantine.
    pub fn all_clean(&self) -> bool {
        self.quarantined_lanes.is_empty()
            && self.recovered_lanes.is_empty()
            && self.refined_lanes.is_empty()
    }

    fn from_report(report: &LaneReport, max_foot_displacement: f64) -> Self {
        AdvectionDiagnostics {
            quarantined_lanes: report.quarantined_lanes(),
            recovered_lanes: report.recovered_lanes(),
            refined_lanes: report.refined_lanes(),
            refinement_steps: report.total_refine_steps(),
            worst_residual: report.worst_residual(),
            max_foot_displacement,
        }
    }

    /// Export this step's diagnostics into the instrumentation registry
    /// (`advection.*` counters and gauges). No-op when instrumentation
    /// is off.
    pub fn publish_metrics(&self) {
        if !instrument::enabled() {
            return;
        }
        instrument::counter("advection.lanes_quarantined").add(self.quarantined_lanes.len() as u64);
        instrument::counter("advection.lanes_recovered").add(self.recovered_lanes.len() as u64);
        instrument::counter("advection.lanes_refined").add(self.refined_lanes.len() as u64);
        instrument::counter("advection.refinement_steps").add(self.refinement_steps as u64);
        instrument::gauge("advection.worst_residual").set(self.worst_residual);
        instrument::gauge("advection.max_foot_displacement").set(self.max_foot_displacement);
    }
}

impl fmt::Display for AdvectionDiagnostics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} quarantined, {} recovered, {} refined ({} step(s)), \
             worst residual {:.3e}, max foot displacement {:.3e}",
            self.quarantined_lanes.len(),
            self.recovered_lanes.len(),
            self.refined_lanes.len(),
            self.refinement_steps,
            self.worst_residual,
            self.max_foot_displacement
        )
    }
}

/// Wall-clock breakdown of one advection step.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimings {
    /// Transpose into lane-contiguous layout (Algorithm 2, line 3).
    pub transpose_in: Duration,
    /// Spline build — the paper's `ddc_splines_solve` region.
    pub splines_solve: Duration,
    /// Transpose back (line 5).
    pub transpose_out: Duration,
    /// Characteristic feet + interpolation (lines 6–10).
    pub interpolate: Duration,
}

impl StepTimings {
    /// Total step time.
    pub fn total(&self) -> Duration {
        self.transpose_in + self.splines_solve + self.transpose_out + self.interpolate
    }

    /// Accumulate another step's timings.
    pub fn accumulate(&mut self, other: &StepTimings) {
        self.transpose_in += other.transpose_in;
        self.splines_solve += other.splines_solve;
        self.transpose_out += other.transpose_out;
        self.interpolate += other.interpolate;
    }
}

/// Batched 1D constant-coefficient advection
/// `∂f/∂t + v ∂f/∂x = 0` on a periodic `x` domain: each velocity-grid
/// lane `v_j` advects independently, which is exactly the paper's
/// benchmark (§III-C, "solving the advection term along the x direction
/// while using batching along the v_x direction").
/// ```
/// use pp_advection::{Advection1D, SplineBackend};
/// use pp_bsplines::{Breaks, PeriodicSplineSpace};
/// use pp_portable::Parallel;
/// use pp_splinesolver::BuilderVersion;
///
/// let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
/// let backend = SplineBackend::direct(space, BuilderVersion::FusedSpmv).unwrap();
/// let mut adv = Advection1D::new(backend, vec![0.5, -0.5], 1e-2).unwrap();
/// let mut f = adv.init_distribution(|x, _| (std::f64::consts::TAU * x).sin());
/// let timings = adv.step(&Parallel, &mut f).unwrap();
/// assert!(timings.splines_solve > std::time::Duration::ZERO);
/// ```
pub struct Advection1D {
    backend: SplineBackend,
    evaluator: SplineEvaluator,
    /// Velocity of each batch lane.
    velocities: Vec<f64>,
    /// Interpolation grid along x (the spline interpolation points).
    x_points: Vec<f64>,
    /// Scratch: lane-contiguous spline RHS/coefficients `(Nx, Nv)`.
    eta: Matrix,
    /// Scratch: previous coefficients (iterative warm start).
    eta_prev: Option<Matrix>,
    /// Scratch: resident coefficient panels (resident stepping only;
    /// allocated on the first [`Advection1D::step_resident`] call).
    eta_r: Option<ResidentBatch>,
    /// Scratch: characteristic feet `(Nx, Nv)`, fixed for fixed `Δt`.
    feet: Matrix,
    /// Scratch: interpolated result `(Nx, Nv)`.
    interp: Matrix,
    dt: f64,
    /// Verification report of the most recent step (verified backend only).
    last_diagnostics: Option<AdvectionDiagnostics>,
}

impl Advection1D {
    /// Set up the solver for `Nv = velocities.len()` lanes and a fixed
    /// time step `dt` (feet are precomputed; use
    /// [`Advection1D::set_dt`] to change it).
    ///
    /// # Errors
    /// Rejects a non-finite `dt` or velocity with
    /// [`Error::NonFiniteInput`]: either would silently fill the
    /// precomputed characteristic feet with NaN and every backend would
    /// then interpolate garbage. A bad `dt` poisons all lanes, so it is
    /// reported as lane 0, index 0; a bad velocity names its lane.
    pub fn new(backend: SplineBackend, velocities: Vec<f64>, dt: f64) -> Result<Self> {
        let space = backend.space().clone();
        let nx = space.num_basis();
        let nv = velocities.len();
        if nv == 0 {
            return Err(Error::ShapeMismatch {
                detail: "need at least one velocity lane".into(),
            });
        }
        if !dt.is_finite() {
            return Err(Error::NonFiniteInput { lane: 0, index: 0 });
        }
        if let Some(j) = velocities.iter().position(|v| !v.is_finite()) {
            return Err(Error::NonFiniteInput { lane: j, index: 0 });
        }
        let x_points = space.interpolation_points();
        let mut me = Self {
            evaluator: SplineEvaluator::new(space),
            backend,
            velocities,
            x_points,
            eta: Matrix::zeros(nx, nv, Layout::Left),
            eta_prev: None,
            eta_r: None,
            feet: Matrix::zeros(nx, nv, Layout::Left),
            interp: Matrix::zeros(nx, nv, Layout::Left),
            dt,
            last_diagnostics: None,
        };
        me.compute_feet();
        Ok(me)
    }

    /// Number of x points.
    pub fn nx(&self) -> usize {
        self.x_points.len()
    }

    /// Number of velocity lanes (the batch size).
    pub fn nv(&self) -> usize {
        self.velocities.len()
    }

    /// The x-direction interpolation grid.
    pub fn x_points(&self) -> &[f64] {
        &self.x_points
    }

    /// The spline space along x.
    pub fn space(&self) -> &PeriodicSplineSpace {
        self.backend.space()
    }

    /// Backend label for reports.
    pub fn backend_label(&self) -> &'static str {
        self.backend.label()
    }

    /// Verification diagnostics of the most recent step. `None` until a
    /// [`SplineBackend::DirectVerified`] step has run.
    pub fn last_diagnostics(&self) -> Option<&AdvectionDiagnostics> {
        self.last_diagnostics.as_ref()
    }

    /// Change the time step (recomputes the characteristic feet).
    ///
    /// # Errors
    /// Rejects a non-finite `dt` with [`Error::NonFiniteInput`] (reported
    /// as lane 0, index 0 — a bad `dt` poisons every lane) and leaves the
    /// standing feet untouched, so the driver stays usable.
    pub fn set_dt(&mut self, dt: f64) -> Result<()> {
        if !dt.is_finite() {
            instrument::trace_instant(instrument::InstantKind::NonFiniteInput);
            return Err(Error::NonFiniteInput { lane: 0, index: 0 });
        }
        self.dt = dt;
        self.compute_feet();
        Ok(())
    }

    fn compute_feet(&mut self) {
        // Foot of the characteristic ending at (x_i, v_j): x_i − v_j·Δt
        // (first-order backward integration, exact for constant advection).
        let dt = self.dt;
        for j in 0..self.nv() {
            let v = self.velocities[j];
            for i in 0..self.nx() {
                self.feet.set(i, j, self.x_points[i] - v * dt);
            }
        }
    }

    /// Initialise a distribution `f(x_i, v_j)` as a `(Nv, Nx)` row-major
    /// field (the paper keeps data row-major contiguous; lanes are rows).
    pub fn init_distribution(&self, f: impl Fn(f64, f64) -> f64) -> Matrix {
        let nv = self.nv();
        let nx = self.nx();
        Matrix::from_fn(nv, nx, Layout::Right, |j, i| {
            f(self.x_points[i], self.velocities[j])
        })
    }

    /// Advance `f` (shape `(Nv, Nx)`, any layout) by one time step.
    /// Returns the per-phase timings.
    pub fn step<E: ExecSpace>(&mut self, exec: &E, f: &mut Matrix) -> Result<StepTimings> {
        let (nv, nx) = (self.nv(), self.nx());
        if f.shape() != (nv, nx) {
            return Err(Error::ShapeMismatch {
                detail: format!("f is {:?}, expected ({nv}, {nx})", f.shape()),
            });
        }
        let _step_span = Span::enter(PhaseId::AdvectionStep);
        let mut t = StepTimings::default();

        // Input sanitization for the verified path: the builder quarantines
        // poisoned distribution lanes itself, but non-finite characteristic
        // feet would poison the interpolation stage instead — reject them
        // before any work runs.
        if matches!(self.backend, SplineBackend::DirectVerified(_)) {
            for j in 0..nv {
                for i in 0..nx {
                    if !self.feet.get(i, j).is_finite() {
                        instrument::trace_instant_lane(
                            instrument::InstantKind::NonFiniteInput,
                            j as u32,
                        );
                        return Err(Error::NonFiniteInput { lane: j, index: i });
                    }
                }
            }
        }

        // Line 3: transpose to lane-contiguous (Nx, Nv).
        let t0 = Instant::now();
        {
            let _span = Span::enter(PhaseId::Transpose);
            transpose_into_with(exec, f, &mut self.eta).expect("shape fixed at construction");
        }
        t.transpose_in = t0.elapsed();

        // Line 4: build splines, batched over v (the measured region).
        let t0 = Instant::now();
        let mut report = None;
        match &self.backend {
            SplineBackend::Direct(builder) => builder.solve_in_place(exec, &mut self.eta)?,
            SplineBackend::DirectTiled(builder, tile) => {
                builder.solve_in_place_tiled(exec, &mut self.eta, *tile)?
            }
            SplineBackend::Iterative(solver) => {
                solver.solve_in_place(&mut self.eta, self.eta_prev.as_ref())?;
            }
            SplineBackend::DirectVerified(builder) => {
                report = Some(builder.solve_in_place(exec, &mut self.eta)?);
            }
        }
        t.splines_solve = t0.elapsed();

        if let Some(report) = report {
            let mut max_disp = 0.0_f64;
            for j in 0..nv {
                for i in 0..nx {
                    max_disp = max_disp.max((self.x_points[i] - self.feet.get(i, j)).abs());
                }
            }
            let diagnostics = AdvectionDiagnostics::from_report(&report, max_disp);
            diagnostics.publish_metrics();
            self.last_diagnostics = Some(diagnostics);
        }

        // Lines 6-10: follow characteristics and interpolate.
        let t0 = Instant::now();
        {
            let _span = Span::enter(PhaseId::Interpolate);
            self.evaluator
                .eval_batched(exec, &self.eta, &self.feet, &mut self.interp)?;
        }
        t.interpolate = t0.elapsed();

        // Line 5 (moved after evaluation since we evaluate from the
        // lane-contiguous coefficients directly): transpose result back.
        let t0 = Instant::now();
        {
            let _span = Span::enter(PhaseId::Transpose);
            transpose_into_with(exec, &self.interp, f).expect("shape fixed at construction");
        }
        t.transpose_out = t0.elapsed();

        // Keep coefficients for the iterative backend's warm start.
        if matches!(self.backend, SplineBackend::Iterative(_)) {
            match &mut self.eta_prev {
                Some(p) => p.deep_copy_from(&self.eta).expect("same shape"),
                None => self.eta_prev = Some(self.eta.clone()),
            }
        }
        Ok(t)
    }

    /// Advance a lane-contiguous resident slab `f` (shape `(Nx, Nv)`:
    /// rows = x, lanes = v) by one time step with **zero pack/unpack
    /// transposes**: the coefficient scratch is a straight panel copy of
    /// the slab, the spline solve runs panel-native, and the interpolated
    /// result is written straight back into the slab's panels.
    /// `StepTimings::transpose_in`/`transpose_out` are therefore zero by
    /// construction — Algorithm 2's lines 3 and 5 disappear.
    ///
    /// With the direct backend on
    /// [`BuilderVersion::Interleaved`], the slab
    /// after this call is bit-identical to the `(Nv, Nx)` host matrix
    /// after [`Advection1D::step`] (residency *is* the interleaved
    /// kernel, so the `Direct`/`DirectTiled` version tag is ignored
    /// here). The `Iterative` backend has no panel-native solver and is
    /// rejected with [`Error::ShapeMismatch`].
    pub fn step_resident<E: ExecSpace>(
        &mut self,
        exec: &E,
        f: &mut ResidentBatch,
    ) -> Result<StepTimings> {
        let (nv, nx) = (self.nv(), self.nx());
        if f.nrows() != nx || f.ncols() != nv {
            return Err(Error::ShapeMismatch {
                detail: format!(
                    "resident slab is ({}, {}), expected ({nx}, {nv})",
                    f.nrows(),
                    f.ncols()
                ),
            });
        }
        if matches!(self.backend, SplineBackend::Iterative(_)) {
            return Err(Error::ShapeMismatch {
                detail: "iterative backend has no resident (panel-native) solve path".into(),
            });
        }
        let _step_span = Span::enter(PhaseId::AdvectionStep);
        let mut t = StepTimings::default();

        // Same input sanitization as the host step: non-finite feet would
        // poison the interpolation stage behind the verifier's back.
        if matches!(self.backend, SplineBackend::DirectVerified(_)) {
            for j in 0..nv {
                for i in 0..nx {
                    if !self.feet.get(i, j).is_finite() {
                        instrument::trace_instant_lane(
                            instrument::InstantKind::NonFiniteInput,
                            j as u32,
                        );
                        return Err(Error::NonFiniteInput { lane: j, index: i });
                    }
                }
            }
        }

        let mut eta = self
            .eta_r
            .take()
            .unwrap_or_else(|| ResidentBatch::zeros(nx, nv));
        let refill = eta.copy_from(f).map_err(|e| Error::ShapeMismatch {
            detail: e.to_string(),
        });
        if let Err(e) = refill {
            self.eta_r = Some(eta);
            return Err(e);
        }

        let t0 = Instant::now();
        let mut report = None;
        let solved = match &self.backend {
            SplineBackend::Direct(builder) | SplineBackend::DirectTiled(builder, _) => {
                builder.solve_resident(exec, &mut eta).map_err(Error::from)
            }
            SplineBackend::DirectVerified(builder) => builder
                .solve_resident(exec, &mut eta)
                .map(|r| report = Some(r))
                .map_err(Error::from),
            SplineBackend::Iterative(_) => unreachable!("rejected above"),
        };
        if let Err(e) = solved {
            self.eta_r = Some(eta);
            return Err(e);
        }
        t.splines_solve = t0.elapsed();

        if let Some(report) = report {
            let mut max_disp = 0.0_f64;
            for j in 0..nv {
                for i in 0..nx {
                    max_disp = max_disp.max((self.x_points[i] - self.feet.get(i, j)).abs());
                }
            }
            let diagnostics = AdvectionDiagnostics::from_report(&report, max_disp);
            diagnostics.publish_metrics();
            self.last_diagnostics = Some(diagnostics);
        }

        let t0 = Instant::now();
        let evaled = {
            let _span = Span::enter(PhaseId::Interpolate);
            self.evaluator
                .eval_resident(exec, &eta, &self.feet, f)
                .map_err(Error::from)
        };
        t.interpolate = t0.elapsed();
        self.eta_r = Some(eta);
        evaled?;
        Ok(t)
    }

    /// Resident counterpart of
    /// [`Advection1D::step_with_displacements`]: per-lane feet, resident
    /// slab, zero transposes.
    pub fn step_resident_with_displacements<E: ExecSpace>(
        &mut self,
        exec: &E,
        f: &mut ResidentBatch,
        displacements: &[f64],
    ) -> Result<StepTimings> {
        if displacements.len() != self.nv() {
            return Err(Error::ShapeMismatch {
                detail: format!(
                    "{} displacements for {} lanes",
                    displacements.len(),
                    self.nv()
                ),
            });
        }
        if let Some(j) = displacements.iter().position(|d| !d.is_finite()) {
            instrument::trace_instant_lane(instrument::InstantKind::NonFiniteInput, j as u32);
            return Err(Error::NonFiniteInput { lane: j, index: 0 });
        }
        for j in 0..self.nv() {
            let d = displacements[j];
            for i in 0..self.nx() {
                self.feet.set(i, j, self.x_points[i] - d);
            }
        }
        let timings = self.step_resident(exec, f);
        // Restore the standing feet for subsequent plain steps.
        self.compute_feet();
        timings
    }

    /// Advance `f` by one step with *per-lane displacements* instead of
    /// the precomputed `v·Δt` feet: lane `j`'s foot is
    /// `x_i − displacements[j]`. Used by the Vlasov driver, where the
    /// v-direction shift `E(x)·Δt` changes every step.
    pub fn step_with_displacements<E: ExecSpace>(
        &mut self,
        exec: &E,
        f: &mut Matrix,
        displacements: &[f64],
    ) -> Result<StepTimings> {
        if displacements.len() != self.nv() {
            return Err(Error::ShapeMismatch {
                detail: format!(
                    "{} displacements for {} lanes",
                    displacements.len(),
                    self.nv()
                ),
            });
        }
        // A non-finite displacement would silently poison a whole lane's
        // feet; reject it at the boundary for every backend.
        if let Some(j) = displacements.iter().position(|d| !d.is_finite()) {
            instrument::trace_instant_lane(instrument::InstantKind::NonFiniteInput, j as u32);
            return Err(Error::NonFiniteInput { lane: j, index: 0 });
        }
        for j in 0..self.nv() {
            let d = displacements[j];
            for i in 0..self.nx() {
                self.feet.set(i, j, self.x_points[i] - d);
            }
        }
        let timings = self.step(exec, f);
        // Restore the standing feet for subsequent plain `step` calls.
        self.compute_feet();
        timings
    }

    /// Total mass `Σ f` (a conserved quantity of periodic advection up to
    /// spline interpolation error; used by tests and examples).
    pub fn mass(&self, f: &Matrix) -> f64 {
        f.as_slice().iter().sum()
    }

    /// Analytic solution of constant advection after `steps` steps for an
    /// initial profile `f0(x, v)` — for accuracy checks.
    pub fn analytic(&self, f0: impl Fn(f64, f64) -> f64, steps: usize) -> Matrix {
        let t = self.dt * steps as f64;
        self.init_distribution(|x, v| f0(x - v * t, v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_bsplines::Breaks;
    use pp_portable::{Parallel, Serial};

    fn gaussian(x: f64, _v: f64) -> f64 {
        let d = x - 0.5;
        (-d * d / 0.005).exp()
    }

    fn make(nx: usize, nv: usize, degree: usize, version: BuilderVersion) -> Advection1D {
        let space =
            PeriodicSplineSpace::new(Breaks::uniform(nx, 0.0, 1.0).unwrap(), degree).unwrap();
        let velocities: Vec<f64> = (0..nv).map(|j| 0.2 + 0.05 * j as f64).collect();
        let backend = SplineBackend::direct(space, version).unwrap();
        Advection1D::new(backend, velocities, 1e-2).unwrap()
    }

    #[test]
    fn advection_tracks_analytic_solution() {
        let mut adv = make(128, 4, 3, BuilderVersion::FusedSpmv);
        let mut f = adv.init_distribution(gaussian);
        let steps = 25;
        for _ in 0..steps {
            adv.step(&Parallel, &mut f).unwrap();
        }
        let exact = adv.analytic(gaussian, steps);
        let err = f.max_abs_diff(&exact);
        assert!(err < 5e-3, "advection error {err}");
    }

    #[test]
    fn mass_is_conserved() {
        let mut adv = make(64, 6, 3, BuilderVersion::Fused);
        let mut f = adv.init_distribution(|x, v| gaussian(x, v) + 0.1);
        let m0 = adv.mass(&f);
        for _ in 0..50 {
            adv.step(&Parallel, &mut f).unwrap();
        }
        let m1 = adv.mass(&f);
        assert!(((m1 - m0) / m0).abs() < 1e-10, "mass drifted: {m0} -> {m1}");
    }

    #[test]
    fn one_period_returns_to_start() {
        // With v·dt·steps == period, the exact solution is the initial
        // condition; spline error accumulates but stays small.
        let space = PeriodicSplineSpace::new(Breaks::uniform(128, 0.0, 1.0).unwrap(), 5).unwrap();
        let backend = SplineBackend::direct(space, BuilderVersion::FusedSpmv).unwrap();
        let mut adv = Advection1D::new(backend, vec![1.0], 0.01).unwrap();
        let mut f = adv.init_distribution(gaussian);
        let f0 = f.clone();
        for _ in 0..100 {
            adv.step(&Parallel, &mut f).unwrap();
        }
        assert!(f.max_abs_diff(&f0) < 1e-2, "{}", f.max_abs_diff(&f0));
    }

    #[test]
    fn higher_degree_is_more_accurate() {
        let mut errs = Vec::new();
        for degree in [3, 5] {
            let mut adv = make(64, 1, degree, BuilderVersion::FusedSpmv);
            let mut f = adv.init_distribution(|x, _| (std::f64::consts::TAU * x).sin());
            for _ in 0..20 {
                adv.step(&Serial, &mut f).unwrap();
            }
            let exact = adv.analytic(|x, _| (std::f64::consts::TAU * x).sin(), 20);
            errs.push(f.max_abs_diff(&exact));
        }
        assert!(
            errs[1] < errs[0],
            "deg5 {} should beat deg3 {}",
            errs[1],
            errs[0]
        );
    }

    #[test]
    fn direct_and_iterative_backends_agree() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(48, 0.0, 1.0).unwrap(), 3).unwrap();
        let velocities = vec![0.3, -0.2, 0.7];

        let mut adv_d = Advection1D::new(
            SplineBackend::direct(space.clone(), BuilderVersion::FusedSpmv).unwrap(),
            velocities.clone(),
            0.02,
        )
        .unwrap();
        let mut adv_i = Advection1D::new(
            SplineBackend::iterative(space, IterativeConfig::gpu()).unwrap(),
            velocities,
            0.02,
        )
        .unwrap();
        assert_eq!(adv_d.backend_label(), "kokkos-kernels");
        assert_eq!(adv_i.backend_label(), "ginkgo");

        let mut fd = adv_d.init_distribution(gaussian);
        let mut fi = fd.clone();
        for _ in 0..5 {
            adv_d.step(&Parallel, &mut fd).unwrap();
            adv_i.step(&Parallel, &mut fi).unwrap();
        }
        assert!(fd.max_abs_diff(&fi) < 1e-9, "{}", fd.max_abs_diff(&fi));
    }

    #[test]
    fn tiled_backend_matches_direct() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(64, 0.0, 1.0).unwrap(), 3).unwrap();
        let velocities = vec![0.3, -0.1];
        let mut adv_d = Advection1D::new(
            SplineBackend::direct(space.clone(), BuilderVersion::FusedSpmv).unwrap(),
            velocities.clone(),
            0.01,
        )
        .unwrap();
        let mut adv_t = Advection1D::new(
            SplineBackend::direct_tiled(space, 16).unwrap(),
            velocities,
            0.01,
        )
        .unwrap();
        assert_eq!(adv_t.backend_label(), "kokkos-kernels-tiled");
        let mut fd = adv_d.init_distribution(gaussian);
        let mut ft = fd.clone();
        for _ in 0..5 {
            adv_d.step(&Parallel, &mut fd).unwrap();
            adv_t.step(&Parallel, &mut ft).unwrap();
        }
        assert!(fd.max_abs_diff(&ft) < 1e-12, "{}", fd.max_abs_diff(&ft));
    }

    #[test]
    fn negative_velocity_moves_left() {
        let mut adv = Advection1D::new(
            SplineBackend::direct(
                PeriodicSplineSpace::new(Breaks::uniform(128, 0.0, 1.0).unwrap(), 3).unwrap(),
                BuilderVersion::FusedSpmv,
            )
            .unwrap(),
            vec![-0.5],
            0.02,
        )
        .unwrap();
        let mut f = adv.init_distribution(gaussian);
        for _ in 0..10 {
            adv.step(&Serial, &mut f).unwrap();
        }
        // Peak should now be near x = 0.5 − 0.5·0.2 = 0.4.
        let mut best = (0, f64::MIN);
        for i in 0..128 {
            if f.get(0, i) > best.1 {
                best = (i, f.get(0, i));
            }
        }
        let peak_x = adv.x_points()[best.0];
        assert!((peak_x - 0.4).abs() < 0.02, "peak at {peak_x}");
    }

    #[test]
    fn timings_are_populated() {
        let mut adv = make(64, 8, 3, BuilderVersion::Baseline);
        let mut f = adv.init_distribution(gaussian);
        let t = adv.step(&Parallel, &mut f).unwrap();
        assert!(t.total() > Duration::ZERO);
        assert!(t.splines_solve > Duration::ZERO);
        let mut acc = StepTimings::default();
        acc.accumulate(&t);
        acc.accumulate(&t);
        assert_eq!(acc.total(), t.total() * 2);
    }

    #[test]
    fn wrong_shape_rejected() {
        let mut adv = make(32, 2, 3, BuilderVersion::Fused);
        let mut bad = Matrix::zeros(3, 32, Layout::Right);
        assert!(adv.step(&Serial, &mut bad).is_err());
    }

    #[test]
    fn verified_backend_matches_direct_and_reports_clean() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(48, 0.0, 1.0).unwrap(), 3).unwrap();
        let velocities = vec![0.3, -0.2, 0.7];
        let mut adv_d = Advection1D::new(
            SplineBackend::direct(space.clone(), BuilderVersion::FusedSpmv).unwrap(),
            velocities.clone(),
            0.02,
        )
        .unwrap();
        let mut adv_v = Advection1D::new(
            SplineBackend::direct_verified(
                space,
                BuilderVersion::FusedSpmv,
                pp_splinesolver::VerifyConfig::default(),
            )
            .unwrap(),
            velocities,
            0.02,
        )
        .unwrap();
        assert_eq!(adv_v.backend_label(), "kokkos-kernels-verified");
        assert!(adv_v.last_diagnostics().is_none());

        let mut fd = adv_d.init_distribution(gaussian);
        let mut fv = fd.clone();
        for _ in 0..5 {
            adv_d.step(&Parallel, &mut fd).unwrap();
            adv_v.step(&Parallel, &mut fv).unwrap();
        }
        // Healthy lanes are bit-identical to the unverified direct path.
        assert_eq!(fd.max_abs_diff(&fv), 0.0);

        let diag = adv_v.last_diagnostics().unwrap();
        assert!(diag.all_clean(), "{diag}");
        assert!(diag.worst_residual < 1e-11);
        // max |v·dt| = 0.7 * 0.02.
        assert!((diag.max_foot_displacement - 0.014).abs() < 1e-12);
    }

    #[test]
    fn verified_backend_quarantines_poisoned_lane() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
        let mut adv = Advection1D::new(
            SplineBackend::direct_verified(
                space,
                BuilderVersion::FusedSpmv,
                pp_splinesolver::VerifyConfig::default(),
            )
            .unwrap(),
            vec![0.2, 0.3, 0.4],
            0.01,
        )
        .unwrap();
        let mut f = adv.init_distribution(gaussian);
        f.set(1, 10, f64::NAN); // poison lane 1 (lanes are rows of f)
        adv.step(&Parallel, &mut f).unwrap();
        let diag = adv.last_diagnostics().unwrap().clone();
        assert_eq!(diag.quarantined_lanes, vec![1]);
        // The poison was contained: every output value is finite, and the
        // healthy lanes advected normally.
        assert!(f.as_slice().iter().all(|v| v.is_finite()));
        let s = diag.to_string();
        assert!(s.contains("1 quarantined"), "{s}");
    }

    #[test]
    fn non_finite_displacement_rejected() {
        let mut adv = make(32, 3, 3, BuilderVersion::FusedSpmv);
        let mut f = adv.init_distribution(gaussian);
        let err = adv
            .step_with_displacements(&Parallel, &mut f, &[0.01, f64::NAN, 0.01])
            .unwrap_err();
        assert_eq!(err, Error::NonFiniteInput { lane: 1, index: 0 });
        // The standing feet must have been restored for later plain steps.
        adv.step(&Parallel, &mut f).unwrap();
    }

    #[test]
    fn set_dt_changes_feet() {
        let mut adv = make(32, 1, 3, BuilderVersion::Fused);
        let mut f1 = adv.init_distribution(gaussian);
        let mut f2 = f1.clone();
        adv.step(&Serial, &mut f1).unwrap();
        adv.set_dt(2e-2).unwrap();
        adv.step(&Serial, &mut f2).unwrap();
        assert!(f1.max_abs_diff(&f2) > 1e-6, "dt change must alter the step");
    }

    #[test]
    fn non_finite_dt_rejected_on_every_backend() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
        let backends: Vec<SplineBackend> = vec![
            SplineBackend::direct(space.clone(), BuilderVersion::FusedSpmv).unwrap(),
            SplineBackend::direct_verified(
                space,
                BuilderVersion::FusedSpmv,
                pp_splinesolver::VerifyConfig::default(),
            )
            .unwrap(),
        ];
        for (backend, bad) in backends.into_iter().zip([f64::NAN, f64::INFINITY]) {
            let err = Advection1D::new(backend, vec![0.1, 0.2], bad)
                .map(|_| ())
                .unwrap_err();
            assert_eq!(err, Error::NonFiniteInput { lane: 0, index: 0 });
        }
    }

    #[test]
    fn non_finite_set_dt_rejected_and_driver_stays_usable() {
        let mut adv = make(32, 2, 3, BuilderVersion::FusedSpmv);
        let mut f = adv.init_distribution(gaussian);
        let reference = {
            let mut adv2 = make(32, 2, 3, BuilderVersion::FusedSpmv);
            let mut f2 = f.clone();
            adv2.step(&Serial, &mut f2).unwrap();
            f2
        };
        let err = adv.set_dt(f64::NAN).unwrap_err();
        assert_eq!(err, Error::NonFiniteInput { lane: 0, index: 0 });
        let err = adv.set_dt(f64::NEG_INFINITY).unwrap_err();
        assert_eq!(err, Error::NonFiniteInput { lane: 0, index: 0 });
        // The rejected set_dt must not have touched dt or the feet: the
        // next step matches an untouched driver bitwise.
        adv.step(&Serial, &mut f).unwrap();
        assert_eq!(f.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn non_finite_velocity_rejected() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
        let backend = SplineBackend::direct(space, BuilderVersion::FusedSpmv).unwrap();
        let err = Advection1D::new(backend, vec![0.1, f64::NEG_INFINITY, 0.3], 1e-2)
            .map(|_| ())
            .unwrap_err();
        assert_eq!(err, Error::NonFiniteInput { lane: 1, index: 0 });
    }

    #[test]
    fn resident_step_bit_identical_to_interleaved_host_step() {
        // Residency *is* the interleaved kernel, so the reference host
        // driver must run `BuilderVersion::Interleaved` for a bitwise
        // comparison. 13 lanes exercises a remainder chunk.
        let mut adv_h = make(64, 13, 3, BuilderVersion::Interleaved);
        let mut adv_r = make(64, 13, 3, BuilderVersion::Interleaved);
        let mut f = adv_h.init_distribution(gaussian);
        // Resident slab is the (Nx, Nv) transpose of the (Nv, Nx) field.
        let mut slab = ResidentBatch::pack_transposed(&f);
        for step in 0..5 {
            adv_h.step(&Parallel, &mut f).unwrap();
            let t = adv_r.step_resident(&Parallel, &mut slab).unwrap();
            // The resident step has no pack/unpack phases at all.
            assert_eq!(t.transpose_in, Duration::ZERO, "step {step}");
            assert_eq!(t.transpose_out, Duration::ZERO, "step {step}");
        }
        let mirror = slab.host_transposed();
        assert_eq!(mirror.shape(), f.shape());
        for j in 0..13 {
            for i in 0..64 {
                assert_eq!(
                    f.get(j, i).to_bits(),
                    mirror.get(j, i).to_bits(),
                    "lane {j}, x {i}"
                );
            }
        }
    }

    #[test]
    fn resident_step_verified_backend_reports_diagnostics() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(48, 0.0, 1.0).unwrap(), 3).unwrap();
        let mut adv = Advection1D::new(
            SplineBackend::direct_verified(
                space,
                BuilderVersion::Interleaved,
                pp_splinesolver::VerifyConfig::default(),
            )
            .unwrap(),
            vec![0.3, -0.2, 0.7],
            0.02,
        )
        .unwrap();
        let f = adv.init_distribution(gaussian);
        let mut slab = ResidentBatch::pack_transposed(&f);
        adv.step_resident(&Parallel, &mut slab).unwrap();
        let diag = adv.last_diagnostics().unwrap();
        assert!(diag.all_clean(), "{diag}");
        assert!((diag.max_foot_displacement - 0.014).abs() < 1e-12);
    }

    #[test]
    fn resident_step_rejects_iterative_backend_and_bad_shapes() {
        let space = PeriodicSplineSpace::new(Breaks::uniform(32, 0.0, 1.0).unwrap(), 3).unwrap();
        let mut adv_i = Advection1D::new(
            SplineBackend::iterative(space, IterativeConfig::gpu()).unwrap(),
            vec![0.3, -0.2],
            0.02,
        )
        .unwrap();
        let mut slab = ResidentBatch::zeros(32, 2);
        assert!(adv_i.step_resident(&Parallel, &mut slab).is_err());

        let mut adv = make(32, 2, 3, BuilderVersion::Interleaved);
        let mut bad = ResidentBatch::zeros(2, 32); // transposed by mistake
        assert!(adv.step_resident(&Serial, &mut bad).is_err());
        // The driver stays usable after a rejected slab.
        let mut ok = ResidentBatch::zeros(32, 2);
        adv.step_resident(&Serial, &mut ok).unwrap();
    }
}
