//! # pp-bsplines — periodic B-spline spaces
//!
//! B-spline machinery for the spline solver: knot vectors (uniform and
//! non-uniform, §II-A of the paper motivates non-uniform meshes for steep
//! equilibrium gradients), Cox–de Boor basis evaluation, periodic spline
//! spaces of degree 3/4/5, Greville interpolation points, and assembly of
//! the interpolation (collocation) matrix `A` of equation (2) — the matrix
//! whose sparsity pattern is the paper's Fig. 1 and whose sub-matrix
//! classification is its Table I.
//!
//! ## Conventions
//!
//! A periodic space over break points `t_0 < … < t_n` (period
//! `L = t_n − t_0`) has exactly `n` degrees of freedom. The extended knot
//! vector wraps `degree` intervals around each end. Interpolation points
//! are the (wrapped) Greville abscissae
//! `g_k = (τ_{k+1} + … + τ_{k+d}) / d`, which for uniform knots places
//! odd-degree points on the break points and even-degree points on cell
//! midpoints — exactly the alignment that makes the interior of `A` banded
//! with thin periodic corner blocks.
//!
//! ```
//! use pp_bsplines::{Breaks, PeriodicSplineSpace};
//!
//! let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
//! assert_eq!(space.num_basis(), 16);
//!
//! // Interpolate sin(2πx) and evaluate the spline anywhere.
//! let values: Vec<f64> = space
//!     .interpolation_points()
//!     .iter()
//!     .map(|&x| (2.0 * std::f64::consts::PI * x).sin())
//!     .collect();
//! let coefs = space.interpolate_naive(&values).unwrap();
//! let y = space.eval(&coefs, 0.23);
//! assert!((y - (2.0 * std::f64::consts::PI * 0.23_f64).sin()).abs() < 1e-3);
//! ```

// Numerical kernels here deliberately use index loops (matching the
// LAPACK-style algorithms they implement) and NaN-rejecting negated
// comparisons; silence the corresponding style lints crate-wide.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::int_plus_one)]

pub mod basis;
pub mod clamped;
pub mod error;
pub mod knots;
pub mod matrix;
pub mod space;

pub use clamped::ClampedSplineSpace;
pub use error::{Error, Result};
pub use knots::Breaks;
pub use matrix::{assemble_interpolation_matrix, SplineMatrixStructure};
pub use space::{PeriodicSplineSpace, PointPlacement, MAX_DEGREE};
