//! Preconditioned BiCG (bi-conjugate gradients).
//!
//! Listed by the paper among Ginkgo's solvers (§II-B.2). Requires the
//! transposed operator `Aᵀ` and transposed preconditioner application.

use crate::precond::Preconditioner;
use crate::solver::{axpy, dot, norm2, residual_into, IterativeSolver, SolveResult};
use crate::stop::StopCriteria;
use pp_sparse::Csr;

/// The bi-conjugate gradient method for general systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiCg;

impl IterativeSolver for BiCg {
    fn name(&self) -> &'static str {
        "BiCG"
    }

    fn solve(
        &self,
        a: &Csr,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        stop: &StopCriteria,
    ) -> SolveResult {
        let n = b.len();
        assert_eq!(a.nrows(), n, "BiCG: dimension mismatch");
        assert_eq!(x.len(), n, "BiCG: dimension mismatch");
        let norm_b = norm2(b);

        let mut r = vec![0.0; n];
        residual_into(a, x, b, &mut r);
        let mut r_star = r.clone();
        let mut z = vec![0.0; n];
        let mut z_star = vec![0.0; n];
        m.apply(&r, &mut z);
        m.apply_transpose(&r_star, &mut z_star);
        let mut p = z.clone();
        let mut p_star = z_star.clone();
        let mut q = vec![0.0; n];
        let mut q_star = vec![0.0; n];
        let mut rho = dot(&z, &r_star);
        let mut iterations = 0;
        let mut converged = false;

        while iterations < stop.max_iters {
            if stop.is_converged(norm2(&r), norm_b) {
                converged = true;
                break;
            }
            if rho == 0.0 {
                break; // breakdown
            }
            iterations += 1;

            a.spmv_into(&p, &mut q);
            a.spmv_transpose_into(&p_star, &mut q_star);
            let pq = dot(&p_star, &q);
            if pq == 0.0 {
                break; // breakdown
            }
            let alpha = rho / pq;
            axpy(alpha, &p, x);
            axpy(-alpha, &q, &mut r);
            axpy(-alpha, &q_star, &mut r_star);
            m.apply(&r, &mut z);
            m.apply_transpose(&r_star, &mut z_star);
            let rho_new = dot(&z, &r_star);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
                p_star[i] = z_star[i] + beta * p_star[i];
            }
        }

        crate::solver::finish(a, x, b, stop, iterations, converged)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::Cg;
    use crate::precond::{BlockJacobi, Identity};
    use pp_portable::Matrix;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn nonsymmetric_system(n: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, pp_portable::Layout::Right, |i, j| {
            if i == j {
                6.0
            } else if j == i + 1 {
                -2.0
            } else if i == j + 1 {
                -0.7
            } else if j == i + 2 {
                0.3
            } else {
                0.0
            }
        });
        let csr = Csr::from_dense(&a, 0.0);
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = csr.spmv_alloc(&x_true);
        (csr, x_true, b)
    }

    #[test]
    fn converges_on_nonsymmetric_system() {
        let (a, x_true, b) = nonsymmetric_system(70, 1);
        let mut x = vec![0.0; 70];
        let res = BiCg.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn on_spd_systems_bicg_tracks_cg() {
        // For SPD A and symmetric preconditioner, BiCG reduces to CG.
        let (a, _, b) = crate::cg::tests::spd_system(60, 7);
        let stop = StopCriteria::with_tol(1e-12);
        let mut x1 = vec![0.0; 60];
        let r1 = Cg.solve(&a, &Identity, &b, &mut x1, &stop);
        let mut x2 = vec![0.0; 60];
        let r2 = BiCg.solve(&a, &Identity, &b, &mut x2, &stop);
        assert!(r1.converged && r2.converged);
        assert_eq!(r1.iterations, r2.iterations);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn block_jacobi_transpose_path_exercised() {
        let (a, x_true, b) = nonsymmetric_system(90, 2);
        let mut x = vec![0.0; 90];
        let bj = BlockJacobi::new(&a, 8);
        let res = BiCg.solve(&a, &bj, &b, &mut x, &StopCriteria::with_tol(1e-13));
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }
}
