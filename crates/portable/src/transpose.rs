//! Cache-blocked 2-D transpose kernels.
//!
//! Algorithm 2 of the paper transposes the distribution function to make the
//! interpolation dimension contiguous before the spline solve, and
//! transposes the coefficients back afterwards. These two transposes are
//! part of the timed region of the advection benchmark, so they are
//! implemented here with tiling (to keep both source and destination
//! accesses within cache lines) and optional lane-parallel execution.

use crate::error::{Error, Result};
use crate::exec::ExecSpace;
#[cfg(test)]
use crate::layout::Layout;
use crate::matrix::Matrix;
use crate::ptr::SharedMutPtr;

/// Tile edge for the blocked transpose. 32x32 f64 tiles = 8 KiB read +
/// 8 KiB written, comfortably inside L1 on every target in Table II.
const TILE: usize = 32;

/// Transpose `src` into `dst`, which must have shape
/// `(src.ncols(), src.nrows())`. Layouts may differ; the kernel walks tiles
/// of the *source* and scatters into the destination.
pub fn transpose_into(src: &Matrix, dst: &mut Matrix) -> Result<()> {
    check_shapes(src, dst)?;
    let (m, n) = src.shape();
    for jb in (0..n).step_by(TILE) {
        for ib in (0..m).step_by(TILE) {
            let i_end = (ib + TILE).min(m);
            let j_end = (jb + TILE).min(n);
            for i in ib..i_end {
                for j in jb..j_end {
                    dst.set(j, i, src.get(i, j));
                }
            }
        }
    }
    Ok(())
}

/// Parallel transpose: tiles of the source are distributed over `exec`.
pub fn transpose_into_with<E: ExecSpace>(exec: &E, src: &Matrix, dst: &mut Matrix) -> Result<()> {
    check_shapes(src, dst)?;
    let (m, n) = src.shape();
    let tiles_i = m.div_ceil(TILE);
    let tiles_j = n.div_ceil(TILE);
    let (drs, dcs) = dst.strides();
    let (dm, dn) = dst.shape();
    let dptr = SharedMutPtr(dst.as_mut_ptr());
    exec.for_each(tiles_i * tiles_j, |t| {
        let ib = (t / tiles_j) * TILE;
        let jb = (t % tiles_j) * TILE;
        let i_end = (ib + TILE).min(m);
        let j_end = (jb + TILE).min(n);
        for i in ib..i_end {
            for j in jb..j_end {
                // dst[(j, i)] = src[(i, j)]; tiles map to disjoint (j, i)
                // rectangles, so concurrent writes never alias.
                debug_assert!(j < dm && i < dn);
                let off = j * drs + i * dcs;
                // SAFETY: offset is in bounds (asserted shape (n, m) above)
                // and each destination element is written by exactly one
                // tile.
                unsafe {
                    *dptr.add(off) = src.get(i, j);
                }
            }
        }
    });
    Ok(())
}

/// Allocate and return the transpose of `src` (same layout as `src`).
pub fn transpose(src: &Matrix) -> Matrix {
    let mut dst = Matrix::zeros(src.ncols(), src.nrows(), src.layout());
    transpose_into(src, &mut dst).expect("shape correct by construction");
    dst
}

/// "Logical" transpose: reinterpret the same buffer with flipped layout and
/// swapped extents, costing zero data movement. Useful when a consumer can
/// work with either layout.
pub fn transpose_reinterpret(src: &Matrix) -> Matrix {
    let (m, n) = src.shape();
    Matrix::from_vec(n, m, src.layout().flipped(), src.as_slice().to_vec())
        .expect("buffer length preserved")
}

fn check_shapes(src: &Matrix, dst: &Matrix) -> Result<()> {
    if dst.shape() != (src.ncols(), src.nrows()) {
        return Err(Error::ShapeMismatch {
            op: "transpose",
            left: src.shape(),
            right: dst.shape(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Parallel, Serial};

    fn sample(m: usize, n: usize, layout: Layout) -> Matrix {
        Matrix::from_fn(m, n, layout, |i, j| (i * 1000 + j) as f64)
    }

    #[test]
    fn transpose_small_exact() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = transpose(&a);
        assert_eq!(t.shape(), (3, 2));
        assert_eq!(t.get(0, 0), 1.0);
        assert_eq!(t.get(2, 1), 6.0);
        assert_eq!(t.get(1, 0), 2.0);
    }

    #[test]
    fn transpose_twice_is_identity_all_layout_pairs() {
        for src_layout in [Layout::Left, Layout::Right] {
            let a = sample(37, 53, src_layout); // sizes straddle tile edges
            let t = transpose(&a);
            let tt = transpose(&t);
            assert_eq!(a.max_abs_diff(&tt), 0.0, "{src_layout:?}");
        }
    }

    #[test]
    fn transpose_into_mixed_layouts() {
        let a = sample(40, 17, Layout::Left);
        let mut t = Matrix::zeros(17, 40, Layout::Right);
        transpose_into(&a, &mut t).unwrap();
        for i in 0..40 {
            for j in 0..17 {
                assert_eq!(t.get(j, i), a.get(i, j));
            }
        }
    }

    #[test]
    fn parallel_matches_serial() {
        let a = sample(129, 200, Layout::Left);
        let mut t_ser = Matrix::zeros(200, 129, Layout::Left);
        let mut t_par = Matrix::zeros(200, 129, Layout::Left);
        transpose_into_with(&Serial, &a, &mut t_ser).unwrap();
        transpose_into_with(&Parallel, &a, &mut t_par).unwrap();
        assert_eq!(t_ser.max_abs_diff(&t_par), 0.0);
        let reference = transpose(&a);
        assert_eq!(t_ser.max_abs_diff(&reference), 0.0);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = sample(4, 5, Layout::Left);
        let mut bad = Matrix::zeros(4, 5, Layout::Left);
        assert!(transpose_into(&a, &mut bad).is_err());
    }

    #[test]
    fn reinterpret_is_a_true_transpose() {
        let a = sample(6, 9, Layout::Right);
        let t = transpose_reinterpret(&a);
        assert_eq!(t.shape(), (9, 6));
        assert_eq!(t.layout(), Layout::Left);
        for i in 0..6 {
            for j in 0..9 {
                assert_eq!(t.get(j, i), a.get(i, j));
            }
        }
    }

    #[test]
    fn degenerate_shapes() {
        let a = sample(1, 7, Layout::Left);
        let t = transpose(&a);
        assert_eq!(t.shape(), (7, 1));
        let empty = Matrix::zeros(0, 5, Layout::Left);
        let te = transpose(&empty);
        assert_eq!(te.shape(), (5, 0));
    }
}
