//! 2-D semi-Lagrangian advection on tensor-product splines: solid-body
//! rotation of a Gaussian blob — the poloidal-plane workload shape of a
//! gyrokinetic code, and the classic accuracy test (one full turn must
//! return the initial field).
//!
//! ```text
//! cargo run --release --example poloidal_rotation [n] [steps_per_turn] [turns]
//! ```

use batched_splines::prelude::*;
use pp_advection::Rotation2D;

fn arg(i: usize, default: usize) -> usize {
    std::env::args()
        .nth(i)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn blob(x: f64, y: f64) -> f64 {
    let (dx, dy) = (x - 0.5, y - 0.28);
    (-(dx * dx + dy * dy) / 0.005).exp()
}

fn render(f: &Matrix) -> String {
    let shades: &[u8] = b" .:-=+*#%@";
    let n = f.nrows();
    let rows = 24;
    let cols = 48;
    let fmax = f.as_slice().iter().cloned().fold(1e-12, f64::max);
    let mut out = String::new();
    for r in (0..rows).rev() {
        let j = r * (n - 1) / (rows - 1);
        out.push('|');
        for c in 0..cols {
            let i = c * (n - 1) / (cols - 1);
            let v = (f.get(i, j) / fmax).clamp(0.0, 1.0);
            let idx = (v * (shades.len() - 1) as f64).round() as usize;
            out.push(shades[idx] as char);
        }
        out.push_str("|\n");
    }
    out
}

fn main() {
    let n = arg(1, 96);
    let steps_per_turn = arg(2, 48);
    let turns = arg(3, 1);
    println!(
        "solid-body rotation on a {n}x{n} doubly periodic grid, {steps_per_turn} steps/turn, {turns} turn(s)\n"
    );

    let mut rot =
        Rotation2D::new(n, 3, std::f64::consts::TAU / steps_per_turn as f64).expect("setup");
    let mut f = rot.init_field(blob);
    let f0 = f.clone();
    let m0 = rot.mass(&f);

    println!("initial field:");
    print!("{}", render(&f));

    let total = steps_per_turn * turns;
    let start = std::time::Instant::now();
    for step in 1..=total {
        rot.step(&Parallel, &mut f).expect("step");
        if step == total / 2 {
            println!("\nafter half the run:");
            print!("{}", render(&f));
        }
    }
    let elapsed = start.elapsed();

    println!("\nafter {turns} full turn(s):");
    print!("{}", render(&f));

    let err = f.max_abs_diff(&f0);
    let mass_drift = ((rot.mass(&f) - m0) / m0).abs();
    println!("\nmax |f - f0| after full turns: {err:.3e} (method error only)");
    println!("mass drift: {mass_drift:.3e}");
    println!(
        "throughput: {:.4} GLUPS ({} steps, each = 2 batched spline builds + 2D evaluation)",
        glups(n, n, elapsed / total as u32),
        total
    );
    assert!(err < 0.05, "rotation accuracy regression");
}
