//! Table I — type of the sub-matrix `Q` for each spline degree and mesh
//! uniformity, verified against the actual factored matrices (not just
//! the static classification).

use pp_bench::{parse_args, SplineConfig};
use pp_splinesolver::{QClass, SchurBlocks};

fn main() {
    let args = parse_args(64, 0, 0);
    println!("=== Table I: type of sub-matrix Q (n = {}) ===\n", args.nx);
    println!("{:<8} {:<28} {:<28}", "Degree", "Uniform", "Non-uniform");

    for degree in [3usize, 4, 5] {
        let mut cells = Vec::new();
        for uniform in [true, false] {
            let cfg = SplineConfig { degree, uniform };
            let blocks = SchurBlocks::new(&cfg.space(args.nx)).expect("factorisation");
            let class = blocks.q_class();
            let expected = QClass::from_table(degree, uniform);
            let mark = if class == expected {
                ""
            } else {
                "  << MISMATCH"
            };
            cells.push(format!(
                "{} ({}){mark}",
                match class {
                    QClass::PdsTridiagonal => "PDS tridiagonal",
                    QClass::PdsBanded => "PDS banded",
                    QClass::GeneralBanded => "General banded",
                },
                class.routine()
            ));
        }
        println!("{:<8} {:<28} {:<28}", degree, cells[0], cells[1]);
    }
    println!("\nPaper's Table I:");
    println!("  3: PDS tridiagonal (pttrs) | General banded (gbtrs)");
    println!("  4: PDS banded (pbtrs)      | General banded (gbtrs)");
    println!("  5: PDS banded (pbtrs)      | General banded (gbtrs)");
}
