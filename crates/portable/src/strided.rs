//! Strided 1-D views: the Rust equivalent of `Kokkos::subview(b, ALL, i)`.
//!
//! The paper's per-lane kernels (Listing 1's `SerialPttrsInternal`, the
//! fused kernel of Listing 4) operate on one right-hand-side lane described
//! by a base pointer and a stride `bs0`. [`Strided`] and [`StridedMut`] are
//! the safe packaging of exactly that: length + stride windows over a
//! borrowed slice.
//!
//! Hot-loop accesses use `Index`/`IndexMut`, which bounds-check in debug
//! builds and compile to raw strided loads in release builds (the underlying
//! slice access is still checked, but the optimiser removes the check when
//! the iteration bound is visible; performance-critical kernels in
//! `pp-linalg` iterate rather than index wherever possible, per the Rust
//! Performance Book's bounds-check guidance).

use std::ops::{Index, IndexMut};

/// Immutable strided view over `len` elements spaced `stride` apart.
#[derive(Clone, Copy)]
pub struct Strided<'a> {
    data: &'a [f64],
    len: usize,
    stride: usize,
}

impl<'a> Strided<'a> {
    /// View `len` elements of `data`, starting at `data[0]`, spaced
    /// `stride` elements apart.
    ///
    /// # Panics
    /// Panics if the last element would fall outside `data`.
    #[inline]
    pub fn new(data: &'a [f64], len: usize, stride: usize) -> Self {
        if len > 0 {
            let last = (len - 1) * stride;
            assert!(
                last < data.len(),
                "Strided::new: last index {last} out of bounds (len {})",
                data.len()
            );
        }
        Self { data, len, stride }
    }

    /// A contiguous view over an entire slice.
    #[inline]
    pub fn from_slice(data: &'a [f64]) -> Self {
        Self {
            len: data.len(),
            stride: 1,
            data,
        }
    }

    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distance (in elements of the underlying slice) between consecutive
    /// view elements.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Iterate over the viewed elements by value.
    #[inline]
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        (0..self.len).map(move |i| self.data[i * self.stride])
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.iter().collect()
    }

    /// Euclidean norm of the viewed vector.
    pub fn norm2(&self) -> f64 {
        self.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Dot product with another strided view of the same length.
    ///
    /// # Panics
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &Strided<'_>) -> f64 {
        assert_eq!(self.len, other.len, "dot: length mismatch");
        (0..self.len)
            .map(|i| self.data[i * self.stride] * other.data[i * other.stride])
            .sum()
    }
}

impl Index<usize> for Strided<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        debug_assert!(i < self.len, "Strided index {i} out of bounds {}", self.len);
        &self.data[i * self.stride]
    }
}

/// Mutable strided view over `len` elements spaced `stride` apart.
pub struct StridedMut<'a> {
    data: &'a mut [f64],
    len: usize,
    stride: usize,
}

impl<'a> StridedMut<'a> {
    /// Mutable view of `len` elements of `data` spaced `stride` apart.
    ///
    /// # Panics
    /// Panics if the last element would fall outside `data`.
    #[inline]
    pub fn new(data: &'a mut [f64], len: usize, stride: usize) -> Self {
        if len > 0 {
            let last = (len - 1) * stride;
            assert!(
                last < data.len(),
                "StridedMut::new: last index {last} out of bounds (len {})",
                data.len()
            );
        }
        Self { data, len, stride }
    }

    /// A contiguous mutable view over an entire slice.
    #[inline]
    pub fn from_slice(data: &'a mut [f64]) -> Self {
        Self {
            len: data.len(),
            stride: 1,
            data,
        }
    }

    /// Build a `StridedMut` from a raw pointer.
    ///
    /// Used by the lane dispatchers to hand each parallel worker a view of
    /// its own lane.
    ///
    /// # Safety
    /// `ptr` must be valid for reads and writes over the strided footprint
    /// `(len - 1) * stride + 1`, and no other live reference may overlap
    /// that footprint for the lifetime `'a`.
    #[inline]
    pub unsafe fn from_raw(ptr: *mut f64, len: usize, stride: usize) -> Self {
        let footprint = if len == 0 { 0 } else { (len - 1) * stride + 1 };
        Self {
            data: std::slice::from_raw_parts_mut(ptr, footprint),
            len,
            stride,
        }
    }

    /// Number of elements visible through the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the view is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Distance between consecutive view elements in the underlying slice.
    #[inline]
    pub fn stride(&self) -> usize {
        self.stride
    }

    /// Immutable re-borrow of this view.
    #[inline]
    pub fn as_ref(&self) -> Strided<'_> {
        Strided {
            data: self.data,
            len: self.len,
            stride: self.stride,
        }
    }

    /// Mutable re-borrow (useful to pass the view to a helper without
    /// giving it away).
    #[inline]
    pub fn reborrow(&mut self) -> StridedMut<'_> {
        StridedMut {
            data: self.data,
            len: self.len,
            stride: self.stride,
        }
    }

    /// Split the view at element `mid`: the first view covers elements
    /// `0..mid`, the second `mid..len`, preserving the stride. Used by the
    /// Schur-complement kernels to treat one batch lane as the stacked
    /// right-hand side `(b0, b1)` of the paper's Algorithm 1.
    ///
    /// # Panics
    /// Panics if `mid > len`.
    #[inline]
    pub fn split_at(self, mid: usize) -> (StridedMut<'a>, StridedMut<'a>) {
        assert!(mid <= self.len, "split_at: mid {mid} > len {}", self.len);
        let (head, tail) = self
            .data
            .split_at_mut((mid * self.stride).min(self.data.len()));
        (
            StridedMut {
                data: head,
                len: mid,
                stride: self.stride,
            },
            StridedMut {
                data: tail,
                len: self.len - mid,
                stride: self.stride,
            },
        )
    }

    /// Copy from a slice of identical length.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn copy_from_slice(&mut self, src: &[f64]) {
        assert_eq!(self.len, src.len(), "copy_from_slice: length mismatch");
        for (i, &v) in src.iter().enumerate() {
            self.data[i * self.stride] = v;
        }
    }

    /// Fill with a constant.
    pub fn fill(&mut self, value: f64) {
        for i in 0..self.len {
            self.data[i * self.stride] = value;
        }
    }

    /// Copy the view into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<f64> {
        self.as_ref().to_vec()
    }
}

impl Index<usize> for StridedMut<'_> {
    type Output = f64;
    #[inline]
    fn index(&self, i: usize) -> &f64 {
        debug_assert!(i < self.len);
        &self.data[i * self.stride]
    }
}

impl IndexMut<usize> for StridedMut<'_> {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        debug_assert!(i < self.len);
        &mut self.data[i * self.stride]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strided_reads_every_kth() {
        let data: Vec<f64> = (0..12).map(|x| x as f64).collect();
        let v = Strided::new(&data, 4, 3);
        assert_eq!(v.to_vec(), vec![0.0, 3.0, 6.0, 9.0]);
        assert_eq!(v[2], 6.0);
        assert_eq!(v.len(), 4);
        assert_eq!(v.stride(), 3);
    }

    #[test]
    fn strided_mut_writes_every_kth() {
        let mut data = vec![0.0; 10];
        {
            let mut v = StridedMut::new(&mut data, 5, 2);
            for i in 0..5 {
                v[i] = i as f64;
            }
        }
        assert_eq!(data, vec![0.0, 0.0, 1.0, 0.0, 2.0, 0.0, 3.0, 0.0, 4.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn strided_new_checks_footprint() {
        let data = vec![0.0; 5];
        let _ = Strided::new(&data, 3, 3); // last index 6 >= 5
    }

    #[test]
    fn empty_views_are_fine() {
        let data: Vec<f64> = vec![];
        let v = Strided::new(&data, 0, 1);
        assert!(v.is_empty());
        assert_eq!(v.to_vec(), Vec::<f64>::new());
    }

    #[test]
    fn dot_and_norm() {
        let a = [3.0, 0.0, 4.0];
        let v = Strided::from_slice(&a);
        assert_eq!(v.norm2(), 5.0);
        let b = [1.0, 1.0, 1.0];
        let w = Strided::from_slice(&b);
        assert_eq!(v.dot(&w), 7.0);
    }

    #[test]
    fn copy_from_slice_and_fill() {
        let mut data = vec![0.0; 6];
        let mut v = StridedMut::new(&mut data, 3, 2);
        v.copy_from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(v.to_vec(), vec![1.0, 2.0, 3.0]);
        v.fill(9.0);
        assert_eq!(data, vec![9.0, 0.0, 9.0, 0.0, 9.0, 0.0]);
    }

    #[test]
    fn split_at_partitions_view() {
        let mut data = vec![0.0; 12];
        let v = StridedMut::new(&mut data, 6, 2);
        let (mut a, mut b) = v.split_at(4);
        assert_eq!(a.len(), 4);
        assert_eq!(b.len(), 2);
        a.fill(1.0);
        b.fill(2.0);
        assert_eq!(
            data,
            vec![1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 1.0, 0.0, 2.0, 0.0, 2.0, 0.0]
        );
    }

    #[test]
    fn split_at_edges() {
        let mut data = vec![5.0; 4];
        let v = StridedMut::new(&mut data, 4, 1);
        let (a, b) = v.split_at(0);
        assert_eq!((a.len(), b.len()), (0, 4));
        let v = StridedMut::new(&mut data, 4, 1);
        let (a, b) = v.split_at(4);
        assert_eq!((a.len(), b.len()), (4, 0));
    }

    #[test]
    fn from_raw_round_trips() {
        let mut data = vec![0.0; 8];
        let ptr = data.as_mut_ptr();
        // SAFETY: exclusive access, footprint (4-1)*2+1 = 7 <= 8.
        {
            let mut v = unsafe { StridedMut::from_raw(ptr, 4, 2) };
            v.fill(5.0);
        }
        assert_eq!(data, vec![5.0, 0.0, 5.0, 0.0, 5.0, 0.0, 5.0, 0.0]);
    }
}
