//! Compressed Sparse Column storage.
//!
//! The paper's motivation for choosing COO was precisely to avoid writing
//! kernels for both CSR *and* CSC; CSC is provided here for completeness
//! (column-oriented assembly, transpose-free `Aᵀ x`) and to make that
//! trade-off testable.

use crate::coo::Coo;
use crate::csr::Csr;
use pp_portable::Matrix;

/// A sparse matrix in CSC format.
#[derive(Debug, Clone, PartialEq)]
pub struct Csc {
    nrows: usize,
    ncols: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
    values: Vec<f64>,
}

impl Csc {
    /// Build from a COO matrix (duplicates merged, rows sorted within each
    /// column). Implemented by converting the transpose through CSR, which
    /// shares the sort/merge logic.
    pub fn from_coo(coo: &Coo) -> Self {
        // Transpose the triplets, build CSR of Aᵀ, reinterpret as CSC of A.
        let t = Coo::from_triplets(
            coo.ncols(),
            coo.nrows(),
            coo.cols_idx().to_vec(),
            coo.rows_idx().to_vec(),
            coo.values().to_vec(),
        )
        .expect("transposed triplets valid by construction");
        let csr_t = Csr::from_coo(&t);
        Self {
            nrows: coo.nrows(),
            ncols: coo.ncols(),
            col_ptr: csr_t.row_ptr().to_vec(),
            row_idx: csr_t.col_idx().to_vec(),
            values: csr_t.values().to_vec(),
        }
    }

    /// Extract the non-zeros of a dense matrix.
    pub fn from_dense(a: &Matrix, threshold: f64) -> Self {
        Self::from_coo(&Coo::from_dense(a, threshold))
    }

    /// Number of rows.
    #[inline]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[inline]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Entries `(row, value)` of column `j`.
    #[inline]
    pub fn col(&self, j: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let lo = self.col_ptr[j];
        let hi = self.col_ptr[j + 1];
        self.row_idx[lo..hi]
            .iter()
            .copied()
            .zip(self.values[lo..hi].iter().copied())
    }

    /// `y ← A x` (column-scatter form).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.ncols, "spmv: x length");
        assert_eq!(y.len(), self.nrows, "spmv: y length");
        y.fill(0.0);
        for j in 0..self.ncols {
            let xj = x[j];
            if xj != 0.0 {
                for (r, v) in self.col(j) {
                    y[r] += v * xj;
                }
            }
        }
    }

    /// `y ← Aᵀ x` without materialising the transpose (column-gather form).
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn spmv_transpose_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.nrows, "spmv_t: x length");
        assert_eq!(y.len(), self.ncols, "spmv_t: y length");
        for j in 0..self.ncols {
            let mut s = 0.0;
            for (r, v) in self.col(j) {
                s += v * x[r];
            }
            y[j] = s;
        }
    }

    /// Densify (tests).
    pub fn to_dense(&self) -> Matrix {
        let mut m = Matrix::zeros(self.nrows, self.ncols, pp_portable::Layout::Right);
        for j in 0..self.ncols {
            for (r, v) in self.col(j) {
                m.add_assign(r, j, v);
            }
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_portable::TestRng;

    fn random_sparse(rng: &mut TestRng, m: usize, n: usize) -> Matrix {
        Matrix::from_fn(m, n, pp_portable::Layout::Right, |_, _| {
            if rng.gen_bool(0.25) {
                rng.gen_range(-1.0..1.0)
            } else {
                0.0
            }
        })
    }

    #[test]
    fn round_trip_matches_dense() {
        let mut rng = TestRng::seed_from_u64(8);
        let a = random_sparse(&mut rng, 13, 9);
        let csc = Csc::from_dense(&a, 0.0);
        assert_eq!(csc.to_dense().max_abs_diff(&a), 0.0);
    }

    #[test]
    fn csc_and_csr_agree() {
        let mut rng = TestRng::seed_from_u64(12);
        let a = random_sparse(&mut rng, 11, 17);
        let coo = Coo::from_dense(&a, 0.0);
        let csr = Csr::from_coo(&coo);
        let csc = Csc::from_coo(&coo);
        assert_eq!(csr.nnz(), csc.nnz());
        let x: Vec<f64> = (0..17).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let y_csr = csr.spmv_alloc(&x);
        let mut y_csc = vec![0.0; 11];
        csc.spmv_into(&x, &mut y_csc);
        for (u, v) in y_csr.iter().zip(&y_csc) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn transpose_spmv_matches_explicit_transpose() {
        let mut rng = TestRng::seed_from_u64(21);
        let a = random_sparse(&mut rng, 6, 10);
        let csc = Csc::from_dense(&a, 0.0);
        let x: Vec<f64> = (0..6).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; 10];
        csc.spmv_transpose_into(&x, &mut y);
        let expected: Vec<f64> = (0..10)
            .map(|j| (0..6).map(|i| a.get(i, j) * x[i]).sum())
            .collect();
        for (u, v) in y.iter().zip(&expected) {
            assert!((u - v).abs() < 1e-13);
        }
    }

    #[test]
    fn rows_sorted_within_columns() {
        let mut rng = TestRng::seed_from_u64(30);
        let a = random_sparse(&mut rng, 14, 6);
        let csc = Csc::from_dense(&a, 0.0);
        for j in 0..6 {
            let rows: Vec<usize> = csc.col(j).map(|(r, _)| r).collect();
            let mut sorted = rows.clone();
            sorted.sort_unstable();
            assert_eq!(rows, sorted);
        }
    }
}
