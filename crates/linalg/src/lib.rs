//! # pp-linalg — batched serial dense linear algebra
//!
//! Rust implementations of the LAPACK routines the paper adds to
//! Kokkos-kernels (§II-D): the factorisation/solve pairs
//!
//! | LAPACK | here | matrix class |
//! |---|---|---|
//! | `getrf`/`getrs` | [`getrf`] → [`LuFactors`] | general dense |
//! | `gbtrf`/`gbtrs` | [`gbtrf`] → [`BandedLu`] | general banded |
//! | `pbtrf`/`pbtrs` | [`pbtrf`] → [`CholeskyBanded`] | SPD banded |
//! | `pttrf`/`pttrs` | [`pttrf`] → [`PtFactors`] | SPD tridiagonal |
//!
//! plus the BLAS kernels the spline builder composes with them
//! ([`gemm`], [`kernels::gemv_lane`]).
//!
//! ## The batched-serial execution model
//!
//! Every solver here is **strictly sequential along the matrix dimension**
//! and is therefore exposed in two forms, mirroring the paper's
//! `KokkosBatched::Serial*` design:
//!
//! * a *per-lane* form (`solve_lane`) that solves one right-hand side given
//!   as a strided view — this is what gets called inside a parallel region;
//! * a *batched* form ([`batched`]) that maps the per-lane form over every
//!   column of a right-hand-side block through an
//!   [`ExecSpace`](pp_portable::ExecSpace).
//!
//! Factorisation happens **once** (the spline matrix is fixed in time); only
//! the solves run every time step, exactly as in the paper's Algorithm 1.
//!
//! ```
//! use pp_portable::{Matrix, Layout, Parallel};
//! use pp_linalg::{pttrf, batched};
//!
//! // SPD tridiagonal system: d = diag, e = off-diag.
//! let d = vec![4.0; 8];
//! let e = vec![1.0; 7];
//! let factors = pttrf(&d, &e).unwrap();
//!
//! // 100 right-hand sides, all ones.
//! let mut b = Matrix::zeros(8, 100, Layout::Left);
//! b.fill(1.0);
//! batched::pttrs(&Parallel, &factors, &mut b);
//!
//! // Residual check on lane 0: A x = 1.
//! let x: Vec<f64> = b.col(0).to_vec();
//! let r0 = 4.0 * x[0] + x[1] - 1.0;
//! assert!(r0.abs() < 1e-12);
//! ```

// Non-test code in this crate is free of `unwrap()`; keep it that way
// (failures must surface as typed errors or documented invariants).
#![cfg_attr(not(test), warn(clippy::unwrap_used))]
// Numerical kernels here deliberately use index loops (matching the
// LAPACK-style algorithms they implement) and NaN-rejecting negated
// comparisons; silence the corresponding style lints crate-wide.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::neg_cmp_op_on_partial_ord)]
#![allow(clippy::int_plus_one)]

pub mod abft;
pub mod banded;
pub mod batched;
pub mod dense;
pub mod error;
pub mod health;
pub mod interleaved;
pub mod kernels;
pub mod lu;
pub mod naive;
pub mod pb;
pub mod pt;
pub mod refine;
pub mod resident;
pub mod solver;
pub mod tiled;

pub use abft::{
    flip_bit, solve_all_checked, AbftReport, Checksummed, LaneCheck, LaneChecksum, Sabotage,
    DEFAULT_ABFT_TOL,
};
pub use banded::{gbtrf, BandedLu, BandedMatrix};
pub use dense::{gemm, gemv};
pub use error::{Error, Result};
pub use health::{estimate_inverse_onenorm, rcond_estimate, FactorHealth};
pub use interleaved::{gbtrs_interleaved, getrs_interleaved, pbtrs_interleaved, pttrs_interleaved};
pub use lu::{getrf, LuFactors};
pub use pb::{pbtrf, CholeskyBanded, SymBandedMatrix};
pub use pt::{pttrf, PtFactors};
pub use refine::{refine_lane, RefineConfig, RefineOutcome};
pub use resident::{gbtrs_resident, getrs_resident, pbtrs_resident, pttrs_resident};
pub use solver::LaneSolver;
pub use tiled::{gbtrs_tiled, pbtrs_tiled, pttrs_tiled};
