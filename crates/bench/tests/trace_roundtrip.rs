//! Round-trip tests between the hand-rolled JSON *writers* in
//! `pp-instrument` (metrics snapshots, Chrome trace export, fault
//! dumps) and the hand-rolled std-only *parser* in
//! `pp_bench::json` — the two halves are maintained separately and this
//! suite is what keeps them from drifting silently. Every document the
//! writers can emit must come back intact: escaped strings, large /
//! negative / fractional numbers, and nested arrays of objects.
//!
//! The same pass schema-checks the exported timeline against the Chrome
//! `trace_events` format (the acceptance contract for Perfetto loads).

use pp_bench::json::Json;
use pp_portable::instrument::{
    chrome_trace_json, FaultDump, HistogramStat, InstantKind, PhaseId, PhaseStat, Snapshot,
    ThreadTrace, Trace, TraceEvent, TraceEventKind,
};

/// A thread name exercising every escape class the writer knows:
/// quote, backslash, newline, tab, a sub-0x20 control, and non-ASCII.
const NASTY: &str = "po\"ol \\ 0;\n\tname\u{1}é";

fn ev(t_ns: u64, kind: TraceEventKind, lane: Option<u32>) -> TraceEvent {
    TraceEvent { t_ns, kind, lane }
}

/// Validate `doc` against the Chrome `trace_events` schema subset our
/// exporter emits; returns (complete, instant, thread_name) event
/// counts. The exporter always leads with one process-scoped
/// `process_name` metadata record (no tid — it names pid 1 itself) and
/// pairs every `thread_name` with a `thread_sort_index`; those are
/// validated here but only `thread_name` records are counted.
fn check_chrome_schema(doc: &Json) -> (usize, usize, usize) {
    let events = doc
        .get("traceEvents")
        .and_then(Json::as_array)
        .expect("traceEvents array");
    let (mut x, mut i, mut m) = (0, 0, 0);
    let mut named_process = false;
    for e in events {
        let ph = e.get("ph").and_then(Json::as_str).expect("ph string");
        let name = e.get("name").and_then(Json::as_str).expect("name string");
        assert!(!name.is_empty());
        assert_eq!(e.get("pid").and_then(Json::as_f64), Some(1.0));
        if !(ph == "M" && name == "process_name") {
            assert!(e.get("tid").and_then(Json::as_f64).is_some(), "tid number");
        }
        match ph {
            "X" => {
                x += 1;
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "X has ts");
                let dur = e.get("dur").and_then(Json::as_f64).expect("X has dur");
                assert!(dur >= 0.0, "durations are non-negative");
            }
            "i" => {
                i += 1;
                assert!(e.get("ts").and_then(Json::as_f64).is_some(), "i has ts");
                assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
            }
            "M" => match name {
                "process_name" => {
                    named_process = true;
                    assert!(
                        e.at(&["args", "name"]).and_then(Json::as_str).is_some(),
                        "process_name carries a name"
                    );
                }
                "thread_name" => {
                    m += 1;
                    assert!(
                        e.at(&["args", "name"]).and_then(Json::as_str).is_some(),
                        "thread_name carries the name"
                    );
                }
                "thread_sort_index" => {
                    assert!(
                        e.at(&["args", "sort_index"])
                            .and_then(Json::as_f64)
                            .is_some(),
                        "thread_sort_index carries a number"
                    );
                }
                other => panic!("unexpected metadata record {other:?}"),
            },
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(named_process, "trace names its process for the UI grouping");
    (x, i, m)
}

#[test]
fn chrome_trace_export_round_trips_through_bench_parser() {
    let trace = Trace {
        threads: vec![
            ThreadTrace {
                tid: 0,
                name: NASTY.into(),
                events: vec![
                    // Nested spans with a large-timestamp tail: µs
                    // formatting must survive f64 parsing exactly.
                    ev(1_000, TraceEventKind::Begin(PhaseId::AdvectionStep), None),
                    ev(2_000, TraceEventKind::Begin(PhaseId::SolvePttrs), Some(3)),
                    ev(
                        2_500,
                        TraceEventKind::Instant(InstantKind::LaneQuarantined),
                        Some(3),
                    ),
                    ev(4_000, TraceEventKind::End(PhaseId::SolvePttrs), Some(3)),
                    ev(
                        1_234_567_891,
                        TraceEventKind::End(PhaseId::AdvectionStep),
                        None,
                    ),
                ],
                dropped: 0,
            },
            ThreadTrace {
                tid: 1,
                name: "pp-pool-0".into(),
                events: vec![ev(
                    7_000,
                    TraceEventKind::Instant(InstantKind::DispatchCommit),
                    None,
                )],
                dropped: 9,
            },
        ],
        capacity: 64,
    };

    let doc = Json::parse(&chrome_trace_json(&trace)).expect("exporter emits valid JSON");
    assert_eq!(
        doc.get("displayTimeUnit").and_then(Json::as_str),
        Some("ns")
    );
    let (x, i, m) = check_chrome_schema(&doc);
    assert_eq!((x, i, m), (2, 2, 2), "2 spans, 2 instants, 2 thread names");

    let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
    // The escaped thread name comes back byte-identical…
    let names: Vec<&str> = events
        .iter()
        .filter(|e| e.get("ph").and_then(Json::as_str) == Some("M"))
        .filter_map(|e| e.at(&["args", "name"]).and_then(Json::as_str))
        .collect();
    assert!(names.contains(&NASTY), "escaping round-trips: {names:?}");
    // …the lossy ring is flagged in the name…
    assert!(names.contains(&"pp-pool-0 (dropped 9)"));
    // …lane args and µs/ns timestamp precision survive.
    let quarantine = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("lane_quarantined"))
        .expect("instant exported");
    assert_eq!(
        quarantine.at(&["args", "lane"]).and_then(Json::as_f64),
        Some(3.0)
    );
    assert_eq!(quarantine.get("ts").and_then(Json::as_f64), Some(2.500));
    let outer = events
        .iter()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("advection_step"))
        .expect("outer span exported");
    assert_eq!(outer.get("ts").and_then(Json::as_f64), Some(1.0));
    assert_eq!(
        outer.get("dur").and_then(Json::as_f64),
        Some(1_234_566.891),
        "nanosecond fraction survives the decimal µs encoding"
    );
}

#[test]
fn snapshot_and_fault_dump_round_trip_through_bench_parser() {
    // A snapshot exercising the number grammar end to end: u64-range
    // counters, negative/fractional gauges, and nested bucket arrays.
    let metrics = Snapshot {
        phases: vec![PhaseStat {
            phase: PhaseId::Dispatch,
            calls: 3,
            total_ns: 1_500_000,
        }],
        counters: vec![("big \"counter\"\\".into(), u64::MAX), ("zero".into(), 0)],
        gauges: vec![
            ("negative".into(), -1234.567),
            ("tiny".into(), 0.001),
            ("nan_becomes_null".into(), f64::NAN),
        ],
        histograms: vec![HistogramStat {
            name: "h\tist".into(),
            count: 10,
            sum: 5_000,
            min: 1,
            max: 900,
            buckets: vec![(8, 5), (512, 4), (1024, 1)],
        }],
    };

    let doc = Json::parse(&metrics.to_json()).expect("snapshot writer emits valid JSON");
    assert_eq!(
        doc.at(&["counters", "big \"counter\"\\"])
            .and_then(Json::as_f64),
        Some(u64::MAX as f64),
        "u64-range counters survive (to f64 precision)"
    );
    assert_eq!(
        doc.at(&["gauges", "negative"]).and_then(Json::as_f64),
        Some(-1234.567)
    );
    assert_eq!(
        doc.at(&["gauges", "tiny"]).and_then(Json::as_f64),
        Some(0.001)
    );
    assert_eq!(doc.at(&["gauges", "nan_becomes_null"]), Some(&Json::Null));
    let hist = &doc.get("histograms").and_then(Json::as_array).unwrap()[0];
    assert_eq!(hist.get("name").and_then(Json::as_str), Some("h\tist"));
    let buckets = hist.get("buckets").and_then(Json::as_array).unwrap();
    assert_eq!(buckets.len(), 3, "nested bucket array survives");
    assert_eq!(buckets[1].get("le").and_then(Json::as_f64), Some(512.0));
    assert_eq!(buckets[1].get("count").and_then(Json::as_f64), Some(4.0));
    let phase = &doc.get("phases").and_then(Json::as_array).unwrap()[0];
    assert_eq!(phase.get("phase").and_then(Json::as_str), Some("dispatch"));

    // The fault-dump wrapper nests the timeline *and* the metrics in one
    // document; both halves must still parse in place.
    let dump = FaultDump {
        reason: "round_trip",
        detail: NASTY.into(),
        t_ns: 123_456_789,
        trace: Trace {
            threads: vec![ThreadTrace {
                tid: 2,
                name: "worker".into(),
                events: vec![
                    ev(10, TraceEventKind::Begin(PhaseId::KrylovIter), Some(1)),
                    ev(
                        15,
                        TraceEventKind::Instant(InstantKind::BreakdownStagnation),
                        Some(1),
                    ),
                    ev(20, TraceEventKind::End(PhaseId::KrylovIter), Some(1)),
                ],
                dropped: 0,
            }],
            capacity: 64,
        },
        metrics,
    };
    let doc = Json::parse(&dump.to_json()).expect("fault-dump writer emits valid JSON");
    assert_eq!(doc.get("reason").and_then(Json::as_str), Some("round_trip"));
    assert_eq!(doc.get("detail").and_then(Json::as_str), Some(NASTY));
    assert_eq!(doc.get("t_ns").and_then(Json::as_f64), Some(123_456_789.0));
    let (x, i, m) = check_chrome_schema(&doc);
    assert_eq!((x, i, m), (1, 1, 1));
    assert_eq!(
        doc.at(&["metrics", "gauges", "negative"])
            .and_then(Json::as_f64),
        Some(-1234.567),
        "metrics snapshot rides along intact"
    );

    // A live capture parses too (empty in the feature-off build).
    let live = Snapshot::capture();
    Json::parse(&live.to_json()).expect("live snapshot parses");
}

#[test]
fn committed_example_trace_is_schema_valid() {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../results/trace_example.json"
    );
    let text = std::fs::read_to_string(path).expect("committed example trace exists");
    let doc = Json::parse(&text).expect("committed trace parses");
    let (x, _, m) = check_chrome_schema(&doc);
    assert!(
        x >= 100,
        "committed trace holds a real timeline ({x} spans)"
    );
    assert!(m >= 2, "committed trace spans multiple threads");
}
