//! Bench backing Table III: the three spline-builder kernel versions on
//! the cubic uniform configuration, then the fused-spmv builder across
//! all six spline configurations.

use pp_bench::{fmt_ms, time_mean, SplineConfig};
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SplineBuilder};

fn bench_builder_versions() {
    let nx = 1000;
    let nv = 2000;
    let cfg = SplineConfig {
        degree: 3,
        uniform: true,
    };
    let space = cfg.space(nx);
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| ((i * 7 + j) % 13) as f64);

    println!("table3/builder_versions ({nx} x {nv})");
    for version in BuilderVersion::ALL {
        let builder = SplineBuilder::new(space.clone(), version).expect("setup");
        let mut work = rhs.clone();
        let d = time_mean(5, || {
            work.deep_copy_from(&rhs).expect("same shape");
            builder.solve_in_place(&Parallel, &mut work).expect("solve");
        });
        println!("  {:>16} {}", version.label(), fmt_ms(d));
    }
}

fn bench_degrees() {
    let nx = 1000;
    let nv = 1000;
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| ((i + j) % 11) as f64);
    println!("table3/spline_configs ({nx} x {nv})");
    for cfg in SplineConfig::ALL {
        let builder = SplineBuilder::new(cfg.space(nx), BuilderVersion::FusedSpmv).expect("setup");
        let mut work = rhs.clone();
        let d = time_mean(5, || {
            work.deep_copy_from(&rhs).expect("same shape");
            builder.solve_in_place(&Parallel, &mut work).expect("solve");
        });
        println!("  {:>24} {}", cfg.label(), fmt_ms(d));
    }
}

fn main() {
    bench_builder_versions();
    bench_degrees();
}
