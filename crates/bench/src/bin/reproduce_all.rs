//! Executable reproduction check: runs a scaled-down version of every
//! experiment and asserts the shape criteria of DESIGN.md §4. Exits
//! non-zero (panics) if any reproduction claim no longer holds — the
//! one-command artifact check.
//!
//! ```text
//! cargo run --release -p pp-bench --bin reproduce_all
//! ```

use pp_bench::gpu_model::predict;
use pp_bench::{time_mean, SplineConfig};
use pp_bsplines::{assemble_interpolation_matrix, SplineMatrixStructure};
use pp_perfmodel::{performance_portability, Device};
use pp_portable::{Layout, Matrix, Parallel};
use pp_sparse::SparsityPattern;
use pp_splinesolver::{
    BuilderVersion, IterativeConfig, IterativeSplineSolver, KrylovKind, QClass, SchurBlocks,
    SplineBuilder,
};
use std::time::Instant;

fn check(name: &str, ok: bool, detail: String) {
    if ok {
        println!("  [ok] {name}: {detail}");
    } else {
        panic!("[FAIL] {name}: {detail}");
    }
}

fn main() {
    let nx = 256;
    let nv = 4096;
    println!("=== reproduce_all: shape checks at (n, batch) = ({nx}, {nv}) ===\n");

    // ---------- Fig. 1: sparsity structure ----------
    println!("Fig. 1 — periodic spline matrix structure");
    let cubic = SplineConfig {
        degree: 3,
        uniform: true,
    }
    .space(nx);
    let a = assemble_interpolation_matrix(&cubic);
    let pat = SparsityPattern::from_dense(&a, 1e-12);
    let s = SplineMatrixStructure::analyze(&a, 3).expect("structured");
    check(
        "banded-plus-corners",
        s.border == 1 && (s.q_kl, s.q_ku) == (1, 1) && s.q_symmetric && s.lambda_nnz == 2,
        format!(
            "border {}, band ({}, {}), lambda nnz {}",
            s.border, s.q_kl, s.q_ku, s.lambda_nnz
        ),
    );
    check(
        "tridiagonal density",
        pat.nnz() == 3 * nx,
        format!("nnz {} (expect {})", pat.nnz(), 3 * nx),
    );

    // ---------- Table I: solver classification ----------
    println!("\nTable I — Q classification");
    for cfg in SplineConfig::ALL {
        let blocks = SchurBlocks::new(&cfg.space(64)).expect("factorisation");
        let expected = QClass::from_table(cfg.degree, cfg.uniform);
        check(
            &cfg.label(),
            blocks.q_class() == expected,
            format!(
                "{} (expect {})",
                blocks.q_class().routine(),
                expected.routine()
            ),
        );
    }

    // ---------- Table III: optimisation ordering ----------
    println!("\nTable III — optimisation ordering");
    let space = cubic.clone();
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| ((i * 7 + j) % 13) as f64);
    let mut host_times = Vec::new();
    for version in BuilderVersion::ALL {
        let builder = SplineBuilder::new(space.clone(), version).expect("setup");
        let mut work = rhs.clone();
        let t = time_mean(3, || {
            work.deep_copy_from(&rhs).expect("shape");
            builder.solve_in_place(&Parallel, &mut work).expect("solve");
        });
        host_times.push(t.as_secs_f64());
    }
    check(
        "host: spmv is the fastest version",
        host_times[2] <= host_times[0] && host_times[2] <= host_times[1],
        format!("{host_times:.3?} s"),
    );
    let blocks = SchurBlocks::new(&space).expect("factorisation");
    for device in [Device::a100(), Device::mi250x()] {
        let t: Vec<f64> = BuilderVersion::ALL
            .iter()
            .map(|&v| predict(&device, &blocks, v, 100_000).time_s)
            .collect();
        check(
            &format!("model {}: v2 < v1 <= v0", device.name),
            t[2] < t[1] && t[1] <= t[0] * 1.001,
            format!("{t:.5?} s"),
        );
    }

    // ---------- Table IV: iteration counts ----------
    println!("\nTable IV — iteration growth with degree");
    let mut gmres_counts = Vec::new();
    let mut bicg_counts = Vec::new();
    for degree in [3usize, 4, 5] {
        let cfg = SplineConfig {
            degree,
            uniform: true,
        };
        for (kind, out) in [
            (KrylovKind::Gmres, &mut gmres_counts),
            (KrylovKind::BiCgStab, &mut bicg_counts),
        ] {
            let mut config = IterativeConfig::cpu();
            config.kind = kind;
            config.max_block_size = 4;
            config.warm_start = false;
            let solver = IterativeSplineSolver::new(cfg.space(nx), config).expect("setup");
            let mut b = Matrix::from_fn(nx, 4, Layout::Left, |i, j| {
                ((i.wrapping_mul(2654435761).wrapping_add(j * 97)) % 1000) as f64 / 500.0 - 1.0
            });
            let log = solver.solve_in_place(&mut b, None).expect("convergence");
            out.push(log.max_iterations());
        }
    }
    check(
        "GMRES grows with degree",
        gmres_counts[0] <= gmres_counts[1] && gmres_counts[1] <= gmres_counts[2],
        format!("{gmres_counts:?}"),
    );
    check(
        "BiCGStab grows with degree",
        bicg_counts[0] <= bicg_counts[1] && bicg_counts[1] <= bicg_counts[2],
        format!("{bicg_counts:?}"),
    );
    check(
        "BiCGStab needs fewer iterations than GMRES",
        bicg_counts.iter().zip(&gmres_counts).all(|(b, g)| b <= g),
        format!("BiCGStab {bicg_counts:?} vs GMRES {gmres_counts:?}"),
    );

    // ---------- Table V: bandwidth shape + Pennycook ----------
    println!("\nTable V — bandwidth shape & P(a,p,H)");
    let mut model_bw = Vec::new();
    for cfg in [
        SplineConfig {
            degree: 3,
            uniform: true,
        },
        SplineConfig {
            degree: 5,
            uniform: true,
        },
    ] {
        let blocks = SchurBlocks::new(&cfg.space(nx)).expect("factorisation");
        let p = predict(
            &Device::mi250x(),
            &blocks,
            BuilderVersion::FusedSpmv,
            100_000,
        );
        model_bw.push((nx as f64) * 100_000.0 * 8.0 / p.time_s / 1e9);
    }
    check(
        "model MI250X: degree 3 >= degree 5 bandwidth",
        model_bw[0] >= model_bw[1],
        format!("{:.1} vs {:.1} GB/s", model_bw[0], model_bw[1]),
    );
    let p = performance_portability(&[Some(0.0438), Some(0.173), Some(0.155)]);
    check(
        "Pennycook metric reproduces the paper's 0.086",
        (p - 0.086).abs() < 2e-3,
        format!("{p:.4}"),
    );

    // ---------- Fig. 2: direct beats iterative ----------
    println!("\nFig. 2 — backend ordering");
    let direct = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).expect("setup");
    let mut xd = rhs.clone();
    let t0 = Instant::now();
    direct.solve_in_place(&Parallel, &mut xd).expect("solve");
    let t_direct = t0.elapsed();
    let iter = IterativeSplineSolver::new(space, IterativeConfig::gpu()).expect("setup");
    let mut xi = rhs.clone();
    let t0 = Instant::now();
    iter.solve_in_place(&mut xi, None).expect("convergence");
    let t_iter = t0.elapsed();
    check(
        "direct (kokkos-kernels) beats iterative (ginkgo)",
        t_direct < t_iter,
        format!("{t_direct:?} vs {t_iter:?}"),
    );
    check(
        "backends agree numerically",
        xd.max_abs_diff(&xi) < 1e-8,
        format!("max diff {:.2e}", xd.max_abs_diff(&xi)),
    );

    println!("\nall reproduction shape checks passed");
}
