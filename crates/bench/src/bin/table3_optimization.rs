//! Table III — impact of the kernel-fusion and gemv→spmv optimisations.
//!
//! The Icelake column is **measured** on the host CPU (this machine
//! standing in for the paper's 32-core Icelake); the A100 and MI250X
//! columns are **modelled** via the cache simulator + roofline and are
//! labelled accordingly.
//!
//! Paper reference (n, batch) = (1000, 100000), 10 iterations:
//!   Icelake: 145.8 -> 112.1 -> 82.0 ms
//!   A100:    11.39 -> 5.06  -> 2.98 ms
//!   MI250X:  16.14 -> 11.34 -> 3.22 ms

use pp_bench::gpu_model::predict;
use pp_bench::{fmt_ms, parse_args, time_mean, SplineConfig};
use pp_perfmodel::Device;
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SchurBlocks, SplineBuilder};
use std::time::Duration;

fn main() {
    let args = parse_args(1000, 20_000, 5);
    let cfg = SplineConfig {
        degree: 3,
        uniform: true,
    };
    println!(
        "=== Table III: impact of optimisation, (n, batch) = ({}, {}), {} iters ===",
        args.nx, args.nv, args.iters
    );
    println!("(paper size: 1000 100000 10 — pass as arguments to reproduce at scale)\n");

    let space = cfg.space(args.nx);
    let blocks = SchurBlocks::new(&space).expect("factorisation");
    let a100 = Device::a100();
    let mi250x = Device::mi250x();

    let mut rows: Vec<(String, Duration, f64, f64)> = Vec::new();
    for version in BuilderVersion::ALL {
        let builder = SplineBuilder::new(space.clone(), version).expect("setup");
        let rhs = Matrix::from_fn(args.nx, args.nv, Layout::Left, |i, j| {
            ((i * 7 + j) % 13) as f64 / 13.0
        });
        let mut work = rhs.clone();
        let host = time_mean(args.iters, || {
            work.deep_copy_from(&rhs).expect("same shape");
            builder.solve_in_place(&Parallel, &mut work).expect("solve");
        });
        let t_a100 = predict(&a100, &blocks, version, args.nv).time_s;
        let t_mi = predict(&mi250x, &blocks, version, args.nv).time_s;
        rows.push((version.label().to_string(), host, t_a100, t_mi));
    }

    println!(
        "{:<16} {:>18} {:>18} {:>18}",
        "", "Icelake(host meas.)", "A100 (model)", "MI250X (model)"
    );
    for (label, host, a, m) in &rows {
        println!(
            "{:<16} {:>18} {:>15.2} ms {:>15.2} ms",
            label,
            fmt_ms(*host),
            a * 1e3,
            m * 1e3
        );
    }

    println!("\nspeed-ups vs. Original:");
    let base = &rows[0];
    for (label, host, a, m) in &rows[1..] {
        println!(
            "{:<16} host {:.2}x   A100(model) {:.2}x   MI250X(model) {:.2}x",
            label,
            base.1.as_secs_f64() / host.as_secs_f64(),
            base.2 / a,
            base.3 / m
        );
    }
    println!("\npaper speed-ups: fusion 1.30/2.25/1.42x, spmv (cumulative) 1.78/3.82/5.01x");
}
