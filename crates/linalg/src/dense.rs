//! Dense BLAS-3/BLAS-2 kernels: `gemm` and `gemv`.
//!
//! The paper's *baseline* spline builder (its Listing 2) performs the
//! corner-block corrections of Algorithm 1 with two `KokkosBlas::gemm`
//! calls; [`gemm`] is the equivalent here, parallelised over columns of the
//! output (the batch dimension) exactly as the native Kokkos-kernels gemm
//! parallelises. The *fused* builder replaces these with per-lane
//! [`kernels::gemv_lane`](crate::kernels::gemv_lane) calls.

use crate::error::{Error, Result};
use pp_portable::{ExecSpace, Matrix, Strided, StridedMut};

/// General matrix-matrix multiply-accumulate:
/// `C ← α · A · B + β · C`.
///
/// Shapes: `A (m, k)`, `B (k, n)`, `C (m, n)`. The loop over columns of `C`
/// is distributed over `exec`; within a column the kernel runs serially in
/// `k`-outer order so that the column of `B` streams once.
pub fn gemm<E: ExecSpace>(
    exec: &E,
    alpha: f64,
    a: &Matrix,
    b: &Matrix,
    beta: f64,
    c: &mut Matrix,
) -> Result<()> {
    let (m, k) = a.shape();
    let (kb, n) = b.shape();
    if kb != k || c.shape() != (m, n) {
        return Err(Error::ShapeMismatch {
            op: "gemm",
            detail: format!("A {:?} · B {:?} -> C {:?}", a.shape(), b.shape(), c.shape()),
        });
    }
    exec.for_each_lane_mut(c, |j, mut c_col| {
        // c_col ← β c_col
        if beta == 0.0 {
            c_col.fill(0.0);
        } else if beta != 1.0 {
            for i in 0..m {
                c_col[i] *= beta;
            }
        }
        // c_col += α A b_col, k-outer (axpy per column of A).
        let b_col = b.col(j);
        for p in 0..k {
            let scale = alpha * b_col[p];
            if scale != 0.0 {
                let a_col = a.col(p);
                for i in 0..m {
                    c_col[i] += scale * a_col[i];
                }
            }
        }
    });
    Ok(())
}

/// General matrix-vector multiply-accumulate on strided views:
/// `y ← α · A · x + β · y`.
///
/// This is the *shape-checked* entry point; the unchecked hot-loop variant
/// used inside fused kernels is
/// [`kernels::gemv_lane`](crate::kernels::gemv_lane).
pub fn gemv(
    alpha: f64,
    a: &Matrix,
    x: &Strided<'_>,
    beta: f64,
    y: &mut StridedMut<'_>,
) -> Result<()> {
    let (m, n) = a.shape();
    if x.len() != n || y.len() != m {
        return Err(Error::ShapeMismatch {
            op: "gemv",
            detail: format!("A {:?}, x len {}, y len {}", a.shape(), x.len(), y.len()),
        });
    }
    crate::kernels::gemv_lane(alpha, a, x, beta, y);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::naive::matvec;
    use pp_portable::TestRng;
    use pp_portable::{Layout, Parallel, Serial};

    fn random_matrix(rng: &mut TestRng, m: usize, n: usize, layout: Layout) -> Matrix {
        Matrix::from_fn(m, n, layout, |_, _| rng.gen_range(-1.0..1.0))
    }

    fn gemm_reference(alpha: f64, a: &Matrix, b: &Matrix, beta: f64, c: &Matrix) -> Matrix {
        let (m, _) = a.shape();
        let (_, n) = b.shape();
        Matrix::from_fn(m, n, c.layout(), |i, j| {
            let dot: f64 = (0..a.ncols()).map(|p| a.get(i, p) * b.get(p, j)).sum();
            alpha * dot + beta * c.get(i, j)
        })
    }

    #[test]
    fn gemm_matches_reference_all_layouts() {
        let mut rng = TestRng::seed_from_u64(42);
        for la in [Layout::Left, Layout::Right] {
            for lc in [Layout::Left, Layout::Right] {
                let a = random_matrix(&mut rng, 7, 5, la);
                let b = random_matrix(&mut rng, 5, 9, Layout::Left);
                let mut c = random_matrix(&mut rng, 7, 9, lc);
                let expected = gemm_reference(1.5, &a, &b, 0.5, &c);
                gemm(&Serial, 1.5, &a, &b, 0.5, &mut c).unwrap();
                assert!(c.max_abs_diff(&expected) < 1e-13, "{la:?} {lc:?}");
            }
        }
    }

    #[test]
    fn gemm_parallel_matches_serial() {
        let mut rng = TestRng::seed_from_u64(7);
        let a = random_matrix(&mut rng, 20, 30, Layout::Left);
        let b = random_matrix(&mut rng, 30, 40, Layout::Left);
        let mut c1 = random_matrix(&mut rng, 20, 40, Layout::Left);
        let mut c2 = c1.clone();
        gemm(&Serial, -2.0, &a, &b, 1.0, &mut c1).unwrap();
        gemm(&Parallel, -2.0, &a, &b, 1.0, &mut c2).unwrap();
        assert_eq!(c1.max_abs_diff(&c2), 0.0);
    }

    #[test]
    fn gemm_beta_zero_overwrites_garbage() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
        let mut c = Matrix::from_vec(2, 1, Layout::Left, vec![f64::NAN, f64::NAN]).unwrap();
        gemm(&Serial, 1.0, &a, &b, 0.0, &mut c).unwrap();
        assert_eq!(c.get(0, 0), 3.0);
        assert_eq!(c.get(1, 0), 4.0);
    }

    #[test]
    fn gemm_shape_mismatch() {
        let a = Matrix::zeros(2, 3, Layout::Left);
        let b = Matrix::zeros(4, 2, Layout::Left);
        let mut c = Matrix::zeros(2, 2, Layout::Left);
        assert!(gemm(&Serial, 1.0, &a, &b, 0.0, &mut c).is_err());
    }

    #[test]
    fn gemv_matches_matvec() {
        let mut rng = TestRng::seed_from_u64(3);
        let a = random_matrix(&mut rng, 6, 4, Layout::Right);
        let x: Vec<f64> = (0..4).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let mut y = vec![0.0; 6];
        {
            let xs = Strided::from_slice(&x);
            let mut ys = StridedMut::from_slice(&mut y);
            gemv(1.0, &a, &xs, 0.0, &mut ys).unwrap();
        }
        let expected = matvec(&a, &x);
        for (u, v) in y.iter().zip(&expected) {
            assert!((u - v).abs() < 1e-14);
        }
    }

    #[test]
    fn gemv_shape_mismatch() {
        let a = Matrix::zeros(3, 3, Layout::Left);
        let x = [0.0; 2];
        let mut y = [0.0; 3];
        let xs = Strided::from_slice(&x);
        let mut ys = StridedMut::from_slice(&mut y);
        assert!(gemv(1.0, &a, &xs, 0.0, &mut ys).is_err());
    }
}
