//! Failure-injection tests: malformed inputs must produce typed errors
//! (or well-defined propagation), never panics or silent corruption.

use batched_splines::prelude::*;
use pp_bsplines::ClampedSplineSpace;
use pp_linalg::{gbtrf, getrf, pbtrf, pttrf, BandedMatrix, SymBandedMatrix};
use pp_portable::Matrix as PMatrix;
use pp_splinesolver::SchurBlocks;

/// Singular inputs are rejected with typed errors by every factorisation.
#[test]
fn singular_matrices_rejected_everywhere() {
    // getrf: rank-deficient dense.
    let dense = PMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
    assert!(getrf(&dense).is_err());
    // gbtrf: zero column.
    let mut gb = BandedMatrix::new(3, 1, 1).unwrap();
    gb.set(0, 0, 1.0).unwrap();
    gb.set(2, 2, 1.0).unwrap();
    assert!(gbtrf(&gb).is_err());
    // pbtrf: indefinite.
    let mut pb = SymBandedMatrix::new(2, 1).unwrap();
    pb.set(0, 0, 1.0).unwrap();
    pb.set(1, 0, 5.0).unwrap();
    pb.set(1, 1, 1.0).unwrap();
    assert!(pbtrf(&pb).is_err());
    // pttrf: non-positive diagonal.
    assert!(pttrf(&[0.0, 1.0], &[0.5]).is_err());
}

/// Mesh construction rejects non-monotone and degenerate inputs.
#[test]
fn bad_meshes_rejected() {
    assert!(Breaks::from_points(vec![0.0, 0.5, 0.4, 1.0]).is_err());
    assert!(Breaks::from_points(vec![0.0, 0.0, 1.0]).is_err());
    assert!(Breaks::from_points(vec![1.0]).is_err());
    assert!(Breaks::uniform(0, 0.0, 1.0).is_err());
    assert!(Breaks::uniform(8, 1.0, 1.0).is_err());
    assert!(Breaks::uniform(8, f64::NAN, 1.0).is_err());
    assert!(Breaks::graded(8, 0.0, 1.0, 1.5).is_err());
    assert!(Breaks::graded(8, 0.0, 1.0, -0.1).is_err());
}

/// Space construction enforces degree and size bounds.
#[test]
fn bad_spaces_rejected() {
    let b = Breaks::uniform(8, 0.0, 1.0).unwrap();
    assert!(PeriodicSplineSpace::new(b.clone(), 0).is_err());
    assert!(PeriodicSplineSpace::new(b.clone(), 6).is_err());
    assert!(PeriodicSplineSpace::new(Breaks::uniform(6, 0.0, 1.0).unwrap(), 3).is_err());
    assert!(ClampedSplineSpace::new(Breaks::uniform(3, 0.0, 1.0).unwrap(), 3).is_err());
    assert!(ClampedSplineSpace::new(b, 6).is_err());
}

/// The Schur decomposition refuses matrices that are not banded-plus-
/// border.
#[test]
fn unstructured_matrix_rejected() {
    let dense = PMatrix::from_fn(16, 16, Layout::Right, |i, j| 1.0 / (1 + i + j) as f64);
    assert!(SchurBlocks::from_dense(&dense, 3, true).is_err());
}

/// NaN right-hand sides propagate NaN (no panic, no fake convergence in
/// the direct path).
#[test]
fn nan_rhs_propagates_in_direct_solver() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space, BuilderVersion::FusedSpmv).unwrap();
    let mut b = Matrix::zeros(16, 2, Layout::Left);
    b.set(3, 0, f64::NAN);
    b.set(0, 1, 1.0);
    builder.solve_in_place(&Serial, &mut b).unwrap();
    // Lane 0 is poisoned...
    assert!(b.col(0).to_vec().iter().any(|v| v.is_nan()));
    // ...but lane 1 is untouched by it (lanes are independent).
    assert!(b.col(1).to_vec().iter().all(|v| v.is_finite()));
}

/// NaN right-hand sides make the iterative backend report failure rather
/// than "converge".
#[test]
fn nan_rhs_fails_iterative_solver() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
    let solver = IterativeSplineSolver::new(space, IterativeConfig::gpu()).unwrap();
    let mut b = Matrix::zeros(16, 1, Layout::Left);
    b.set(5, 0, f64::NAN);
    assert!(solver.solve_in_place(&mut b, None).is_err());
}

/// Shape mismatches are rejected across the stack.
#[test]
fn shape_mismatches_rejected() {
    let space = PeriodicSplineSpace::new(Breaks::uniform(16, 0.0, 1.0).unwrap(), 3).unwrap();
    let builder = SplineBuilder::new(space.clone(), BuilderVersion::Fused).unwrap();
    let mut wrong = Matrix::zeros(17, 2, Layout::Left);
    assert!(builder.solve_in_place(&Serial, &mut wrong).is_err());
    assert!(builder
        .solve_in_place_tiled(&Serial, &mut wrong, 8)
        .is_err());

    let ev = SplineEvaluator::new(space.clone());
    let coefs = Matrix::zeros(16, 2, Layout::Left);
    let pos = Matrix::zeros(4, 3, Layout::Left); // batch mismatch
    let mut out = Matrix::zeros(4, 3, Layout::Left);
    assert!(ev.eval_batched(&Serial, &coefs, &pos, &mut out).is_err());

    let backend = SplineBackend::direct(space, BuilderVersion::Fused).unwrap();
    let mut adv = Advection1D::new(backend, vec![0.1, 0.2], 0.1).unwrap();
    let mut bad = Matrix::zeros(2, 17, Layout::Right);
    assert!(adv.step(&Serial, &mut bad).is_err());
    let mut good = adv.init_distribution(|_, _| 1.0);
    assert!(adv
        .step_with_displacements(&Serial, &mut good, &[0.1])
        .is_err());
}

/// Error messages are informative (contain the offending quantity).
#[test]
fn error_messages_carry_context() {
    let e = pttrf(&[-2.0, 1.0], &[0.1]).unwrap_err();
    let msg = e.to_string();
    assert!(
        msg.contains("pttrf") && msg.contains("positive definite"),
        "{msg}"
    );

    let e = Breaks::from_points(vec![0.0, 2.0, 1.0]).unwrap_err();
    assert!(e.to_string().contains("index 1"), "{e}");
}

// ---- fault-handling layer: typed per-lane outcomes and the recovery
// ladder (the robustness tentpole) ----

use pp_iterative::RecoveryStage;
use pp_portable::TestRng;

fn random_rhs(n: usize, lanes: usize, seed: u64) -> Matrix {
    let mut rng = TestRng::seed_from_u64(seed);
    Matrix::from_fn(n, lanes, Layout::Left, |_, _| rng.gen_range(-1.0..1.0))
}

fn direct_reference(space: &PeriodicSplineSpace, rhs: &Matrix) -> Matrix {
    let builder = SplineBuilder::new(space.clone(), BuilderVersion::FusedSpmv).unwrap();
    let mut x = rhs.clone();
    builder.solve_in_place(&Parallel, &mut x).unwrap();
    x
}

/// The acceptance scenario: a batch with injected NaN lanes returns typed
/// per-lane outcomes — healthy lanes match the direct solver to 1e-12,
/// poisoned lanes report their `BreakdownKind` — with zero panics.
#[test]
fn poisoned_batch_isolates_lanes_and_types_outcomes() {
    let n = 32;
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 3).unwrap();
    let rhs = random_rhs(n, 8, 42);
    let reference = direct_reference(&space, &rhs);

    let mut b = rhs.clone();
    let mut injector = FaultInjector::new(7);
    let poisoned = injector.poison_nan_lanes(&mut b, 2);
    assert_eq!(poisoned.len(), 2);

    let solver = IterativeSplineSolver::new(space, IterativeConfig::gpu()).unwrap();
    let log = solver
        .solve_with_recovery(&mut b, None, &RecoveryPolicy::disabled())
        .unwrap();

    assert_eq!(log.count(), 8);
    for lane in 0..8 {
        if poisoned.contains(&lane) {
            assert_eq!(
                log.lane_outcome(lane),
                LaneOutcome::Broke(BreakdownKind::NonFiniteResidual),
                "lane {lane}"
            );
        } else {
            assert!(log.lane_outcome(lane).is_healthy(), "lane {lane}");
            for i in 0..n {
                assert!(
                    (b.get(i, lane) - reference.get(i, lane)).abs() < 1e-12,
                    "lane {lane} row {i}"
                );
            }
        }
    }
    assert_eq!(
        log.breakdown_census(),
        vec![(BreakdownKind::NonFiniteResidual, 2)]
    );
}

/// NaN lanes survive the *full* ladder as broken (the direct fallback
/// verifies finiteness and refuses to declare them converged), while the
/// recovery report shows each rung attempting them.
#[test]
fn nan_lanes_stay_broken_through_full_ladder() {
    let n = 24;
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 3).unwrap();
    let mut b = random_rhs(n, 4, 1);
    let mut injector = FaultInjector::new(3);
    let poisoned = injector.poison_inf_lanes(&mut b, 1);

    let solver = IterativeSplineSolver::new(space, IterativeConfig::gpu()).unwrap();
    let log = solver
        .solve_with_recovery(&mut b, None, &RecoveryPolicy::default())
        .unwrap();

    assert!(!log.all_converged());
    assert_eq!(log.failed_lanes(), poisoned);
    // Every rung ran over exactly the poisoned lane and rescued nothing.
    let events = log.recovery_events();
    assert_eq!(events.len(), 3);
    for (event, stage) in events.iter().zip([
        RecoveryStage::Reprecondition,
        RecoveryStage::SolverSwitch,
        RecoveryStage::DirectFallback,
    ]) {
        assert_eq!(event.stage, stage);
        assert_eq!(event.lanes_attempted, poisoned);
        assert!(event.lanes_recovered.is_empty());
    }
    // Healthy lanes still converged and hold finite solutions.
    for lane in 0..4 {
        if !poisoned.contains(&lane) {
            assert!(log.lane_outcome(lane).is_healthy());
            assert!(b.col(lane).to_vec().iter().all(|v| v.is_finite()));
        }
    }
}

/// Iteration-starved lanes stall, and the ladder's direct fallback
/// rescues every one of them end to end.
#[test]
fn starved_batch_rescued_by_direct_fallback() {
    let n = 32;
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 4).unwrap();
    let rhs = random_rhs(n, 5, 9);
    let reference = direct_reference(&space, &rhs);

    let mut cfg = IterativeConfig::gpu();
    // A weak preconditioner (tiny blocks) so convergence genuinely takes
    // many iterations, then starve the solver of them.
    cfg.max_block_size = 2;
    cfg.stop = FaultInjector::starved(&cfg.stop, 2);
    let solver = IterativeSplineSolver::new(space, cfg).unwrap();

    // Without recovery every lane stalls (MaxIters)...
    let mut b0 = rhs.clone();
    let log0 = solver
        .solve_with_recovery(&mut b0, None, &RecoveryPolicy::disabled())
        .unwrap();
    assert!(log0.outcomes().iter().all(|o| *o == LaneOutcome::Stalled));
    assert_eq!(log0.breakdown_census(), vec![(BreakdownKind::MaxIters, 5)]);

    // ...and the ladder's last rung rescues all of them.
    let mut b = rhs.clone();
    let log = solver
        .solve_with_recovery(&mut b, None, &RecoveryPolicy::default())
        .unwrap();
    assert!(log.all_converged(), "{:?}", log.outcomes());
    assert!(b.max_abs_diff(&reference) < 1e-10);
    let events = log.recovery_events();
    assert_eq!(events.last().unwrap().stage, RecoveryStage::DirectFallback);
    assert_eq!(events.last().unwrap().lanes_recovered.len(), 5);
}

/// The solver-switch rung: CG on a strongly graded quintic spline matrix
/// (non-symmetric, ill-conditioned by the mesh grading) stalls within the
/// iteration budget, and the switch to GMRES — with the other rungs
/// disabled, to prove the switch alone suffices — rescues every lane.
#[test]
fn solver_switch_rescues_wrong_method_choice() {
    let n = 32;
    let space = PeriodicSplineSpace::new(Breaks::graded(n, 0.0, 1.0, 0.8).unwrap(), 5).unwrap();
    let rhs = random_rhs(n, 3, 5);
    let reference = direct_reference(&space, &rhs);

    let mut cfg = IterativeConfig::gpu();
    cfg.kind = KrylovKind::Cg; // wrong: the matrix is not symmetric
    cfg.max_block_size = 2; // weak enough that CG must genuinely iterate
    cfg.stop = cfg.stop.with_max_iters(35); // CG needs >35 here; GMRES ~25
    let solver = IterativeSplineSolver::new(space, cfg).unwrap();

    // Without recovery every lane stalls on the wrong method...
    let mut b0 = rhs.clone();
    let log0 = solver
        .solve_with_recovery(&mut b0, None, &RecoveryPolicy::disabled())
        .unwrap();
    assert!(
        log0.outcomes().iter().all(|o| !o.is_healthy()),
        "{:?}",
        log0.outcomes()
    );

    // ...and the switch rescues all of them.
    let mut b = rhs.clone();
    let policy = RecoveryPolicy {
        reprecondition: false,
        direct_fallback: false,
        ..RecoveryPolicy::default()
    };
    let log = solver.solve_with_recovery(&mut b, None, &policy).unwrap();

    assert!(log.all_converged(), "{:?}", log.outcomes());
    assert!(b.max_abs_diff(&reference) < 1e-10);
    let events = log.recovery_events();
    assert_eq!(events.len(), 1);
    assert_eq!(events[0].stage, RecoveryStage::SolverSwitch);
    assert_eq!(events[0].lanes_recovered, events[0].lanes_attempted);
    assert_eq!(events[0].lanes_attempted, vec![0, 1, 2]);
}

/// A near-singular system (one row scaled to ~machine epsilon) produces a
/// typed breakdown or stall — never a panic, never fake convergence.
#[test]
fn near_singular_system_breaks_down_typed() {
    use pp_iterative::{BiCgStab, BlockJacobi, ChunkedSolver, ConvergenceLogger};
    use pp_sparse::Csr;

    let n = 16;
    let dense = PMatrix::from_fn(n, n, Layout::Right, |i, j| {
        if i == j {
            4.0
        } else if i.abs_diff(j) == 1 {
            -1.0
        } else {
            0.0
        }
    });
    let a = Csr::from_dense(&dense, 0.0);
    let mut injector = FaultInjector::new(11);
    let bad = injector.near_singular(&a, 1e-18);

    let mut b = Matrix::zeros(n, 2, Layout::Left);
    b.fill(1.0);
    let bj = BlockJacobi::new(&bad, 4);
    let stop = StopCriteria::with_tol(1e-15)
        .with_max_iters(500)
        .with_stagnation(25, 0.01);
    let driver = ChunkedSolver::new(&BiCgStab, &bj, stop, 64);
    let mut log = ConvergenceLogger::new();
    let outcomes = driver.solve_in_place(&bad, &mut b, None, &mut log);

    for (lane, outcome) in outcomes.iter().enumerate() {
        assert!(
            !outcome.is_healthy(),
            "lane {lane} claimed convergence on a near-singular system: {:?}",
            log.lane_result(lane)
        );
    }
}

// ---- verified direct path: per-lane quarantine, FactorHealth, and the
// factorization fallback ladder ----

/// The direct-path acceptance scenario: a batch with injected NaN lanes
/// quarantines exactly those lanes (zeroed, typed reasons) while healthy
/// lanes stay bit-identical to the unverified builder.
#[test]
fn verified_direct_path_quarantines_nan_lanes() {
    let n = 32;
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 3).unwrap();
    let rhs = random_rhs(n, 8, 21);
    let reference = direct_reference(&space, &rhs);

    let mut b = rhs.clone();
    b.set(4, 2, f64::NAN);
    b.set(9, 5, f64::NEG_INFINITY);
    let verified = SplineBuilder::new(space, BuilderVersion::FusedSpmv)
        .unwrap()
        .verified(VerifyConfig::default());
    let report = verified.solve_in_place(&Parallel, &mut b).unwrap();

    assert_eq!(report.quarantined_lanes(), vec![2, 5]);
    for lane in 0..8 {
        if lane == 2 || lane == 5 {
            assert!(!report.verdict(lane).is_healthy());
            assert!(
                b.col(lane).to_vec().iter().all(|v| *v == 0.0),
                "lane {lane}"
            );
        } else {
            assert!(matches!(report.verdict(lane), LaneVerdict::Verified { .. }));
            for i in 0..n {
                assert_eq!(
                    b.get(i, lane),
                    reference.get(i, lane),
                    "lane {lane} row {i}"
                );
            }
        }
    }
}

/// Property test: random pathological meshes — clustered near-duplicate
/// knots at random positions and gaps down to 1e-13 — never destabilise
/// the direct path. `FactorHealth` *certifies* this (Greville-point
/// collocation conditioning is knot-independent, after de Boor): rcond
/// stays far from the suspect threshold, and the verified solve reports
/// every lane clean at tolerance.
#[test]
fn near_duplicate_knots_stay_healthy_and_verified() {
    let mut rng = TestRng::seed_from_u64(314);
    for trial in 0..10 {
        let cells = 12 + (rng.gen_range(0.0..8.0) as usize);
        let gap = 10f64.powi(-(rng.gen_range(6.0..13.0) as i32));
        let at = 1 + (rng.gen_range(0.0..(cells as f64 - 2.0)) as usize);
        let mut pts: Vec<f64> = (0..cells).map(|i| i as f64 / cells as f64).collect();
        pts.push(pts[at] + gap);
        pts.push(pts[at] + 2.0 * gap);
        pts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let space = PeriodicSplineSpace::new(Breaks::from_points(pts).unwrap(), 3).unwrap();
        let nb = space.num_basis();

        let blocks = pp_splinesolver::SchurBlocks::new(&space).unwrap();
        assert!(
            blocks.q_health().rcond > 1e-6,
            "trial {trial}: rcond {:e} (gap {gap:e})",
            blocks.q_health().rcond
        );
        assert!(!blocks.q_health().is_suspect(), "trial {trial}");

        let verified = SplineBuilder::new(space, BuilderVersion::FusedSpmv)
            .unwrap()
            .verified(VerifyConfig::default());
        let mut b = random_rhs(nb, 4, trial as u64);
        let report = verified.solve_in_place(&Parallel, &mut b).unwrap();
        assert!(report.all_verified(), "trial {trial}: {report}");
        assert!(b.as_slice().iter().all(|v| v.is_finite()));
    }
}

/// Extreme domain scales (1e±150) leave the collocation problem exactly as
/// well-conditioned as on the unit interval — the matrix is scale
/// invariant — and the verified solve stays clean, with no overflow or
/// underflow in the health estimates.
#[test]
fn extreme_domain_scales_stay_healthy_and_verified() {
    for scale in [1e150_f64, 1e-150] {
        for degree in [3usize, 5] {
            let space =
                PeriodicSplineSpace::new(Breaks::uniform(24, 0.0, scale).unwrap(), degree).unwrap();
            let nb = space.num_basis();
            let blocks = pp_splinesolver::SchurBlocks::new(&space).unwrap();
            assert!(blocks.q_health().rcond.is_finite());
            assert!(
                !blocks.q_health().is_suspect(),
                "scale {scale:e} deg {degree}"
            );

            let verified = SplineBuilder::new(space, BuilderVersion::FusedSpmv)
                .unwrap()
                .verified(VerifyConfig::default());
            let mut b = random_rhs(nb, 3, 77);
            let report = verified.solve_in_place(&Parallel, &mut b).unwrap();
            assert!(
                report.all_verified(),
                "scale {scale:e} deg {degree}: {report}"
            );
        }
    }
}

/// A genuinely near-singular system *is* flagged: scaling one interior row
/// of an assembled spline matrix to ~1e-14 preserves the banded-plus-
/// border structure but ruins the conditioning, and the interior factor's
/// `FactorHealth.rcond` reports it.
#[test]
fn near_singular_direct_matrix_is_flagged_by_health() {
    use pp_bsplines::assemble_interpolation_matrix;

    let space = PeriodicSplineSpace::new(Breaks::uniform(24, 0.0, 1.0).unwrap(), 3).unwrap();
    let mut a = assemble_interpolation_matrix(&space);
    for j in 0..24 {
        a.set(10, j, a.get(10, j) * 1e-14);
    }
    let blocks = pp_splinesolver::SchurBlocks::from_dense(&a, 3, false).unwrap();
    let h = blocks.q_health();
    assert!(
        h.rcond < 1e-12,
        "near-singular row must be flagged: rcond {:e}",
        h.rcond
    );
    assert!(h.is_ill_conditioned());
    assert!(h.is_suspect());
}

/// The retry budget is honoured: with `max_attempts = 1` only the first
/// enabled rung runs, even if lanes remain broken.
#[test]
fn retry_budget_bounds_the_ladder() {
    let n = 24;
    let space = PeriodicSplineSpace::new(Breaks::uniform(n, 0.0, 1.0).unwrap(), 3).unwrap();
    let mut b = random_rhs(n, 3, 2);
    let mut injector = FaultInjector::new(1);
    injector.poison_nan_lanes(&mut b, 1);

    let solver = IterativeSplineSolver::new(space, IterativeConfig::gpu()).unwrap();
    let policy = RecoveryPolicy {
        max_attempts: 1,
        ..RecoveryPolicy::default()
    };
    let log = solver.solve_with_recovery(&mut b, None, &policy).unwrap();
    assert_eq!(log.recovery_events().len(), 1);
    assert_eq!(
        log.recovery_events()[0].stage,
        RecoveryStage::Reprecondition
    );
    assert!(!log.all_converged());
}
