//! Criterion bench backing Table III: the three spline-builder kernel
//! versions on the cubic uniform configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use pp_bench::SplineConfig;
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SplineBuilder};

fn bench_builder_versions(c: &mut Criterion) {
    let nx = 1000;
    let nv = 2000;
    let cfg = SplineConfig {
        degree: 3,
        uniform: true,
    };
    let space = cfg.space(nx);
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| ((i * 7 + j) % 13) as f64);

    let mut group = c.benchmark_group("table3/builder_versions");
    group.throughput(Throughput::Elements((nx * nv) as u64));
    for version in BuilderVersion::ALL {
        let builder = SplineBuilder::new(space.clone(), version).expect("setup");
        group.bench_with_input(
            BenchmarkId::from_parameter(version.label()),
            &builder,
            |b, builder| {
                let mut work = rhs.clone();
                b.iter(|| {
                    work.deep_copy_from(&rhs).expect("same shape");
                    builder
                        .solve_in_place(&Parallel, &mut work)
                        .expect("solve");
                });
            },
        );
    }
    group.finish();
}

fn bench_degrees(c: &mut Criterion) {
    let nx = 1000;
    let nv = 1000;
    let rhs = Matrix::from_fn(nx, nv, Layout::Left, |i, j| ((i + j) % 11) as f64);
    let mut group = c.benchmark_group("table3/spline_configs");
    group.throughput(Throughput::Elements((nx * nv) as u64));
    for cfg in SplineConfig::ALL {
        let builder =
            SplineBuilder::new(cfg.space(nx), BuilderVersion::FusedSpmv).expect("setup");
        group.bench_with_input(
            BenchmarkId::from_parameter(cfg.label()),
            &builder,
            |b, builder| {
                let mut work = rhs.clone();
                b.iter(|| {
                    work.deep_copy_from(&rhs).expect("same shape");
                    builder
                        .solve_in_place(&Parallel, &mut work)
                        .expect("solve");
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_builder_versions, bench_degrees
}
criterion_main!(benches);
