//! # pp-iterative — Krylov iterative solvers (the Ginkgo substitute)
//!
//! The paper compares its Kokkos-kernels direct spline builder against a
//! [Ginkgo](https://ginkgo-project.github.io)-based iterative one (§II-C.2,
//! §III-B). This crate reproduces the configuration the paper uses:
//!
//! * the four solvers Ginkgo offers and the paper names — [`Cg`], [`BiCg`],
//!   [`BiCgStab`] (used on GPUs) and [`Gmres`] (used on CPUs because of the
//!   Ginkgo OpenMP BiCGStab issue #1563);
//! * a **block-Jacobi preconditioner** with tunable `max_block_size`
//!   between 1 and 32 ([`BlockJacobi`]);
//! * the stopping rule `‖A x − b‖ / ‖b‖ < 10⁻¹⁵` ([`StopCriteria`]);
//! * CSR matrix storage (from `pp-sparse`);
//! * the **chunked multi-right-hand-side driver** of the paper's Listing 3
//!   ([`multirhs::ChunkedSolver`]): right-hand sides are processed in
//!   chunks (8192 on CPUs, 65535 on GPUs — the CUDA/HIP grid limit),
//!   copied to a buffer, solved, and copied back, optionally warm-started
//!   from the previous time step's solution.
//!
//! The solver iteration counts this crate produces are the quantity
//! reported in the paper's Table IV.

pub mod bicg;
pub mod bicgstab;
pub mod cg;
pub mod gmres;
pub mod logger;
pub mod multirhs;
pub mod precond;
pub mod solver;
pub mod stop;

pub use bicg::BiCg;
pub use bicgstab::BiCgStab;
pub use cg::Cg;
pub use gmres::Gmres;
pub use logger::ConvergenceLogger;
pub use multirhs::{ChunkedSolver, CPU_COLS_PER_CHUNK, GPU_COLS_PER_CHUNK};
pub use precond::{BlockJacobi, Identity, Jacobi, Preconditioner};
pub use solver::{IterativeSolver, SolveResult};
pub use stop::StopCriteria;
