//! Sliding-window views of the cumulative telemetry.
//!
//! [`Snapshot`] is a one-shot cumulative dump: good for post-mortem
//! attribution, useless for answering "what is the dispatch p99 *right
//! now*". This module adds the online view. The design exploits the fact
//! that every aggregate the layer records — phase ns/call totals,
//! counters, log2 histogram buckets — is *monotone non-decreasing*: a
//! sliding window over `[t-W, t]` is exactly `cumulative(t) −
//! cumulative(t−W)`.
//!
//! So the hot path does not change at all (recording still lands in the
//! same relaxed atomics; nothing new is locked or allocated per sample).
//! The only new machinery is an **epoch ring**: [`window_tick`] captures
//! the current cumulative totals into a bounded ring of per-epoch
//! blocks (the sampler thread in [`crate::stream`] calls it once per
//! period), and [`window_snapshot`] subtracts the block `n` epochs back
//! from the live totals to produce a [`WindowStats`].
//!
//! Windowed histogram `min`/`max` cannot be recovered from monotone
//! state; they are approximated from the lowest/highest non-empty
//! *windowed* bucket (exact to a factor of 2, same resolution as the
//! quantiles). Gauges are last-write-wins, not monotone — a window
//! reports their current values.
//!
//! With the `instrument` feature off the ring does not exist (no
//! statics), [`window_tick`] is an inlined no-op and [`window_snapshot`]
//! returns an empty [`WindowStats`] — the PR-4 inert contract.

use crate::phase::PhaseId;
use crate::snapshot::{json_escape, json_f64, HistogramStat, PhaseStat, Snapshot};
use std::fmt::Write as _;

/// Schema version stamped into every JSON/JSONL document this workspace
/// emits (snapshots, traces, fault dumps, streamed telemetry, bench
/// baselines). Bump on any breaking field change; `bench_gate` fails by
/// name on mismatch instead of silently parsing.
pub const SCHEMA_VERSION: u32 = 1;

/// Aggregates observed inside one time window: the windowed delta of
/// every monotone aggregate plus the current gauge values.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WindowStats {
    /// Wall nanoseconds the window spans.
    pub span_ns: u64,
    /// Completed epochs the window covers (0 = since process start).
    pub epochs: usize,
    /// Windowed per-phase deltas, zero-call phases omitted.
    pub phases: Vec<PhaseStat>,
    /// Windowed counter deltas, name-sorted, zero deltas omitted.
    pub counters: Vec<(String, u64)>,
    /// Current gauge values (gauges are not monotone; no delta exists).
    pub gauges: Vec<(String, f64)>,
    /// Windowed histogram deltas, name-sorted, empty ones omitted.
    /// `min`/`max` are bucket-bound approximations (see module docs).
    pub histograms: Vec<HistogramStat>,
}

impl WindowStats {
    /// The windowed delta `now − base` between two cumulative
    /// snapshots. Subtraction saturates, so a `reset()` between the two
    /// captures degrades to smaller windows rather than panicking.
    pub fn between(now: &Snapshot, base: &Snapshot, span_ns: u64, epochs: usize) -> WindowStats {
        let phases = PhaseId::ALL
            .iter()
            .filter_map(|&p| {
                let calls = now.phase_calls(p).saturating_sub(base.phase_calls(p));
                let total_ns = now.phase_total_ns(p).saturating_sub(base.phase_total_ns(p));
                (calls > 0).then_some(PhaseStat {
                    phase: p,
                    calls,
                    total_ns,
                })
            })
            .collect();

        let counters = now
            .counters
            .iter()
            .filter_map(|(name, v)| {
                let d = v.saturating_sub(base.counter_value(name));
                (d > 0).then(|| (name.clone(), d))
            })
            .collect();

        let histograms = now
            .histograms
            .iter()
            .filter_map(|h| {
                let base_h = base.histogram(&h.name);
                let buckets: Vec<(u64, u64)> = h
                    .buckets
                    .iter()
                    .filter_map(|&(upper, n)| {
                        let base_n = base_h.map_or(0, |bh| {
                            bh.buckets
                                .iter()
                                .find(|&&(u, _)| u == upper)
                                .map_or(0, |&(_, c)| c)
                        });
                        let d = n.saturating_sub(base_n);
                        (d > 0).then_some((upper, d))
                    })
                    .collect();
                let count = h.count.saturating_sub(base_h.map_or(0, |bh| bh.count));
                (count > 0).then(|| HistogramStat {
                    name: h.name.clone(),
                    count,
                    sum: h.sum.saturating_sub(base_h.map_or(0, |bh| bh.sum)),
                    min: buckets.first().map_or(0, |&(upper, _)| bucket_lower(upper)),
                    max: buckets.last().map_or(0, |&(upper, _)| upper),
                    buckets,
                })
            })
            .collect();

        WindowStats {
            span_ns,
            epochs,
            phases,
            counters: counters_sorted(counters),
            gauges: now.gauges.clone(),
            histograms,
        }
    }

    /// Merge two adjacent windows into one. Monotone aggregates add;
    /// gauges take `later`'s values (last-write-wins); histogram
    /// `min`/`max` combine as min/max. The operation is associative —
    /// property-tested in `tests/window.rs` — so per-epoch blocks can be
    /// coalesced in any grouping.
    pub fn merge(&self, later: &WindowStats) -> WindowStats {
        let phases = PhaseId::ALL
            .iter()
            .filter_map(|&p| {
                let calls = phase_calls(self, p) + phase_calls(later, p);
                let total_ns = phase_total_ns(self, p) + phase_total_ns(later, p);
                (calls > 0).then_some(PhaseStat {
                    phase: p,
                    calls,
                    total_ns,
                })
            })
            .collect();

        let mut counters: std::collections::BTreeMap<String, u64> =
            self.counters.iter().cloned().collect();
        for (name, v) in &later.counters {
            *counters.entry(name.clone()).or_insert(0) += v;
        }

        let mut gauges: std::collections::BTreeMap<String, f64> =
            self.gauges.iter().cloned().collect();
        for (name, v) in &later.gauges {
            gauges.insert(name.clone(), *v);
        }

        let mut hists: std::collections::BTreeMap<String, HistogramStat> = self
            .histograms
            .iter()
            .map(|h| (h.name.clone(), h.clone()))
            .collect();
        for h in &later.histograms {
            match hists.get_mut(&h.name) {
                None => {
                    hists.insert(h.name.clone(), h.clone());
                }
                Some(acc) => {
                    acc.count += h.count;
                    acc.sum += h.sum;
                    acc.min = acc.min.min(h.min);
                    acc.max = acc.max.max(h.max);
                    let mut merged: std::collections::BTreeMap<u64, u64> =
                        acc.buckets.iter().cloned().collect();
                    for &(upper, n) in &h.buckets {
                        *merged.entry(upper).or_insert(0) += n;
                    }
                    acc.buckets = merged.into_iter().collect();
                }
            }
        }

        WindowStats {
            span_ns: self.span_ns + later.span_ns,
            epochs: self.epochs + later.epochs,
            phases,
            counters: counters.into_iter().collect(),
            gauges: gauges.into_iter().collect(),
            histograms: hists.into_values().collect(),
        }
    }

    /// True when the window saw no activity at all.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.counters.is_empty() && self.histograms.is_empty()
    }

    /// The windowed histogram named `name`, if any samples landed in the
    /// window.
    pub fn histogram(&self, name: &str) -> Option<&HistogramStat> {
        self.histograms.iter().find(|h| h.name == name)
    }

    /// Windowed calls recorded against `phase` (0 if absent).
    pub fn phase_calls(&self, phase: PhaseId) -> u64 {
        phase_calls(self, phase)
    }

    /// Windowed nanoseconds recorded against `phase` (0 if absent).
    pub fn phase_total_ns(&self, phase: PhaseId) -> u64 {
        phase_total_ns(self, phase)
    }

    /// One-line JSON object (no trailing newline) — the JSONL record
    /// body used by [`crate::TelemetryStream`]. Schema-versioned; histogram
    /// entries carry windowed p50/p99 upper bounds. `extra` is spliced
    /// verbatim before the closing brace (must be `""` or start with
    /// `", "`) — the streamer uses it for roofline/breach annotations.
    pub fn to_jsonl(&self, seq: u64, t_ns: u64, extra: &str) -> String {
        let mut j = format!(
            "{{\"schema_version\": {SCHEMA_VERSION}, \"seq\": {seq}, \"t_ns\": {t_ns}, \
             \"span_ns\": {}, \"epochs\": {}, \"phases\": [",
            self.span_ns, self.epochs
        );
        for (k, s) in self.phases.iter().enumerate() {
            let _ = write!(
                j,
                "{}{{\"phase\": \"{}\", \"calls\": {}, \"total_ns\": {}}}",
                if k == 0 { "" } else { ", " },
                s.phase.name(),
                s.calls,
                s.total_ns,
            );
        }
        j.push_str("], \"counters\": {");
        for (k, (name, v)) in self.counters.iter().enumerate() {
            let _ = write!(
                j,
                "{}\"{}\": {v}",
                if k == 0 { "" } else { ", " },
                json_escape(name)
            );
        }
        j.push_str("}, \"gauges\": {");
        for (k, (name, v)) in self.gauges.iter().enumerate() {
            let _ = write!(
                j,
                "{}\"{}\": {}",
                if k == 0 { "" } else { ", " },
                json_escape(name),
                json_f64(*v)
            );
        }
        j.push_str("}, \"histograms\": [");
        for (k, h) in self.histograms.iter().enumerate() {
            let _ = write!(
                j,
                "{}{{\"name\": \"{}\", \"count\": {}, \"mean\": {}, \"p50_le\": {}, \
                 \"p99_le\": {}}}",
                if k == 0 { "" } else { ", " },
                json_escape(&h.name),
                h.count,
                json_f64(h.mean()),
                h.quantile_upper_bound(0.50),
                h.quantile_upper_bound(0.99),
            );
        }
        j.push(']');
        j.push_str(extra);
        j.push('}');
        j
    }
}

fn phase_calls(w: &WindowStats, phase: PhaseId) -> u64 {
    w.phases
        .iter()
        .find(|s| s.phase == phase)
        .map_or(0, |s| s.calls)
}

fn phase_total_ns(w: &WindowStats, phase: PhaseId) -> u64 {
    w.phases
        .iter()
        .find(|s| s.phase == phase)
        .map_or(0, |s| s.total_ns)
}

fn counters_sorted(mut v: Vec<(String, u64)>) -> Vec<(String, u64)> {
    v.sort_by(|a, b| a.0.cmp(&b.0));
    v
}

/// Inclusive lower bound of the log2 bucket whose exclusive upper bound
/// is `upper`: bucket 0 (`upper == 1`) holds only zero, the overflow
/// bucket (`upper == u64::MAX`) starts at `2^63`.
fn bucket_lower(upper: u64) -> u64 {
    match upper {
        1 => 0,
        u64::MAX => 1 << 63,
        u => u / 2,
    }
}

#[cfg(feature = "instrument")]
mod ring {
    use super::*;
    use crate::env::env_usize_clamped;
    use std::collections::VecDeque;
    use std::sync::{Mutex, OnceLock};
    use std::time::Instant;

    /// One epoch boundary: the cumulative totals at capture time.
    struct EpochBlock {
        t_ns: u64,
        cum: Snapshot,
    }

    struct Ring {
        cap: usize,
        blocks: VecDeque<EpochBlock>,
    }

    static RING: Mutex<Option<Ring>> = Mutex::new(None);
    static ORIGIN: OnceLock<Instant> = OnceLock::new();

    fn now_ns() -> u64 {
        ORIGIN.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }

    /// Ring capacity: `PP_TELEMETRY_EPOCHS` (default 120, clamped to
    /// [2, 4096]); warn-once on malformed values.
    fn ring_cap() -> usize {
        static CAP: OnceLock<usize> = OnceLock::new();
        *CAP.get_or_init(|| env_usize_clamped("PP_TELEMETRY_EPOCHS", 2, 4096).unwrap_or(120))
    }

    pub fn window_tick() {
        let block = EpochBlock {
            t_ns: now_ns(),
            cum: Snapshot::capture(),
        };
        let mut guard = RING.lock().unwrap();
        let ring = guard.get_or_insert_with(|| Ring {
            cap: ring_cap(),
            blocks: VecDeque::new(),
        });
        if ring.blocks.len() == ring.cap {
            ring.blocks.pop_front();
        }
        ring.blocks.push_back(block);
    }

    pub fn window_snapshot(epochs: usize) -> WindowStats {
        let now = Snapshot::capture();
        let t_now = now_ns();
        let guard = RING.lock().unwrap();
        let base = guard.as_ref().and_then(|ring| {
            if epochs == 0 || ring.blocks.is_empty() {
                None
            } else {
                // The block `epochs` ticks back (clamped to the oldest
                // surviving one): the window is that many completed
                // epochs plus the in-progress partial epoch.
                let idx = ring.blocks.len().saturating_sub(epochs);
                Some(&ring.blocks[idx])
            }
        });
        match base {
            None => WindowStats::between(&now, &Snapshot::default(), t_now, 0),
            Some(b) => {
                let covered = guard.as_ref().map_or(0, |r| {
                    r.blocks.len() - r.blocks.len().saturating_sub(epochs)
                });
                WindowStats::between(&now, &b.cum, t_now.saturating_sub(b.t_ns), covered)
            }
        }
    }

    /// Drop every captured epoch (used by `reset()` so cumulative and
    /// windowed state clear together).
    pub fn window_reset() {
        if let Some(ring) = RING.lock().unwrap().as_mut() {
            ring.blocks.clear();
        }
    }

    /// Monotonic nanoseconds since the window clock's origin — the
    /// timestamp base used in streamed records.
    pub fn window_now_ns() -> u64 {
        now_ns()
    }
}

#[cfg(feature = "instrument")]
pub use ring::{window_now_ns, window_reset, window_snapshot, window_tick};

#[cfg(not(feature = "instrument"))]
mod inert_ring {
    use super::WindowStats;

    /// No-op.
    #[inline(always)]
    pub fn window_tick() {}

    /// Always empty.
    #[inline(always)]
    pub fn window_snapshot(_epochs: usize) -> WindowStats {
        WindowStats::default()
    }

    /// No-op.
    #[inline(always)]
    pub fn window_reset() {}

    /// Always zero.
    #[inline(always)]
    pub fn window_now_ns() -> u64 {
        0
    }
}

#[cfg(not(feature = "instrument"))]
pub use inert_ring::{window_now_ns, window_reset, window_snapshot, window_tick};

#[cfg(test)]
mod tests {
    use super::*;

    fn hist(name: &str, buckets: &[(u64, u64)]) -> HistogramStat {
        let count = buckets.iter().map(|&(_, n)| n).sum();
        HistogramStat {
            name: name.into(),
            count,
            sum: count * 3,
            min: buckets.first().map_or(0, |&(u, _)| bucket_lower(u)),
            max: buckets.last().map_or(0, |&(u, _)| u),
            buckets: buckets.to_vec(),
        }
    }

    #[test]
    fn between_diffs_monotone_aggregates() {
        let base = Snapshot {
            phases: vec![PhaseStat {
                phase: PhaseId::Dispatch,
                calls: 10,
                total_ns: 1_000,
            }],
            counters: vec![("c".into(), 5)],
            gauges: vec![("g".into(), 1.0)],
            histograms: vec![hist("h", &[(8, 4)])],
        };
        let now = Snapshot {
            phases: vec![PhaseStat {
                phase: PhaseId::Dispatch,
                calls: 13,
                total_ns: 1_900,
            }],
            counters: vec![("c".into(), 9)],
            gauges: vec![("g".into(), 2.5)],
            histograms: vec![hist("h", &[(8, 6), (1024, 1)])],
        };
        let w = WindowStats::between(&now, &base, 500, 2);
        assert_eq!(w.span_ns, 500);
        assert_eq!(w.epochs, 2);
        assert_eq!(w.phase_calls(PhaseId::Dispatch), 3);
        assert_eq!(w.phase_total_ns(PhaseId::Dispatch), 900);
        assert_eq!(w.counters, vec![("c".into(), 4)]);
        assert_eq!(w.gauges, vec![("g".into(), 2.5)]);
        let h = w.histogram("h").expect("windowed histogram");
        assert_eq!(h.count, 3);
        assert_eq!(h.buckets, vec![(8, 2), (1024, 1)]);
        // Bucket-bound approximations.
        assert_eq!(h.min, 4);
        assert_eq!(h.max, 1024);
    }

    #[test]
    fn between_saturates_across_reset() {
        let base = Snapshot {
            counters: vec![("c".into(), 100)],
            ..Snapshot::default()
        };
        let now = Snapshot {
            counters: vec![("c".into(), 3)],
            ..Snapshot::default()
        };
        let w = WindowStats::between(&now, &base, 1, 1);
        // A reset between captures shrinks the window to the post-reset
        // activity instead of underflowing.
        assert!(w.counters.is_empty());
    }

    #[test]
    fn jsonl_record_is_single_line_and_versioned() {
        let w = WindowStats {
            span_ns: 42,
            epochs: 1,
            phases: vec![PhaseStat {
                phase: PhaseId::Dispatch,
                calls: 2,
                total_ns: 10,
            }],
            counters: vec![("c".into(), 1)],
            gauges: vec![("g".into(), 0.5)],
            histograms: vec![hist("h", &[(8, 2)])],
        };
        let line = w.to_jsonl(7, 99, ", \"roofline\": null");
        assert!(!line.contains('\n'));
        assert!(line.starts_with(&format!("{{\"schema_version\": {SCHEMA_VERSION}")));
        assert!(line.ends_with("\"roofline\": null}"));
        assert!(line.contains("\"seq\": 7"));
        assert!(line.contains("\"p99_le\": 8"));
    }

    #[test]
    fn bucket_lower_bounds_match_doc() {
        assert_eq!(bucket_lower(1), 0);
        assert_eq!(bucket_lower(2), 1);
        assert_eq!(bucket_lower(1024), 512);
        assert_eq!(bucket_lower(u64::MAX), 1 << 63);
    }
}
