//! Ablation — the data-layout effect the paper defers to future work:
//! "For a better cache usage, it is ideal to parallelize over the
//! non-contiguous dimension, i.e., the batch dimension should be the
//! non-contiguous dimension. This requires a layout abstraction which
//! remains as a future work."
//!
//! Our views carry the layout at runtime, so both variants run today.
//! With the right-hand-side block shaped `(n, batch)` and lanes in
//! columns:
//!
//! * `Layout::Right` — the **batch dimension is contiguous**: adjacent
//!   lanes sit next to each other at every row. This is the paper's
//!   current layout (GPU-coalescing friendly), and the one it identifies
//!   as hurting CPUs: each worker's serial sweep strides by the batch
//!   size.
//! * `Layout::Left` — each **lane is contiguous**: exactly the
//!   "batch dimension non-contiguous" layout the paper names as the CPU
//!   fix. Each worker streams its own lane sequentially.

use pp_bench::{fmt_ms, parse_args, time_mean, SplineConfig};
use pp_portable::{Layout, Matrix, Parallel};
use pp_splinesolver::{BuilderVersion, SplineBuilder};

fn main() {
    let args = parse_args(1000, 20_000, 5);
    println!(
        "=== Ablation: right-hand-side layout, (n, batch) = ({}, {}), {} iters ===\n",
        args.nx, args.nv, args.iters
    );
    println!(
        "{:<24} {:>24} {:>26}",
        "", "lane-contiguous (Left)", "batch-contiguous (Right)"
    );

    for cfg in [
        SplineConfig {
            degree: 3,
            uniform: true,
        },
        SplineConfig {
            degree: 5,
            uniform: false,
        },
    ] {
        let builder =
            SplineBuilder::new(cfg.space(args.nx), BuilderVersion::FusedSpmv).expect("setup");
        let mut times = Vec::new();
        for layout in [Layout::Left, Layout::Right] {
            let rhs = Matrix::from_fn(args.nx, args.nv, layout, |i, j| {
                ((i * 5 + j) % 23) as f64 / 23.0
            });
            let mut work = rhs.clone();
            let t = time_mean(args.iters, || {
                work.deep_copy_from(&rhs).expect("same shape");
                builder.solve_in_place(&Parallel, &mut work).expect("solve");
            });
            times.push(t);
        }
        println!(
            "{:<24} {:>24} {:>26}   (Left is {:.2}x faster)",
            cfg.label(),
            fmt_ms(times[0]),
            fmt_ms(times[1]),
            times[1].as_secs_f64() / times[0].as_secs_f64()
        );
    }
    println!("\nexpected on a CPU: the lane-contiguous layout wins — each core streams");
    println!("its own lane — confirming the benefit of the layout abstraction the");
    println!("paper leaves as future work (and which these runtime layouts provide).");
}
