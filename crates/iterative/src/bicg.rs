//! Preconditioned BiCG (bi-conjugate gradients).
//!
//! Listed by the paper among Ginkgo's solvers (§II-B.2). Requires the
//! transposed operator `Aᵀ` and transposed preconditioner application.

use crate::breakdown::BreakdownKind;
use crate::precond::Preconditioner;
use crate::solver::{axpy, dot, norm2, residual_into, IterativeSolver, SolveResult};
use crate::stop::{ResidualVerdict, StopCriteria};
use pp_sparse::Csr;

/// The bi-conjugate gradient method for general systems.
#[derive(Debug, Clone, Copy, Default)]
pub struct BiCg;

impl IterativeSolver for BiCg {
    fn name(&self) -> &'static str {
        "BiCG"
    }

    fn solve(
        &self,
        a: &Csr,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        stop: &StopCriteria,
    ) -> SolveResult {
        let n = b.len();
        assert_eq!(a.nrows(), n, "BiCG: dimension mismatch");
        assert_eq!(x.len(), n, "BiCG: dimension mismatch");
        let norm_b = norm2(b);

        let mut r = vec![0.0; n];
        residual_into(a, x, b, &mut r);
        let mut r_star = r.clone();
        let mut z = vec![0.0; n];
        let mut z_star = vec![0.0; n];
        m.apply(&r, &mut z);
        m.apply_transpose(&r_star, &mut z_star);
        let mut p = z.clone();
        let mut p_star = z_star.clone();
        let mut q = vec![0.0; n];
        let mut q_star = vec![0.0; n];
        let mut rho = dot(&z, &r_star);
        let mut iterations = 0;
        let mut converged = false;
        let mut breakdown = None;
        let mut stall = stop.stagnation_tracker();

        while iterations < stop.max_iters {
            if stop.budget_exhausted() {
                breakdown = Some(BreakdownKind::BudgetExhausted);
                break;
            }
            let res = norm2(&r);
            match stop.assess(res, norm_b) {
                ResidualVerdict::Converged => {
                    converged = true;
                    break;
                }
                ResidualVerdict::NonFinite => {
                    breakdown = Some(BreakdownKind::NonFiniteResidual);
                    break;
                }
                ResidualVerdict::Continue => {}
            }
            if let Some(k) = stall.observe(res) {
                breakdown = Some(k);
                break;
            }
            if rho == 0.0 {
                breakdown = Some(BreakdownKind::RhoZero);
                break;
            }
            if !rho.is_finite() {
                breakdown = Some(BreakdownKind::NonFiniteResidual);
                break;
            }
            iterations += 1;

            a.spmv_into(&p, &mut q);
            a.spmv_transpose_into(&p_star, &mut q_star);
            let pq = dot(&p_star, &q);
            if pq == 0.0 {
                breakdown = Some(BreakdownKind::RhoZero);
                break;
            }
            if !pq.is_finite() {
                breakdown = Some(BreakdownKind::NonFiniteResidual);
                break;
            }
            let alpha = rho / pq;
            axpy(alpha, &p, x);
            axpy(-alpha, &q, &mut r);
            axpy(-alpha, &q_star, &mut r_star);
            m.apply(&r, &mut z);
            m.apply_transpose(&r_star, &mut z_star);
            let rho_new = dot(&z, &r_star);
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = z[i] + beta * p[i];
                p_star[i] = z_star[i] + beta * p_star[i];
            }
        }

        crate::solver::finish(a, x, b, stop, iterations, converged, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cg::Cg;
    use crate::precond::{BlockJacobi, Identity};
    use pp_portable::Matrix;
    use pp_portable::TestRng;

    fn nonsymmetric_system(n: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        let mut rng = TestRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, pp_portable::Layout::Right, |i, j| {
            if i == j {
                6.0
            } else if j == i + 1 {
                -2.0
            } else if i == j + 1 {
                -0.7
            } else if j == i + 2 {
                0.3
            } else {
                0.0
            }
        });
        let csr = Csr::from_dense(&a, 0.0);
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = csr.spmv_alloc(&x_true);
        (csr, x_true, b)
    }

    #[test]
    fn converges_on_nonsymmetric_system() {
        let (a, x_true, b) = nonsymmetric_system(70, 1);
        let mut x = vec![0.0; 70];
        let res = BiCg.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn on_spd_systems_bicg_tracks_cg() {
        // For SPD A and symmetric preconditioner, BiCG reduces to CG.
        let (a, _, b) = crate::cg::tests::spd_system(60, 7);
        let stop = StopCriteria::with_tol(1e-12);
        let mut x1 = vec![0.0; 60];
        let r1 = Cg.solve(&a, &Identity, &b, &mut x1, &stop);
        let mut x2 = vec![0.0; 60];
        let r2 = BiCg.solve(&a, &Identity, &b, &mut x2, &stop);
        assert!(r1.converged && r2.converged);
        assert_eq!(r1.iterations, r2.iterations);
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-9);
        }
    }

    #[test]
    fn block_jacobi_transpose_path_exercised() {
        let (a, x_true, b) = nonsymmetric_system(90, 2);
        let mut x = vec![0.0; 90];
        let bj = BlockJacobi::new(&a, 8);
        let res = BiCg.solve(&a, &bj, &b, &mut x, &StopCriteria::with_tol(1e-13));
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    // ---- one test per BreakdownKind ----

    #[test]
    fn breakdown_rho_zero_on_collapsed_recurrence() {
        // p̂ = p = [1, 0] on the permutation matrix gives ⟨p̂, Ap⟩ = 0.
        let a = Csr::from_dense(&Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]), 0.0);
        let b = [1.0, 0.0];
        let mut x = [0.0, 0.0];
        let res = BiCg.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::RhoZero));
        assert!(res.breakdown.unwrap().is_hard());
    }

    #[test]
    fn breakdown_non_finite_detected_immediately() {
        let (a, _, mut b) = nonsymmetric_system(10, 3);
        b[0] = f64::INFINITY;
        let mut x = vec![0.0; 10];
        let res = BiCg.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::NonFiniteResidual));
        assert_eq!(res.iterations, 0, "must not spin to max_iters");
    }

    #[test]
    fn breakdown_stagnation_at_the_rounding_floor() {
        let (a, _, b) = nonsymmetric_system(24, 4);
        let mut x = vec![0.0; 24];
        let stop = StopCriteria::with_tol(1e-300).with_stagnation(4, 0.5);
        let res = BiCg.solve(&a, &Identity, &b, &mut x, &stop);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::Stagnation));
        assert!(res.iterations < stop.max_iters);
    }

    #[test]
    fn breakdown_max_iters_reported() {
        let (a, _, b) = nonsymmetric_system(60, 5);
        let mut x = vec![0.0; 60];
        let stop = StopCriteria::with_tol(1e-300).with_max_iters(2);
        let res = BiCg.solve(&a, &Identity, &b, &mut x, &stop);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::MaxIters));
        assert!(!res.breakdown.unwrap().is_hard());
    }
}
