//! Errors for factorisations and shape-checked BLAS operations.

use std::fmt;

/// Errors produced by `pp-linalg`.
#[derive(Debug, Clone, PartialEq)]
pub enum Error {
    /// A zero (or numerically vanishing) pivot was met during elimination:
    /// the matrix is singular to working precision.
    Singular {
        /// Routine that failed.
        routine: &'static str,
        /// Index of the offending pivot.
        index: usize,
    },
    /// A Cholesky-type factorisation met a non-positive leading minor: the
    /// matrix is not positive definite.
    NotPositiveDefinite {
        /// Routine that failed.
        routine: &'static str,
        /// Index of the offending diagonal entry.
        index: usize,
        /// Its value.
        value: f64,
    },
    /// Operand shapes are inconsistent.
    ShapeMismatch {
        /// Operation attempted.
        op: &'static str,
        /// Description of the mismatch.
        detail: String,
    },
    /// A bandwidth parameter is invalid for the given matrix order.
    InvalidBandwidth {
        /// Operation attempted.
        op: &'static str,
        /// Matrix order.
        n: usize,
        /// Offending bandwidth.
        bandwidth: usize,
    },
    /// A non-finite (NaN/Inf) value was found in an input. Factorisations
    /// report `lane == 0` (they see one matrix, not a batch); checked lane
    /// solves report the batch lane the value sat in.
    NonFinite {
        /// Routine that found the value.
        routine: &'static str,
        /// Batch lane of the offending value (0 for factorisation inputs).
        lane: usize,
        /// Position within the lane (or flat storage index for matrices).
        index: usize,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Singular { routine, index } => {
                write!(f, "{routine}: zero pivot at index {index} (singular matrix)")
            }
            Error::NotPositiveDefinite {
                routine,
                index,
                value,
            } => write!(
                f,
                "{routine}: leading minor {index} not positive (value {value}); matrix is not positive definite"
            ),
            Error::ShapeMismatch { op, detail } => write!(f, "{op}: shape mismatch: {detail}"),
            Error::InvalidBandwidth { op, n, bandwidth } => {
                write!(f, "{op}: bandwidth {bandwidth} invalid for order {n}")
            }
            Error::NonFinite {
                routine,
                lane,
                index,
            } => write!(
                f,
                "{routine}: non-finite value at lane {lane}, index {index}"
            ),
        }
    }
}

impl std::error::Error for Error {}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_routine() {
        let e = Error::Singular {
            routine: "getrf",
            index: 3,
        };
        assert!(e.to_string().contains("getrf"));
        let e = Error::NotPositiveDefinite {
            routine: "pbtrf",
            index: 0,
            value: -1.0,
        };
        assert!(e.to_string().contains("positive definite"));
    }

    #[test]
    fn non_finite_message_carries_location() {
        let e = Error::NonFinite {
            routine: "gbtrs",
            lane: 17,
            index: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("gbtrs"), "{msg}");
        assert!(msg.contains("non-finite"), "{msg}");
        assert!(msg.contains("lane 17"), "{msg}");
        assert!(msg.contains("index 3"), "{msg}");
    }
}
