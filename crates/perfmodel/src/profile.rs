//! A named-region profiler in the style of Kokkos-tools' simple kernel
//! timer — the tool the paper uses for its cross-platform measurements
//! (§IV-A and the artifact appendix's `kp_reader` output).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Accumulates wall-clock time per named region.
///
/// ```
/// use pp_perfmodel::RegionProfiler;
///
/// let mut prof = RegionProfiler::new();
/// let sum = prof.time("ddc_splines_solve", || (0..1000).sum::<u64>());
/// assert_eq!(sum, 499500);
/// assert_eq!(prof.count("ddc_splines_solve"), 1);
/// assert!(prof.report().contains("ddc_splines_solve (REGION)"));
/// ```
#[derive(Debug, Default, Clone)]
pub struct RegionProfiler {
    regions: BTreeMap<String, (Duration, u64)>,
}

/// RAII guard that records a region's elapsed time on drop.
pub struct RegionGuard<'a> {
    profiler: &'a mut RegionProfiler,
    name: String,
    start: Instant,
}

impl RegionProfiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record an explicit duration for a region.
    pub fn record(&mut self, name: &str, elapsed: Duration) {
        let e = self.regions.entry(name.to_string()).or_default();
        e.0 += elapsed;
        e.1 += 1;
    }

    /// Time a closure as one invocation of `name`.
    pub fn time<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let start = Instant::now();
        let out = f();
        self.record(name, start.elapsed());
        out
    }

    /// Start a scoped region; it ends when the guard drops.
    pub fn region(&mut self, name: &str) -> RegionGuard<'_> {
        RegionGuard {
            name: name.to_string(),
            start: Instant::now(),
            profiler: self,
        }
    }

    /// Total time of a region.
    pub fn total(&self, name: &str) -> Duration {
        self.regions.get(name).map(|e| e.0).unwrap_or_default()
    }

    /// Call count of a region.
    pub fn count(&self, name: &str) -> u64 {
        self.regions.get(name).map(|e| e.1).unwrap_or_default()
    }

    /// Average time per call of a region (the figure the paper's appendix
    /// says it reads: "We use the average time for a measurement").
    pub fn average(&self, name: &str) -> Duration {
        match self.regions.get(name) {
            Some(&(total, count)) if count > 0 => total / count as u32,
            _ => Duration::ZERO,
        }
    }

    /// Region names seen so far.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.regions.keys().map(String::as_str)
    }

    /// Render a `kp_reader`-style report:
    /// `name (REGION) total_s count avg_s`.
    pub fn report(&self) -> String {
        let mut s = String::from("Regions:\n\n");
        for (name, (total, count)) in &self.regions {
            let avg = if *count > 0 {
                total.as_secs_f64() / *count as f64
            } else {
                0.0
            };
            let _ = writeln!(
                s,
                "- {name} (REGION) {:.6} {count} {avg:.6}",
                total.as_secs_f64()
            );
        }
        s
    }

    /// Clear all regions.
    pub fn reset(&mut self) {
        self.regions.clear();
    }
}

impl Drop for RegionGuard<'_> {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        self.profiler.record(&self.name, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_aggregate() {
        let mut p = RegionProfiler::new();
        p.record("solve", Duration::from_millis(10));
        p.record("solve", Duration::from_millis(30));
        assert_eq!(p.total("solve"), Duration::from_millis(40));
        assert_eq!(p.count("solve"), 2);
        assert_eq!(p.average("solve"), Duration::from_millis(20));
    }

    #[test]
    fn time_closure() {
        let mut p = RegionProfiler::new();
        let v = p.time("work", || 41 + 1);
        assert_eq!(v, 42);
        assert_eq!(p.count("work"), 1);
    }

    #[test]
    fn scoped_region() {
        let mut p = RegionProfiler::new();
        {
            let _g = p.region("scoped");
        }
        assert_eq!(p.count("scoped"), 1);
    }

    #[test]
    fn report_format() {
        let mut p = RegionProfiler::new();
        p.record("ddc_splines_solve", Duration::from_millis(3));
        let r = p.report();
        assert!(r.contains("ddc_splines_solve (REGION)"));
        assert!(r.contains(" 1 "));
    }

    #[test]
    fn missing_region_is_zero() {
        let p = RegionProfiler::new();
        assert_eq!(p.total("nope"), Duration::ZERO);
        assert_eq!(p.average("nope"), Duration::ZERO);
    }
}
