//! Time budgets and cooperative cancellation.
//!
//! Exa-scale production runs give each advection step a hard wall-clock
//! allowance; a straggling lane or a stalled Krylov loop must *degrade*,
//! not hang the step. [`Budget`] is the vocabulary for that: an optional
//! monotonic deadline plus a shared cancel flag, checked **cooperatively**
//! at natural preemption points (pool chunk boundaries, Krylov iteration
//! tops, per-lane verification steps). Nothing is ever interrupted
//! mid-kernel — a participant that observes an exhausted budget finishes
//! its current unit of work and stops claiming new ones, which bounds the
//! overshoot past the deadline to one chunk / one iteration (see DESIGN.md
//! §11 for the precise slack contract).
//!
//! A `Budget` is cheap to clone (one `Arc` bump) and cheap to poll (one
//! relaxed atomic load plus, when a deadline is set, one monotonic clock
//! read). The unlimited budget polls as a single branch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A wall-clock allowance for a unit of work: an optional monotonic
/// deadline plus a shared cancel flag.
///
/// Clones share the cancel flag, so cancelling any clone (or a
/// [`CancelToken`] derived from one) cancels them all — pass clones down
/// the stack, keep one at the top to cancel from another thread.
///
/// ```
/// use pp_portable::Budget;
/// use std::time::Duration;
///
/// let budget = Budget::with_deadline(Duration::from_millis(50));
/// assert!(!budget.exhausted());
/// budget.cancel();
/// assert!(budget.exhausted());
/// ```
#[derive(Debug, Clone)]
pub struct Budget {
    /// Absolute monotonic deadline; `None` means no time limit.
    deadline: Option<Instant>,
    /// Shared cooperative cancel flag.
    cancel: Arc<AtomicBool>,
}

impl Budget {
    /// A budget with no deadline and no cancellation requested. Polling
    /// it is a single relaxed load; work under it behaves exactly as if
    /// no budget existed.
    pub fn unlimited() -> Self {
        Self {
            deadline: None,
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A budget expiring `allowance` from now (monotonic clock).
    pub fn with_deadline(allowance: Duration) -> Self {
        Self::with_deadline_at(Instant::now() + allowance)
    }

    /// A budget expiring at an absolute monotonic instant. Use this to
    /// derive several phase budgets from one step deadline.
    pub fn with_deadline_at(deadline: Instant) -> Self {
        Self {
            deadline: Some(deadline),
            cancel: Arc::new(AtomicBool::new(false)),
        }
    }

    /// The absolute deadline, if one is set.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Request cooperative cancellation: every clone of this budget (and
    /// every [`CancelToken`] derived from one) reports exhausted from now
    /// on. Idempotent.
    pub fn cancel(&self) {
        self.cancel.store(true, Ordering::Relaxed);
    }

    /// `true` once [`Budget::cancel`] has been called on any clone.
    pub fn is_cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// `true` once the deadline (if any) has passed. Ignores the cancel
    /// flag; most callers want [`Budget::exhausted`].
    pub fn expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// `true` when work under this budget should stop claiming new units:
    /// cancelled or past the deadline. This is the poll every cooperative
    /// checkpoint makes.
    #[inline]
    pub fn exhausted(&self) -> bool {
        self.is_cancelled() || self.expired()
    }

    /// Time left before the deadline (`None` when no deadline is set;
    /// zero once expired or cancelled).
    pub fn remaining(&self) -> Option<Duration> {
        if self.is_cancelled() {
            return Some(Duration::ZERO);
        }
        self.deadline
            .map(|d| d.saturating_duration_since(Instant::now()))
    }

    /// A handle that can cancel this budget without carrying the deadline
    /// (e.g. handed to a supervisor thread or a signal handler).
    pub fn cancel_token(&self) -> CancelToken {
        CancelToken(Arc::clone(&self.cancel))
    }

    /// Raw pointer to the shared cancel flag, for the pool's type-erased
    /// job descriptor. The pointee lives as long as any clone of this
    /// budget (it sits inside the shared `Arc` allocation).
    pub(crate) fn cancel_flag_ptr(&self) -> *const AtomicBool {
        Arc::as_ptr(&self.cancel)
    }
}

impl Default for Budget {
    fn default() -> Self {
        Self::unlimited()
    }
}

/// Two budgets are equal when they are clones of each other (same cancel
/// flag) with the same deadline — i.e. they describe the *same*
/// allowance, not merely an equivalent one.
impl PartialEq for Budget {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline && Arc::ptr_eq(&self.cancel, &other.cancel)
    }
}

impl Eq for Budget {}

/// Cancel-only handle to a [`Budget`], detached from its deadline.
#[derive(Debug, Clone)]
pub struct CancelToken(Arc<AtomicBool>);

impl CancelToken {
    /// Request cancellation of the originating budget and all its clones.
    pub fn cancel(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// `true` once cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// How a budgeted dispatch ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// Every index in the range was visited.
    Completed,
    /// The budget ran out before the range was drained: indices past the
    /// last claimed chunk were **not** visited. The caller decides what
    /// partial coverage means (the chunked Krylov solver, for example,
    /// reports unvisited lanes as `BudgetExhausted`).
    TimedOut,
}

impl DispatchOutcome {
    /// `true` when every index was visited.
    pub fn is_complete(&self) -> bool {
        matches!(self, DispatchOutcome::Completed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_exhausts() {
        let b = Budget::unlimited();
        assert!(!b.exhausted());
        assert!(!b.expired());
        assert!(!b.is_cancelled());
        assert_eq!(b.deadline(), None);
        assert_eq!(b.remaining(), None);
    }

    #[test]
    fn cancel_is_shared_across_clones_and_tokens() {
        let b = Budget::unlimited();
        let clone = b.clone();
        let token = b.cancel_token();
        assert!(!clone.exhausted());
        token.cancel();
        assert!(b.is_cancelled());
        assert!(clone.exhausted());
        assert!(token.is_cancelled());
        assert_eq!(clone.remaining(), Some(Duration::ZERO));
    }

    #[test]
    fn deadline_expires() {
        let b = Budget::with_deadline(Duration::ZERO);
        assert!(b.expired());
        assert!(b.exhausted());
        assert_eq!(b.remaining(), Some(Duration::ZERO));
        let far = Budget::with_deadline(Duration::from_secs(3600));
        assert!(!far.exhausted());
        assert!(far.remaining().unwrap() > Duration::from_secs(3000));
    }

    #[test]
    fn deadline_at_matches_with_deadline() {
        let at = Instant::now() + Duration::from_secs(10);
        let b = Budget::with_deadline_at(at);
        assert_eq!(b.deadline(), Some(at));
        assert!(!b.exhausted());
    }

    #[test]
    fn outcome_completeness() {
        assert!(DispatchOutcome::Completed.is_complete());
        assert!(!DispatchOutcome::TimedOut.is_complete());
    }
}
