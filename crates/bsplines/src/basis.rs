//! Cox–de Boor evaluation of the non-vanishing B-spline basis functions.
//!
//! This is the textbook "BasisFuns" algorithm (Piegl & Tiller): at a point
//! `x` inside knot span `[τ_span, τ_span+1)`, exactly `degree + 1` basis
//! functions are non-zero — `B_{span−degree} … B_{span}` — and they are
//! computed together, stably, with no divisions by repeated-knot zeros for
//! the strictly increasing knot vectors used here.

/// Largest supported spline degree (the paper evaluates 3, 4 and 5).
pub const MAX_DEGREE_BASIS: usize = 5;

/// Evaluate the `degree + 1` non-vanishing basis functions at `x`, which
/// must lie in knot span `span` (`knots[span] <= x <= knots[span + 1]`).
///
/// Writes `B_{span-degree}(x) … B_{span}(x)` into `out[0..=degree]`.
///
/// # Panics
/// Panics (debug) if `span` is out of range for the knot vector.
#[inline]
pub fn eval_nonzero_basis(knots: &[f64], degree: usize, span: usize, x: f64, out: &mut [f64]) {
    debug_assert!(degree <= MAX_DEGREE_BASIS);
    debug_assert!(out.len() > degree);
    debug_assert!(span >= degree && span + degree + 1 <= knots.len() + degree);
    let mut left = [0.0_f64; MAX_DEGREE_BASIS + 1];
    let mut right = [0.0_f64; MAX_DEGREE_BASIS + 1];
    out[0] = 1.0;
    for r in 1..=degree {
        left[r] = x - knots[span + 1 - r];
        right[r] = knots[span + r] - x;
        let mut saved = 0.0;
        for k in 0..r {
            let tmp = out[k] / (right[k + 1] + left[r - k]);
            out[k] = saved + right[k + 1] * tmp;
            saved = left[r - k] * tmp;
        }
        out[r] = saved;
    }
}

/// Evaluate the first derivatives of the `degree + 1` non-vanishing basis
/// functions at `x` in span `span`, via the standard degree-reduction
/// formula `B'_{i,d} = d·(B_{i,d−1}/(τ_{i+d}−τ_i) − B_{i+1,d−1}/(τ_{i+d+1}−τ_{i+1}))`.
///
/// Writes `B'_{span-degree}(x) … B'_{span}(x)` into `out[0..=degree]`.
#[inline]
pub fn eval_nonzero_basis_deriv(
    knots: &[f64],
    degree: usize,
    span: usize,
    x: f64,
    out: &mut [f64],
) {
    debug_assert!(degree >= 1, "derivative needs degree >= 1");
    // Lower-degree basis values B_{span-(d-1)..span, d-1}.
    let mut lower = [0.0_f64; MAX_DEGREE_BASIS + 1];
    eval_nonzero_basis(knots, degree - 1, span, x, &mut lower);
    let d = degree as f64;
    for m in 0..=degree {
        let i = span - degree + m; // global index of B_{i,degree}
                                   // B_{i,d-1} contribution (zero when m == 0: B_{span-d, d-1} ∉ support).
        let a = if m > 0 {
            lower[m - 1] / (knots[i + degree] - knots[i])
        } else {
            0.0
        };
        // B_{i+1,d-1} contribution (zero when m == degree).
        let b = if m < degree {
            lower[m] / (knots[i + degree + 1] - knots[i + 1])
        } else {
            0.0
        };
        out[m] = d * (a - b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Uniform knot vector on integers: spans are [k, k+1].
    fn integer_knots(len: usize) -> Vec<f64> {
        (0..len).map(|i| i as f64).collect()
    }

    #[test]
    fn degree_zero_is_indicator() {
        let knots = integer_knots(10);
        let mut out = [0.0; 6];
        eval_nonzero_basis(&knots, 0, 4, 4.5, &mut out);
        assert_eq!(out[0], 1.0);
    }

    #[test]
    fn degree_one_hat_function() {
        let knots = integer_knots(10);
        let mut out = [0.0; 6];
        eval_nonzero_basis(&knots, 1, 4, 4.25, &mut out);
        // Linear hats: B_3(4.25) = 0.75, B_4(4.25) = 0.25.
        assert!((out[0] - 0.75).abs() < 1e-15);
        assert!((out[1] - 0.25).abs() < 1e-15);
    }

    #[test]
    fn cubic_uniform_values_at_knot() {
        // Classic cubic cardinal B-spline values at a knot: 1/6, 4/6, 1/6, 0.
        let knots = integer_knots(12);
        let mut out = [0.0; 6];
        eval_nonzero_basis(&knots, 3, 5, 5.0, &mut out);
        assert!((out[0] - 1.0 / 6.0).abs() < 1e-14);
        assert!((out[1] - 4.0 / 6.0).abs() < 1e-14);
        assert!((out[2] - 1.0 / 6.0).abs() < 1e-14);
        assert!(out[3].abs() < 1e-15);
    }

    #[test]
    fn quintic_uniform_values_at_knot() {
        // Quintic cardinal values at a knot: [1, 26, 66, 26, 1]/120, 0.
        let knots = integer_knots(16);
        let mut out = [0.0; 6];
        eval_nonzero_basis(&knots, 5, 7, 7.0, &mut out);
        let expected = [1.0, 26.0, 66.0, 26.0, 1.0, 0.0];
        for (o, e) in out.iter().zip(expected) {
            assert!((o - e / 120.0).abs() < 1e-13, "{o} vs {}", e / 120.0);
        }
    }

    #[test]
    fn partition_of_unity_all_degrees() {
        let knots = integer_knots(20);
        for degree in 1..=5 {
            for &x in &[6.0_f64, 6.1, 6.5, 6.99, 7.0] {
                let span = x.floor() as usize;
                let mut out = [0.0; 6];
                eval_nonzero_basis(&knots, degree, span, x, &mut out);
                let sum: f64 = out[..=degree].iter().sum();
                assert!((sum - 1.0).abs() < 1e-13, "deg {degree} x {x}: sum {sum}");
                assert!(out[..=degree].iter().all(|&v| v >= -1e-15), "non-negative");
            }
        }
    }

    #[test]
    fn partition_of_unity_nonuniform() {
        let knots = vec![
            0.0, 0.3, 0.5, 0.6, 1.1, 1.5, 2.4, 2.5, 3.0, 3.3, 4.0, 5.2, 6.0,
        ];
        for degree in 1..=4 {
            let span = 6; // x in [2.4, 2.5]
            for &x in &[2.4, 2.43, 2.499] {
                let mut out = [0.0; 6];
                eval_nonzero_basis(&knots, degree, span, x, &mut out);
                let sum: f64 = out[..=degree].iter().sum();
                assert!((sum - 1.0).abs() < 1e-13, "deg {degree}: {sum}");
            }
        }
    }

    #[test]
    fn derivatives_sum_to_zero() {
        // d/dx of the partition of unity is zero.
        let knots = integer_knots(20);
        for degree in 1..=5 {
            let mut out = [0.0; 6];
            eval_nonzero_basis_deriv(&knots, degree, 8, 8.37, &mut out);
            let sum: f64 = out[..=degree].iter().sum();
            assert!(sum.abs() < 1e-12, "deg {degree}: derivative sum {sum}");
        }
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let knots = vec![
            0.0, 0.4, 0.9, 1.3, 2.0, 2.2, 3.1, 3.9, 4.4, 5.0, 5.5, 6.3, 7.0,
        ];
        let degree = 3;
        let span = 6;
        let x = 2.6;
        let eps = 1e-6;
        let mut d = [0.0; 6];
        eval_nonzero_basis_deriv(&knots, degree, span, x, &mut d);
        let mut lo = [0.0; 6];
        let mut hi = [0.0; 6];
        eval_nonzero_basis(&knots, degree, span, x - eps, &mut lo);
        eval_nonzero_basis(&knots, degree, span, x + eps, &mut hi);
        for m in 0..=degree {
            let fd = (hi[m] - lo[m]) / (2.0 * eps);
            assert!((d[m] - fd).abs() < 1e-7, "m={m}: {} vs {fd}", d[m]);
        }
    }
}
