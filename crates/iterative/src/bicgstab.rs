//! Preconditioned BiCGStab (van der Vorst) — the solver the paper's Ginkgo
//! configuration uses on GPUs.

use crate::breakdown::BreakdownKind;
use crate::precond::Preconditioner;
use crate::solver::{axpy, dot, norm2, residual_into, IterativeSolver, SolveResult};
use crate::stop::{ResidualVerdict, StopCriteria};
use pp_sparse::Csr;

/// The stabilised bi-conjugate gradient method. Works on general
/// (non-symmetric) systems; each iteration costs two matrix applications
/// and two preconditioner applications.
///
/// ```
/// use pp_iterative::{BiCgStab, Identity, IterativeSolver, StopCriteria};
/// use pp_portable::Matrix;
/// use pp_sparse::Csr;
///
/// let a = Csr::from_dense(&Matrix::from_rows(&[&[4.0, 1.0], &[0.5, 3.0]]), 0.0);
/// let b = [5.0, 3.5]; // solution is [1, 1]
/// let mut x = [0.0, 0.0];
/// let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
/// assert!(res.converged);
/// assert!((x[0] - 1.0).abs() < 1e-10 && (x[1] - 1.0).abs() < 1e-10);
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BiCgStab;

impl IterativeSolver for BiCgStab {
    fn name(&self) -> &'static str {
        "BiCGStab"
    }

    fn solve(
        &self,
        a: &Csr,
        m: &dyn Preconditioner,
        b: &[f64],
        x: &mut [f64],
        stop: &StopCriteria,
    ) -> SolveResult {
        let n = b.len();
        assert_eq!(a.nrows(), n, "BiCGStab: dimension mismatch");
        assert_eq!(x.len(), n, "BiCGStab: dimension mismatch");
        let norm_b = norm2(b);

        let mut r = vec![0.0; n];
        residual_into(a, x, b, &mut r);
        let r_hat = r.clone(); // shadow residual, fixed
        let mut rho = 1.0;
        let mut alpha = 1.0;
        let mut omega = 1.0;
        let mut v = vec![0.0; n];
        let mut p = vec![0.0; n];
        let mut p_hat = vec![0.0; n];
        let mut s_hat = vec![0.0; n];
        let mut t = vec![0.0; n];
        let mut iterations = 0;
        let mut converged = false;
        let mut breakdown = None;
        let mut stall = stop.stagnation_tracker();

        while iterations < stop.max_iters {
            if stop.budget_exhausted() {
                breakdown = Some(BreakdownKind::BudgetExhausted);
                break;
            }
            let res = norm2(&r);
            match stop.assess(res, norm_b) {
                ResidualVerdict::Converged => {
                    converged = true;
                    break;
                }
                ResidualVerdict::NonFinite => {
                    breakdown = Some(BreakdownKind::NonFiniteResidual);
                    break;
                }
                ResidualVerdict::Continue => {}
            }
            if let Some(k) = stall.observe(res) {
                breakdown = Some(k);
                break;
            }
            iterations += 1;

            let rho_new = dot(&r_hat, &r);
            if rho_new == 0.0 {
                breakdown = Some(BreakdownKind::RhoZero);
                break;
            }
            if !rho_new.is_finite() {
                breakdown = Some(BreakdownKind::NonFiniteResidual);
                break;
            }
            let beta = (rho_new / rho) * (alpha / omega);
            rho = rho_new;
            // p = r + beta (p - omega v)
            for i in 0..n {
                p[i] = r[i] + beta * (p[i] - omega * v[i]);
            }
            m.apply(&p, &mut p_hat);
            a.spmv_into(&p_hat, &mut v);
            let rhv = dot(&r_hat, &v);
            if rhv == 0.0 {
                breakdown = Some(BreakdownKind::RhoZero);
                break;
            }
            if !rhv.is_finite() {
                breakdown = Some(BreakdownKind::NonFiniteResidual);
                break;
            }
            alpha = rho / rhv;
            // s = r - alpha v  (reuse r as s)
            axpy(-alpha, &v, &mut r);
            if stop.is_converged(norm2(&r), norm_b) {
                axpy(alpha, &p_hat, x);
                converged = true;
                break;
            }
            m.apply(&r, &mut s_hat);
            a.spmv_into(&s_hat, &mut t);
            let tt = dot(&t, &t);
            if tt == 0.0 {
                axpy(alpha, &p_hat, x);
                converged = true;
                break; // exact solve in s-space: residual is zero
            }
            if !tt.is_finite() {
                breakdown = Some(BreakdownKind::NonFiniteResidual);
                break;
            }
            omega = dot(&t, &r) / tt;
            // x += alpha p_hat + omega s_hat
            axpy(alpha, &p_hat, x);
            axpy(omega, &s_hat, x);
            // r = s - omega t
            axpy(-omega, &t, &mut r);
            if omega == 0.0 {
                breakdown = Some(BreakdownKind::OmegaZero);
                break;
            }
        }

        crate::solver::finish(a, x, b, stop, iterations, converged, breakdown)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::precond::{BlockJacobi, Identity, Jacobi};
    use pp_portable::Matrix;
    use pp_portable::TestRng;

    fn nonsymmetric_system(n: usize, seed: u64) -> (Csr, Vec<f64>, Vec<f64>) {
        let mut rng = TestRng::seed_from_u64(seed);
        let a = Matrix::from_fn(n, n, pp_portable::Layout::Right, |i, j| {
            if i == j {
                5.0
            } else if j == i + 1 {
                -1.5 // asymmetric off-diagonals
            } else if i == j + 1 {
                -0.5
            } else {
                0.0
            }
        });
        let csr = Csr::from_dense(&a, 0.0);
        let x_true: Vec<f64> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
        let b = csr.spmv_alloc(&x_true);
        (csr, x_true, b)
    }

    #[test]
    fn converges_on_nonsymmetric_system() {
        let (a, x_true, b) = nonsymmetric_system(80, 1);
        let mut x = vec![0.0; 80];
        let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(res.converged, "{res:?}");
        for (u, v) in x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn converges_at_paper_tolerance_with_block_jacobi() {
        let (a, _, b) = nonsymmetric_system(120, 2);
        let mut x = vec![0.0; 120];
        let bj = BlockJacobi::new(&a, 16);
        let res = BiCgStab.solve(&a, &bj, &b, &mut x, &StopCriteria::paper_default());
        assert!(res.converged, "{res:?}");
        assert!(res.relative_residual < 1e-15);
    }

    #[test]
    fn preconditioning_helps() {
        let (a, _, b) = nonsymmetric_system(200, 3);
        let stop = StopCriteria::with_tol(1e-12);
        let mut x1 = vec![0.0; 200];
        let plain = BiCgStab.solve(&a, &Identity, &b, &mut x1, &stop);
        let mut x2 = vec![0.0; 200];
        let pre = BiCgStab.solve(&a, &Jacobi::new(&a), &b, &mut x2, &stop);
        assert!(plain.converged && pre.converged);
        assert!(pre.iterations <= plain.iterations);
    }

    #[test]
    fn warm_start_is_instant() {
        let (a, x_true, b) = nonsymmetric_system(40, 4);
        let mut x = x_true.clone();
        let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert_eq!(res.iterations, 0);
    }

    #[test]
    fn identity_system_one_iteration() {
        let a = Csr::from_dense(
            &Matrix::from_fn(5, 5, pp_portable::Layout::Right, |i, j| {
                (i == j) as u8 as f64
            }),
            0.0,
        );
        let b = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let mut x = vec![0.0; 5];
        let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(res.converged);
        assert!(res.iterations <= 1);
        for (u, v) in x.iter().zip(&b) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    // ---- one test per BreakdownKind ----

    #[test]
    fn breakdown_rho_zero_on_skew_system() {
        // Skew-symmetric A makes ⟨r̂, A r̂⟩ = 0 on the first iteration.
        let a = Csr::from_dense(&Matrix::from_rows(&[&[0.0, 1.0], &[-1.0, 0.0]]), 0.0);
        let b = [1.0, 0.0];
        let mut x = [0.0, 0.0];
        let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::RhoZero));
        assert!(res.breakdown.unwrap().is_hard());
    }

    /// Preconditioner mock that sabotages the second application so that
    /// `t = A ŝ` comes out orthogonal to `s`, forcing `ω = 0`.
    ///
    /// All quantities are chosen exactly representable so the orthogonality
    /// is exact in floating point: with `A = diag(1, 3)` and `b = [1, 1]`,
    /// the first half-step gives `α = 1/2` and `s = [1/2, −1/2]`; returning
    /// `ŝ = [1.5, 0.5]` then gives `t = A ŝ = [1.5, 1.5] ⊥ s` exactly.
    struct OmegaKiller {
        calls: std::sync::atomic::AtomicUsize,
    }

    impl Preconditioner for OmegaKiller {
        fn apply(&self, r: &[f64], z: &mut [f64]) {
            let k = self
                .calls
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if k == 1 {
                z.copy_from_slice(&[1.5, 0.5]);
            } else {
                z.copy_from_slice(r);
            }
        }
        fn name(&self) -> &'static str {
            "omega-killer"
        }
    }

    #[test]
    fn breakdown_omega_zero_when_stabilisation_stalls() {
        let a = Csr::from_dense(&Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 3.0]]), 0.0);
        let b = [1.0, 1.0];
        let mut x = [0.0, 0.0];
        let m = OmegaKiller {
            calls: std::sync::atomic::AtomicUsize::new(0),
        };
        let res = BiCgStab.solve(&a, &m, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::OmegaZero));
        assert!(res.breakdown.unwrap().is_hard());
        // The α half-step was still applied before bailing.
        assert!(x.iter().any(|&v| v != 0.0));
    }

    #[test]
    fn breakdown_non_finite_detected_immediately() {
        let (a, _, mut b) = nonsymmetric_system(10, 5);
        b[7] = f64::NAN;
        let mut x = vec![0.0; 10];
        let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &StopCriteria::with_tol(1e-12));
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::NonFiniteResidual));
        assert_eq!(res.iterations, 0, "must not spin to max_iters");
    }

    #[test]
    fn breakdown_stagnation_on_near_singular_system() {
        // One row scaled to ~machine epsilon: the residual oscillates
        // around a plateau and the stagnation window catches it.
        let n = 24;
        let t = Csr::from_dense(
            &Matrix::from_fn(n, n, pp_portable::Layout::Right, |i, j| {
                if i == j {
                    4.0
                } else if i.abs_diff(j) == 1 {
                    -1.0
                } else {
                    0.0
                }
            }),
            0.0,
        );
        let mut inj = crate::fault::FaultInjector::new(11);
        let bad = inj.near_singular(&t, 1e-18);
        let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).sin()).collect();
        let mut x = vec![0.0; n];
        let stop = StopCriteria::with_tol(1e-15).with_stagnation(8, 0.5);
        let res = BiCgStab.solve(&bad, &Identity, &b, &mut x, &stop);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::Stagnation));
        assert!(res.iterations < stop.max_iters);
    }

    #[test]
    fn breakdown_max_iters_reported() {
        let (a, _, b) = nonsymmetric_system(60, 7);
        let mut x = vec![0.0; 60];
        let stop = StopCriteria::with_tol(1e-300).with_max_iters(2);
        let res = BiCgStab.solve(&a, &Identity, &b, &mut x, &stop);
        assert!(!res.converged);
        assert_eq!(res.breakdown, Some(BreakdownKind::MaxIters));
        assert!(!res.breakdown.unwrap().is_hard());
    }
}
