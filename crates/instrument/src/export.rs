//! Trace exporters: Chrome/Perfetto `trace_events` JSON and
//! folded-stack flamegraph text.
//!
//! Both exporters run the same single pass per thread: a stack of open
//! `Begin` events pairs spans, instants pass straight through, and the
//! two artefacts fall out of the pairing. Because the recorder is a
//! fixed-capacity ring, the window can start mid-span: an `End` with no
//! surviving `Begin` is dropped (its start fell off the ring), and a
//! `Begin` still open when the window ends is closed at the thread's
//! last timestamp so viewers render the truncated span instead of
//! losing it.

use crate::phase::PhaseId;
use crate::snapshot::json_escape;
use crate::trace::{Trace, TraceEventKind};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Microseconds with nanosecond precision, as a decimal literal
/// (`1234.567`), avoiding float rounding of large timestamps.
fn us(t_ns: u64) -> String {
    format!("{}.{:03}", t_ns / 1000, t_ns % 1000)
}

fn push_lane_args(out: &mut String, lane: Option<u32>) {
    if let Some(lane) = lane {
        let _ = write!(out, ", \"args\": {{\"lane\": {lane}}}");
    }
}

/// Process name shown by Perfetto/Chrome for every exported trace: all
/// recorders share pid 1, and without a `process_name` metadata record
/// the UI labels the group with the bare pid.
const PROCESS_NAME: &str = "batched-splines";

/// The `traceEvents` array (Chrome `trace_events` format) for `trace`,
/// as a JSON array literal: complete `"X"` events for paired spans,
/// `"i"` thread-scoped instants, and `"M"` metadata records — one
/// `process_name` for the shared pid plus per-thread `thread_name` /
/// `thread_sort_index`, so the UI groups rows under the process and
/// orders pool workers by recorder id instead of bare tids.
pub fn chrome_trace_events(trace: &Trace) -> String {
    let mut events: Vec<String> = vec![format!(
        "{{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
         \"args\": {{\"name\": \"{}\"}}}}",
        json_escape(PROCESS_NAME)
    )];
    for thread in &trace.threads {
        if thread.events.is_empty() && thread.name.is_empty() {
            continue;
        }
        let tid = thread.tid;
        // No standard field for flight-recorder loss; the name carries it.
        let shown_name = if thread.dropped > 0 {
            format!("{} (dropped {})", thread.name, thread.dropped)
        } else {
            thread.name.clone()
        };
        events.push(format!(
            "{{\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"name\": \"{}\"}}}}",
            json_escape(&shown_name)
        ));
        events.push(format!(
            "{{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
             \"args\": {{\"sort_index\": {tid}}}}}"
        ));

        // Stack of open spans: (phase, t_ns, lane).
        let mut stack: Vec<(PhaseId, u64, Option<u32>)> = Vec::new();
        let max_ts = thread.events.last().map_or(0, |e| e.t_ns);
        let close = |events: &mut Vec<String>, phase: PhaseId, t0: u64, end: u64, lane| {
            let mut e = format!(
                "{{\"name\": \"{}\", \"cat\": \"phase\", \"ph\": \"X\", \"ts\": {}, \
                 \"dur\": {}, \"pid\": 1, \"tid\": {tid}",
                phase.name(),
                us(t0),
                us(end.saturating_sub(t0)),
            );
            push_lane_args(&mut e, lane);
            e.push('}');
            events.push(e);
        };
        for ev in &thread.events {
            match ev.kind {
                TraceEventKind::Begin(p) => stack.push((p, ev.t_ns, ev.lane)),
                TraceEventKind::End(p) => {
                    // Only a matching top pairs; anything else means the
                    // Begin was overwritten — drop the clipped End.
                    if stack.last().is_some_and(|&(top, _, _)| top == p) {
                        let (_, t0, lane) = stack.pop().expect("matched above");
                        close(&mut events, p, t0, ev.t_ns, lane);
                    }
                }
                TraceEventKind::Instant(k) => {
                    let mut e = format!(
                        "{{\"name\": \"{}\", \"cat\": \"instant\", \"ph\": \"i\", \"s\": \"t\", \
                         \"ts\": {}, \"pid\": 1, \"tid\": {tid}",
                        k.name(),
                        us(ev.t_ns),
                    );
                    push_lane_args(&mut e, ev.lane);
                    e.push('}');
                    events.push(e);
                }
            }
        }
        // Spans still open at the window edge: close at the last
        // timestamp so the truncated span is visible.
        while let Some((p, t0, lane)) = stack.pop() {
            close(&mut events, p, t0, max_ts, lane);
        }
    }

    let mut j = String::from("[\n");
    for (i, e) in events.iter().enumerate() {
        j.push_str("    ");
        j.push_str(e);
        j.push_str(if i + 1 < events.len() { ",\n" } else { "\n" });
    }
    j.push_str("  ]");
    j
}

/// Full Chrome/Perfetto trace JSON object for `trace`: open the output
/// at <https://ui.perfetto.dev> or `chrome://tracing`.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut j = format!(
        "{{\n  \"schema_version\": {},\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": ",
        crate::window::SCHEMA_VERSION
    );
    j.push_str(&chrome_trace_events(trace));
    j.push_str("\n}\n");
    j
}

/// Folded-stack flamegraph text for `trace`: one line per unique
/// `thread;phase;...` stack with its *self* time in nanoseconds
/// (children subtracted), ready for `flamegraph.pl` or speedscope.
/// Instants carry no duration and are skipped.
pub fn folded_stacks(trace: &Trace) -> String {
    let mut folded: BTreeMap<String, u64> = BTreeMap::new();
    for thread in &trace.threads {
        // Flamegraph frames split on ';' and the count splits on the
        // last space, so neither may appear inside a frame name.
        let tname: String = thread
            .name
            .chars()
            .map(|c| if c == ';' || c == ' ' { '_' } else { c })
            .collect();
        let tname = if tname.is_empty() {
            format!("thread-{}", thread.tid)
        } else {
            tname
        };
        // (phase, t_ns, child_ns) — child_ns accumulates closed children.
        let mut stack: Vec<(PhaseId, u64, u64)> = Vec::new();
        let max_ts = thread.events.last().map_or(0, |e| e.t_ns);
        let close =
            |stack: &mut Vec<(PhaseId, u64, u64)>, folded: &mut BTreeMap<String, u64>, end: u64| {
                let (p, t0, child_ns) = stack.pop().expect("caller checked non-empty");
                let dur = end.saturating_sub(t0);
                let mut key = tname.clone();
                for (sp, _, _) in stack.iter() {
                    key.push(';');
                    key.push_str(sp.name());
                }
                key.push(';');
                key.push_str(p.name());
                *folded.entry(key).or_insert(0) += dur.saturating_sub(child_ns);
                if let Some(parent) = stack.last_mut() {
                    parent.2 += dur;
                }
            };
        for ev in &thread.events {
            match ev.kind {
                TraceEventKind::Begin(p) => stack.push((p, ev.t_ns, 0)),
                TraceEventKind::End(p) => {
                    if stack.last().is_some_and(|&(top, _, _)| top == p) {
                        close(&mut stack, &mut folded, ev.t_ns);
                    }
                }
                TraceEventKind::Instant(_) => {}
            }
        }
        while !stack.is_empty() {
            close(&mut stack, &mut folded, max_ts);
        }
    }
    let mut out = String::new();
    for (key, self_ns) in &folded {
        let _ = writeln!(out, "{key} {self_ns}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{InstantKind, ThreadTrace, TraceEvent};

    fn ev(t_ns: u64, kind: TraceEventKind, lane: Option<u32>) -> TraceEvent {
        TraceEvent { t_ns, kind, lane }
    }

    fn one_thread(events: Vec<TraceEvent>) -> Trace {
        Trace {
            threads: vec![ThreadTrace {
                tid: 7,
                name: "main".into(),
                events,
                dropped: 0,
            }],
            capacity: 64,
        }
    }

    #[test]
    fn pairs_nested_spans_and_instants() {
        let t = one_thread(vec![
            ev(1_000, TraceEventKind::Begin(PhaseId::AdvectionStep), None),
            ev(2_000, TraceEventKind::Begin(PhaseId::SolvePttrs), Some(3)),
            ev(
                2_500,
                TraceEventKind::Instant(InstantKind::LaneQuarantined),
                Some(3),
            ),
            ev(4_000, TraceEventKind::End(PhaseId::SolvePttrs), Some(3)),
            ev(9_000, TraceEventKind::End(PhaseId::AdvectionStep), None),
        ]);
        let json = chrome_trace_json(&t);
        assert!(json.contains("\"name\": \"solve_pttrs\""));
        assert!(json.contains("\"dur\": 2.000"));
        assert!(json.contains("\"name\": \"lane_quarantined\""));
        assert!(json.contains("\"s\": \"t\""));
        assert!(json.contains("\"args\": {\"lane\": 3}"));

        let folded = folded_stacks(&t);
        // Outer span self time: 8000 − 2000 child = 6000.
        assert!(folded.contains("main;advection_step 6000\n"), "{folded}");
        assert!(
            folded.contains("main;advection_step;solve_pttrs 2000\n"),
            "{folded}"
        );
    }

    #[test]
    fn clipped_window_drops_orphan_end_and_closes_open_begin() {
        // Ring overwrote the Begin of the first span; the last span is
        // still open when the snapshot was taken.
        let t = one_thread(vec![
            ev(5_000, TraceEventKind::End(PhaseId::Assemble), None),
            ev(6_000, TraceEventKind::Begin(PhaseId::Dispatch), None),
            ev(
                7_500,
                TraceEventKind::Instant(InstantKind::DispatchCommit),
                None,
            ),
        ]);
        let json = chrome_trace_json(&t);
        // No assemble X event (orphan End dropped)…
        assert!(!json.contains("\"name\": \"assemble\""));
        // …but the open dispatch span is closed at the window edge.
        assert!(json.contains("\"name\": \"dispatch\""));
        assert!(json.contains("\"dur\": 1.500"));
        let folded = folded_stacks(&t);
        assert!(folded.contains("main;dispatch 1500\n"), "{folded}");
    }

    #[test]
    fn empty_trace_exports_cleanly() {
        let j = chrome_trace_json(&Trace::default());
        // Even an empty trace names the process (and nothing else).
        assert!(j.contains("\"name\": \"process_name\""));
        assert!(!j.contains("\"name\": \"thread_name\""));
        assert!(j.contains("\"schema_version\""));
        assert_eq!(folded_stacks(&Trace::default()), "");
    }

    #[test]
    fn metadata_groups_threads_under_named_process() {
        let t = one_thread(vec![
            ev(1_000, TraceEventKind::Begin(PhaseId::Dispatch), None),
            ev(2_000, TraceEventKind::End(PhaseId::Dispatch), None),
        ]);
        let json = chrome_trace_json(&t);
        assert!(json.contains(
            "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": 1, \
             \"args\": {\"name\": \"batched-splines\"}}"
        ));
        assert!(json.contains("\"name\": \"thread_name\""));
        assert!(json.contains(
            "{\"name\": \"thread_sort_index\", \"ph\": \"M\", \"pid\": 1, \"tid\": 7, \
             \"args\": {\"sort_index\": 7}}"
        ));
    }
}
