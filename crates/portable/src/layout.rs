//! Memory layouts for 2-D views.
//!
//! The paper keeps its right-hand-side block in a *lane-contiguous* layout
//! (each batch lane — one column — is contiguous), which is the layout GPUs
//! coalesce well when parallelising over lanes, and observes that this is
//! the wrong layout for CPUs (§V-A). Exposing the layout as a runtime value
//! lets the benchmark harness reproduce exactly that observation.

/// Memory layout of a [`crate::Matrix`] with shape `(nrows, ncols)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Layout {
    /// Column-major (Fortran order, Kokkos `LayoutLeft`): element `(i, j)`
    /// lives at `i + j * nrows`. Columns are contiguous.
    Left,
    /// Row-major (C order, Kokkos `LayoutRight`): element `(i, j)` lives at
    /// `i * ncols + j`. Rows are contiguous.
    Right,
}

impl Layout {
    /// `(row_stride, col_stride)` for a matrix of shape `(nrows, ncols)`.
    #[inline]
    pub fn strides(self, nrows: usize, ncols: usize) -> (usize, usize) {
        match self {
            Layout::Left => (1, nrows),
            Layout::Right => (ncols, 1),
        }
    }

    /// Linear offset of element `(i, j)` in a matrix of shape
    /// `(nrows, ncols)` with this layout.
    #[inline]
    pub fn offset(self, i: usize, j: usize, nrows: usize, ncols: usize) -> usize {
        let (rs, cs) = self.strides(nrows, ncols);
        i * rs + j * cs
    }

    /// The transposed layout (rows of one are columns of the other).
    #[inline]
    pub fn flipped(self) -> Layout {
        match self {
            Layout::Left => Layout::Right,
            Layout::Right => Layout::Left,
        }
    }

    /// Human-readable name matching Kokkos nomenclature.
    pub fn name(self) -> &'static str {
        match self {
            Layout::Left => "LayoutLeft",
            Layout::Right => "LayoutRight",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_left() {
        assert_eq!(Layout::Left.strides(4, 7), (1, 4));
    }

    #[test]
    fn strides_right() {
        assert_eq!(Layout::Right.strides(4, 7), (7, 1));
    }

    #[test]
    fn offsets_cover_all_elements_exactly_once() {
        for layout in [Layout::Left, Layout::Right] {
            let (m, n) = (5, 3);
            let mut seen = vec![false; m * n];
            for i in 0..m {
                for j in 0..n {
                    let off = layout.offset(i, j, m, n);
                    assert!(!seen[off], "{layout:?} maps two elements to {off}");
                    seen[off] = true;
                }
            }
            assert!(seen.into_iter().all(|s| s));
        }
    }

    #[test]
    fn flipped_round_trips() {
        assert_eq!(Layout::Left.flipped().flipped(), Layout::Left);
        assert_eq!(Layout::Left.flipped(), Layout::Right);
    }

    /// Property: for randomized non-square shapes, `offset` is a bijection
    /// onto `0..m*n`, `strides` agrees with `offset`, and flipping the
    /// layout transposes the map (offset of `(i, j)` under one layout and
    /// shape `(m, n)` equals offset of `(j, i)` under the flipped layout
    /// and shape `(n, m)`). This is the contract the interleaved variant's
    /// own offset test mirrors.
    #[test]
    fn prop_offset_strides_flipped_contract_non_square() {
        let mut rng = crate::testrng::TestRng::seed_from_u64(0x1A_0FF5E7);
        for _ in 0..64 {
            let m = rng.gen_range(1usize..12);
            let n = rng.gen_range(1usize..12);
            for layout in [Layout::Left, Layout::Right] {
                let (rs, cs) = layout.strides(m, n);
                let mut seen = vec![false; m * n];
                for i in 0..m {
                    for j in 0..n {
                        let off = layout.offset(i, j, m, n);
                        assert_eq!(off, i * rs + j * cs, "{layout:?} {m}x{n}");
                        assert!(off < m * n, "{layout:?} {m}x{n}: offset out of bounds");
                        assert!(!seen[off], "{layout:?} {m}x{n}: duplicate offset {off}");
                        seen[off] = true;
                        assert_eq!(
                            off,
                            layout.flipped().offset(j, i, n, m),
                            "{layout:?} {m}x{n}: flip is not a transpose"
                        );
                    }
                }
                assert!(seen.into_iter().all(|s| s), "{layout:?} {m}x{n}: gaps");
                assert_eq!(layout.flipped().flipped(), layout);
            }
        }
    }

    #[test]
    fn names() {
        assert_eq!(Layout::Left.name(), "LayoutLeft");
        assert_eq!(Layout::Right.name(), "LayoutRight");
    }
}
